"""Journeys (Definition 3.1): validation, foremost search, arrivals."""

import math

import pytest

from repro.errors import GraphModelError
from repro.temporal.journeys import Hop, Journey, earliest_arrivals, foremost_journey
from repro.temporal.tvg import TVG


@pytest.fixture
def chain_tvg():
    """0—1 on [0,10), 1—2 on [20,30), 2—3 on [25,40); τ = 1."""
    g = TVG([0, 1, 2, 3], 50.0, tau=1.0)
    g.add_contact(0, 1, 0.0, 10.0)
    g.add_contact(1, 2, 20.0, 30.0)
    g.add_contact(2, 3, 25.0, 40.0)
    return g


class TestJourney:
    def test_empty_rejected(self):
        with pytest.raises(GraphModelError):
            Journey([])

    def test_valid_journey(self, chain_tvg):
        j = Journey([Hop(0, 1, 0.0), Hop(1, 2, 20.0), Hop(2, 3, 25.0)])
        assert j.is_valid(chain_tvg)
        assert j.topological_length == 3
        assert j.departure == 0.0
        assert j.arrival(1.0) == 26.0
        assert j.source == 0 and j.destination == 3
        assert j.nodes() == (0, 1, 2, 3)

    def test_spatial_chaining_violation(self, chain_tvg):
        j = Journey([Hop(0, 1, 0.0), Hop(2, 3, 25.0)])
        assert not j.is_valid(chain_tvg)

    def test_causality_violation(self, chain_tvg):
        # second hop departs before the first completes
        g = TVG([0, 1, 2], 50.0, tau=5.0)
        g.add_contact(0, 1, 0.0, 20.0)
        g.add_contact(1, 2, 0.0, 20.0)
        j = Journey([Hop(0, 1, 0.0), Hop(1, 2, 2.0)])
        assert not j.is_valid(g)
        j2 = Journey([Hop(0, 1, 0.0), Hop(1, 2, 5.0)])
        assert j2.is_valid(g)

    def test_presence_violation(self, chain_tvg):
        j = Journey([Hop(0, 1, 15.0)])  # edge absent at 15
        assert not j.is_valid(chain_tvg)

    def test_presence_tau_window_violation(self, chain_tvg):
        # τ = 1; contact (0,1) ends at 10, so departing at 9.5 fails
        j = Journey([Hop(0, 1, 9.5)])
        assert not j.is_valid(chain_tvg)

    def test_non_stop(self):
        j = Journey([Hop(0, 1, 0.0), Hop(1, 2, 1.0)])
        assert j.is_non_stop(tau=1.0)
        assert not j.is_non_stop(tau=0.5)

    def test_circle_free(self):
        assert Journey([Hop(0, 1, 0.0), Hop(1, 2, 1.0)]).is_circle_free()
        assert not Journey([Hop(0, 1, 0.0), Hop(1, 0, 1.0)]).is_circle_free()

    def test_precedence(self):
        j = Journey([Hop(0, 1, 0.0), Hop(1, 2, 1.0)])
        assert j.precedes(0, 2)
        assert j.precedes(0, 1)
        assert not j.precedes(2, 0)
        assert not j.precedes(0, 99)


class TestEarliestArrivals:
    def test_chain(self, chain_tvg):
        arr = earliest_arrivals(chain_tvg, 0)
        assert arr[0] == 0.0
        assert arr[1] == 1.0   # depart 0, arrive τ later
        assert arr[2] == 21.0  # wait for contact at 20
        assert arr[3] == 26.0  # depart as soon as informed (25 < 21? no: 25)

    def test_start_time_shifts(self, chain_tvg):
        arr = earliest_arrivals(chain_tvg, 0, start_time=5.0)
        assert arr[1] == 6.0

    def test_unreachable_is_inf(self):
        g = TVG([0, 1, 2], 10.0)
        g.add_contact(0, 1, 0.0, 5.0)
        arr = earliest_arrivals(g, 0)
        assert arr[2] == math.inf

    def test_missed_contact_unreachable(self):
        # contact ends before the source can use it
        g = TVG([0, 1, 2], 50.0)
        g.add_contact(1, 2, 0.0, 5.0)
        g.add_contact(0, 1, 10.0, 20.0)
        arr = earliest_arrivals(g, 0)
        assert arr[1] == 10.0
        assert arr[2] == math.inf  # (1,2) contact is long gone

    def test_unknown_source(self, chain_tvg):
        with pytest.raises(GraphModelError):
            earliest_arrivals(chain_tvg, 99)


class TestForemostJourney:
    def test_reconstruction_matches_arrivals(self, chain_tvg):
        j = foremost_journey(chain_tvg, 0, 3)
        assert j is not None
        assert j.is_valid(chain_tvg)
        assert j.arrival(chain_tvg.tau) == earliest_arrivals(chain_tvg, 0)[3]

    def test_none_when_unreachable(self):
        g = TVG([0, 1, 2], 10.0)
        g.add_contact(0, 1, 0.0, 5.0)
        assert foremost_journey(g, 0, 2) is None

    def test_direct_beats_relay(self, det_tvg):
        # deterministic trace: 0—3 contact at [10,25) beats going via 1,2
        j = foremost_journey(det_tvg, 0, 3)
        assert j.topological_length == 1
        assert j.departure == 10.0

    def test_same_node_rejected(self, chain_tvg):
        with pytest.raises(GraphModelError):
            foremost_journey(chain_tvg, 0, 0)

    def test_unknown_destination(self, chain_tvg):
        with pytest.raises(GraphModelError):
            foremost_journey(chain_tvg, 0, 99)

"""Compact (CSR) auxiliary-graph backend: equivalence with the nx build.

The compact backend's contract is stronger than "same answer": the CSR
construction must mirror the networkx build's node and edge *insertion
order*, because the greedy Steiner solver breaks distance ties by node
index and adjacency order.  These tests pin the full contract — graph
equality node-for-node/edge-for-edge/weight-for-weight over random TVEGs,
lossless round-trips, and schedule identity of the eedcb / fr-eedcb
pipelines under both backends.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import make_scheduler
from repro.auxgraph import (
    build_aux_graph,
    build_compact_aux_graph,
    from_aux_graph,
)
from repro.dts import build_dts
from repro.errors import GraphModelError, InfeasibleError, SolverError
from repro.steiner import solve_memt
from repro.traces import Contact, ContactTrace
from repro.tveg import tveg_from_trace

NODES = 5
HORIZON = 120.0

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def contact_traces(draw):
    """Random small contact traces over 5 nodes and a 120 s horizon."""
    n_contacts = draw(st.integers(4, 14))
    contacts = []
    for _ in range(n_contacts):
        u = draw(st.integers(0, NODES - 1))
        v = draw(st.integers(0, NODES - 1))
        if u == v:
            continue
        start = draw(st.floats(0.0, HORIZON - 10.0))
        dur = draw(st.floats(5.0, 50.0))
        contacts.append(Contact(start, min(start + dur, HORIZON), u, v))
    return ContactTrace(contacts, nodes=tuple(range(NODES)), horizon=HORIZON)


def assert_same_graph(nxa, ca):
    """Full structural identity of an AuxGraph and a CompactAuxGraph."""
    g1, g2 = nxa.graph, ca.to_networkx()
    assert list(g1.nodes) == list(g2.nodes)
    assert [g1.nodes[n]["time"] for n in g1] == [
        g2.nodes[n]["time"] for n in g2
    ]
    assert list(g1.edges(data="weight")) == list(g2.edges(data="weight"))
    assert nxa.root == ca.root
    assert nxa.terminals == ca.terminals
    assert nxa.cost_sets == ca.cost_sets


@given(contact_traces(), st.integers(0, 2**16),
       st.sampled_from(["static", "rayleigh"]))
@slow
def test_compact_build_equals_nx_build(trace, seed, channel):
    tveg = tveg_from_trace(trace, channel, seed=seed)
    dts = build_dts(tveg.tvg, HORIZON)
    nxa = build_aux_graph(tveg, 0, HORIZON, dts)
    ca = build_compact_aux_graph(tveg, 0, HORIZON, dts)
    assert_same_graph(nxa, ca)
    assert ca.num_nodes == nxa.num_nodes
    assert ca.num_edges == nxa.num_edges
    assert ca.dcs_levels == nxa.dcs_levels


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_from_aux_graph_round_trip(trace, seed):
    tveg = tveg_from_trace(trace, "static", seed=seed)
    nxa = build_aux_graph(tveg, 0, HORIZON)
    ca = from_aux_graph(nxa)
    assert_same_graph(nxa, ca)
    # ...and back again through the networkx-backed form.
    back = ca.to_aux_graph()
    assert list(back.graph.edges(data="weight")) == list(
        nxa.graph.edges(data="weight")
    )
    assert back.terminals == nxa.terminals


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_eedcb_schedules_identical_across_backends(trace, seed):
    tveg = tveg_from_trace(trace, "static", seed=seed)
    try:
        r_nx = make_scheduler("eedcb", backend="nx").run(tveg, 0, HORIZON)
    except InfeasibleError:
        return
    r_c = make_scheduler("eedcb", backend="compact").run(tveg, 0, HORIZON)
    assert r_nx.schedule.transmissions == r_c.schedule.transmissions
    assert r_nx.info["steiner_expansions"] == r_c.info["steiner_expansions"]
    assert r_nx.info["tree_cost"] == r_c.info["tree_cost"]
    assert r_nx.info["aux_nodes"] == r_c.info["aux_nodes"]
    assert r_nx.info["aux_edges"] == r_c.info["aux_edges"]
    assert r_nx.info["backend"] == "nx" and r_c.info["backend"] == "compact"


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_fr_eedcb_schedules_identical_across_backends(trace, seed):
    tveg = tveg_from_trace(trace, "rayleigh", seed=seed)
    try:
        r_nx = make_scheduler("fr-eedcb", backend="nx").run(tveg, 0, HORIZON)
    except InfeasibleError:
        return
    r_c = make_scheduler("fr-eedcb", backend="compact").run(tveg, 0, HORIZON)
    assert r_nx.schedule.transmissions == r_c.schedule.transmissions


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_solver_trees_identical_on_both_forms(trace, seed):
    """Every MEMT method returns the same tree on either graph form."""
    tveg = tveg_from_trace(trace, "static", seed=seed)
    dts = build_dts(tveg.tvg, HORIZON)
    nxa = build_aux_graph(tveg, 0, HORIZON, dts)
    ca = build_compact_aux_graph(tveg, 0, HORIZON, dts)
    for method in ("greedy", "sptree"):
        try:
            e_nx = solve_memt(nxa.graph, nxa.root, nxa.terminals,
                              method=method)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                solve_memt(ca, ca.root, ca.terminals, method=method)
            continue
        e_c = solve_memt(ca, ca.root, ca.terminals, method=method)
        assert e_nx == e_c


def test_compact_lookup_surface(det_static):
    ca = build_compact_aux_graph(det_static, 0, det_static.horizon)
    assert ca.index_of(ca.root) == ca.root_index
    for t, i in zip(ca.terminals, ca.terminal_indices):
        assert ca.index_of(t) == i
    # edge_weight agrees with the CSR rows and rejects absent edges.
    i = ca.root_index
    for j, w in ca.out_edges(i):
        assert ca.edge_weight(ca.aux_nodes[i], ca.aux_nodes[j]) == w
    with pytest.raises(GraphModelError):
        ca.edge_weight(ca.aux_nodes[0], ca.aux_nodes[0])
    assert ca.number_of_nodes() == ca.num_nodes == len(ca.aux_nodes)
    assert ca.number_of_edges() == ca.num_edges == len(ca.targets)
    assert len(ca.indptr) == ca.num_nodes + 1


def test_unknown_backend_rejected():
    with pytest.raises(SolverError):
        make_scheduler("eedcb", backend="csr")


def test_unknown_source_and_targets_rejected(det_static):
    with pytest.raises(GraphModelError):
        build_compact_aux_graph(det_static, "nope", det_static.horizon)
    with pytest.raises(GraphModelError):
        build_compact_aux_graph(
            det_static, 0, det_static.horizon, targets=("nope",)
        )

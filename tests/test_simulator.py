"""Monte-Carlo simulator: determinism, causality, statistical agreement."""

import math

import numpy as np
import pytest

from repro.schedule import Schedule, Transmission, uninformed_probability
from repro.sim import (
    SimulationSummary,
    delivery_ratio,
    run_trials,
    schedule_normalized_energy,
    simulate_schedule,
)


def _w(tveg, u, v, t):
    return tveg.min_cost(u, v, t)


def full_static_schedule(tveg):
    return Schedule(
        [
            Transmission(0, 15.0, max(_w(tveg, 0, 1, 15.0), _w(tveg, 0, 3, 15.0))),
            Transmission(1, 25.0, _w(tveg, 1, 2, 25.0)),
        ]
    )


class TestStaticExecution:
    def test_deterministic_delivery(self, det_static):
        out = simulate_schedule(det_static, full_static_schedule(det_static), 0, seed=0)
        assert out.received == frozenset({0, 1, 2, 3})
        assert out.delivery_ratio(4) == 1.0

    def test_energy_counts_fired_only(self, det_static):
        # relay 1 never informed (first transmission omitted) → silent
        sched = Schedule([Transmission(1, 25.0, 5.0)])
        out = simulate_schedule(det_static, sched, 0, seed=0)
        assert out.energy == 0.0
        assert out.transmissions == 0

    def test_scheduled_energy_option(self, det_static):
        sched = Schedule([Transmission(1, 25.0, 5.0)])
        out = simulate_schedule(
            det_static, sched, 0, seed=0, count_scheduled_energy=True
        )
        assert out.energy == 5.0

    def test_causality(self, det_static):
        # reception times must be ≥ the informing transmission's time
        out = simulate_schedule(det_static, full_static_schedule(det_static), 0, seed=0)
        times = dict(out.reception_times)
        assert times[1] == 15.0 and times[2] == 25.0

    def test_insufficient_power_never_delivers(self, det_static):
        sched = Schedule([Transmission(0, 15.0, 0.5 * _w(det_static, 0, 1, 15.0))])
        out = simulate_schedule(det_static, sched, 0, seed=0)
        assert 1 not in out.received


class TestFadingExecution:
    def test_seeded_reproducibility(self, det_fading):
        sched = full_static_schedule(det_fading)
        a = simulate_schedule(det_fading, sched, 0, seed=7)
        b = simulate_schedule(det_fading, sched, 0, seed=7)
        assert a.received == b.received and a.energy == b.energy

    def test_delivery_matches_analytic_probability(self, det_fading):
        # single-hop: MC delivery of node 1 must converge to 1 − φ(w)
        w = 0.3 * _w(det_fading, 0, 1, 15.0)
        sched = Schedule([Transmission(0, 15.0, w)])
        p_fail = det_fading.failure(0, 1, 15.0, w)
        n, hits = 4000, 0
        rng = np.random.default_rng(123)
        for _ in range(n):
            out = simulate_schedule(det_fading, sched, 0, seed=rng)
            if 1 in out.received:
                hits += 1
        estimate = hits / n
        sigma = math.sqrt(p_fail * (1 - p_fail) / n)
        assert abs(estimate - (1.0 - p_fail)) < 5 * sigma

    def test_static_schedule_loses_packets_under_fading(self, paired_tvegs):
        static, fading = paired_tvegs
        sched = full_static_schedule(static)
        summary = run_trials(fading, sched, 0, num_trials=300, seed=5)
        # static min-cost gives per-hop failure 1−e^{−1} ≈ 0.63 under fading
        assert summary.mean_delivery < 0.95

    def test_w0_schedule_delivers_under_fading(self, det_fading):
        w01 = _w(det_fading, 0, 1, 15.0)
        w03 = _w(det_fading, 0, 3, 15.0)
        w12 = _w(det_fading, 1, 2, 25.0)
        sched = Schedule(
            [Transmission(0, 15.0, max(w01, w03)), Transmission(1, 25.0, w12)]
        )
        summary = run_trials(det_fading, sched, 0, num_trials=300, seed=5)
        assert summary.mean_delivery > 0.95


class TestRunner:
    def test_summary_fields(self, det_static):
        s = run_trials(det_static, full_static_schedule(det_static), 0, 10, seed=0)
        assert isinstance(s, SimulationSummary)
        assert s.num_trials == 10 and s.num_nodes == 4
        assert s.mean_delivery == 1.0
        assert s.std_delivery == 0.0
        lo, hi = s.delivery_ci95()
        assert lo <= s.mean_delivery <= hi

    def test_order_independent_trials(self, det_fading):
        sched = full_static_schedule(det_fading)
        a = run_trials(det_fading, sched, 0, 50, seed=9)
        b = run_trials(det_fading, sched, 0, 50, seed=9)
        assert a.mean_delivery == b.mean_delivery
        assert a.mean_energy == b.mean_energy


class TestMetrics:
    def test_normalized_energy(self, det_static):
        sched = full_static_schedule(det_static)
        n = schedule_normalized_energy(sched, det_static.params)
        assert n == pytest.approx(sched.total_cost / det_static.params.decode_energy)

    def test_delivery_ratio_aggregate(self, det_static):
        outs = [
            simulate_schedule(det_static, full_static_schedule(det_static), 0, seed=s)
            for s in range(3)
        ]
        assert delivery_ratio(outs, 4) == 1.0
        assert delivery_ratio([], 4) == 0.0

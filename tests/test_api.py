"""High-level API: plan_broadcast facade and scheduler alias resolution."""

from __future__ import annotations

import pytest

from repro import (
    BroadcastPlan,
    canonical_scheduler_name,
    check_feasibility,
    make_scheduler,
    obs,
    plan_broadcast,
    tveg_from_trace,
)
from repro.errors import GraphModelError, InfeasibleError, SolverError

from .conftest import make_random_instance


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    obs.disable()
    yield
    obs.disable()


class TestAliasResolution:
    @pytest.mark.parametrize(
        "alias",
        ["fr-eedcb", "FR-EEDCB", "fr_eedcb", "FR_EEDCB", "freedcb",
         "FREEDCB", " fr eedcb "],
    )
    def test_aliases_resolve_to_canonical(self, alias):
        assert canonical_scheduler_name(alias) == "fr-eedcb"

    def test_canonical_names_resolve_to_themselves(self):
        for name in ("eedcb", "fr-eedcb", "greed", "fr-greed", "rand",
                     "fr-rand", "oracle"):
            assert canonical_scheduler_name(name) == name

    def test_unknown_name_lists_canonical_names(self):
        with pytest.raises(SolverError, match="canonical names:.*eedcb"):
            canonical_scheduler_name("dijkstra")

    def test_make_scheduler_accepts_aliases(self, det_static):
        a = make_scheduler("EEDCB").run(det_static, 0, 100.0)
        b = make_scheduler("eedcb").run(det_static, 0, 100.0)
        assert a.schedule == b.schedule


class TestPlanBroadcast:
    def test_matches_manual_pipeline(self):
        trace, _ = make_random_instance(seed=2)
        plan = plan_broadcast(trace, 0, 300.0, algorithm="eedcb", seed=2)
        tveg = tveg_from_trace(trace, "static", seed=2)
        manual = make_scheduler("eedcb").run(tveg, 0, 300.0)
        assert isinstance(plan, BroadcastPlan)
        assert plan.schedule == manual.schedule
        assert plan.total_cost == manual.schedule.total_cost
        assert plan.info["aux_nodes"] == manual.info["aux_nodes"]
        report = check_feasibility(tveg, manual.schedule, 0, 300.0)
        assert plan.feasible == report.feasible
        assert plan.feasibility.feasible == report.feasible

    def test_window_restricts_and_shifts(self, det_trace):
        # planning on [0, 100] of the deterministic trace explicitly ...
        plan = plan_broadcast(det_trace, 0, 100.0, window=(0.0, 100.0), seed=1)
        # ... must equal planning with no window (trace already starts at 0)
        direct = plan_broadcast(det_trace, 0, 100.0, seed=1)
        assert plan.schedule == direct.schedule
        # scalar window start means (start, start + deadline)
        scalar = plan_broadcast(det_trace, 0, 100.0, window=0.0, seed=1)
        assert scalar.schedule == plan.schedule

    def test_auto_source_picks_smallest_feasible(self, det_trace):
        plan = plan_broadcast(det_trace, None, 100.0, seed=1)
        assert plan.source == 0
        assert plan.feasible

    def test_auto_source_infeasible_window_raises(self, det_trace):
        with pytest.raises(InfeasibleError):
            # nobody can reach everyone by t=5
            plan_broadcast(det_trace, None, 5.0, seed=1)

    def test_accepts_prebuilt_tveg(self, det_static):
        plan = plan_broadcast(det_static, 0, 100.0)
        manual = make_scheduler("eedcb").run(det_static, 0, 100.0)
        assert plan.schedule == manual.schedule
        assert plan.channel == "StaticChannel"
        assert plan.tveg is det_static

    def test_tveg_with_window_rejected(self, det_static):
        with pytest.raises(GraphModelError, match="window"):
            plan_broadcast(det_static, 0, 100.0, window=(0.0, 50.0))

    def test_bad_input_type_rejected(self):
        with pytest.raises(TypeError, match="ContactTrace, ContactStore, or TVEG"):
            plan_broadcast([("not", "a", "trace")], 0, 100.0)

    def test_algorithm_alias_and_channel(self):
        trace, _ = make_random_instance(seed=2)
        plan = plan_broadcast(
            trace, 0, 300.0, algorithm="FR_EEDCB", channel="rayleigh", seed=2
        )
        assert plan.algorithm == "fr-eedcb"
        assert plan.channel == "rayleigh"
        assert plan.info["nlp_iterations"] >= 0

    def test_seed_forwarded_to_rand_scheduler(self):
        trace, _ = make_random_instance(seed=2)
        a = plan_broadcast(trace, 0, 300.0, algorithm="rand", seed=11)
        b = plan_broadcast(trace, 0, 300.0, algorithm="rand", seed=11)
        assert a.schedule == b.schedule

    def test_scheduler_kwargs_forwarded(self):
        trace, _ = make_random_instance(seed=2)
        plan = plan_broadcast(
            trace, 0, 300.0, algorithm="eedcb", seed=2, memt_method="sptree"
        )
        assert plan.info["memt_method"] == "sptree"

    def test_obs_snapshot_attached_only_when_enabled(self):
        trace, _ = make_random_instance(seed=2)
        plan = plan_broadcast(trace, 0, 300.0, seed=2)
        assert plan.obs is None
        obs.enable()
        traced = plan_broadcast(trace, 0, 300.0, seed=2)
        assert traced.obs is not None
        assert "api.plan_broadcast" in traced.obs.span_names
        assert traced.schedule == plan.schedule  # tracing must not perturb

    def test_normalized_energy_uses_graph_params(self):
        trace, _ = make_random_instance(seed=2)
        plan = plan_broadcast(trace, 0, 300.0, seed=2)
        expected = plan.tveg.params.normalize_energy(plan.schedule.total_cost)
        assert plan.normalized_energy() == pytest.approx(expected)

"""The four TMEDB feasibility conditions (Section IV)."""

import pytest

from repro.schedule import Schedule, Transmission, check_feasibility


def _w(tveg, u, v, t):
    return tveg.min_cost(u, v, t)


def full_schedule(tveg):
    """A hand-built feasible broadcast on the deterministic trace: 0→{1,3}
    then 1→2 (0 covers 3 directly during their [10,25) contact)."""
    return Schedule(
        [
            Transmission(0, 15.0, max(_w(tveg, 0, 1, 15.0), _w(tveg, 0, 3, 15.0))),
            Transmission(1, 25.0, _w(tveg, 1, 2, 25.0)),
        ]
    )


class TestConditions:
    def test_feasible_schedule(self, det_static):
        rep = check_feasibility(det_static, full_schedule(det_static), 0, 100.0)
        assert rep.feasible
        assert rep.violations == ()
        times = dict(rep.informed_times)
        assert times[0] == 0.0 and times[1] == 15.0 and times[2] == 25.0

    def test_condition_i_uninformed_relay(self, det_static):
        # relay 1 transmits before anyone informed it
        sched = Schedule([Transmission(1, 25.0, _w(det_static, 1, 2, 25.0))])
        rep = check_feasibility(det_static, sched, 0, 100.0)
        assert not rep.relays_informed
        assert any("relay" in v for v in rep.violations)

    def test_condition_ii_node_never_informed(self, det_static):
        sched = Schedule([Transmission(0, 15.0, _w(det_static, 0, 1, 15.0))])
        rep = check_feasibility(det_static, sched, 0, 100.0)
        assert not rep.all_informed
        assert not rep.feasible

    def test_condition_iii_latency(self, det_static):
        rep = check_feasibility(det_static, full_schedule(det_static), 0, 20.0)
        assert not rep.latency_ok  # transmission at 25 > deadline 20

    def test_condition_iv_budget(self, det_static):
        sched = full_schedule(det_static)
        ok = check_feasibility(det_static, sched, 0, 100.0, budget=sched.total_cost)
        tight = check_feasibility(
            det_static, sched, 0, 100.0, budget=sched.total_cost * 0.99
        )
        assert ok.budget_ok
        assert not tight.budget_ok
        assert not tight.feasible

    def test_no_budget_means_ok(self, det_static):
        rep = check_feasibility(det_static, full_schedule(det_static), 0, 100.0)
        assert rep.budget_ok

    def test_empty_schedule_single_node(self, det_static):
        # only the source itself informed → conditions (i), (iii), (iv) hold
        rep = check_feasibility(det_static, Schedule.empty(), 0, 100.0)
        assert rep.relays_informed and rep.latency_ok and rep.budget_ok
        assert not rep.all_informed

    def test_tau_tightens_deadline(self, det_trace):
        from repro.tveg import tveg_from_trace

        tveg = tveg_from_trace(det_trace, "static", tau=2.0, seed=1)
        # same structure but τ = 2: latency bound uses max t_k + τ
        sched = Schedule(
            [
                Transmission(
                    0, 15.0, max(tveg.min_cost(0, 1, 15.0), tveg.min_cost(0, 3, 15.0))
                ),
                Transmission(1, 25.0, tveg.min_cost(1, 2, 25.0)),
            ]
        )
        rep = check_feasibility(tveg, sched, 0, 26.0)
        assert not rep.latency_ok  # 25 + 2 > 26

    def test_custom_eps(self, det_fading):
        # with ε = 0.999 even a feeble transmission informs
        w = 0.05 * _w(det_fading, 0, 1, 15.0)
        sched = Schedule(
            [
                Transmission(0, 15.0, w),
                Transmission(0, 16.0, 0.05 * _w(det_fading, 0, 3, 16.0)),
                Transmission(1, 25.0, 0.05 * _w(det_fading, 1, 2, 25.0)),
            ]
        )
        loose = check_feasibility(det_fading, sched, 0, 100.0, eps=0.999)
        strict = check_feasibility(det_fading, sched, 0, 100.0, eps=1e-6)
        assert loose.feasible
        assert not strict.feasible


class TestReplayKernelParity:
    """The numpy causal-replay kernel must match the stdlib loop
    byte-for-byte: same reports, same informed times, same memo-backed
    neighbor/failure evaluations."""

    def _both(self, tveg, sched, source, deadline, **kw):
        a = check_feasibility(tveg, sched, source, deadline,
                              compute="python", **kw)
        tveg.clear_caches()
        b = check_feasibility(tveg, sched, source, deadline,
                              compute="numpy", **kw)
        return a, b

    def _assert_equal(self, a, b):
        assert a.feasible == b.feasible
        assert a.violations == b.violations
        assert repr(a.informed_times) == repr(b.informed_times)
        assert (a.relays_informed, a.all_informed, a.latency_ok,
                a.budget_ok) == (b.relays_informed, b.all_informed,
                                 b.latency_ok, b.budget_ok)

    def test_feasible_schedule(self, det_static):
        a, b = self._both(det_static, full_schedule(det_static), 0, 100.0)
        self._assert_equal(a, b)
        assert a.feasible

    def test_infeasible_and_unfired(self, det_static):
        sched = Schedule([Transmission(1, 25.0, _w(det_static, 1, 2, 25.0))])
        a, b = self._both(det_static, sched, 0, 100.0)
        self._assert_equal(a, b)
        assert not a.relays_informed

    def test_same_instant_chain(self, det_static):
        # 0 and 1 both fire at t=20: 1 is informed by 0's same-instant
        # transmission, so the fixpoint fires both — on either kernel.
        sched = Schedule([
            Transmission(0, 20.0, _w(det_static, 0, 1, 20.0)),
            Transmission(1, 20.0, _w(det_static, 1, 2, 20.0)),
            Transmission(0, 15.0, _w(det_static, 0, 3, 15.0)),
        ])
        a, b = self._both(det_static, sched, 0, 100.0)
        self._assert_equal(a, b)

    def test_fading_probabilities(self, det_fading):
        # fractional failure factors: partial informing exercises the
        # masked elementwise multiply against the scalar product chain
        sched = Schedule([
            Transmission(0, 15.0, 0.4 * _w(det_fading, 0, 1, 15.0)),
            Transmission(0, 16.0, 0.4 * _w(det_fading, 0, 1, 16.0)),
            Transmission(0, 17.0, 0.4 * _w(det_fading, 0, 3, 17.0)),
            Transmission(1, 25.0, 0.4 * _w(det_fading, 1, 2, 25.0)),
        ])
        for eps in (1e-6, 0.2, 0.999):
            a, b = self._both(det_fading, sched, 0, 100.0, eps=eps)
            self._assert_equal(a, b)

    def test_scheduler_reduce_parity_across_kernels(self):
        # full pipeline: an EEDCB run whose reduce passes replay on the
        # pinned kernel must produce the identical schedule either way
        from repro.algorithms import make_scheduler
        from repro.tveg import tveg_from_trace
        from repro.traces import HaggleLikeConfig, haggle_like_trace

        trace = haggle_like_trace(HaggleLikeConfig(num_nodes=10), seed=4)
        window = trace.restrict_window(8000.0, 11000.0).shift(-8000.0)
        results = {}
        for compute in ("python", "numpy"):
            tveg = tveg_from_trace(window, "static", seed=4)
            r = make_scheduler("eedcb", compute=compute).run(tveg, 0, 2500.0)
            results[compute] = r
        assert results["python"].schedule == results["numpy"].schedule
        assert repr(results["python"].schedule.total_cost) == \
            repr(results["numpy"].schedule.total_cost)

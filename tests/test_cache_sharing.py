"""Multi-process disk-cache sharing: the shared tier under the shards.

A sharded deployment points every worker's :class:`PlanCache` at one
``cache_dir``.  These tests pin the contract that makes that safe:

* a plan stored by one cache instance replays byte-identically through
  another instance (and through another *process*) given only the key
  and a TVEG factory;
* writes are atomic — readers racing a writer see either the complete
  document or a miss, never partial JSON — and no temp files leak;
* corrupt or truncated entries degrade to misses (counted as
  ``disk_errors``), never to exceptions or wrong plans.
"""

import json
import multiprocessing
import os

import pytest

from repro.api import plan_broadcast, plan_cache_key, tveg_from_trace
from repro.schedule.io import plan_to_doc
from repro.service import PlanCache
from repro.traces import HaggleLikeConfig, haggle_like_trace

PARAMS = dict(num_nodes=8)
SEED = 3
DEADLINE = 600.0


def make_tveg():
    trace = haggle_like_trace(HaggleLikeConfig(**PARAMS), seed=SEED)
    # the service's scalar-window convention: start at 2000, span one
    # deadline, rebased to t=0 — matches a {"window": 2000.0} request
    window = trace.restrict_window(2000.0, 2000.0 + DEADLINE).shift(-2000.0)
    return tveg_from_trace(window, "static", seed=SEED)


def canonical(plan) -> str:
    """The plan document minus its volatile timing fields."""
    doc = plan_to_doc(plan)
    doc.get("manifest", {}).pop("created_unix", None)
    doc.get("manifest", {}).pop("wall_seconds", None)
    doc.get("info", {}).pop("stage_seconds", None)
    return json.dumps(doc, sort_keys=True)


@pytest.fixture(scope="module")
def tveg():
    return make_tveg()


@pytest.fixture(scope="module")
def plan_and_key(tveg):
    key = plan_cache_key(tveg, None, DEADLINE, algorithm="eedcb", seed=SEED)
    plan = plan_broadcast(tveg, None, DEADLINE, algorithm="eedcb", seed=SEED)
    return plan, key


def _subprocess_writer(cache_dir: str) -> None:
    """Recompute the module's plan from scratch and store it.

    Runs in a child process: nothing is inherited but the directory
    path, so a parent-side hit doubles as a cross-process determinism
    check.
    """
    tveg = make_tveg()
    key = plan_cache_key(tveg, None, DEADLINE, algorithm="eedcb", seed=SEED)
    plan = plan_broadcast(tveg, None, DEADLINE, algorithm="eedcb", seed=SEED)
    PlanCache(capacity=4, disk_dir=cache_dir).put(key, plan)


class TestSharedDiskTier:
    def test_second_instance_replays_byte_identically(
        self, tmp_path, tveg, plan_and_key
    ):
        plan, key = plan_and_key
        writer = PlanCache(capacity=8, disk_dir=str(tmp_path))
        writer.put(key, plan)
        reader = PlanCache(capacity=8, disk_dir=str(tmp_path))
        replayed = reader.lookup(key, tveg_factory=make_tveg)
        assert replayed is not None
        assert canonical(replayed) == canonical(plan)
        assert reader.stats()["disk_hits"] == 1
        # the disk hit was promoted into the reader's memory tier
        assert key in reader

    def test_disk_tier_needs_a_tveg_factory(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        PlanCache(capacity=8, disk_dir=str(tmp_path)).put(key, plan)
        reader = PlanCache(capacity=8, disk_dir=str(tmp_path))
        assert reader.lookup(key) is None

    def test_atomic_rename_leaves_no_temp_files(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        cache = PlanCache(capacity=8, disk_dir=str(tmp_path))
        for _ in range(3):
            cache.put(key, plan)
        names = os.listdir(tmp_path)
        assert names == [key + ".json"]
        # and the final file is complete, parseable JSON
        with open(tmp_path / names[0]) as fh:
            doc = json.load(fh)
        assert "cached_unix" in doc

    def test_corrupt_entry_is_a_counted_miss(self, tmp_path, tveg, plan_and_key):
        plan, key = plan_and_key
        writer = PlanCache(capacity=8, disk_dir=str(tmp_path))
        writer.put(key, plan)
        (tmp_path / (key + ".json")).write_text("{definitely not json")
        reader = PlanCache(capacity=8, disk_dir=str(tmp_path))
        assert reader.lookup(key, tveg_factory=make_tveg) is None
        assert reader.stats()["disk_errors"] >= 1

    def test_truncated_entry_is_a_miss(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        writer = PlanCache(capacity=8, disk_dir=str(tmp_path))
        writer.put(key, plan)
        path = tmp_path / (key + ".json")
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        reader = PlanCache(capacity=8, disk_dir=str(tmp_path))
        assert reader.lookup(key, tveg_factory=make_tveg) is None

    def test_eviction_keeps_the_disk_entry(self, tmp_path, tveg, plan_and_key):
        plan, key = plan_and_key
        cache = PlanCache(capacity=1, disk_dir=str(tmp_path))
        cache.put(key, plan)
        other = plan_broadcast(tveg, None, 700.0, algorithm="eedcb", seed=SEED)
        cache.put(
            plan_cache_key(tveg, None, 700.0, algorithm="eedcb", seed=SEED),
            other,
        )
        assert len(cache) == 1  # memory tier evicted the first plan...
        assert key in cache.disk_keys()  # ...but the disk tier kept it
        assert cache.lookup(key, tveg_factory=make_tveg) is not None

    def test_racing_subprocess_writers_converge(self, tmp_path, plan_and_key):
        plan, key = plan_and_key
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_subprocess_writer, args=(str(tmp_path),))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert os.listdir(tmp_path) == [key + ".json"]
        reader = PlanCache(capacity=8, disk_dir=str(tmp_path))
        replayed = reader.lookup(key, tveg_factory=make_tveg)
        assert replayed is not None
        # whatever writer won the rename race, the bytes agree with the
        # parent's own computation — cross-process determinism
        assert canonical(replayed) == canonical(plan)

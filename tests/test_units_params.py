"""Unit conversions and the Section VII parameter set."""

import math

import pytest

from repro.core.units import db_to_linear, dbm_to_watts, linear_to_db, watts_to_dbm
from repro.errors import ChannelModelError
from repro.params import PAPER_PARAMS, PhyParams


class TestUnits:
    def test_db_round_trip(self):
        for db in (-30.0, 0.0, 3.0, 25.9):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_known_values(self):
        assert db_to_linear(0.0) == 1.0
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(1.9953, rel=1e-3)

    def test_dbm_round_trip(self):
        assert watts_to_dbm(dbm_to_watts(17.0)) == pytest.approx(17.0)
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            watts_to_dbm(-1.0)


class TestPhyParams:
    def test_paper_defaults(self):
        p = PAPER_PARAMS
        assert p.noise_density == 4.32e-21
        assert p.gamma_th_db == 25.9
        assert p.data_rate == 1e6
        assert p.path_loss_exponent == 2.0
        assert p.epsilon == 0.01

    def test_derived_quantities(self):
        p = PAPER_PARAMS
        assert p.gamma_th == pytest.approx(10 ** 2.59)
        assert p.noise_power == pytest.approx(4.32e-15)
        assert p.decode_energy == pytest.approx(p.noise_power * p.gamma_th)

    def test_static_min_cost_matches_eq2(self):
        p = PAPER_PARAMS
        d = 5.0
        gain = d ** -2.0
        # Eq. (2): w = N0·B·γ_th / h
        assert p.static_min_cost(gain) == pytest.approx(
            p.noise_power * p.gamma_th * d**2
        )

    def test_rayleigh_w0_matches_section_6b(self):
        p = PAPER_PARAMS
        d = 5.0
        w0 = p.rayleigh_single_hop_cost(d)
        # φ(w0) = 1 − exp(−β/w0) must equal ε
        beta = p.rayleigh_beta(d)
        assert 1.0 - math.exp(-beta / w0) == pytest.approx(p.epsilon)

    def test_normalize_energy(self):
        p = PAPER_PARAMS
        assert p.normalize_energy(p.decode_energy) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ChannelModelError):
            PhyParams(epsilon=0.0)
        with pytest.raises(ChannelModelError):
            PhyParams(epsilon=1.0)
        with pytest.raises(ChannelModelError):
            PhyParams(noise_density=-1.0)
        with pytest.raises(ChannelModelError):
            PhyParams(w_min=2.0, w_max=1.0)
        with pytest.raises(ChannelModelError):
            PhyParams(path_loss_exponent=0.0)

    def test_with_(self):
        p = PAPER_PARAMS.with_(epsilon=0.05)
        assert p.epsilon == 0.05
        assert p.noise_density == PAPER_PARAMS.noise_density

    def test_gain_from_distance_rejects_nonpositive(self):
        with pytest.raises(ChannelModelError):
            PAPER_PARAMS.gain_from_distance(0.0)

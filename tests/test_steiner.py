"""Directed Steiner solvers: correctness on known graphs, pruning, facade."""

import math

import networkx as nx
import pytest

from repro.errors import InfeasibleError, SolverError
from repro.steiner import (
    charikar_dst,
    greedy_incremental_dst,
    prune_tree,
    shortest_path_tree,
    solve_memt,
    tree_cost,
)


def _covers(edges, root, terminals):
    adj = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
    seen, stack = {root}, [root]
    while stack:
        u = stack.pop()
        for v in adj.get(u, ()):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return all(t in seen for t in terminals)


@pytest.fixture
def diamond():
    """root→a (1), root→b (1), a→t1 (1), b→t2 (1), root→hub (1.5),
    hub→t1 (0), hub→t2 (0): hub is the shared-transmission shape."""
    g = nx.DiGraph()
    g.add_edge("r", "a", weight=1.0)
    g.add_edge("r", "b", weight=1.0)
    g.add_edge("a", "t1", weight=1.0)
    g.add_edge("b", "t2", weight=1.0)
    g.add_edge("r", "hub", weight=1.5)
    g.add_edge("hub", "t1", weight=0.0)
    g.add_edge("hub", "t2", weight=0.0)
    return g


class TestGreedyIncremental:
    def test_prefers_shared_hub(self, diamond):
        edges = greedy_incremental_dst(diamond, "r", ["t1", "t2"])
        assert _covers(edges, "r", ["t1", "t2"])
        # hub route costs 1.5 total; separate paths cost 4.
        assert tree_cost(diamond, edges) <= 2.0

    def test_single_terminal_is_shortest_path(self):
        g = nx.DiGraph()
        g.add_edge("r", "m", weight=1.0)
        g.add_edge("m", "t", weight=1.0)
        g.add_edge("r", "t", weight=5.0)
        edges = greedy_incremental_dst(g, "r", ["t"])
        assert tree_cost(g, edges) == 2.0

    def test_unreachable_raises(self):
        g = nx.DiGraph()
        g.add_node("island")
        g.add_edge("r", "a", weight=1.0)
        with pytest.raises(InfeasibleError):
            greedy_incremental_dst(g, "r", ["island"])

    def test_root_terminal_ignored(self, diamond):
        edges = greedy_incremental_dst(diamond, "r", ["r", "t1"])
        assert _covers(edges, "r", ["t1"])

    def test_zero_cost_chain_absorbed_free(self):
        # Once the paid edge into the chain is grafted, the second terminal
        # must ride the 0-weight chain instead of paying its direct edge.
        g = nx.DiGraph()
        g.add_edge("r", "x", weight=3.0)
        g.add_edge("x", "t1", weight=0.0)
        g.add_edge("t1", "t2", weight=0.0)
        g.add_edge("r", "t2", weight=3.1)
        edges = greedy_incremental_dst(g, "r", ["t1", "t2"])
        assert _covers(edges, "r", ["t1", "t2"])
        assert tree_cost(g, edges) == pytest.approx(3.0)


class TestShortestPathTree:
    def test_union_of_paths(self, diamond):
        edges = shortest_path_tree(diamond, "r", ["t1", "t2"])
        assert _covers(edges, "r", ["t1", "t2"])
        # SPT picks hub paths here: d(t1) = d(t2) = 1.5 via hub vs 2.0
        assert tree_cost(diamond, edges) == pytest.approx(1.5)

    def test_missing_terminal(self):
        g = nx.DiGraph()
        g.add_edge("r", "a", weight=1.0)
        g.add_node("island")
        with pytest.raises(InfeasibleError):
            shortest_path_tree(g, "r", ["island"])


class TestCharikar:
    def test_level1_equals_sptree_cost(self, diamond):
        c = charikar_dst(diamond, "r", ["t1", "t2"], level=1)
        s = shortest_path_tree(diamond, "r", ["t1", "t2"])
        assert tree_cost(diamond, c) == pytest.approx(tree_cost(diamond, s))

    def test_level2_finds_hub(self, diamond):
        edges = charikar_dst(diamond, "r", ["t1", "t2"], level=2)
        assert _covers(edges, "r", ["t1", "t2"])
        assert tree_cost(diamond, edges) == pytest.approx(1.5)

    def test_level2_beats_level1_on_dense_star(self):
        # One expensive hub covering k terminals vs direct medium edges.
        g = nx.DiGraph()
        k = 5
        g.add_edge("r", "hub", weight=3.0)
        for i in range(k):
            g.add_edge("hub", f"t{i}", weight=0.0)
            g.add_edge("r", f"t{i}", weight=1.0)
        terms = [f"t{i}" for i in range(k)]
        l2 = charikar_dst(g, "r", terms, level=2)
        assert tree_cost(g, l2) <= 3.0 + 1e-9

    def test_invalid_level(self, diamond):
        with pytest.raises(SolverError):
            charikar_dst(diamond, "r", ["t1"], level=0)

    def test_infeasible(self):
        g = nx.DiGraph()
        g.add_node("island")
        g.add_edge("r", "a", weight=1.0)
        with pytest.raises(InfeasibleError):
            charikar_dst(g, "r", ["island"], level=2)


class TestPrune:
    def test_removes_stubs(self):
        edges = {("r", "a"), ("a", "t"), ("a", "dead"), ("dead", "end")}
        pruned = prune_tree(edges, "r", ["t"])
        assert pruned == {("r", "a"), ("a", "t")}

    def test_keeps_everything_needed(self, diamond):
        edges = greedy_incremental_dst(diamond, "r", ["t1", "t2"])
        pruned = prune_tree(edges, "r", ["t1", "t2"])
        assert _covers(pruned, "r", ["t1", "t2"])
        assert pruned <= edges


class TestFacade:
    @pytest.mark.parametrize("method", ["greedy", "sptree", "charikar"])
    def test_all_methods_cover(self, diamond, method):
        edges = solve_memt(diamond, "r", ["t1", "t2"], method=method)
        assert _covers(edges, "r", ["t1", "t2"])

    def test_unknown_method(self, diamond):
        with pytest.raises(SolverError):
            solve_memt(diamond, "r", ["t1"], method="magic")

"""Theorem 4.1's Set Cover ↔ TMEDB correspondence, verified end to end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import make_scheduler
from repro.errors import GraphModelError, InfeasibleError
from repro.reduction import (
    SetCoverInstance,
    exact_set_cover,
    greedy_set_cover,
    schedule_to_cover,
    tmedb_from_set_cover,
)
from repro.reduction.setcover import DELTA_COST, UNIT_COST
from repro.schedule import check_feasibility


@pytest.fixture
def classic():
    """U = {1..5}; S0={1,2,3}, S1={2,4}, S2={3,4}, S3={4,5}; OPT = 2."""
    return SetCoverInstance.of(
        {1, 2, 3, 4, 5}, [{1, 2, 3}, {2, 4}, {3, 4}, {4, 5}]
    )


class TestSetCoverSolvers:
    def test_exact(self, classic):
        cover = exact_set_cover(classic)
        assert cover is not None
        assert classic.is_cover(cover)
        assert len(cover) == 2  # {S0, S3}

    def test_greedy_valid(self, classic):
        cover = greedy_set_cover(classic)
        assert cover is not None
        assert classic.is_cover(cover)
        assert len(cover) >= 2

    def test_uncoverable(self):
        inst = SetCoverInstance.of({1, 2, 3}, [{1}, {2}])
        assert exact_set_cover(inst) is None
        assert greedy_set_cover(inst) is None

    def test_validation(self):
        with pytest.raises(GraphModelError):
            SetCoverInstance.of(set(), [])
        with pytest.raises(GraphModelError):
            SetCoverInstance.of({1}, [{1, 2}])


class TestReduction:
    def test_instance_shape(self, classic):
        tveg, source, deadline = tmedb_from_set_cover(classic)
        # 1 source + 4 set nodes + 5 element nodes
        assert tveg.num_nodes == 10
        assert deadline == 2.0
        # phase structure: source adjacent to sets early, not late
        assert tveg.adjacent(source, ("set", 0), 0.5)
        assert not tveg.adjacent(source, ("set", 0), 1.5)
        assert tveg.adjacent(("set", 0), ("elem", 1), 1.5)

    def test_edge_costs_match_construction(self, classic):
        tveg, source, _ = tmedb_from_set_cover(classic)
        assert tveg.min_cost(source, ("set", 0), 0.5) == pytest.approx(
            DELTA_COST, rel=1e-9
        )
        assert tveg.min_cost(("set", 0), ("elem", 1), 1.5) == pytest.approx(
            UNIT_COST, rel=1e-9
        )

    def test_optimal_energy_equals_cover_size(self, classic):
        tveg, source, deadline = tmedb_from_set_cover(classic)
        opt = make_scheduler("oracle", max_nodes=12).run(tveg, source, deadline)
        opt_cover = len(exact_set_cover(classic))
        expected = DELTA_COST + UNIT_COST * opt_cover
        assert opt.schedule.total_cost == pytest.approx(expected, rel=1e-6)

    def test_schedule_decodes_to_cover(self, classic):
        tveg, source, deadline = tmedb_from_set_cover(classic)
        sched = make_scheduler("eedcb").schedule(tveg, source, deadline)
        assert check_feasibility(tveg, sched, source, deadline).feasible
        cover = schedule_to_cover(classic, sched)
        assert classic.is_cover(cover)

    def test_eedcb_cost_bounds_cover_quality(self, classic):
        # the approximation-preserving direction: EEDCB's energy gives a
        # cover of size ≈ (energy − δ) / unit
        tveg, source, deadline = tmedb_from_set_cover(classic)
        sched = make_scheduler("eedcb").schedule(tveg, source, deadline)
        cover = schedule_to_cover(classic, sched)
        implied = round((sched.total_cost - DELTA_COST) / UNIT_COST)
        assert implied == len(cover)

    def test_uncoverable_is_infeasible(self):
        inst = SetCoverInstance.of({1, 2, 3}, [{1}, {2}])
        tveg, source, deadline = tmedb_from_set_cover(inst)
        with pytest.raises(InfeasibleError):
            make_scheduler("eedcb").run(tveg, source, deadline)


# ----------------------------------------------------------------------
# hypothesis: the equivalence on random small instances
# ----------------------------------------------------------------------
@st.composite
def cover_instances(draw):
    m = draw(st.integers(2, 5))          # universe size
    n = draw(st.integers(1, 4))          # number of sets
    universe = frozenset(range(m))
    sets = []
    for _ in range(n):
        s = draw(
            st.frozensets(st.integers(0, m - 1), min_size=1, max_size=m)
        )
        sets.append(s)
    return SetCoverInstance(universe, tuple(sets))


@given(cover_instances())
@settings(max_examples=25, deadline=None)
def test_equivalence_on_random_instances(instance):
    tveg, source, deadline = tmedb_from_set_cover(instance)
    cover = exact_set_cover(instance)
    if cover is None:
        with pytest.raises(InfeasibleError):
            make_scheduler("oracle", max_nodes=12).run(tveg, source, deadline)
        return
    opt = make_scheduler("oracle", max_nodes=12).run(tveg, source, deadline)
    expected = DELTA_COST + UNIT_COST * len(cover)
    assert opt.schedule.total_cost == pytest.approx(expected, rel=1e-6)
    decoded = schedule_to_cover(instance, opt.schedule)
    assert instance.is_cover(decoded)
    assert len(decoded) == len(cover)
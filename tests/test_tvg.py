"""Deterministic TVGs: presence, ρ_τ, neighbors, snapshots, events."""

import math

import pytest

from repro.core.intervals import IntervalSet
from repro.errors import GraphModelError
from repro.temporal.tvg import TVG, edge_key


class TestEdgeKey:
    def test_normalizes_order(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key("a", "b") == ("a", "b")

    def test_rejects_self_loop(self):
        with pytest.raises(GraphModelError):
            edge_key(1, 1)


class TestTVGConstruction:
    def test_validation(self):
        with pytest.raises(GraphModelError):
            TVG([], 10.0)
        with pytest.raises(GraphModelError):
            TVG([1, 2], -5.0)
        with pytest.raises(GraphModelError):
            TVG([1, 2], 10.0, tau=-1.0)

    def test_unknown_node_rejected(self):
        tvg = TVG([1, 2], 10.0)
        with pytest.raises(GraphModelError):
            tvg.add_contact(1, 3, 0, 1)

    def test_contacts_clamped_to_horizon(self):
        tvg = TVG([1, 2], 10.0)
        tvg.add_contact(1, 2, 5.0, 50.0)
        assert tvg.presence(1, 2).pairs == ((5.0, 10.0),)

    def test_overlapping_contacts_merge(self):
        tvg = TVG([1, 2], 10.0)
        tvg.add_contact(1, 2, 0.0, 3.0)
        tvg.add_contact(1, 2, 2.0, 5.0)
        assert tvg.presence(1, 2).pairs == ((0.0, 5.0),)


class TestPresenceQueries:
    @pytest.fixture
    def tvg(self):
        g = TVG([0, 1, 2], 100.0, tau=2.0)
        g.add_contact(0, 1, 10.0, 20.0)
        g.add_contact(1, 2, 15.0, 30.0)
        return g

    def test_rho(self, tvg):
        assert tvg.rho(0, 1, 10.0)
        assert tvg.rho(1, 0, 15.0)  # undirected
        assert not tvg.rho(0, 1, 20.0)
        assert not tvg.rho(0, 2, 12.0)

    def test_rho_tau_window(self, tvg):
        # transmission at t needs presence over the CLOSED window [t, t+τ]
        assert tvg.rho_tau(0, 1, 17.0)
        assert not tvg.rho_tau(0, 1, 18.0)  # t+τ = 20 ∉ [10, 20)
        assert not tvg.rho_tau(0, 1, 18.5)
        assert not tvg.rho_tau(0, 1, 19.9)

    def test_adjacency_set_is_eroded_presence(self, tvg):
        adj = tvg.adjacency_set(0, 1)
        assert adj.pairs == ((10.0, 18.0),)

    def test_neighbors_and_degree(self, tvg):
        assert set(tvg.neighbors(1, 16.0)) == {0, 2}
        assert tvg.degree(1, 16.0) == 2
        assert tvg.neighbors(1, 25.0) == (2,)
        assert tvg.neighbors(0, 50.0) == ()

    def test_incident(self, tvg):
        assert set(tvg.incident(1)) == {0, 2}
        assert tvg.incident(0) == (1,)

    def test_snapshot(self, tvg):
        g = tvg.snapshot(16.0)
        assert set(g.edges) == {(0, 1), (1, 2)}
        g2 = tvg.snapshot(50.0)
        assert len(g2.edges) == 0
        assert len(g2.nodes) == 3

    def test_event_times(self, tvg):
        events = tvg.event_times()
        assert 10.0 in events and 20.0 in events and 15.0 in events and 30.0 in events
        assert events[0] == 0.0 and events[-1] == 100.0


class TestBulkAccessors:
    def test_contacts_iteration(self):
        tvg = TVG([0, 1], 10.0)
        tvg.add_contact(0, 1, 1.0, 2.0)
        tvg.add_contact(0, 1, 4.0, 5.0)
        assert list(tvg.contacts()) == [(0, 1, 1.0, 2.0), (0, 1, 4.0, 5.0)]

    def test_total_contact_time(self):
        tvg = TVG([0, 1, 2], 10.0)
        tvg.add_contact(0, 1, 0.0, 2.0)
        tvg.add_contact(1, 2, 0.0, 3.0)
        assert tvg.total_contact_time() == 5.0

    def test_num_edges_excludes_empty(self):
        tvg = TVG([0, 1, 2], 10.0)
        tvg.set_presence(0, 1, IntervalSet())
        assert tvg.num_edges() == 0

    def test_subgraph(self):
        tvg = TVG([0, 1, 2], 10.0)
        tvg.add_contact(0, 1, 0.0, 1.0)
        tvg.add_contact(1, 2, 0.0, 1.0)
        sub = tvg.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.presence(0, 1).pairs == ((0.0, 1.0),)
        with pytest.raises(GraphModelError):
            tvg.subgraph([0, 99])

    def test_subgraph_neighbors_work(self):
        # regression: the incident index must be rebuilt in subgraphs
        tvg = TVG([0, 1, 2], 10.0)
        tvg.add_contact(0, 1, 0.0, 5.0)
        sub = tvg.subgraph([0, 1])
        assert sub.neighbors(0, 1.0) == (1,)

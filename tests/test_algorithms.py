"""Schedulers: EEDCB, baselines, registry, oracle cross-checks."""

import math

import pytest

from repro.algorithms import SCHEDULERS, make_scheduler
from repro.algorithms.eventsim import event_times
from repro.errors import InfeasibleError, SolverError
from repro.schedule import check_feasibility
from repro.tveg import tveg_from_trace

from .conftest import make_random_instance


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        for name in ("eedcb", "fr-eedcb", "greed", "fr-greed", "rand", "fr-rand"):
            assert name in SCHEDULERS

    def test_unknown_name(self):
        with pytest.raises(SolverError):
            make_scheduler("nope")

    def test_case_insensitive(self):
        assert make_scheduler("EEDCB").name == "eedcb"


class TestEEDCB:
    def test_feasible_on_det_trace(self, det_static):
        res = make_scheduler("eedcb").run(det_static, 0, 100.0)
        assert check_feasibility(det_static, res.schedule, 0, 100.0).feasible

    def test_every_source(self, det_static):
        for src in det_static.nodes:
            res = make_scheduler("eedcb").run(det_static, src, 100.0)
            assert check_feasibility(det_static, res.schedule, src, 100.0).feasible

    def test_infeasible_deadline_raises(self, det_static):
        with pytest.raises(InfeasibleError):
            # by t=15 node 2 is unreachable (its first contact starts at 20)
            make_scheduler("eedcb").run(det_static, 0, 15.0)

    def test_nonzero_start_rejected(self, det_static):
        with pytest.raises(InfeasibleError):
            make_scheduler("eedcb").run(det_static, 0, 100.0, start_time=5.0)

    def test_tighter_deadline_never_cheaper(self, det_static):
        loose = make_scheduler("eedcb").run(det_static, 0, 100.0).schedule
        tight = make_scheduler("eedcb").run(det_static, 0, 60.0).schedule
        assert check_feasibility(det_static, tight, 0, 60.0).feasible
        # heuristic, so allow equality but the tight run must not be cheaper
        # by more than solver noise
        assert loose.total_cost <= tight.total_cost * 1.0 + 1e-18

    def test_matches_oracle_on_small_instances(self):
        matched = 0
        for seed in range(6):
            trace, tveg = make_random_instance(num_nodes=5, horizon=200.0, seed=seed)
            try:
                opt = make_scheduler("oracle").run(tveg, 0, 200.0)
            except InfeasibleError:
                continue
            res = make_scheduler("eedcb").run(tveg, 0, 200.0)
            assert check_feasibility(tveg, res.schedule, 0, 200.0).feasible
            # approximation: never better than optimal, never absurdly worse
            assert res.schedule.total_cost >= opt.schedule.total_cost - 1e-18
            assert res.schedule.total_cost <= 4.0 * opt.schedule.total_cost
            matched += 1
        assert matched >= 3  # enough instances actually exercised

    def test_solver_method_selectable(self, det_static):
        for method in ("greedy", "sptree", "charikar"):
            res = make_scheduler("eedcb", memt_method=method).run(det_static, 0, 100.0)
            assert check_feasibility(det_static, res.schedule, 0, 100.0).feasible


class TestBaselines:
    def test_greed_feasible(self, det_static):
        res = make_scheduler("greed").run(det_static, 0, 100.0)
        assert check_feasibility(det_static, res.schedule, 0, 100.0).feasible
        assert res.info["informed"] == 4

    def test_rand_feasible_and_seeded(self, det_static):
        a = make_scheduler("rand", seed=42).run(det_static, 0, 100.0).schedule
        b = make_scheduler("rand", seed=42).run(det_static, 0, 100.0).schedule
        assert a == b
        assert check_feasibility(det_static, a, 0, 100.0).feasible

    def test_eedcb_never_worse_than_baselines(self):
        wins = 0
        total = 0
        for seed in range(5):
            _, tveg = make_random_instance(num_nodes=8, horizon=300.0, seed=seed + 10)
            try:
                e = make_scheduler("eedcb").run(tveg, 0, 300.0).schedule
            except InfeasibleError:
                continue
            g = make_scheduler("greed").run(tveg, 0, 300.0).schedule
            r = make_scheduler("rand", seed=seed).run(tveg, 0, 300.0).schedule
            total += 1
            if e.total_cost <= g.total_cost + 1e-18 and e.total_cost <= r.total_cost + 1e-18:
                wins += 1
        assert total >= 3
        assert wins == total  # EEDCB must dominate on every solvable instance

    def test_greedy_min_policy(self, det_static):
        res = make_scheduler("greed", power_policy="min").run(det_static, 0, 100.0)
        # min policy still eventually informs everyone on this trace
        assert res.info["informed"] == 4

    def test_unknown_policy(self, det_static):
        with pytest.raises(SolverError):
            make_scheduler("greed", power_policy="max").run(det_static, 0, 100.0)

    def test_partial_coverage_reported(self, det_static):
        res = make_scheduler("greed").run(det_static, 0, 15.0)
        assert res.info["informed"] < 4  # node 2 unreachable by 15

    def test_event_times_restricted_to_window(self, det_static):
        ts = event_times(det_static, 0.0, 50.0)
        assert all(0.0 <= t <= 50.0 for t in ts)
        assert 0.0 in ts and 20.0 in ts


class TestFadingSchedulers:
    def test_fr_eedcb_feasible(self, det_fading):
        res = make_scheduler("fr-eedcb").run(det_fading, 0, 100.0)
        rep = check_feasibility(det_fading, res.schedule, 0, 100.0)
        assert rep.feasible
        assert res.info["allocated_cost"] <= res.info["backbone_cost"] * 1.001

    def test_fr_on_static_rejected(self, det_static):
        for name in ("fr-eedcb", "fr-greed", "fr-rand"):
            with pytest.raises(SolverError):
                make_scheduler(name).run(det_static, 0, 100.0)

    def test_fr_greed_and_rand_feasible(self, det_fading):
        for name in ("fr-greed", "fr-rand"):
            kwargs = {"seed": 1} if name == "fr-rand" else {}
            res = make_scheduler(name, **kwargs).run(det_fading, 0, 100.0)
            rep = check_feasibility(det_fading, res.schedule, 0, 100.0)
            assert rep.feasible, (name, rep.violations)

    def test_fr_costs_exceed_static(self, paired_tvegs):
        static, fading = paired_tvegs
        e = make_scheduler("eedcb").run(static, 0, 100.0).schedule
        f = make_scheduler("fr-eedcb").run(fading, 0, 100.0).schedule
        # guaranteeing ε under fading costs much more than the static minimum
        assert f.total_cost > e.total_cost

    def test_fr_partial_coverage_keeps_backbone_costs(self, det_fading):
        res = make_scheduler("fr-greed").run(det_fading, 0, 15.0)
        assert res.info["allocation_method"] == "backbone (partial coverage)"


class TestOracle:
    def test_optimal_on_det_trace(self, det_static):
        res = make_scheduler("oracle").run(det_static, 0, 100.0)
        rep = check_feasibility(det_static, res.schedule, 0, 100.0)
        assert rep.feasible
        assert res.schedule.total_cost == pytest.approx(res.info["optimal_cost"])

    def test_size_guard(self):
        _, tveg = make_random_instance(num_nodes=12, horizon=100.0, seed=0)
        with pytest.raises(SolverError):
            make_scheduler("oracle").run(tveg, 0, 100.0)

    def test_infeasible(self, det_static):
        with pytest.raises(InfeasibleError):
            make_scheduler("oracle").run(det_static, 0, 15.0)

    def test_oracle_beats_or_ties_every_heuristic(self, det_static):
        opt = make_scheduler("oracle").run(det_static, 0, 100.0).schedule
        for name in ("eedcb", "greed"):
            h = make_scheduler(name).run(det_static, 0, 100.0).schedule
            assert opt.total_cost <= h.total_cost + 1e-18

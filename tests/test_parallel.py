"""Deterministic parallelism: seeds, chunking, and bit-identical trials."""

import numpy as np
import pytest

from repro.core.rng import as_generator, spawn
from repro.parallel import (
    chunk_indices,
    derive_seeds,
    parallel_map,
    resolve_workers,
)
from repro.sim import run_trials


def test_derive_seeds_matches_spawn():
    """The parallel seed stream is exactly what spawn() consumes."""
    for seed in (0, 7, 2015):
        seeds = derive_seeds(seed, 16)
        children = spawn(as_generator(seed), 16)
        for s, child in zip(seeds, children):
            expect = np.random.default_rng(s)
            assert child.integers(0, 2**31, size=5).tolist() == \
                expect.integers(0, 2**31, size=5).tolist()


def test_derive_seeds_deterministic():
    assert derive_seeds(42, 8) == derive_seeds(42, 8)
    assert derive_seeds(42, 8)[:4] == derive_seeds(42, 4)


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(5) == 5
    assert resolve_workers(-1) >= 1
    with pytest.raises(ValueError):
        resolve_workers(-2)


def test_chunk_indices_partition():
    for n, c in ((10, 3), (3, 10), (0, 4), (7, 1), (8, 8)):
        ranges = chunk_indices(n, c)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(n))
        if n:
            sizes = [len(r) for r in ranges]
            assert max(sizes) - min(sizes) <= 1


def _square(x):
    return x * x


def test_parallel_map_serial_and_parallel_agree():
    items = list(range(23))
    expect = [x * x for x in items]
    assert parallel_map(_square, items, workers=1) == expect
    assert parallel_map(_square, items, workers=2) == expect
    assert parallel_map(_square, [], workers=4) == []


def test_workers_reproduce_serial_bit_for_bit(det_fading):
    """The acceptance property: --workers N == serial, exactly."""
    from repro.algorithms import make_scheduler

    source, deadline = 0, det_fading.horizon
    schedule = make_scheduler("eedcb").schedule(det_fading, source, deadline)
    serial = run_trials(
        det_fading, schedule, source, num_trials=40, seed=11,
    )
    for w in (2, 3):
        parallel = run_trials(
            det_fading, schedule, source, num_trials=40, seed=11, workers=w,
        )
        assert parallel == serial


def test_ledger_recording_forces_serial(det_fading, monkeypatch):
    """With the ledger on, trials run in-process so no events are lost."""
    from repro import obs
    from repro.algorithms import make_scheduler

    source, deadline = 0, det_fading.horizon
    schedule = make_scheduler("eedcb").schedule(det_fading, source, deadline)

    calls = []
    import repro.sim.runner as runner_mod

    real = runner_mod.parallel_map

    def spy(fn, items, workers=None):
        calls.append(workers)
        return real(fn, items, workers=workers)

    monkeypatch.setattr(runner_mod, "parallel_map", spy)
    obs.enable_ledger()
    try:
        with_ledger = run_trials(
            det_fading, schedule, source, num_trials=10, seed=3, workers=4,
        )
        events = len(obs.ledger_events())
    finally:
        obs.disable_ledger()
    assert calls == []  # fell back to the serial loop
    assert events > 0  # ...and the per-trial events were recorded
    assert with_ledger == run_trials(
        det_fading, schedule, source, num_trials=10, seed=3,
    )

"""TVG constructors: from contacts, snapshots, and annotated networkx."""

import networkx as nx
import pytest

from repro.core.intervals import IntervalSet
from repro.errors import GraphModelError
from repro.temporal import from_contacts, from_networkx, from_snapshots


class TestFromContacts:
    def test_basic(self):
        tvg = from_contacts([(0, 1, 0.0, 5.0), (1, 2, 3.0, 8.0)])
        assert tvg.num_nodes == 3
        assert tvg.horizon == 8.0
        assert tvg.rho(0, 1, 2.0)

    def test_explicit_nodes_and_horizon(self):
        tvg = from_contacts([(0, 1, 0.0, 5.0)], horizon=100.0, nodes=[0, 1, 2, 3])
        assert tvg.num_nodes == 4
        assert tvg.horizon == 100.0

    def test_empty_needs_horizon(self):
        with pytest.raises(GraphModelError):
            from_contacts([])
        tvg = from_contacts([], horizon=10.0, nodes=[0, 1])
        assert tvg.num_edges() == 0


class TestFromSnapshots:
    def test_consecutive_snapshots_merge(self):
        g1 = nx.Graph([(0, 1)])
        g2 = nx.Graph([(0, 1), (1, 2)])
        g3 = nx.Graph([(1, 2)])
        tvg = from_snapshots([g1, g2, g3], slot_duration=10.0)
        assert tvg.horizon == 30.0
        assert tvg.presence(0, 1).pairs == ((0.0, 20.0),)
        assert tvg.presence(1, 2).pairs == ((10.0, 30.0),)

    def test_validation(self):
        with pytest.raises(GraphModelError):
            from_snapshots([], 10.0)
        with pytest.raises(GraphModelError):
            from_snapshots([nx.Graph([(0, 1)])], 0.0)


class TestFromNetworkx:
    def test_interval_attributes(self):
        g = nx.Graph()
        g.add_edge(0, 1, presence=[(0.0, 5.0), (8.0, 9.0)])
        g.add_edge(1, 2, presence=IntervalSet([(2.0, 4.0)]))
        tvg = from_networkx(g, horizon=10.0)
        assert tvg.rho(0, 1, 8.5)
        assert tvg.rho(1, 2, 3.0)
        assert not tvg.rho(0, 1, 6.0)

    def test_missing_attribute(self):
        g = nx.Graph([(0, 1)])
        with pytest.raises(GraphModelError):
            from_networkx(g, horizon=10.0)

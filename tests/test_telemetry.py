"""Request-scoped telemetry: trace ids, histograms, exposition, top.

Four layers under test, bottom up:

* the merge algebra of :class:`FixedHistogram` / :class:`MetricsRegistry`
  — hypothesis pins that shard-wise merging is exactly associative and
  commutative and that a shard-split doc merge equals the histogram one
  process would have recorded (Shewchuk partials make the sum exact, and
  the workload strategy sticks to dyadic rationals so the doc wire
  format is exact too);
* request-context propagation — contextvars across threads, nesting,
  and the ledger's ambient ``request_id``/``shard_id`` tagging;
* the Prometheus text exposition and its strict parser round-tripping
  real service documents, plus HTTP content negotiation on a live
  front-end (the JSON default must keep working unchanged);
* the ``repro top`` renderer over fabricated and live documents, and —
  the load-bearing one — a real two-shard pool whose worker-side ledger
  events arrive in the parent tagged with ``shard_id`` and the
  originating ``request_id`` after drain.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    FixedHistogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    Ledger,
    current_request_id,
    new_request_id,
    parse_prometheus_text,
    render_prometheus,
    request_context,
    wants_prometheus,
)
from repro.obs.events import EV_BATCH_FLUSHED, EV_SHARD_EXITED, EV_SHARD_STARTED
from repro.obs.tracer import Tracer
from repro.service import Batcher, PlanningService, ShardPool
from repro.service.asgi import BackgroundServer, LocalBackend
from repro.service.top import build_rows, render_top, top_loop
from repro.traces import HaggleLikeConfig, haggle_like_trace

BODY = {"deadline": 600.0, "window": 2000.0, "seed": 3}

#: dyadic rationals (multiples of 2^-10, bounded) — their sums are exact
#: in double precision, so even the collapsed-sum doc wire format merges
#: without rounding and equality assertions can be strict.
latencies = st.lists(
    st.integers(min_value=0, max_value=32768).map(lambda n: n / 1024.0),
    max_size=60,
)


@pytest.fixture(autouse=True)
def _clean_global_ledger():
    obs.disable_ledger()
    yield
    obs.disable_ledger()


def _hist(values):
    h = FixedHistogram()
    for v in values:
        h.observe(v)
    return h


class TestFixedHistogram:
    def test_basics_and_le_semantics(self):
        h = FixedHistogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        # le is inclusive: 1.0 lands in the first bucket, 2.0 in the second
        assert h.counts() == (2, 2, 1)
        assert h.count == 5
        assert h.sum == pytest.approx(104.0)
        assert h.min == 0.5 and h.max == 99.0
        assert h.cumulative() == [(1.0, 2), (2.0, 4), (float("inf"), 5)]

    def test_quantile_clamps_to_observed_range(self):
        h = _hist([0.004])
        assert h.quantile(0.5) == 0.004  # not the 0.005 bucket edge
        assert h.quantile(0.0) == 0.004
        assert h.quantile(1.0) == 0.004
        assert FixedHistogram().quantile(0.5) is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_orders_sensibly(self):
        h = _hist([0.001 * i for i in range(1, 101)])
        q50, q95, q99 = (h.quantile(q) for q in (0.5, 0.95, 0.99))
        assert q50 <= q95 <= q99
        assert 0.02 <= q50 <= 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedHistogram(bounds=())
        with pytest.raises(ValueError):
            FixedHistogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            FixedHistogram(bounds=(2.0, 1.0))

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            FixedHistogram(bounds=(1.0,)).merge(FixedHistogram(bounds=(2.0,)))

    def test_doc_round_trip(self):
        h = _hist([0.0003, 0.2, 7.5])
        back = FixedHistogram.from_dict(json.loads(json.dumps(h.as_dict())))
        assert back == h
        empty = FixedHistogram.from_dict(FixedHistogram().as_dict())
        assert empty.count == 0 and empty.min is None

    @given(a=latencies, b=latencies)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes(self, a, b):
        ha, hb = _hist(a), _hist(b)
        assert ha.merge(hb) == hb.merge(ha)

    @given(a=latencies, b=latencies, c=latencies)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        ha, hb, hc = _hist(a), _hist(b), _hist(c)
        assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))

    @given(values=latencies, split=st.integers(min_value=0, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_shard_split_equals_single_process(self, values, split):
        """Two shards' docs merged == the one-process histogram."""
        k = min(split, len(values))
        single = _hist(values)
        merged = MetricsRegistry.merge_docs(
            [
                {"histograms": {"request.plan": _hist(values[:k]).as_dict()}},
                {"histograms": {"request.plan": _hist(values[k:]).as_dict()}},
            ]
        )
        assert FixedHistogram.from_dict(
            merged["histograms"]["request.plan"]
        ) == single


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("service.requests")
        reg.inc("service.requests", 2.0)
        reg.set_gauge("inflight", 3.0)
        reg.observe("stage.compute", 0.02)
        assert reg.counter("service.requests") == 3.0
        assert reg.gauge("inflight") == 3.0
        assert reg.histogram("stage.compute").count == 1
        with pytest.raises(ValueError):
            reg.inc("service.requests", -1.0)

    def test_merge_docs_adds_counters_and_sums_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("requests", 2.0)
        b.inc("requests", 3.0)
        a.set_gauge("inflight", 1.0)
        b.set_gauge("inflight", 4.0)
        a.observe("stage.compute", 0.5)
        b.observe("stage.compute", 1.5)
        doc = MetricsRegistry.merge_docs([a.as_doc(), b.as_doc(), {}])
        assert doc["counters"]["requests"] == 5.0
        assert doc["gauges"]["inflight"] == 5.0
        assert doc["histograms"]["stage.compute"]["count"] == 2

    def test_concurrent_observes_lose_nothing(self):
        reg = MetricsRegistry()
        n, threads = 500, 8

        def work():
            for i in range(n):
                reg.inc("hits")
                reg.observe("stage.compute", 0.001 * (i % 9 + 1))

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.counter("hits") == n * threads
        assert reg.histogram("stage.compute").count == n * threads


class TestRequestContext:
    def test_mint_and_nest(self):
        assert current_request_id() is None
        with request_context() as rid:
            assert current_request_id() == rid
            with request_context() as inner:
                # no explicit id: the ambient one is inherited, not replaced
                assert inner == rid
            with request_context("forced") as forced:
                assert forced == "forced"
            assert current_request_id() == rid
        assert current_request_id() is None

    def test_unique_ids(self):
        assert len({new_request_id() for _ in range(64)}) == 64

    def test_thread_isolation(self):
        seen = {}

        def work(name):
            with request_context() as rid:
                seen[name] = rid

        with request_context() as outer:
            ts = [
                threading.Thread(target=work, args=(i,)) for i in range(4)
            ]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
            assert current_request_id() == outer
        # threads don't inherit the caller's contextvar copy-on-write id
        assert outer not in seen.values()
        assert len(set(seen.values())) == 4


class TestLedgerTagging:
    def test_ambient_request_id_tagged(self):
        led = obs.enable_ledger()
        with request_context() as rid:
            led.emit("x")
        led.emit("y")
        led.emit("z", request_id="explicit")
        by_type = {ev.type: ev.fields for ev in led.events()}
        assert by_type["x"]["request_id"] == rid
        assert "request_id" not in by_type["y"]
        assert by_type["z"]["request_id"] == "explicit"

    def test_concurrent_emitters_keep_their_ids(self):
        led = obs.enable_ledger()
        n, threads = 200, 8

        def work(tid):
            with request_context() as rid:
                for i in range(n):
                    led.emit("tick", tid=tid, i=i)
                return rid

        ts = [threading.Thread(target=work, args=(t,)) for t in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        events = [ev for ev in led.events() if ev.type == "tick"]
        assert len(events) == n * threads
        assert len({ev.seq for ev in events}) == n * threads  # no lost seqs
        per_thread = {}
        for ev in events:
            per_thread.setdefault(ev.fields["tid"], set()).add(
                ev.fields["request_id"]
            )
        # each thread's events all carry that thread's (unique) request id
        assert all(len(rids) == 1 for rids in per_thread.values())
        assert len({next(iter(r)) for r in per_thread.values()}) == threads

    def test_tracer_concurrent_counters_exact(self):
        tracer = Tracer()
        n, threads = 2000, 8

        def work():
            for _ in range(n):
                tracer.counter("ops")
                with tracer.span("unit"):
                    pass

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        snap = tracer.snapshot()
        assert snap.counters["ops"] == n * threads
        assert len(snap.spans_named("unit")) == n * threads


class TestPromText:
    def test_wants_prometheus(self):
        assert wants_prometheus("text/plain")
        assert wants_prometheus("application/openmetrics-text; version=1.0.0")
        assert wants_prometheus("text/plain;q=0.9, application/json;q=0.8")
        assert not wants_prometheus(None)
        assert not wants_prometheus("application/json")
        assert "text/plain" in PROMETHEUS_CONTENT_TYPE

    def test_registry_doc_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("service.requests", 7)
        reg.set_gauge("inflight", 2)
        for v in (0.0004, 0.03, 0.03, 4.0):
            reg.observe("stage.compute", v)
        reg.observe("request.plan", 0.02)
        text = render_prometheus(reg.as_doc())
        samples, types = parse_prometheus_text(text)
        assert types["repro_stage_seconds"] == "histogram"
        assert samples[("repro_service_requests_total", ())] == 7.0
        assert samples[("repro_inflight", ())] == 2.0
        assert samples[
            ("repro_stage_seconds_count", (("stage", "compute"),))
        ] == 4.0
        assert samples[
            ("repro_stage_seconds_bucket",
             (("le", "+Inf"), ("stage", "compute")))
        ] == 4.0
        # cumulative le buckets: count(le=0.05) includes the two 0.03s
        assert samples[
            ("repro_stage_seconds_bucket",
             (("le", "0.05"), ("stage", "compute")))
        ] == 3.0
        assert samples[
            ("repro_request_seconds_count", (("endpoint", "plan"),))
        ] == 1.0

    def test_label_escaping_round_trips(self):
        text = (
            'repro_test_total{name="a\\"b\\\\c\\nd"} 1\n'
        )
        samples, _ = parse_prometheus_text(text)
        assert samples[("repro_test_total", (("name", 'a"b\\c\nd'),))] == 1.0

    def test_parser_rejects_garbage_and_duplicates(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all!")
        with pytest.raises(ValueError):
            parse_prometheus_text("repro_x_total 1\nrepro_x_total 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('repro_x_total{bad labels} 1\n')

    def test_sharded_doc_emits_pool_merge_once(self):
        shard_reg = MetricsRegistry()
        shard_reg.observe("request.plan", 0.01)
        shard_doc = {
            "requests": 5, "errors": 0,
            "cache": {"hits": 4, "misses": 1, "hit_rate": 0.8, "entries": 1},
            "telemetry": shard_reg.as_doc(),
        }
        doc = {
            "mode": "sharded",
            "uptime_seconds": 12.0,
            "shards": [
                {"shard": 0, "alive": True, "inflight": 1, "requests": 5,
                 "service": shard_doc},
                {"shard": 1, "alive": True, "inflight": 0, "requests": 0,
                 "service": {"requests": 0, "errors": 0}},
            ],
            "totals": {"requests": 9, "errors": 1, "retired_shards": 1},
            "telemetry": MetricsRegistry.merge_docs([shard_reg.as_doc()]),
        }
        samples, _ = parse_prometheus_text(render_prometheus(doc))
        assert samples[("repro_shard_alive", (("shard", "0"),))] == 1.0
        assert samples[("repro_pool_requests_total", ())] == 9.0
        assert samples[("repro_pool_errors_total", ())] == 1.0
        # per-shard rows must NOT re-emit telemetry the pool merge carries
        assert ("repro_request_seconds_count", (("endpoint", "plan"),)) in samples
        assert (
            "repro_request_seconds_count",
            (("endpoint", "plan"), ("shard", "0")),
        ) not in samples


class TestBatcherPropagation:
    def test_jobs_carry_request_id_into_compute_and_ledger(self):
        led = obs.enable_ledger()
        metrics = MetricsRegistry()
        seen = {}

        def compute():
            seen["rid"] = current_request_id()
            return 42

        with Batcher(max_wait=0.01, workers=2, metrics=metrics) as b:
            with request_context() as rid:
                fut = b.submit("k1", compute)
            assert fut.result(timeout=30) == 42
        assert seen["rid"] == rid
        flushes = [ev for ev in led.events() if ev.type == EV_BATCH_FLUSHED]
        assert flushes, "batcher never emitted a flush event"
        groups = flushes[0].fields["groups"]
        assert groups == {"k1": [rid]}
        # per-stage timings observed into the service registry
        for stage in ("stage.queue_wait", "stage.batch_wait", "stage.compute"):
            assert metrics.histogram(stage).count >= 1, stage

    def test_contextless_jobs_stay_untagged(self):
        with Batcher(max_wait=0.0, workers=1) as b:
            fut = b.submit("k", lambda: current_request_id())
            assert fut.result(timeout=30) is None


@pytest.fixture(scope="module")
def trace():
    return haggle_like_trace(HaggleLikeConfig(num_nodes=8), seed=3)


@pytest.fixture(scope="module")
def server(trace):
    service = PlanningService({"demo": trace}, max_wait=0.0, workers=2)
    backend = LocalBackend(service, {"demo": trace})
    with BackgroundServer(backend, port=0) as srv:
        yield srv
    service.close()


def _http(server, verb, path, body=None, headers=None):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        data = None if body is None else json.dumps(body).encode("utf-8")
        conn.request(verb, path, body=data, headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


class TestServiceTelemetry:
    def test_request_histograms_and_stage_serialize(self, trace):
        with PlanningService({"demo": trace}, max_wait=0.0, workers=2) as svc:
            svc.plan("demo", 600.0, window=2000.0, seed=3)
            svc.plan("demo", 600.0, window=2000.0, seed=3)
            doc = svc.metrics()
            hists = doc["telemetry"]["histograms"]
            assert hists["request.plan"]["count"] == 2
            assert svc.telemetry.histogram("request.plan").count == 2

    def test_http_negotiation_and_request_id_header(self, server):
        # POST mints an id and echoes it; a supplied one is honoured
        status, payload, headers = _http(
            server, "POST", "/plan", BODY,
            {"Content-Type": "application/json", "X-Request-Id": "abc123"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "abc123"
        status, _, headers = _http(
            server, "POST", "/plan", BODY,
            {"Content-Type": "application/json"},
        )
        assert status == 200
        assert len(headers["X-Request-Id"]) == 16

        # default GET /metrics stays JSON and now includes telemetry
        status, payload, headers = _http(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(payload)
        assert doc["frontend"]["telemetry"]["histograms"]["request.edge"][
            "count"
        ] >= 2

        # Accept: text/plain negotiates the Prometheus exposition
        status, payload, headers = _http(
            server, "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples, types = parse_prometheus_text(payload.decode("utf-8"))
        assert types["repro_request_seconds"] == "histogram"
        edge = samples[
            ("repro_request_seconds_count",
             (("component", "frontend"), ("endpoint", "edge")))
        ]
        assert edge >= 2


class TestTop:
    def _sharded_doc(self, requests=40, hist_values=(0.002, 0.02)):
        reg = MetricsRegistry()
        for v in hist_values:
            reg.observe("request.plan", v)
        return {
            "mode": "sharded",
            "uptime_seconds": 30.0,
            "shards": [
                {
                    "shard": 0, "alive": True, "inflight": 2,
                    "requests": requests,
                    "service": {
                        "requests": requests,
                        "cache": {"hit_rate": 0.75},
                        "batcher": {"queue_depth": 1},
                        "telemetry": reg.as_doc(),
                    },
                },
                {"shard": 1, "alive": False, "inflight": 0, "requests": 0,
                 "service": {}},
            ],
            "frontend": {
                "served": requests, "errors": 0, "active_requests": 1,
                "edge_cache": {"hits": 30, "misses": 10},
            },
        }

    def test_build_rows_sharded_with_qps_delta(self):
        prev, cur = self._sharded_doc(40), self._sharded_doc(60)
        rows = build_rows(cur, prev, dt=2.0)
        assert [r.shard for r in rows] == ["0", "1"]
        assert rows[0].qps == pytest.approx(10.0)
        assert rows[0].cache_ratio == 0.75
        assert rows[0].queue_depth == 1
        assert rows[0].p99_ms is not None and rows[0].p99_ms > 0
        assert rows[1].alive is False
        # the empty service doc has no prior snapshot to delta against
        assert rows[1].qps is None

    def test_render_top_frame(self):
        frame = render_top(self._sharded_doc(), self._sharded_doc(), dt=2.0)
        assert "repro top" in frame
        assert "edge_cache_ratio=0.75" in frame
        assert "SHARD" in frame and "P99MS" in frame and "CACHE%" in frame
        assert "\x1b" not in frame  # pure text; ANSI lives in top_loop

    def test_top_loop_against_fake_fetch(self):
        import io

        docs = iter([self._sharded_doc(10), self._sharded_doc(30)])
        out = io.StringIO()
        rc = top_loop(
            "http://x", interval=0.0, iterations=2, stream=out,
            clear=False, fetch=lambda url: next(docs),
        )
        assert rc == 0
        assert out.getvalue().count("repro top") == 2

    def test_top_loop_unreachable_server(self):
        import io

        def boom(url):
            raise OSError("refused")

        out = io.StringIO()
        assert top_loop("http://x", iterations=1, stream=out,
                        clear=False, fetch=boom) == 1
        assert "cannot reach" in out.getvalue()

    def test_cli_top_once_against_live_server(self, server, capsys):
        from repro.cli import main

        host, port = server.address
        rc = main(["top", f"http://{host}:{port}", "--once", "--no-clear"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "local" in out

    def test_cli_top_unreachable_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["top", "http://127.0.0.1:1", "--once",
                     "--no-clear"]) == 1
        assert "cannot reach" in capsys.readouterr().out

    def test_top_against_live_server(self, server):
        _http(server, "POST", "/plan", BODY,
              {"Content-Type": "application/json"})
        host, port = server.address
        doc = json.loads(_http(server, "GET", "/metrics")[1])
        rows = build_rows(doc)
        assert len(rows) == 1 and rows[0].shard == "local"
        assert rows[0].requests >= 1
        frame = render_top(doc)
        assert "local" in frame


class TestShardLedgerJourney:
    def test_worker_events_arrive_tagged_after_drain(self, trace):
        """The acceptance path: one ledger filter reconstructs a request.

        With the ledger enabled, a 2-shard pool's workers record their
        events in fresh per-process ledgers, tag them with the ambient
        ``shard_id`` and the ``request_id`` that rode the pipe message,
        and ship them home in the drain handshake.
        """
        led = obs.enable_ledger()
        rids = []
        pool = ShardPool(
            {"demo": trace}, 2,
            service_kwargs={"max_wait": 0.0, "workers": 2},
        )
        try:
            for seed in (3, 4, 5):
                with request_context() as rid:
                    rids.append(rid)
                    _, fut = pool.submit_request(
                        "plan", dict(BODY, seed=seed)
                    )
                status, _ = fut.result(timeout=120)
                assert status == 200
            doc = pool.metrics()
            merged = doc["telemetry"]["histograms"]
            assert merged["request.plan"]["count"] == 3
            assert doc["totals"]["requests"] == 3
        finally:
            pool.close()

        events = led.events()
        started = [ev for ev in events if ev.type == EV_SHARD_STARTED]
        exited = [ev for ev in events if ev.type == EV_SHARD_EXITED]
        assert {ev.fields["shard_id"] for ev in started} == {0, 1}
        assert {ev.fields["shard_id"] for ev in exited} == {0, 1}

        for rid in rids:
            journey = [
                ev for ev in events
                if ev.fields.get("request_id") == rid
            ]
            assert journey, f"no ledger events for request {rid}"
            shard_ids = {
                ev.fields.get("shard_id")
                for ev in journey
                if "shard_id" in ev.fields
            }
            # every worker-side event in the journey names one shard
            assert len(shard_ids) == 1
            assert shard_ids <= {0, 1}

    def test_cumulative_totals_survive_drain(self, trace):
        """Satellite: counters keep counting across a shard's retirement."""
        pool = ShardPool(
            {"demo": trace}, 1,
            service_kwargs={"max_wait": 0.0, "workers": 1},
        )
        try:
            _, fut = pool.submit_request("plan", dict(BODY))
            assert fut.result(timeout=120)[0] == 200
            live = pool.metrics()
            assert live["totals"] == {
                "requests": 1, "errors": 0, "retired_shards": 0,
            }
            pool.drain()
            after = pool.metrics()
            assert after["totals"]["requests"] == 1
            assert after["totals"]["retired_shards"] == 1
            assert after["telemetry"]["histograms"]["request.plan"][
                "count"
            ] == 1
        finally:
            pool.close()

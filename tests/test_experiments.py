"""Experiment harness: instance sampling, evaluation, figure smoke runs."""

import math

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    SweepResult,
    default_trace,
    evaluate_algorithm,
    format_table,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    sample_instance,
)
from repro.experiments.harness import sample_paired_starts

TINY = ExperimentConfig(repetitions=1, trials=20, num_nodes=10, horizon=8000.0)


@pytest.fixture(scope="module")
def trace():
    return default_trace(10, TINY, trace_seed=11)


@pytest.fixture(scope="module")
def instance(trace):
    rng = np.random.default_rng(0)
    inst = sample_instance(trace, TINY, rng)
    assert inst is not None
    return inst


class TestSampling:
    def test_instance_shapes(self, instance):
        assert instance.static.num_nodes == 10
        assert not instance.static.is_fading
        assert instance.fading.is_fading
        assert instance.deadline == TINY.delay
        assert instance.source in instance.static.nodes

    def test_shared_geometry(self, instance):
        # static and fading share distances — the paired-comparison invariant
        for u, v, s, e in list(instance.static.tvg.contacts())[:5]:
            t = (s + e) / 2
            assert instance.static.distance(u, v, t) == instance.fading.distance(
                u, v, t
            )

    def test_fixed_window(self, trace):
        rng = np.random.default_rng(1)
        inst = sample_instance(trace, TINY, rng, window_start=3000.0)
        if inst is not None:
            assert inst.window_start == 3000.0

    def test_paired_starts_fit_max_delay(self, trace):
        rng = np.random.default_rng(2)
        starts = sample_paired_starts(trace, TINY, rng, 1000.0, 4000.0, 3)
        assert all(t0 + 4000.0 <= trace.horizon for t0 in starts)


class TestEvaluate:
    def test_match_channel(self, instance):
        out = evaluate_algorithm("eedcb", instance, TINY, sim_seed=1)
        assert out is not None
        assert out.normalized_energy > 0
        assert out.delivery == pytest.approx(1.0)  # static design, static exec

    def test_fading_execution_degrades_static(self, instance):
        out = evaluate_algorithm(
            "eedcb", instance, TINY, sim_seed=1, execution_channel="fading"
        )
        assert out is not None
        assert out.delivery < 1.0

    def test_fr_delivers_under_fading(self, instance):
        out = evaluate_algorithm(
            "fr-eedcb", instance, TINY, sim_seed=1, execution_channel="fading"
        )
        assert out is not None
        assert out.delivery > 0.9

    def test_unknown_execution_channel(self, instance):
        with pytest.raises(ValueError):
            evaluate_algorithm("eedcb", instance, TINY, 1, execution_channel="x")


class TestReporting:
    def test_sweep_result(self):
        r = SweepResult(title="t", x_label="x")
        r.add_point(1.0, {"a": 2.0, "b": math.nan})
        r.add_point(2.0, {"a": 3.0, "b": 4.0})
        assert r.series_names() == ["a", "b"]
        assert r.column("a") == [2.0, 3.0]
        table = format_table(r)
        assert "n/a" in table and "x" in table


class TestFigures:
    def test_fig4_shape(self):
        r = run_fig4("static", TINY, delays=(2000.0, 4000.0), node_counts=(8,))
        assert r.x_values == [2000.0, 4000.0]
        assert "N=8" in r.series

    def test_fig5_shape(self):
        r = run_fig5("static", TINY, delays=(2000.0,))
        assert set(r.series) == {"EEDCB", "GREED", "RAND"}

    def test_fig6_shape(self):
        e, d = run_fig6(TINY, node_counts=(8,))
        assert e.x_values == [8] and d.x_values == [8]
        for panel in (e, d):
            assert len(panel.series) == 6
        # delivery values are ratios
        for name, col in d.series.items():
            for v in col:
                assert math.isnan(v) or 0.0 <= v <= 1.0

    def test_fig7_shape(self):
        r = run_fig7("static", TINY, window_starts=(4000.0,))
        assert "avg degree" in r.series
        assert "EEDCB" in r.series

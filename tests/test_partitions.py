"""Time partitions (Definition 5.1) and the combination operator (Eq. 8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.partitions import Partition, combine
from repro.errors import PartitionError


class TestPartition:
    def test_points_sorted_deduplicated(self):
        p = Partition([3.0, 0.0, 1.0, 1.0, 2.0])
        assert p.points == (0.0, 1.0, 2.0, 3.0)

    def test_needs_two_points(self):
        with pytest.raises(PartitionError):
            Partition([1.0])
        with pytest.raises(PartitionError):
            Partition([1.0, 1.0])

    def test_trivial(self):
        p = Partition.trivial(0.0, 10.0)
        assert p.points == (0.0, 10.0)
        assert p.num_intervals == 1
        with pytest.raises(PartitionError):
            Partition.trivial(5.0, 5.0)

    def test_from_boundaries_filters_outside(self):
        p = Partition.from_boundaries([-1.0, 2.0, 5.0, 99.0], 0.0, 10.0)
        assert p.points == (0.0, 2.0, 5.0, 10.0)

    def test_intervals(self):
        p = Partition([0.0, 1.0, 3.0])
        assert p.intervals() == (Interval(0, 1), Interval(1, 3))

    def test_interval_of(self):
        p = Partition([0.0, 1.0, 3.0])
        assert p.interval_of(0.5) == Interval(0, 1)
        assert p.interval_of(1.0) == Interval(1, 3)
        assert p.interval_of(3.0) == Interval(1, 3)  # end point → last interval
        with pytest.raises(PartitionError):
            p.interval_of(4.0)

    def test_floor_point(self):
        p = Partition([0.0, 1.0, 3.0])
        assert p.floor_point(2.9) == 1.0
        assert p.floor_point(1.0) == 1.0

    def test_index_of_point(self):
        p = Partition([0.0, 1.0, 3.0])
        assert p.index_of_point(1.0) == 1
        with pytest.raises(PartitionError):
            p.index_of_point(2.0)

    def test_has_point(self):
        p = Partition([0.0, 1.0, 3.0])
        assert p.has_point(1.0)
        assert p.has_point(1.0 + 1e-13)
        assert not p.has_point(2.0)

    def test_combine_requires_same_span(self):
        with pytest.raises(PartitionError):
            Partition([0.0, 5.0]).combine(Partition([0.0, 6.0]))

    def test_combine_merges_points(self):
        a = Partition([0.0, 2.0, 10.0])
        b = Partition([0.0, 5.0, 10.0])
        assert (a | b).points == (0.0, 2.0, 5.0, 10.0)

    def test_refine_with(self):
        p = Partition([0.0, 10.0])
        assert p.refine_with([5.0, 99.0]).points == (0.0, 5.0, 10.0)
        assert p.refine_with([]) is p


# ----------------------------------------------------------------------
# hypothesis: combination is associative, commutative, idempotent
# ----------------------------------------------------------------------
inner_points = st.lists(
    st.floats(min_value=0.001, max_value=99.999, allow_nan=False), max_size=6
)


@st.composite
def partitions(draw):
    pts = draw(inner_points)
    return Partition([0.0, 100.0, *pts])


@given(partitions(), partitions())
def test_combine_commutative(a, b):
    assert a | b == b | a


@given(partitions(), partitions(), partitions())
def test_combine_associative(a, b, c):
    assert (a | b) | c == a | (b | c)


@given(partitions())
def test_combine_idempotent(a):
    assert a | a == a


@given(partitions(), partitions(), partitions())
def test_combine_many_equals_pairwise(a, b, c):
    assert combine([a, b, c]) == (a | b) | c


@given(partitions(), st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_interval_of_contains_point(p, t):
    iv = p.interval_of(t)
    if t < p.end:
        assert iv.start <= t < iv.end
    else:
        assert iv.end == p.end

"""Energy allocation (Eqs. 14–17): problem build, all three solvers."""

import math

import numpy as np
import pytest

from repro.allocation import (
    AllocationProblem,
    Constraint,
    balanced_allocation,
    build_allocation_problem,
    closed_form_allocation,
    coordinate_descent_allocation,
    solve_allocation,
)
from repro.errors import InfeasibleError, SolverError
from repro.schedule import Schedule, Transmission


def _problem(constraints, eps=0.01, w_max=math.inf):
    return AllocationProblem(
        num_vars=max(k for c in constraints for k, _ in c.terms) + 1,
        constraints=list(constraints),
        log_eps=math.log(eps),
        w_min=0.0,
        w_max=w_max,
    )


class TestProblemStructure:
    def test_build_from_backbone(self, det_fading):
        w01 = det_fading.min_cost(0, 1, 15.0)
        w03 = det_fading.min_cost(0, 3, 15.0)
        w12 = det_fading.min_cost(1, 2, 25.0)
        backbone = Schedule(
            [Transmission(0, 15.0, max(w01, w03)), Transmission(1, 25.0, w12)]
        )
        prob = build_allocation_problem(det_fading, backbone, 0)
        assert prob.num_vars == 2
        # constraints: nodes 1, 2, 3 (Eq. 15) + relay 1 at t=25 (Eq. 16)
        labels = [c.label for c in prob.constraints]
        assert sum(l.startswith("node:") for l in labels) == 3
        assert sum(l.startswith("relay:") for l in labels) == 1

    def test_uncovered_node_infeasible(self, det_fading):
        backbone = Schedule([Transmission(0, 15.0, 1.0)])
        with pytest.raises(InfeasibleError):
            build_allocation_problem(det_fading, backbone, 0)

    def test_uninformable_relay_infeasible(self, det_fading):
        w0 = max(det_fading.min_cost(0, 1, 15.0), det_fading.min_cost(0, 3, 15.0))
        # relay 2 transmits at 45, but the only transmission that could reach
        # it (from 1 on contact [20,50)) happens later, at 46 → Eq. (16) has
        # no terms for the relay row and the problem is infeasible.
        backbone = Schedule(
            [
                Transmission(0, 15.0, w0),
                Transmission(2, 45.0, 1.0),
                Transmission(1, 46.0, 1.0),
            ]
        )
        with pytest.raises(InfeasibleError):
            build_allocation_problem(det_fading, backbone, 0)

    def test_static_channel_rejected(self, det_static):
        with pytest.raises(SolverError):
            build_allocation_problem(det_static, Schedule.empty(), 0)

    def test_residuals_and_feasibility(self):
        prob = _problem([Constraint("c", ((0, 2.0),))])
        w_ok = np.array([prob.min_single_cost(2.0) * 1.01])
        w_bad = np.array([prob.min_single_cost(2.0) * 0.5])
        assert prob.is_feasible(w_ok)
        assert not prob.is_feasible(w_bad)
        assert prob.residuals(w_ok)[0] > 0
        assert prob.residuals(w_bad)[0] < 0


class TestClosedForm:
    def test_single_constraint_exact(self):
        prob = _problem([Constraint("c", ((0, 2.0),))])
        w = closed_form_allocation(prob)
        # alone on the constraint: w = β / ln(1/(1−ε))
        assert w[0] == pytest.approx(2.0 / math.log(1 / 0.99))

    def test_designates_cheapest_beta(self):
        # variable 1 has the smaller β → designated; variable 0 stays at lb
        prob = _problem([Constraint("c", ((0, 5.0), (1, 2.0)))])
        w = closed_form_allocation(prob)
        assert w[1] > w[0]
        assert prob.is_feasible(w)

    def test_max_over_constraints(self):
        prob = _problem(
            [Constraint("a", ((0, 2.0),)), Constraint("b", ((0, 7.0),))]
        )
        w = closed_form_allocation(prob)
        assert w[0] == pytest.approx(7.0 / math.log(1 / 0.99))

    def test_always_feasible(self):
        prob = _problem(
            [
                Constraint("a", ((0, 2.0), (1, 3.0))),
                Constraint("b", ((1, 1.0), (2, 4.0))),
                Constraint("c", ((0, 6.0),)),
            ]
        )
        assert prob.is_feasible(closed_form_allocation(prob))


class TestCoordinateDescent:
    def test_never_worse_than_start(self):
        prob = _problem(
            [
                Constraint("a", ((0, 2.0), (1, 3.0))),
                Constraint("b", ((1, 1.0), (2, 4.0))),
            ]
        )
        w0 = closed_form_allocation(prob)
        w = coordinate_descent_allocation(prob, w0)
        assert prob.is_feasible(w)
        assert w.sum() <= w0.sum() + 1e-12

    def test_requires_feasible_start(self):
        prob = _problem([Constraint("c", ((0, 2.0),))])
        with pytest.raises(InfeasibleError):
            coordinate_descent_allocation(prob, np.array([1e-20]))

    def test_monotone_never_worse(self):
        # Coordinate descent is a descent method: from any feasible start it
        # must never increase the objective (even under float noise).
        prob = _problem([Constraint("c", ((0, 2.0), (1, 2.0)))])
        w_closed = closed_form_allocation(prob)
        w = coordinate_descent_allocation(prob, w_closed)
        assert prob.is_feasible(w)
        assert w.sum() <= w_closed.sum()

    def test_unconstrained_variable_floors(self):
        prob = _problem([Constraint("c", ((0, 2.0),))])
        prob2 = AllocationProblem(
            num_vars=2,
            constraints=prob.constraints,
            log_eps=prob.log_eps,
            w_min=0.0,
            w_max=math.inf,
        )
        w = coordinate_descent_allocation(prob2, closed_form_allocation(prob2))
        assert w[1] == prob2.lb


class TestBalanced:
    def test_always_feasible(self):
        prob = _problem(
            [
                Constraint("a", ((0, 2.0), (1, 3.0))),
                Constraint("b", ((1, 1.0), (2, 4.0))),
                Constraint("c", ((0, 6.0),)),
            ]
        )
        assert prob.is_feasible(balanced_allocation(prob))

    def test_symmetric_split_is_optimal(self):
        # two identical transmissions → equal split: (1−e^{−β/w})² = ε
        import math

        prob = _problem([Constraint("c", ((0, 2.0), (1, 2.0)))])
        w = balanced_allocation(prob)
        expected = 2.0 / math.log(1.0 / (1.0 - 0.1))  # per-term target √ε=0.1
        assert w[0] == pytest.approx(expected)
        assert w[1] == pytest.approx(expected)


class TestSolveAllocation:
    def test_exploits_overlap(self):
        # Two transmissions both covering one node: sharing the failure
        # budget (≈19 each) must beat the single-designee closed form
        # (≈199) by a wide margin.
        prob = _problem([Constraint("c", ((0, 2.0), (1, 2.0)))])
        res = solve_allocation(prob)
        w_closed = closed_form_allocation(prob)
        assert prob.is_feasible(res.costs)
        assert res.total < 0.3 * float(w_closed.sum())

    def test_returns_feasible_best(self):
        prob = _problem(
            [
                Constraint("a", ((0, 2.0), (1, 3.0))),
                Constraint("b", ((1, 1.0), (2, 4.0))),
            ]
        )
        res = solve_allocation(prob)
        assert prob.is_feasible(res.costs)
        assert res.total == pytest.approx(float(res.costs.sum()))
        assert res.method in ("slsqp", "coordinate", "closed_form", "balanced")

    def test_disjoint_singletons_match_closed_form(self):
        # One transmission per node: the closed form is provably optimal.
        prob = _problem(
            [Constraint("a", ((0, 2.0),)), Constraint("b", ((1, 5.0),))]
        )
        res = solve_allocation(prob)
        w_closed = closed_form_allocation(prob)
        assert res.total == pytest.approx(float(w_closed.sum()), rel=1e-6)

    def test_never_worse_than_closed_form(self, det_fading):
        w01 = det_fading.min_cost(0, 1, 15.0)
        w03 = det_fading.min_cost(0, 3, 15.0)
        w12 = det_fading.min_cost(1, 2, 25.0)
        backbone = Schedule(
            [Transmission(0, 15.0, max(w01, w03)), Transmission(1, 25.0, w12)]
        )
        prob = build_allocation_problem(det_fading, backbone, 0)
        res = solve_allocation(prob)
        assert res.total <= float(closed_form_allocation(prob).sum()) + 1e-18

    def test_without_slsqp(self):
        prob = _problem([Constraint("a", ((0, 2.0), (1, 2.0)))])
        res = solve_allocation(prob, use_slsqp=False)
        assert prob.is_feasible(res.costs)
        assert res.method in ("coordinate", "closed_form", "balanced")

    def test_w_max_binding(self):
        need = 2.0 / math.log(1 / 0.99)  # unconstrained requirement
        prob = _problem([Constraint("c", ((0, 2.0),))], w_max=need / 2)
        with pytest.raises(InfeasibleError):
            solve_allocation(prob)

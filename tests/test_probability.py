"""The Eq. (6) uninformed-probability engine."""

import math

import pytest

from repro.schedule import (
    Schedule,
    Transmission,
    informed_time,
    is_informed,
    uninformed_probabilities,
    uninformed_probability,
)


def _w(tveg, u, v, t):
    return tveg.min_cost(u, v, t)


class TestStaticProbabilities:
    def test_source_always_informed(self, det_static):
        assert uninformed_probability(det_static, Schedule.empty(), 0, 0.0, 0) == 0.0
        assert uninformed_probability(det_static, Schedule.empty(), 0, 99.0, 0) == 0.0

    def test_source_before_start(self, det_static):
        p = uninformed_probability(
            det_static, Schedule.empty(), 0, 1.0, 0, start_time=5.0
        )
        assert p == 1.0

    def test_unreached_node_is_one(self, det_static):
        assert uninformed_probability(det_static, Schedule.empty(), 2, 99.0, 0) == 1.0

    def test_step_transmission_informs(self, det_static):
        w = _w(det_static, 0, 1, 5.0)
        sched = Schedule([Transmission(0, 5.0, w)])
        assert uninformed_probability(det_static, sched, 1, 5.0, 0) == 0.0
        # before the transmission the node is uninformed
        assert uninformed_probability(det_static, sched, 1, 4.9, 0) == 1.0

    def test_insufficient_power_fails(self, det_static):
        w = _w(det_static, 0, 1, 5.0)
        sched = Schedule([Transmission(0, 5.0, w * 0.9)])
        assert uninformed_probability(det_static, sched, 1, 99.0, 0) == 1.0

    def test_non_adjacent_transmission_ignored(self, det_static):
        # node 2 not adjacent to 0 at t=5
        sched = Schedule([Transmission(0, 5.0, 1.0)])
        assert uninformed_probability(det_static, sched, 2, 99.0, 0) == 1.0


class TestFadingProbabilities:
    def test_product_of_failures(self, det_fading):
        # two transmissions from 0 to 1 inside the same contact
        w = 0.5 * _w(det_fading, 0, 1, 5.0)
        sched = Schedule([Transmission(0, 5.0, w), Transmission(0, 10.0, w)])
        f1 = det_fading.failure(0, 1, 5.0, w)
        f2 = det_fading.failure(0, 1, 10.0, w)
        p = uninformed_probability(det_fading, sched, 1, 99.0, 0)
        assert p == pytest.approx(f1 * f2)

    def test_monotone_in_time(self, det_fading):
        w = _w(det_fading, 0, 1, 5.0)
        sched = Schedule([Transmission(0, 5.0, w), Transmission(0, 10.0, w)])
        ps = [
            uninformed_probability(det_fading, sched, 1, t, 0)
            for t in (0.0, 5.0, 7.0, 10.0, 50.0)
        ]
        for a, b in zip(ps, ps[1:]):
            assert b <= a

    def test_monotone_in_added_transmissions(self, det_fading):
        w = _w(det_fading, 0, 1, 5.0) * 0.3
        s1 = Schedule([Transmission(0, 5.0, w)])
        s2 = s1.append(Transmission(0, 12.0, w))
        p1 = uninformed_probability(det_fading, s1, 1, 99.0, 0)
        p2 = uninformed_probability(det_fading, s2, 1, 99.0, 0)
        assert p2 < p1

    def test_w0_reaches_epsilon(self, det_fading):
        w0 = _w(det_fading, 0, 1, 5.0)  # the Section VI-B single-hop cost
        sched = Schedule([Transmission(0, 5.0, w0)])
        p = uninformed_probability(det_fading, sched, 1, 99.0, 0)
        assert p == pytest.approx(det_fading.params.epsilon)


class TestBulkAndInformedTime:
    def test_bulk_matches_single(self, det_fading):
        w = _w(det_fading, 0, 1, 5.0)
        sched = Schedule(
            [Transmission(0, 5.0, w), Transmission(0, 12.0, _w(det_fading, 0, 3, 12.0))]
        )
        bulk = uninformed_probabilities(det_fading, sched, 99.0, 0)
        for n in det_fading.nodes:
            assert bulk[n] == pytest.approx(
                uninformed_probability(det_fading, sched, n, 99.0, 0)
            )

    def test_informed_time_static(self, det_static):
        w01 = _w(det_static, 0, 1, 5.0)
        w12 = _w(det_static, 1, 2, 25.0)
        sched = Schedule([Transmission(0, 5.0, w01), Transmission(1, 25.0, w12)])
        assert informed_time(det_static, sched, 0, 0) == 0.0
        assert informed_time(det_static, sched, 1, 0) == 5.0
        assert informed_time(det_static, sched, 2, 0) == 25.0
        assert informed_time(det_static, sched, 3, 0) == math.inf

    def test_is_informed_uses_eps(self, det_fading):
        w0 = _w(det_fading, 0, 1, 5.0)
        sched = Schedule([Transmission(0, 5.0, w0)])
        # φ(w0) ≈ ε up to rounding; a slightly looser ε must accept it and a
        # much tighter one must reject it.
        assert is_informed(det_fading, sched, 1, 10.0, 0, eps=0.011)
        assert not is_informed(det_fading, sched, 1, 10.0, 0, eps=0.001)

"""Planning service: cache tiers, batch dedupe, HTTP endpoints.

Covers the service acceptance properties directly:

* a cached replay is byte-identical to the cold computation (schedule,
  total cost, info counters, feasibility);
* K duplicate concurrent requests perform exactly one auxiliary-graph
  build (asserted via the ``auxgraph.compact_builds`` tracer counter);
* admission control surfaces as ``ServiceOverloaded`` / HTTP 429.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.api import plan_broadcast, plan_cache_key
from repro.errors import ServiceOverloaded
from repro.service import (
    Batcher,
    PlanCache,
    PlanningService,
    make_server,
)
from repro.traces import HaggleLikeConfig, haggle_like_trace

from .conftest import make_random_instance


@pytest.fixture
def tveg():
    _, tveg = make_random_instance(seed=5)
    return tveg


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def make_plan(tveg, cache=None, deadline=300.0, **kw):
    return plan_broadcast(tveg, 0, deadline, seed=5, cache=cache, **kw)


# ----------------------------------------------------------------------
# PlanCache
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_memory_hit_returns_same_object(self, tveg):
        cache = PlanCache()
        p1 = make_plan(tveg, cache)
        p2 = make_plan(tveg, cache)
        assert p2 is p1
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["memory_hits"] == 1

    def test_key_is_manifest_config_hash(self, tveg):
        cache = PlanCache()
        plan = make_plan(tveg, cache)
        key = plan_cache_key(tveg, 0, 300.0, seed=5)
        assert key == plan.manifest["config_hash"]
        assert key in cache
        assert cache.keys() == [key]

    def test_different_problems_different_entries(self, tveg):
        cache = PlanCache()
        p1 = make_plan(tveg, cache)
        p2 = make_plan(tveg, cache, algorithm="greed")
        p3 = make_plan(tveg, cache, deadline=250.0)
        assert len(cache) == 3
        assert len({p1.manifest["config_hash"], p2.manifest["config_hash"],
                    p3.manifest["config_hash"]}) == 3

    def test_lru_eviction(self, tveg):
        cache = PlanCache(capacity=2)
        make_plan(tveg, cache, algorithm="eedcb")
        make_plan(tveg, cache, algorithm="greed")
        first = plan_cache_key(tveg, 0, 300.0, algorithm="eedcb", seed=5)
        cache.lookup(first)  # refresh eedcb → greed becomes LRU
        make_plan(tveg, cache, algorithm="rand")
        assert len(cache) == 2
        assert first in cache
        assert plan_cache_key(
            tveg, 0, 300.0, algorithm="greed", seed=5
        ) not in cache
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry(self, tveg, monkeypatch):
        cache = PlanCache(ttl=10.0)
        p1 = make_plan(tveg, cache)
        now = time.time()
        monkeypatch.setattr("repro.service.cache.time.time",
                            lambda: now + 11.0)
        key = p1.manifest["config_hash"]
        assert key not in cache
        assert cache.lookup(key) is None
        assert cache.stats()["expirations"] == 1

    def test_disk_replay_is_byte_identical(self, tmp_path):
        _, tveg = make_random_instance(seed=5, channel="rayleigh")
        cold_cache = PlanCache(disk_dir=tmp_path)
        cold = make_plan(tveg, cold_cache, algorithm="fr-eedcb")
        # fresh process-equivalent: new cache, same directory
        warm_cache = PlanCache(disk_dir=tmp_path)
        warm = make_plan(tveg, warm_cache, algorithm="fr-eedcb")
        assert warm is not cold
        assert list(warm.schedule) == list(cold.schedule)
        assert warm.schedule.total_cost == cold.schedule.total_cost
        assert warm.info == cold.info
        assert warm.manifest["config_hash"] == cold.manifest["config_hash"]
        assert warm.feasibility.informed_times == cold.feasibility.informed_times
        s = warm_cache.stats()
        assert s["disk_hits"] == 1 and s["memory_hits"] == 0
        # promoted into memory: the next lookup doesn't touch disk
        again = make_plan(tveg, warm_cache, algorithm="fr-eedcb")
        assert again is warm
        assert warm_cache.stats()["memory_hits"] == 1

    def test_disk_survives_memory_eviction(self, tveg, tmp_path):
        cache = PlanCache(capacity=1, disk_dir=tmp_path)
        p1 = make_plan(tveg, cache, algorithm="eedcb")
        make_plan(tveg, cache, algorithm="greed")  # evicts eedcb from memory
        key = p1.manifest["config_hash"]
        assert len(cache) == 1
        assert key in cache  # … via the disk tier
        assert key in cache.disk_keys()

    def test_corrupt_disk_entry_is_a_miss(self, tveg, tmp_path):
        cache = PlanCache(disk_dir=tmp_path)
        plan = make_plan(tveg, cache)
        key = plan.manifest["config_hash"]
        (tmp_path / f"{key}.json").write_text("{ not json")
        fresh = PlanCache(disk_dir=tmp_path)
        assert fresh.lookup(key, lambda: tveg) is None
        assert fresh.stats()["disk_errors"] == 1

    def test_clear(self, tveg, tmp_path):
        cache = PlanCache(disk_dir=tmp_path)
        make_plan(tveg, cache)
        assert cache.clear(disk=True) == 2  # one memory + one disk entry
        assert len(cache) == 0 and cache.disk_keys() == []

    def test_cached_replay_is_50x_faster(self, service_trace):
        # Acceptance bar: a cache hit must beat cold planning by ≥50×.
        # The real ratio is 3–4 orders of magnitude (a memory hit builds no
        # graph at all), so the margin absorbs CI timing noise.
        cache = PlanCache()
        t0 = time.perf_counter()
        plan_broadcast(service_trace, None, 600.0, window=2000.0, seed=3,
                       cache=cache)
        cold = time.perf_counter() - t0
        warm = min(
            _timed(lambda: plan_broadcast(
                service_trace, None, 600.0, window=2000.0, seed=3,
                cache=cache,
            ))
            for _ in range(3)
        )
        assert warm * 50 < cold, f"warm {warm:.6f}s vs cold {cold:.3f}s"

    def test_put_rejects_non_hash_keys(self, tveg):
        cache = PlanCache()
        with pytest.raises(ValueError):
            cache.put("../escape", object())

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)
        with pytest.raises(ValueError):
            PlanCache(ttl=0.0)

    def test_counters_and_ledger_events(self, tveg):
        obs.enable()
        obs.enable_ledger()
        try:
            cache = PlanCache()
            make_plan(tveg, cache)
            make_plan(tveg, cache)
            counters = obs.snapshot().counters
            assert counters["service.plan_cache_miss"] == 1
            assert counters["service.plan_cache_hit"] == 1
            types = [e.type for e in obs.ledger_events()]
            assert types.count(obs.EV_PLAN_CACHE_MISS) == 1
            assert types.count(obs.EV_PLAN_CACHE_HIT) == 1
        finally:
            obs.disable_ledger()
            obs.disable()


# ----------------------------------------------------------------------
# Batcher
# ----------------------------------------------------------------------


class TestBatcher:
    def test_dedupes_within_a_batch(self):
        calls = []
        release = threading.Event()

        def compute():
            calls.append(1)
            return 42

        with Batcher(max_wait=0.2, workers=2) as b:
            # a blocking job occupies the flush loop so the duplicates
            # really land in one batch
            gate = b.submit("aa", lambda: release.wait(5) and 1)
            time.sleep(0.05)
            futures = [b.submit("bb", compute) for _ in range(6)]
            release.set()
            assert gate.result(5) == 1
            assert [f.result(5) for f in futures] == [42] * 6
        assert len(calls) == 1
        stats = b.stats()
        assert stats["deduped"] == 5
        assert stats["executed"] == 2

    def test_distinct_keys_all_execute(self):
        with Batcher(max_wait=0.05) as b:
            futures = [
                b.submit(f"{i:02x}", lambda i=i: i * i) for i in range(5)
            ]
            assert [f.result(5) for f in futures] == [0, 1, 4, 9, 16]
        assert b.stats()["deduped"] == 0

    def test_exception_fans_out_to_duplicates(self):
        release = threading.Event()
        with Batcher(max_wait=0.2) as b:
            gate = b.submit("aa", lambda: release.wait(5))

            def boom():
                raise RuntimeError("nope")

            futures = [b.submit("bb", boom) for _ in range(3)]
            release.set()
            gate.result(5)
            for f in futures:
                with pytest.raises(RuntimeError, match="nope"):
                    f.result(5)
        assert b.stats()["failures"] == 1

    def test_queue_full_raises_service_overloaded(self):
        release = threading.Event()
        b = Batcher(max_queue=1, max_batch=1, workers=1, max_wait=0.0)
        try:
            blocker = b.submit("aa", lambda: release.wait(10))
            deadline = time.time() + 5.0
            while b.queue_depth > 0 and time.time() < deadline:
                time.sleep(0.005)  # wait until the blocker is being executed
            b.submit("bb", lambda: 2)  # fills the 1-slot queue
            with pytest.raises(ServiceOverloaded):
                b.submit("cc", lambda: 3)
            assert b.stats()["rejected"] == 1
        finally:
            release.set()
            blocker.result(5)
            b.close()

    def test_submit_after_close_rejected(self):
        b = Batcher()
        b.close()
        with pytest.raises(ServiceOverloaded):
            b.submit("aa", lambda: 1)

    def test_close_mid_queue_resolves_every_future(self):
        # A wedged compute occupies the flush loop (max_batch=1 so it is
        # its own batch) while more jobs queue behind it; close() must
        # settle every queued future — completed or ServiceOverloaded —
        # instead of leaving them pending forever.
        release = threading.Event()
        b = Batcher(workers=1, max_batch=1, max_wait=0.0)
        blocker = b.submit("aa", lambda: release.wait(10) and 1)
        deadline = time.time() + 5.0
        while b.queue_depth > 0 and time.time() < deadline:
            time.sleep(0.005)  # wait until the blocker is being executed
        queued = [b.submit(f"{i:02x}", lambda i=i: i * 10) for i in range(4)]
        closer = threading.Thread(target=lambda: b.close(timeout=0.3))
        closer.start()
        closer.join(timeout=10)
        assert not closer.is_alive(), "close() hung on a wedged compute"
        settled = 0
        for f in queued:
            assert f.done(), "close() left a queued future pending"
            try:
                assert f.result(0) in (0, 10, 20, 30)
            except ServiceOverloaded:
                settled += 1
        assert settled >= 1  # the wedged flush can't have run them all
        assert b.stats()["rejected"] >= settled
        release.set()
        assert blocker.result(5) == 1  # in-flight work still completes

    def test_validation(self):
        with pytest.raises(ValueError):
            Batcher(max_batch=0)
        with pytest.raises(ValueError):
            Batcher(max_wait=-1.0)


# ----------------------------------------------------------------------
# PlanningService + HTTP
# ----------------------------------------------------------------------


@pytest.fixture
def service_trace():
    return haggle_like_trace(HaggleLikeConfig(num_nodes=12), seed=3)


@pytest.fixture
def service(service_trace):
    svc = PlanningService({"demo": service_trace}, max_wait=0.05, workers=4)
    yield svc
    svc.close()


@pytest.fixture
def server(service):
    srv = make_server(service, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield "http://%s:%d" % srv.server_address[:2]
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _request(url, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        url + path, data=data, method="POST" if data else "GET"
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestPlanningService:
    def test_plan_and_cache_flag(self, service):
        r1 = service.plan("demo", 600.0, window=2000.0, seed=3)
        assert not r1.cached
        assert r1.plan.feasible is r1.plan.feasibility.feasible
        r2 = service.plan("demo", 600.0, window=2000.0, seed=3)
        assert r2.cached
        assert r2.plan is r1.plan
        assert r2.key == r1.key

    def test_shared_tveg_reuse(self, service):
        service.plan("demo", 600.0, window=2000.0, seed=3)
        service.plan("demo", 600.0, window=2000.0, seed=3, algorithm="greed")
        assert service.metrics()["shared_tvegs"] == 1

    def test_unknown_trace(self, service):
        with pytest.raises(KeyError):
            service.plan("nope", 600.0)

    def test_default_trace_when_single(self, service):
        r = service.plan(None, 600.0, window=2000.0, seed=3)
        assert r.plan.deadline == 600.0


class TestPlanMany:
    def test_batch_keys_match_single_requests(self, service):
        batch = service.plan_many(
            "demo", 600.0, sources=[None, 1], window=2000.0, seed=3
        )
        assert len(batch.planset) == 2
        assert batch.cached == (False, False)
        single = service.plan("demo", 600.0, source=1, window=2000.0, seed=3)
        assert single.cached  # the batch populated the shared cache
        assert single.key == batch.keys[1]
        assert single.plan.schedule == batch.planset[1].schedule

    def test_per_request_deadlines(self, service):
        # scalar window + distinct deadlines → two shared-TVEG groups
        batch = service.plan_many(
            "demo", [600.0, 650.0], sources=[1, 1], window=2000.0, seed=3,
        )
        assert batch.planset[0].deadline == 600.0
        assert batch.planset[1].deadline == 650.0
        assert len(set(batch.keys)) == 2
        assert service.metrics()["shared_tvegs"] == 2

    def test_validation_errors(self, service):
        with pytest.raises(ValueError):
            service.plan_many("demo", [600.0], sources=[1, 2], seed=3)
        with pytest.raises(ValueError):
            service.plan_many("demo", 600.0, sources=[], seed=3)

    def test_requests_counted_per_member(self, service):
        before = service.metrics()["requests"]
        service.plan_many("demo", 600.0, sources=[None, 1, 5],
                          window=2000.0, seed=3)
        assert service.metrics()["requests"] == before + 3


class TestHTTP:
    def test_duplicate_concurrent_posts_build_one_aux_graph(self, server):
        obs.enable()
        try:
            body = json.dumps(
                {"deadline": 600, "window": 2000, "seed": 3}
            ).encode()
            results = []

            def post():
                req = urllib.request.Request(
                    server + "/plan", data=body, method="POST"
                )
                with urllib.request.urlopen(req, timeout=30) as resp:
                    results.append(json.loads(resp.read()))

            # Either kernel may serve the request (auto prefers numpy);
            # the dedupe property is about the *total* build count.
            build_counters = ("auxgraph.compact_builds", "auxgraph.numpy_builds")

            def builds() -> float:
                snap = obs.snapshot().counters
                return sum(snap.get(c, 0) for c in build_counters)

            before = builds()
            threads = [threading.Thread(target=post) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            after = builds()
            assert after - before == 1  # K duplicates, one build
            assert len(results) == 6
            assert len({r["key"] for r in results}) == 1
            schedules = {json.dumps(r["plan"]["schedule"]) for r in results}
            assert len(schedules) == 1  # byte-identical responses
        finally:
            obs.disable()

    def test_plan_many_endpoint(self, server):
        st, doc, _ = _request(server, "/plan_many", {
            "sources": [None, 1], "deadlines": 600, "window": 2000,
            "seed": 3, "compute": "auto",
        })
        assert st == 200
        assert len(doc["keys"]) == 2 and len(doc["cached"]) == 2
        assert doc["planset"]["schema"] == "repro.planset/1"
        assert len(doc["planset"]["plans"]) == 2
        # the batch members replay byte-identical through /plan
        st2, single, _ = _request(server, "/plan", {
            "deadline": 600, "source": 1, "window": 2000, "seed": 3,
        })
        assert st2 == 200 and single["cached"]
        assert single["key"] == doc["keys"][1]
        assert single["plan"]["schedule"] == \
            doc["planset"]["plans"][1]["schedule"]

    def test_plan_many_endpoint_validation(self, server):
        st, doc, _ = _request(server, "/plan_many", {"deadlines": 600})
        assert st == 400 and "sources" in doc["error"]
        st, doc, _ = _request(server, "/plan_many", {
            "sources": [1], "timeout": 5,
        })
        assert st == 400 and "unknown fields" in doc["error"]

    def test_plan_then_cached_replay(self, server):
        body = {"deadline": 600, "window": 2000, "seed": 3}
        st1, doc1, _ = _request(server, "/plan", body)
        st2, doc2, _ = _request(server, "/plan", body)
        assert st1 == st2 == 200
        assert not doc1["cached"] and doc2["cached"]
        assert doc1["plan"] == doc2["plan"]  # byte-identical replay
        _, stats, _ = _request(server, "/cache/stats")
        assert stats["hits"] >= 1

    def test_healthz_metrics_endpoints(self, server):
        st, health, _ = _request(server, "/healthz")
        assert st == 200 and health["status"] == "ok"
        assert health["traces"] == ["demo"]
        st, metrics, _ = _request(server, "/metrics")
        assert st == 200
        assert {"cache", "batcher", "requests", "uptime_seconds"} <= set(metrics)

    def test_errors(self, server):
        st, doc, _ = _request(server, "/plan", {"window": 2000})
        assert st == 400 and "deadline" in doc["error"]
        st, doc, _ = _request(server, "/plan", {"deadline": 600, "bogus": 1})
        assert st == 400 and "bogus" in doc["error"]
        st, doc, _ = _request(
            server, "/plan", {"deadline": 600, "trace": "nope"}
        )
        assert st == 404 and "nope" in doc["error"]
        st, doc, _ = _request(server, "/nothing")
        assert st == 404
        st, doc, _ = _request(
            server, "/plan", {"deadline": 600, "algorithm": "quantum"}
        )
        assert st == 400

    def test_overload_maps_to_429_with_retry_after(
        self, service_trace, monkeypatch
    ):
        svc = PlanningService({"demo": service_trace})

        def reject(key, compute):
            raise ServiceOverloaded("synthetic overload", retry_after=2.0)

        monkeypatch.setattr(svc.batcher, "submit", reject)
        srv = make_server(svc, port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            url = "http://%s:%d" % srv.server_address[:2]
            st, doc, headers = _request(url, "/plan", {"deadline": 600})
            assert st == 429
            assert headers.get("Retry-After") == "2"
        finally:
            srv.shutdown()
            srv.server_close()
            svc.close()

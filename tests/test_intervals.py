"""Interval algebra: unit behaviour + hypothesis laws."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet, merge_all
from repro.errors import IntervalError

# ----------------------------------------------------------------------
# Interval
# ----------------------------------------------------------------------
class TestInterval:
    def test_basic_properties(self):
        iv = Interval(1.0, 3.0)
        assert iv.length == 2.0
        assert not iv.empty
        assert 1.0 in iv
        assert 2.999 in iv
        assert 3.0 not in iv  # half-open
        assert 0.999 not in iv

    def test_degenerate_is_empty(self):
        assert Interval(2.0, 2.0).empty
        assert Interval(2.0, 2.0).length == 0.0

    def test_reversed_endpoints_rejected(self):
        with pytest.raises(IntervalError):
            Interval(3.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(IntervalError):
            Interval(math.nan, 1.0)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 2).overlaps(Interval(2, 3))  # adjacency ≠ overlap
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 2).intersection(Interval(3, 4)).empty

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))
        assert Interval(0, 1).contains_interval(Interval(5, 5))  # empty always

    def test_shift_and_clamp(self):
        assert Interval(1, 2).shift(3) == Interval(4, 5)
        assert Interval(0, 10).clamp(2, 5) == Interval(2, 5)


# ----------------------------------------------------------------------
# IntervalSet — unit behaviour
# ----------------------------------------------------------------------
class TestIntervalSet:
    def test_normalization_merges_overlaps(self):
        s = IntervalSet([(0, 2), (1, 3), (5, 6)])
        assert s.pairs == ((0.0, 3.0), (5.0, 6.0))

    def test_normalization_merges_adjacent(self):
        s = IntervalSet([(0, 1), (1, 2)])
        assert s.pairs == ((0.0, 2.0),)

    def test_empties_dropped(self):
        s = IntervalSet([(1, 1), (2, 2)])
        assert s.is_empty

    def test_membership(self):
        s = IntervalSet([(0, 1), (2, 3)])
        assert s.contains_point(0.5)
        assert not s.contains_point(1.5)
        assert s.contains_point(2.0)
        assert not s.contains_point(3.0)

    def test_covers_window(self):
        s = IntervalSet([(0, 10)])
        assert s.covers(2, 5)
        assert not s.covers(8, 12)
        assert s.covers(3, 3)  # degenerate → point membership

    def test_covers_rejects_reversed(self):
        with pytest.raises(IntervalError):
            IntervalSet([(0, 1)]).covers(2, 1)

    def test_interval_at(self):
        s = IntervalSet([(0, 1), (2, 3)])
        assert s.interval_at(2.5) == Interval(2, 3)
        with pytest.raises(IntervalError):
            s.interval_at(1.5)

    def test_next_start_after(self):
        s = IntervalSet([(0, 1), (5, 6)])
        assert s.next_start_after(0.0) == 5.0
        assert s.next_start_after(5.0) == math.inf

    def test_measure_and_span(self):
        s = IntervalSet([(0, 1), (2, 4)])
        assert s.measure == 3.0
        assert s.span == Interval(0, 4)

    def test_erode_is_rho_tau(self):
        s = IntervalSet([(0, 10), (20, 22)])
        e = s.erode(3.0)
        assert e.pairs == ((0.0, 7.0),)  # [20,22) too short for τ=3
        # t in erode(τ) ⟺ [t, t+τ] ⊆ presence
        assert e.contains_point(7.0 - 1e-9)
        assert not e.contains_point(7.0)

    def test_erode_zero_identity(self):
        s = IntervalSet([(0, 1)])
        assert s.erode(0.0) == s

    def test_erode_negative_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet([(0, 1)]).erode(-1.0)

    def test_complement(self):
        s = IntervalSet([(1, 2), (4, 5)])
        c = s.complement(0, 6)
        assert c.pairs == ((0.0, 1.0), (2.0, 4.0), (5.0, 6.0))

    def test_complement_of_empty(self):
        assert IntervalSet().complement(0, 3).pairs == ((0.0, 3.0),)

    def test_boundaries(self):
        s = IntervalSet([(0, 1), (3, 5)])
        assert s.boundaries() == (0.0, 1.0, 3.0, 5.0)
        assert s.boundaries_within(0.5, 4.0) == (1.0, 3.0)

    def test_merge_all(self):
        sets = [IntervalSet([(0, 1)]), IntervalSet([(1, 2)]), IntervalSet([(5, 6)])]
        assert merge_all(sets).pairs == ((0.0, 2.0), (5.0, 6.0))


# ----------------------------------------------------------------------
# IntervalSet — hypothesis laws
# ----------------------------------------------------------------------
finite = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@st.composite
def interval_sets(draw, max_components=6):
    k = draw(st.integers(0, max_components))
    pairs = []
    for _ in range(k):
        a = draw(finite)
        b = draw(finite)
        pairs.append((min(a, b), max(a, b)))
    return IntervalSet(pairs)


@given(interval_sets(), interval_sets())
def test_union_commutative(a, b):
    assert a | b == b | a


@given(interval_sets(), interval_sets(), interval_sets())
@settings(max_examples=50)
def test_union_associative(a, b, c):
    assert (a | b) | c == a | (b | c)


@given(interval_sets(), interval_sets())
def test_intersection_commutative(a, b):
    assert (a & b) == (b & a)


@given(interval_sets())
def test_union_idempotent(a):
    assert a | a == a


@given(interval_sets(), interval_sets(), finite)
def test_union_membership(a, b, t):
    assert (a | b).contains_point(t) == (a.contains_point(t) or b.contains_point(t))


@given(interval_sets(), interval_sets(), finite)
def test_intersection_membership(a, b, t):
    assert (a & b).contains_point(t) == (a.contains_point(t) and b.contains_point(t))


@given(interval_sets(), finite)
def test_complement_membership(a, t):
    c = a.complement(0.0, 1000.0)
    if t < 1000.0:
        assert c.contains_point(t) == (not a.contains_point(t))


@given(interval_sets())
def test_measure_additive_under_complement(a):
    c = a.complement(0.0, 1000.0)
    clamped = a.clamp(0.0, 1000.0)
    assert clamped.measure + c.measure == pytest.approx(1000.0)


@given(interval_sets(), st.floats(min_value=0.0, max_value=50.0, allow_nan=False), finite)
def test_erode_definition(a, tau, t):
    eroded = a.erode(tau)
    # Eroded membership ⟺ the closed window [t, t+τ] fits in the set.
    expected = a.covers(t, t + tau) if tau > 0 else a.contains_point(t)
    assert eroded.contains_point(t) == expected


@given(interval_sets(), interval_sets())
def test_normal_form_invariants(a, b):
    u = a | b
    pairs = u.pairs
    for s, e in pairs:
        assert s < e
    for (s1, e1), (s2, e2) in zip(pairs, pairs[1:]):
        assert e1 < s2  # disjoint AND non-adjacent

"""Mobility: random waypoint generation and position-trace queries."""

import numpy as np
import pytest

from repro.errors import GraphModelError
from repro.mobility import PositionTrace, RandomWaypoint


class TestPositionTrace:
    @pytest.fixture
    def linear_trace(self):
        # two nodes closing from distance 10 to 0 over 10 s
        times = np.array([0.0, 10.0])
        pos = np.array(
            [
                [[0.0, 0.0], [10.0, 0.0]],
                [[0.0, 0.0], [0.0, 0.0]],
            ]
        )
        return PositionTrace(times, pos)

    def test_validation(self):
        with pytest.raises(GraphModelError):
            PositionTrace(np.array([0.0]), np.zeros((1, 2, 2)))
        with pytest.raises(GraphModelError):
            PositionTrace(np.array([0.0, 0.0]), np.zeros((2, 2, 2)))
        with pytest.raises(GraphModelError):
            PositionTrace(np.array([0.0, 1.0]), np.zeros((2, 2, 3)))

    def test_interpolated_positions(self, linear_trace):
        p = linear_trace.position(1, 5.0)
        assert p == pytest.approx([5.0, 0.0])

    def test_distance(self, linear_trace):
        assert linear_trace.distance(0, 1, 0.0) == pytest.approx(10.0)
        assert linear_trace.distance(0, 1, 5.0) == pytest.approx(5.0)

    def test_distance_provider_floor(self, linear_trace):
        provider = linear_trace.distance_provider(min_distance=0.5)
        assert provider(0, 1, 10.0) == 0.5

    def test_extract_contacts(self, linear_trace):
        # refine sampling so thresholding at 4 m catches the approach
        times = np.linspace(0, 10, 11)
        pos = np.stack(
            [
                np.stack([linear_trace.position(0, t) for t in times]),
                np.stack([linear_trace.position(1, t) for t in times]),
            ],
            axis=1,
        )
        tr = PositionTrace(times, pos).extract_contacts(radio_range=4.0)
        assert tr.num_contacts == 1
        c = tr.contacts[0]
        assert c.start == pytest.approx(6.0)  # first sample with d ≤ 4

    def test_extract_contacts_invalid_range(self, linear_trace):
        with pytest.raises(GraphModelError):
            linear_trace.extract_contacts(0.0)


class TestRandomWaypoint:
    def test_validation(self):
        with pytest.raises(GraphModelError):
            RandomWaypoint(num_nodes=1)
        with pytest.raises(GraphModelError):
            RandomWaypoint(speed_range=(0.0, 1.0))
        with pytest.raises(GraphModelError):
            RandomWaypoint(pause_range=(5.0, 1.0))

    def test_positions_in_area(self):
        rw = RandomWaypoint(num_nodes=5, area=(50.0, 30.0))
        trace = rw.generate(horizon=600.0, sample_dt=10.0, seed=0)
        for node in trace.nodes:
            for t in (0.0, 100.0, 599.0):
                x, y = trace.position(node, t)
                assert -1e-9 <= x <= 50.0 + 1e-9
                assert -1e-9 <= y <= 30.0 + 1e-9

    def test_speed_bounded(self):
        rw = RandomWaypoint(num_nodes=3, speed_range=(1.0, 2.0), pause_range=(0.0, 0.0))
        trace = rw.generate(horizon=300.0, sample_dt=5.0, seed=1)
        for node in trace.nodes:
            for k in range(len(trace.times) - 1):
                d = np.linalg.norm(
                    trace.position(node, trace.times[k + 1])
                    - trace.position(node, trace.times[k])
                )
                dt = trace.times[k + 1] - trace.times[k]
                assert d <= 2.0 * dt + 1e-6  # never faster than max speed

    def test_reproducible(self):
        rw = RandomWaypoint(num_nodes=4)
        a = rw.generate(200.0, 10.0, seed=9)
        b = rw.generate(200.0, 10.0, seed=9)
        assert np.allclose(
            [a.position(0, 150.0), a.position(3, 150.0)],
            [b.position(0, 150.0), b.position(3, 150.0)],
        )

    def test_end_to_end_tveg_pipeline(self):
        # mobility → contacts → TVEG → scheduler (the second TVEG source)
        from repro.algorithms import make_scheduler
        from repro.channels import StaticChannel
        from repro.errors import InfeasibleError
        from repro.params import PAPER_PARAMS
        from repro.schedule import check_feasibility
        from repro.temporal.reachability import broadcast_feasible_sources
        from repro.tveg import TVEG

        rw = RandomWaypoint(num_nodes=6, area=(40.0, 40.0), speed_range=(1.0, 3.0))
        ptrace = rw.generate(horizon=900.0, sample_dt=5.0, seed=12)
        contacts = ptrace.extract_contacts(radio_range=12.0)
        tvg = contacts.to_tvg(horizon=900.0)
        feasible = broadcast_feasible_sources(tvg, 0.0, 900.0)
        if not feasible:
            pytest.skip("mobility draw produced no feasible source")
        src = sorted(feasible)[0]
        tveg = TVEG(tvg, StaticChannel(PAPER_PARAMS), ptrace.distance_provider())
        sched = make_scheduler("eedcb").schedule(tveg, src, 900.0)
        assert check_feasibility(tveg, sched, src, 900.0).feasible

"""Array-kernel parity and the unified ``compute=`` selection surface.

The :mod:`repro.compute` contract is stronger than "same answer": the
numpy kernels must be *byte-identical* to the stdlib path — same
schedules, same work counters, same ``config_hash`` — for every
scheduler, because kernel selection is a performance knob that must never
change a plan's identity.  These tests pin that contract over random
traces, the ``plan_broadcast_many ≡ N × plan_broadcast`` equivalence, the
``compute=`` resolution rules (aliases, env var, missing numpy), the
``retarget``/aux-cache reuse the batch API rides on, and the
``TVEG.clear_caches`` invalidation satellite.
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.compute as compute_mod
from repro import obs, plan_broadcast, plan_broadcast_many
from repro.algorithms import make_scheduler
from repro.api import BroadcastPlanSet
from repro.auxgraph import build_compact_aux_graph
from repro.compute import (
    COMPUTE_ENV_VAR,
    canonical_compute_name,
    resolve_compute,
)
from repro.compute.numpy_backend import build_numpy_aux_graph
from repro.errors import GraphModelError, InfeasibleError, SolverError
from repro.schedule import (
    doc_to_planset,
    planset_to_doc,
    read_planset_json,
    write_planset_json,
)
from repro.steiner import solve_memt
from repro.traces import Contact, ContactTrace
from repro.tveg import tveg_from_trace

from .conftest import make_random_instance

NODES = 5
HORIZON = 120.0

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: info keys legitimately differing between kernels (identity-neutral)
VOLATILE_INFO = ("stage_seconds", "backend", "compute")
#: manifest keys that vary run-to-run
VOLATILE_MANIFEST = ("created_unix", "wall_seconds")


@st.composite
def contact_traces(draw):
    """Random small contact traces over 5 nodes and a 120 s horizon."""
    n_contacts = draw(st.integers(4, 14))
    contacts = []
    for _ in range(n_contacts):
        u = draw(st.integers(0, NODES - 1))
        v = draw(st.integers(0, NODES - 1))
        if u == v:
            continue
        start = draw(st.floats(0.0, HORIZON - 10.0))
        dur = draw(st.floats(5.0, 50.0))
        contacts.append(Contact(start, min(start + dur, HORIZON), u, v))
    return ContactTrace(contacts, nodes=tuple(range(NODES)), horizon=HORIZON)


def _strip(mapping, volatile):
    return {k: v for k, v in mapping.items() if k not in volatile}


def _plan_or_infeasible(trace, algorithm, channel, compute):
    try:
        return plan_broadcast(
            trace, None, HORIZON, algorithm=algorithm, channel=channel,
            seed=11, compute=compute,
        )
    except InfeasibleError as exc:
        return ("infeasible", str(exc))


def assert_plans_identical(a, b):
    assert a.schedule.transmissions == b.schedule.transmissions
    assert a.feasibility == b.feasibility
    assert _strip(a.info, VOLATILE_INFO) == _strip(b.info, VOLATILE_INFO)
    assert a.manifest["config_hash"] == b.manifest["config_hash"]
    assert _strip(a.manifest, VOLATILE_MANIFEST) == _strip(
        b.manifest, VOLATILE_MANIFEST
    )


# ----------------------------------------------------------------------
# kernel parity, all schedulers
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm", ("eedcb", "fr-eedcb", "greed", "fr-greed", "rand",
                  "fr-rand", "oracle")
)
@given(contact_traces())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_python_and_numpy_plans_byte_identical(algorithm, trace):
    channel = "rayleigh" if algorithm.startswith("fr-") else "static"
    py = _plan_or_infeasible(trace, algorithm, channel, "python")
    np_ = _plan_or_infeasible(trace, algorithm, channel, "numpy")
    if isinstance(py, tuple):
        assert np_ == py  # same InfeasibleError message
        return
    if algorithm in ("eedcb", "fr-eedcb"):
        # only the EEDCB family has an array-kernel stage to report
        assert py.info["compute"] == "python"
        assert np_.info["compute"] == "numpy"
    assert_plans_identical(py, np_)


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_numpy_builder_matches_compact_builder(trace, seed):
    tveg = tveg_from_trace(trace, "static", seed=seed)
    ca = build_compact_aux_graph(tveg, 0, HORIZON)
    na = build_numpy_aux_graph(tveg, 0, HORIZON)
    assert list(na.aux_nodes) == list(ca.aux_nodes)
    assert list(na.indptr) == list(ca.indptr)
    assert list(na.targets) == list(ca.targets)
    assert list(na.weights) == list(ca.weights)
    assert na.root == ca.root and na.root_index == ca.root_index
    assert na.terminals == ca.terminals
    assert na.terminal_indices == ca.terminal_indices
    assert na.cost_sets == ca.cost_sets
    for method in ("greedy", "sptree"):
        try:
            e_c = solve_memt(ca, ca.root, ca.terminals, method=method)
        except InfeasibleError:
            with pytest.raises(InfeasibleError):
                solve_memt(na, na.root, na.terminals, method=method)
            continue
        assert solve_memt(na, na.root, na.terminals, method=method) == e_c


# ----------------------------------------------------------------------
# batch API ≡ N single plans
# ----------------------------------------------------------------------


@given(contact_traces())
@slow
def test_plan_many_equals_n_single_plans(trace):
    sources = [None, 0, 2]
    singles, first_err = [], None
    for src in sources:
        try:
            singles.append(plan_broadcast(trace, src, HORIZON, seed=11))
        except InfeasibleError as exc:
            first_err = str(exc)
            break
    try:
        planset = plan_broadcast_many(trace, sources, HORIZON, seed=11)
    except InfeasibleError as exc:
        # the batch fails exactly where the singles first would
        assert str(exc) == first_err
        return
    assert first_err is None
    assert isinstance(planset, BroadcastPlanSet)
    assert len(planset) == len(sources)
    for single, batch_plan in zip(singles, planset):
        assert_plans_identical(single, batch_plan)


def test_plan_many_mixed_deadlines_and_validation():
    trace, _ = make_random_instance(seed=5)
    planset = plan_broadcast_many(trace, [0, 0], [300.0, 250.0], seed=5)
    assert planset[0].deadline == 300.0 and planset[1].deadline == 250.0
    assert (planset[0].manifest["config_hash"]
            != planset[1].manifest["config_hash"])
    with pytest.raises(ValueError):
        plan_broadcast_many(trace, [0, 1], [300.0], seed=5)


def test_planset_sequence_protocol():
    trace, _ = make_random_instance(seed=5)
    planset = plan_broadcast_many(trace, [0, 0, 0], [300.0, 280.0, 260.0])
    assert len(planset) == 3
    assert list(planset)[1] is planset[1]
    sliced = planset[1:]
    assert isinstance(sliced, BroadcastPlanSet) and len(sliced) == 2
    assert sliced[0] is planset[1]
    assert planset.total_cost == pytest.approx(
        sum(p.schedule.total_cost for p in planset)
    )
    assert planset.feasible == all(p.feasible for p in planset)


# ----------------------------------------------------------------------
# planset serialization round-trip
# ----------------------------------------------------------------------


def test_planset_json_round_trip(tmp_path):
    trace, tveg = make_random_instance(seed=5)
    planset = plan_broadcast_many(tveg, [0, 0], [300.0, 260.0], seed=5)
    path = tmp_path / "planset.json"
    write_planset_json(planset, path)
    doc = read_planset_json(path)
    assert doc["schema"] == "repro.planset/1"
    replayed = doc_to_planset(doc, tveg)
    assert len(replayed) == len(planset)
    for orig, back in zip(planset, replayed):
        assert back.schedule.transmissions == orig.schedule.transmissions
        assert back.feasibility == orig.feasibility
        assert back.info == orig.info
        assert back.manifest == orig.manifest
    # the document itself round-trips byte-for-byte
    assert planset_to_doc(replayed) == doc


def test_planset_doc_rejects_wrong_schema_and_tveg_count():
    trace, tveg = make_random_instance(seed=5)
    planset = plan_broadcast_many(tveg, [0], 300.0, seed=5)
    doc = planset_to_doc(planset)
    from repro.errors import TraceFormatError

    with pytest.raises(TraceFormatError):
        doc_to_planset({"schema": "repro.plan/1", "plans": []}, tveg)
    with pytest.raises(TraceFormatError):
        doc_to_planset(doc, [tveg, tveg])


# ----------------------------------------------------------------------
# compute= resolution rules
# ----------------------------------------------------------------------


class TestComputeResolution:
    def test_canonical_names_and_aliases(self):
        assert canonical_compute_name(None) == "auto"
        assert canonical_compute_name("NumPy") == "numpy"
        assert canonical_compute_name("np") == "numpy"
        assert canonical_compute_name("vectorized") == "numpy"
        assert canonical_compute_name("stdlib") == "python"
        assert canonical_compute_name("pure") == "python"
        assert canonical_compute_name("default") == "auto"
        with pytest.raises(SolverError):
            canonical_compute_name("fortran")

    def test_auto_prefers_numpy_when_importable(self, monkeypatch):
        monkeypatch.delenv(COMPUTE_ENV_VAR, raising=False)
        monkeypatch.setattr(compute_mod, "_HAS_NUMPY", True)
        assert resolve_compute(None) == "numpy"
        assert resolve_compute("auto") == "numpy"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.delenv(COMPUTE_ENV_VAR, raising=False)
        monkeypatch.setattr(compute_mod, "_HAS_NUMPY", False)
        assert resolve_compute(None) == "python"

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv(COMPUTE_ENV_VAR, "python")
        assert resolve_compute(None) == "python"
        assert resolve_compute("auto") == "python"
        # ...but an explicit request wins over the environment
        monkeypatch.setattr(compute_mod, "_HAS_NUMPY", True)
        assert resolve_compute("numpy") == "numpy"

    def test_explicit_numpy_without_numpy_errors(self, monkeypatch):
        monkeypatch.setattr(compute_mod, "_HAS_NUMPY", False)
        with pytest.raises(SolverError, match=r"repro\[fast\]"):
            resolve_compute("numpy")

    def test_nx_backend_with_numpy_compute_rejected(self):
        with pytest.raises(SolverError):
            make_scheduler("eedcb", backend="nx", compute="numpy")

    def test_legacy_backend_kwarg_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="compute="):
            make_scheduler("eedcb", backend="compact")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            make_scheduler("eedcb", compute="python")  # no warning

    def test_bare_scheduler_stays_python(self):
        assert make_scheduler("eedcb")._mode == "python"


# ----------------------------------------------------------------------
# retarget + the TVEG aux cache
# ----------------------------------------------------------------------


class TestRetargetAndAuxCache:
    def test_retarget_equals_fresh_build(self, det_static):
        base = build_compact_aux_graph(det_static, 0, det_static.horizon)
        fresh = build_compact_aux_graph(det_static, 1, det_static.horizon)
        moved = base.retarget(1)
        assert moved.root == fresh.root
        assert moved.root_index == fresh.root_index
        assert moved.terminals == fresh.terminals
        assert moved.terminal_indices == fresh.terminal_indices
        # the arrays are shared, not copied
        assert moved.targets is base.targets
        assert moved.weights is base.weights
        assert moved.indptr is base.indptr
        e1 = solve_memt(fresh, fresh.root, fresh.terminals, method="greedy")
        e2 = solve_memt(moved, moved.root, moved.terminals, method="greedy")
        assert e1 == e2

    def test_retarget_rejects_unknown_nodes(self, det_static):
        base = build_compact_aux_graph(det_static, 0, det_static.horizon)
        with pytest.raises(GraphModelError):
            base.retarget("nope")
        with pytest.raises(GraphModelError):
            base.retarget(0, targets=("nope",))

    @pytest.mark.parametrize("compute", ("python", "numpy"))
    def test_second_source_reuses_cached_aux_graph(self, compute):
        _, tveg = make_random_instance(seed=5)
        counter = ("auxgraph.compact_builds" if compute == "python"
                   else "auxgraph.numpy_builds")
        obs.enable()
        try:
            before = obs.snapshot().counters.get(counter, 0)
            r0 = make_scheduler("eedcb", compute=compute).run(tveg, 0, 300.0)
            r1 = make_scheduler("eedcb", compute=compute).run(tveg, 1, 300.0)
            after = obs.snapshot().counters.get(counter, 0)
        finally:
            obs.disable()
        assert after - before == 1  # second source retargets the cached aux
        assert r0.schedule.transmissions != () or r1 is not None

    def test_aux_cache_invalidated_by_clear_caches(self):
        _, tveg = make_random_instance(seed=5)
        make_scheduler("eedcb", compute="python").run(tveg, 0, 300.0)
        assert len(tveg.aux_cache()) == 1
        tveg.clear_caches()
        assert len(tveg.aux_cache()) == 0


# ----------------------------------------------------------------------
# clear_caches invalidates every derived cache (satellite fix)
# ----------------------------------------------------------------------


def test_clear_caches_clears_compute_and_event_caches():
    _, tveg = make_random_instance(seed=5)
    # warm every cache layer
    make_scheduler("eedcb", compute="numpy").run(tveg, 0, 300.0)
    tveg.tvg.adjacency_events(0)
    assert tveg.compute_cache()
    assert tveg.aux_cache()
    assert tveg.tvg._events
    tveg.clear_caches()
    assert not tveg.compute_cache()
    assert not tveg.aux_cache()
    assert not tveg.tvg._events
    assert not tveg.dcs_memo()
    # the graph still plans correctly after the purge, cold
    r = make_scheduler("eedcb", compute="numpy").run(tveg, 0, 300.0)
    assert r.schedule is not None

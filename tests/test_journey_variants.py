"""Shortest and fastest journeys (completing [8]'s foremost trio)."""

import math

import pytest

from repro.errors import GraphModelError
from repro.temporal import fastest_journey, foremost_journey, shortest_journey
from repro.temporal.tvg import TVG


@pytest.fixture
def trio_tvg():
    """Foremost, shortest and fastest journeys all differ from 0 to 3.

    * 2-hop chain via 1: (0,1) at [0,5), (1,3) at [10,15) — arrives 10,
      2 hops, duration 10 (departs 0).
    * direct contact (0,3) at [20,25) — 1 hop, arrives 20, duration 0.
    * so: foremost = via 1 (arrival 10); shortest = direct (1 hop);
      fastest = direct (duration 0 vs 10).
    """
    g = TVG([0, 1, 3], 40.0)
    g.add_contact(0, 1, 0.0, 5.0)
    g.add_contact(1, 3, 10.0, 15.0)
    g.add_contact(0, 3, 20.0, 25.0)
    return g


class TestShortestJourney:
    def test_minimizes_hops(self, trio_tvg):
        j = shortest_journey(trio_tvg, 0, 3)
        assert j is not None
        assert j.topological_length == 1
        assert j.departure == 20.0
        assert j.is_valid(trio_tvg)

    def test_foremost_differs(self, trio_tvg):
        f = foremost_journey(trio_tvg, 0, 3)
        assert f.topological_length == 2
        assert f.arrival(trio_tvg.tau) == 10.0

    def test_deadline_forces_more_hops(self, trio_tvg):
        # by t = 15 only the 2-hop chain exists
        j = shortest_journey(trio_tvg, 0, 3, deadline=15.0)
        assert j.topological_length == 2
        assert j.is_valid(trio_tvg)

    def test_unreachable(self, trio_tvg):
        assert shortest_journey(trio_tvg, 0, 3, deadline=5.0) is None

    def test_validation(self, trio_tvg):
        with pytest.raises(GraphModelError):
            shortest_journey(trio_tvg, 0, 0)
        with pytest.raises(GraphModelError):
            shortest_journey(trio_tvg, 0, 99)

    def test_among_min_hops_earliest_arrival(self):
        # two 1-hop options at different times → the earlier one wins
        g = TVG([0, 1], 40.0)
        g.add_contact(0, 1, 5.0, 6.0)
        g.add_contact(0, 1, 20.0, 21.0)
        j = shortest_journey(g, 0, 1)
        assert j.departure == 5.0


class TestFastestJourney:
    def test_minimizes_duration(self, trio_tvg):
        j = fastest_journey(trio_tvg, 0, 3)
        assert j is not None
        assert j.topological_length == 1
        assert j.departure == 20.0
        duration = j.arrival(trio_tvg.tau) - j.departure
        assert duration == 0.0  # τ = 0 single hop

    def test_respects_start_time(self, trio_tvg):
        # departing only after 26 the direct contact is gone → unreachable
        assert fastest_journey(trio_tvg, 0, 3, start_time=26.0) is None

    def test_waiting_inside_journey_counts(self):
        # departing later skips the mid-journey wait
        g = TVG([0, 1, 2], 60.0, tau=1.0)
        g.add_contact(0, 1, 0.0, 30.0)
        g.add_contact(1, 2, 20.0, 30.0)
        j = fastest_journey(g, 0, 2)
        assert j is not None
        # best: depart ~19/20 so the relay hop chains without waiting
        duration = j.arrival(g.tau) - j.departure
        assert duration == pytest.approx(2.0)  # two hops of τ = 1, no wait

    def test_validation(self, trio_tvg):
        with pytest.raises(GraphModelError):
            fastest_journey(trio_tvg, 0, 0)

    def test_matches_foremost_when_single_option(self):
        g = TVG([0, 1], 10.0)
        g.add_contact(0, 1, 3.0, 4.0)
        f = fastest_journey(g, 0, 1)
        m = foremost_journey(g, 0, 1)
        assert f.departure == m.departure == 3.0

"""DTS theory (Section V): partitions, status points, DTS construction."""

import pytest

from repro.dts import (
    adjacent_partition,
    all_adjacent_partitions,
    build_dts,
    pair_partition,
    status_points,
)
from repro.temporal.tvg import TVG


class TestPairPartition:
    def test_deterministic_trace(self, det_tvg):
        # edge (0,1): presence [0,30) ∪ [60,100) → boundaries 0,30,60,100
        p = pair_partition(det_tvg, 0, 1)
        assert p.points == (0.0, 30.0, 60.0, 100.0)

    def test_alternating_intervals(self, det_tvg):
        # each interval is fully adjacent or fully non-adjacent
        p = pair_partition(det_tvg, 0, 1)
        adj = det_tvg.adjacency_set(0, 1)
        for iv in p.intervals():
            mid = (iv.start + iv.end) / 2
            inside = adj.contains_point(mid)
            assert adj.contains_point(iv.start + 1e-9) == inside

    def test_never_adjacent_pair(self, det_tvg):
        p = pair_partition(det_tvg, 0, 2)
        assert p.points == (0.0, 100.0)

    def test_deadline_clips(self, det_tvg):
        p = pair_partition(det_tvg, 0, 1, deadline=50.0)
        assert p.points == (0.0, 30.0, 50.0)


class TestAdjacentPartition:
    def test_matches_paper_eq9(self, det_tvg):
        # P^ad_0 = P^ad_{0,1} ∪ P^ad_{0,2} ∪ P^ad_{0,3}
        p0 = adjacent_partition(det_tvg, 0)
        assert p0.points == (0.0, 10.0, 25.0, 30.0, 60.0, 100.0)

    def test_neighbor_set_constant_inside_intervals(self, det_tvg):
        for node in det_tvg.nodes:
            p = adjacent_partition(det_tvg, node)
            for iv in p.intervals():
                probes = [iv.start + f * (iv.end - iv.start) for f in (1e-6, 0.5, 1 - 1e-6)]
                sets = [frozenset(det_tvg.neighbors(node, t)) for t in probes]
                assert len(set(sets)) == 1

    def test_all_adjacent_partitions_consistent(self, det_tvg):
        allp = all_adjacent_partitions(det_tvg)
        for node in det_tvg.nodes:
            assert allp[node] == adjacent_partition(det_tvg, node)


class TestStatusPoints:
    def test_tau_zero_is_boundary_union(self, det_tvg):
        pts = status_points(det_tvg)
        assert set(pts) == {0.0, 10.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 80.0, 100.0}

    def test_tau_positive_triggers_shifts(self):
        g = TVG([0, 1, 2], 100.0, tau=5.0)
        g.add_contact(0, 1, 10.0, 30.0)
        g.add_contact(1, 2, 10.0, 30.0)
        pts = status_points(g)
        assert 10.0 in pts
        assert 15.0 in pts  # 10 + τ
        assert 20.0 in pts  # 10 + 2τ (journey depth 2)

    def test_deadline_clips(self, det_tvg):
        pts = status_points(det_tvg, deadline=35.0)
        assert max(pts) <= 35.0

    def test_max_depth_limits_triggers(self):
        g = TVG([0, 1, 2, 3, 4], 1000.0, tau=7.0)
        g.add_contact(0, 1, 0.0, 1000.0)
        pts1 = status_points(g, max_depth=1)
        pts4 = status_points(g, max_depth=4)
        assert len(pts4) > len(pts1)


class TestBuildDTS:
    def test_points_contain_adjacency_starts(self, det_tvg):
        dts = build_dts(det_tvg)
        # node 0's contact starts must be transmission opportunities
        pts = dts.points(0)
        for t in (0.0, 10.0, 60.0):
            assert t in pts

    def test_pruning_drops_isolated_points(self, det_tvg):
        dts = build_dts(det_tvg, prune=True)
        # node 2 has contacts only during [20,50) and [40,80) → [20,80);
        # e.g. the global point 10.0 is useless for node 2
        assert 10.0 not in dts.points(2)
        unpruned = build_dts(det_tvg, prune=False)
        assert 10.0 in unpruned.points(2)

    def test_pruned_subset_of_unpruned(self, det_tvg):
        pruned = build_dts(det_tvg, prune=True)
        unpruned = build_dts(det_tvg, prune=False)
        for n in det_tvg.nodes:
            assert set(pruned.points(n)) <= set(unpruned.points(n))

    def test_span_endpoints_always_present(self, det_tvg):
        dts = build_dts(det_tvg, deadline=70.0)
        for n in det_tvg.nodes:
            assert dts.points(n)[0] == 0.0
            assert dts.points(n)[-1] == 70.0

    def test_contains(self, det_tvg):
        dts = build_dts(det_tvg)
        assert dts.contains(0, 10.0)
        assert dts.contains(0, 10.0 + 1e-12)
        assert not dts.contains(0, 11.0)

    def test_total_points(self, det_tvg):
        dts = build_dts(det_tvg)
        assert dts.total_points() == sum(len(dts.points(n)) for n in det_tvg.nodes)

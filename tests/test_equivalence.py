"""Theorem 5.2 equivalence experiments: DTS schedules lose nothing.

The theorem says continuous-time TMEDB and TMEDB-on-DTS have the same
feasibility (and hence, with costs from the DCS, the same optimum).  We
verify constructively on small random instances:

* the oracle (exact, searches only DTS times / DCS costs) is never beaten by
  schedules drawn on a *fine uniform grid* of off-DTS times — i.e.
  restricting to the DTS costs nothing;
* every feasible continuous-time schedule normalizes onto the DTS via the
  ET-law with unchanged cost and preserved feasibility (Prop. 5.1).
"""

import numpy as np
import pytest

from repro.algorithms import make_scheduler
from repro.dts import apply_et_law, build_dts
from repro.errors import InfeasibleError
from repro.schedule import Schedule, Transmission, check_feasibility
from repro.tveg.costsets import discrete_cost_set

from .conftest import make_random_instance


def _grid_schedules(tveg, source, deadline, rng, num_samples=60):
    """Random feasible schedules whose times live OFF the DTS grid.

    Draws uniform times within contacts and covers greedily; returns the
    cheapest feasible one found (None if none was feasible).
    """
    best = None
    nodes = list(tveg.nodes)
    for _ in range(num_samples):
        informed = {source}
        rows = []
        # random event-driven flood at jittered (non-DTS) times
        for _ in range(4 * len(nodes)):
            if len(informed) == len(nodes):
                break
            t = float(rng.uniform(0.0, deadline))
            relays = [r for r in informed]
            rng.shuffle(relays)
            for r in relays:
                dcs = discrete_cost_set(tveg, r, t)
                new = [v for v in dcs.neighbors if v not in informed]
                if not new:
                    continue
                w = dcs.cost_to_cover(new)
                rows.append(Transmission(r, t, w))
                informed.update(dcs.coverage(w))
                break
        if len(informed) != len(nodes):
            continue
        sched = Schedule(rows)
        if check_feasibility(tveg, sched, source, deadline).feasible:
            if best is None or sched.total_cost < best.total_cost:
                best = sched
    return best


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_oracle_on_dts_beats_off_grid_schedules(seed):
    _, tveg = make_random_instance(num_nodes=5, horizon=150.0, seed=seed)
    try:
        opt = make_scheduler("oracle").run(tveg, 0, 150.0)
    except InfeasibleError:
        pytest.skip("instance infeasible")
    rng = np.random.default_rng(seed)
    off_grid = _grid_schedules(tveg, 0, 150.0, rng)
    if off_grid is None:
        pytest.skip("no feasible off-grid schedule sampled")
    # Thm 5.2: the DTS-restricted optimum is a global optimum.
    assert opt.schedule.total_cost <= off_grid.total_cost + 1e-18


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_et_law_normalizes_onto_dts_with_same_cost(seed):
    _, tveg = make_random_instance(num_nodes=5, horizon=150.0, seed=seed)
    rng = np.random.default_rng(100 + seed)
    sched = _grid_schedules(tveg, 0, 150.0, rng, num_samples=40)
    if sched is None:
        pytest.skip("no feasible off-grid schedule sampled")
    normalized = apply_et_law(tveg, sched, 0)
    # Prop. 5.1: feasibility preserved, cost untouched, times on the DTS.
    assert check_feasibility(tveg, normalized, 0, 150.0).feasible
    assert normalized.total_cost == pytest.approx(sched.total_cost)
    dts = build_dts(tveg.tvg, 150.0)
    for s in normalized:
        assert dts.contains(s.relay, s.time), (s, dts.points(s.relay))

"""Observability subsystem: tracer semantics, aggregation, exporters, and
the guarantee that instrumentation does not perturb scheduler results."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro import check_feasibility, make_scheduler, obs
from repro.obs import (
    MetricsReport,
    NoopTracer,
    Tracer,
    aggregate,
    chrome_trace_document,
    percentile,
    write_chrome_trace,
    write_metrics_csv,
)

from .conftest import make_random_instance


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Every test starts and ends with tracing disabled."""
    obs.disable()
    yield
    obs.disable()


class TestTracer:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert isinstance(obs.get_tracer(), NoopTracer)

    def test_enable_disable_roundtrip(self):
        tracer = obs.enable()
        assert obs.is_enabled()
        assert obs.get_tracer() is tracer
        # enabling again keeps the same tracer (and its recorded data)
        assert obs.enable() is tracer
        obs.disable()
        assert not obs.is_enabled()

    def test_span_nesting_depth_and_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("middle"):
                with obs.span("inner"):
                    pass
            with obs.span("sibling"):
                pass
        snap = obs.snapshot()
        by_name = {s.name: s for s in snap.spans}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["inner"].depth == 2
        assert by_name["sibling"].depth == 1
        assert by_name["inner"].parent == by_name["middle"].id
        assert by_name["middle"].parent == by_name["outer"].id
        assert by_name["sibling"].parent == by_name["outer"].id
        assert by_name["outer"].parent is None
        for s in snap.spans:
            assert s.duration is not None and s.duration >= 0.0

    def test_span_decorator_late_binding(self):
        @obs.span("decorated.fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2  # disabled: records nothing, still works
        assert not obs.snapshot().spans
        obs.enable()
        assert fn(2) == 3  # enabled after decoration: now records
        assert [s.name for s in obs.snapshot().spans] == ["decorated.fn"]

    def test_span_records_attrs_and_exceptions(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom", kind="test"):
                raise ValueError("x")
        (span,) = obs.snapshot().spans
        assert span.name == "boom"
        assert span.attrs["kind"] == "test"
        assert span.duration is not None  # closed despite the exception

    def test_counters_and_gauges(self):
        obs.enable()
        obs.counter("hits")
        obs.counter("hits", 2)
        obs.counter("bytes", 0.5)
        obs.gauge("nodes", 10)
        obs.gauge("nodes", 12)  # last write wins
        snap = obs.snapshot()
        assert snap.counters == {"hits": 3.0, "bytes": 0.5}
        assert snap.gauges == {"nodes": 12.0}

    def test_noop_tracer_records_nothing(self):
        with obs.span("ignored"):
            obs.counter("ignored")
            obs.gauge("ignored", 1)
        snap = obs.snapshot()
        assert not snap.spans and not snap.counters and not snap.gauges

    def test_reset_clears_recorded_data(self):
        obs.enable()
        with obs.span("a"):
            obs.counter("c")
        obs.reset()
        snap = obs.snapshot()
        assert not snap.spans and not snap.counters

    def test_snapshot_excludes_open_spans(self):
        tracer = Tracer()
        with tracer.span("open"):
            assert tracer.snapshot().spans == ()
        assert [s.name for s in tracer.snapshot().spans] == ["open"]

    def test_stage_helper_times_even_when_disabled(self):
        sink = {}
        with obs.stage(sink, "phase1"):
            pass
        with obs.stage(sink, "phase1"):  # accumulates
            pass
        assert sink["phase1"] >= 0.0
        assert not obs.snapshot().spans  # no tracer → no span
        obs.enable()
        with obs.stage(sink, "phase2", "pretty.name"):
            pass
        assert "phase2" in sink
        assert [s.name for s in obs.snapshot().spans] == ["pretty.name"]


class TestMetrics:
    def test_percentile_interpolation(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 100) == 4.0
        assert percentile(vals, 50) == pytest.approx(2.5)

    def test_aggregate_groups_spans_by_name(self):
        obs.enable()
        for _ in range(5):
            with obs.span("work"):
                pass
        obs.counter("n", 7)
        obs.gauge("g", 3.0)
        report = aggregate(obs.snapshot())
        assert isinstance(report, MetricsReport)
        assert set(report.timers) == {"work"}
        hist = report.timers["work"]
        assert hist.count == 5
        assert hist.minimum <= hist.percentile(50) <= hist.maximum
        assert report.counters == {"n": 7.0}
        assert report.gauges == {"g": 3.0}
        (timer_row,) = [r for r in report.rows() if r.kind == "timer"]
        assert (timer_row.name, timer_row.count) == ("work", 5)
        assert timer_row.p50 <= timer_row.p90 <= timer_row.p99

    def test_rows_ordering(self):
        obs.enable()
        with obs.span("t"):
            pass
        obs.counter("c")
        obs.gauge("g", 1)
        kinds = [r.kind for r in aggregate(obs.snapshot()).rows()]
        assert kinds == ["timer", "counter", "gauge"]


class TestExport:
    def _sample_snapshot(self):
        obs.enable()
        with obs.span("outer", algorithm="eedcb"):
            with obs.span("inner"):
                pass
        obs.counter("events", 3)
        obs.gauge("size", 42)
        return obs.snapshot()

    def test_chrome_trace_json_roundtrip(self, tmp_path):
        snap = self._sample_snapshot()
        path = tmp_path / "trace.json"
        write_chrome_trace(snap, path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            # Chrome requires these keys; ts/dur are microseconds
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["dur"] >= 0
        outer = next(e for e in complete if e["name"] == "outer")
        inner = next(e for e in complete if e["name"] == "inner")
        assert outer["args"]["algorithm"] == "eedcb"
        assert outer["ts"] <= inner["ts"]
        assert doc["otherData"]["counters"]["events"] == 3.0

    def test_chrome_trace_document_counts(self):
        snap = self._sample_snapshot()
        doc = chrome_trace_document(snap)
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 2

    def test_metrics_csv_roundtrip(self, tmp_path):
        snap = self._sample_snapshot()
        path = tmp_path / "metrics.csv"
        write_metrics_csv(snap, path)
        rows = list(csv.DictReader(path.open()))
        assert rows, "csv must not be empty"
        by_key = {(r["kind"], r["name"]): r for r in rows}
        assert float(by_key[("counter", "events")]["total"]) == 3.0
        assert float(by_key[("gauge", "size")]["total"]) == 42.0
        timer = by_key[("timer", "outer")]
        assert int(timer["count"]) == 1
        assert float(timer["min"]) <= float(timer["p50"]) <= float(timer["max"])

    def test_export_accepts_open_files(self):
        snap = self._sample_snapshot()
        buf = io.StringIO()
        write_metrics_csv(snap, buf)
        assert buf.getvalue().startswith("kind,name,count,total")
        buf2 = io.StringIO()
        write_chrome_trace(snap, buf2)
        assert json.loads(buf2.getvalue())["traceEvents"]


class TestInstrumentedPipeline:
    def test_scheduler_result_identical_with_and_without_tracing(self):
        _, tveg = make_random_instance(seed=2)
        baseline = make_scheduler("eedcb").run(tveg, 0, 300.0)
        obs.enable()
        traced = make_scheduler("eedcb").run(tveg, 0, 300.0)
        obs.disable()
        again = make_scheduler("eedcb").run(tveg, 0, 300.0)
        assert baseline.schedule == traced.schedule == again.schedule
        for key in ("aux_nodes", "aux_edges", "dts_points", "dcs_levels",
                    "steiner_expansions", "tree_cost"):
            assert baseline.info[key] == traced.info[key] == again.info[key]

    def test_standardized_info_keys_present(self):
        _, tveg = make_random_instance(seed=2)
        info = make_scheduler("eedcb").run(tveg, 0, 300.0).info
        for key in ("stage_seconds", "aux_nodes", "aux_edges", "dts_points",
                    "dcs_levels", "steiner_expansions", "memt_method",
                    "tree_cost", "raw_cost"):
            assert key in info, key
        stages = info["stage_seconds"]
        for stage in ("reachability", "dts", "auxgraph", "steiner",
                      "extract", "reduce"):
            assert stages[stage] >= 0.0

    def test_fr_pipeline_reports_allocation_metrics(self):
        _, tveg = make_random_instance(seed=2, channel="rayleigh")
        info = make_scheduler("fr-eedcb").run(tveg, 0, 300.0).info
        assert info["nlp_iterations"] >= 0
        assert "allocation" in info["stage_seconds"]

    def test_pipeline_spans_and_counters_recorded(self):
        _, tveg = make_random_instance(seed=2)
        obs.enable()
        result = make_scheduler("eedcb").run(tveg, 0, 300.0)
        check_feasibility(tveg, result.schedule, 0, 300.0)
        snap = obs.snapshot()
        names = set(snap.span_names)
        assert {"scheduler.run", "eedcb.steiner", "auxgraph.compact_build",
                "steiner.solve_memt"} <= names
        assert snap.counters.get("auxgraph.compact_builds") == 1.0
        assert snap.counters.get("steiner.expansions", 0) > 0
        assert snap.gauges.get("auxgraph.nodes") == float(result.info["aux_nodes"])

    def test_nx_backend_spans_and_counters_recorded(self):
        _, tveg = make_random_instance(seed=2)
        obs.enable()
        result = make_scheduler("eedcb", backend="nx").run(tveg, 0, 300.0)
        snap = obs.snapshot()
        assert "auxgraph.build" in set(snap.span_names)
        assert snap.counters.get("auxgraph.builds") == 1.0
        assert snap.gauges.get("auxgraph.nodes") == float(result.info["aux_nodes"])

"""Schedule data model (Section IV's S = [R, T, W])."""

import pytest

from repro.errors import ScheduleError
from repro.schedule import Schedule, Transmission


class TestTransmission:
    def test_validation(self):
        with pytest.raises(ScheduleError):
            Transmission(0, -1.0, 1.0)
        with pytest.raises(ScheduleError):
            Transmission(0, 1.0, -1.0)
        with pytest.raises(ScheduleError):
            Transmission(0, float("nan"), 1.0)

    def test_with_cost_time(self):
        s = Transmission(0, 1.0, 2.0)
        assert s.with_cost(5.0) == Transmission(0, 1.0, 5.0)
        assert s.with_time(9.0) == Transmission(0, 9.0, 2.0)


class TestSchedule:
    def test_sorted_by_time(self):
        s = Schedule([Transmission(1, 5.0, 1.0), Transmission(0, 2.0, 1.0)])
        assert s.times == (2.0, 5.0)
        assert s.relays == (0, 1)

    def test_from_arrays_matches_paper_vectors(self):
        s = Schedule.from_arrays([0, 1], [1.0, 2.0], [0.5, 0.25])
        assert s.total_cost == pytest.approx(0.75)
        assert s.costs == (0.5, 0.25)
        with pytest.raises(ScheduleError):
            Schedule.from_arrays([0], [1.0, 2.0], [0.5])

    def test_total_cost_and_latency(self):
        s = Schedule([Transmission(0, 1.0, 2.0), Transmission(1, 4.0, 3.0)])
        assert s.total_cost == 5.0
        assert s.latency() == 4.0
        assert s.latency(tau=0.5) == 4.5
        assert Schedule.empty().latency() == 0.0

    def test_append_extend(self):
        s = Schedule([Transmission(0, 3.0, 1.0)])
        s2 = s.append(Transmission(1, 1.0, 1.0))
        assert len(s) == 1  # immutable
        assert s2.times == (1.0, 3.0)
        s3 = s.extend([Transmission(1, 0.5, 1.0), Transmission(2, 9.0, 1.0)])
        assert s3.times == (0.5, 3.0, 9.0)

    def test_with_costs(self):
        s = Schedule([Transmission(0, 1.0, 2.0), Transmission(1, 4.0, 3.0)])
        s2 = s.with_costs([1.0, 1.5])
        assert s2.total_cost == 2.5
        assert s2.relays == s.relays and s2.times == s.times
        with pytest.raises(ScheduleError):
            s.with_costs([1.0])

    def test_before(self):
        s = Schedule([Transmission(0, 1.0, 1.0), Transmission(1, 4.0, 1.0)])
        assert len(s.before(4.0)) == 2
        assert len(s.before(4.0, inclusive=False)) == 1
        assert len(s.before(0.5)) == 0

    def test_by_relay(self):
        s = Schedule([Transmission(0, 1.0, 1.0), Transmission(0, 4.0, 2.0)])
        assert len(s.by_relay(0)) == 2
        assert s.by_relay(9) == ()

    def test_repeated_relays_allowed(self):
        # the paper explicitly allows a node to forward multiple times
        s = Schedule([Transmission(0, 1.0, 1.0), Transmission(0, 2.0, 1.0)])
        assert s.relays == (0, 0)

    def test_equality_hash(self):
        a = Schedule([Transmission(0, 1.0, 1.0)])
        b = Schedule([Transmission(0, 1.0, 1.0)])
        assert a == b
        assert hash(a) == hash(b)

    def test_cost_array(self):
        s = Schedule([Transmission(0, 1.0, 2.0), Transmission(1, 4.0, 3.0)])
        assert s.cost_array().tolist() == [2.0, 3.0]

"""Auxiliary graph (Section VI-A): structure, DAG-ness, schedule extraction."""

import networkx as nx
import pytest

from repro.auxgraph import (
    build_aux_graph,
    extract_schedule,
    is_state,
    is_tx,
    level_of,
    node_of,
    point_index_of,
    state_node,
    tx_node,
)
from repro.errors import GraphModelError
from repro.schedule import check_feasibility
from repro.steiner import solve_memt


class TestModel:
    def test_node_vocabulary(self):
        s = state_node(3, 2)
        x = tx_node(3, 2, 1)
        assert is_state(s) and not is_tx(s)
        assert is_tx(x) and not is_state(x)
        assert node_of(s) == 3 and node_of(x) == 3
        assert point_index_of(s) == 2 and point_index_of(x) == 2
        assert level_of(x) == 1
        with pytest.raises(ValueError):
            level_of(s)


class TestBuild:
    def test_edges_never_go_back_in_time(self, det_static):
        # With τ = 0 same-instant relay chains are legal (Eq. 6 admits
        # t_j ≤ t_k), so the graph may contain equal-time cycles — but no
        # edge may ever decrease time.
        aux = build_aux_graph(det_static, 0, 100.0)
        for u, v in aux.graph.edges:
            assert aux.graph.nodes[v]["time"] >= aux.graph.nodes[u]["time"]

    def test_is_dag_with_positive_tau(self, det_trace):
        from repro.tveg import tveg_from_trace

        tveg = tveg_from_trace(det_trace, "static", tau=1.0, seed=1)
        aux = build_aux_graph(tveg, 0, 100.0)
        assert nx.is_directed_acyclic_graph(aux.graph)

    def test_waiting_edges_zero_weight(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0)
        for u, v, data in aux.graph.edges(data=True):
            if is_state(u) and is_state(v):
                assert node_of(u) == node_of(v)
                assert point_index_of(v) == point_index_of(u) + 1
                assert data["weight"] == 0.0

    def test_tx_edges_carry_dcs_weight(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0)
        for u, v, data in aux.graph.edges(data=True):
            if is_tx(v):
                key = (node_of(v), point_index_of(v))
                dcs = aux.cost_sets[key]
                assert data["weight"] == dcs.entries[level_of(v)][0]

    def test_coverage_edges_zero_weight_and_broadcast_nature(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0)
        for u in aux.graph.nodes:
            if is_tx(u):
                dcs = aux.cost_sets[(node_of(u), point_index_of(u))]
                receivers = {node_of(v) for v in aux.graph[u]}
                expected = set(dcs.coverage(dcs.entries[level_of(u)][0]))
                assert receivers == expected
                for v, data in aux.graph[u].items():
                    assert data["weight"] == 0.0

    def test_root_and_terminals(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0)
        assert aux.root == state_node(0, 0)
        assert len(aux.terminals) == 3  # everyone but the source
        for t in aux.terminals:
            assert point_index_of(t) == len(aux.dts.points(node_of(t))) - 1

    def test_unknown_source_rejected(self, det_static):
        with pytest.raises(GraphModelError):
            build_aux_graph(det_static, 99, 100.0)

    def test_deadline_shrinks_graph(self, det_static):
        big = build_aux_graph(det_static, 0, 100.0)
        small = build_aux_graph(det_static, 0, 50.0)
        assert small.num_nodes < big.num_nodes


class TestExtract:
    def test_steiner_tree_roundtrip(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0)
        edges = solve_memt(aux.graph, aux.root, aux.terminals)
        sched = extract_schedule(aux, edges)
        rep = check_feasibility(det_static, sched, 0, 100.0)
        assert rep.feasible

    def test_duplicate_levels_merge(self, det_static):
        # Entering two tx levels of the same (node, point) must collapse to
        # the higher level (whose coverage is a superset).
        aux = build_aux_graph(det_static, 0, 100.0)
        key = next(k for k, v in aux.cost_sets.items() if len(v) >= 2)
        node, l = key
        dcs = aux.cost_sets[key]
        s = state_node(node, l)
        fake_tree = {
            (s, tx_node(node, l, 0)),
            (s, tx_node(node, l, 1)),
            (tx_node(node, l, 0), state_node(dcs.entries[0][1], 0)),
            (tx_node(node, l, 1), state_node(dcs.entries[1][1], 0)),
        }
        sched = extract_schedule(aux, fake_tree)
        assert len(sched) == 1
        assert sched[0].cost == dcs.entries[1][0]

    def test_coverage_less_tx_dropped(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0)
        key = next(iter(aux.cost_sets))
        node, l = key
        s = state_node(node, l)
        fake_tree = {(s, tx_node(node, l, 0))}  # tx with no receivers
        sched = extract_schedule(aux, fake_tree)
        assert sched.is_empty

"""Schedule reduction passes: removal, cost lowering, upgrade-and-prune."""

import pytest

from repro.schedule import (
    Schedule,
    Transmission,
    check_feasibility,
    lower_costs,
    remove_redundant,
    upgrade_and_prune,
)


def _w(tveg, u, v, t):
    return tveg.min_cost(u, v, t)


@pytest.fixture
def feasible_with_waste(det_static):
    """A feasible schedule with one plainly redundant transmission."""
    w_cover = max(_w(det_static, 0, 1, 15.0), _w(det_static, 0, 3, 15.0))
    return Schedule(
        [
            Transmission(0, 15.0, w_cover),                      # covers 1, 3
            Transmission(1, 25.0, _w(det_static, 1, 2, 25.0)),   # covers 2
            Transmission(0, 62.0, _w(det_static, 0, 1, 62.0)),   # redundant
        ]
    )


class TestRemoveRedundant:
    def test_drops_waste(self, det_static, feasible_with_waste):
        reduced = remove_redundant(det_static, feasible_with_waste, 0, 100.0)
        assert len(reduced) == 2
        assert check_feasibility(det_static, reduced, 0, 100.0).feasible
        assert reduced.total_cost < feasible_with_waste.total_cost

    def test_keeps_necessary(self, det_static):
        sched = Schedule(
            [
                Transmission(
                    0, 15.0,
                    max(_w(det_static, 0, 1, 15.0), _w(det_static, 0, 3, 15.0)),
                ),
                Transmission(1, 25.0, _w(det_static, 1, 2, 25.0)),
            ]
        )
        assert remove_redundant(det_static, sched, 0, 100.0) == sched

    def test_infeasible_input_unchanged(self, det_static):
        bad = Schedule([Transmission(2, 45.0, 1.0)])
        assert remove_redundant(det_static, bad, 0, 100.0) == bad

    def test_never_increases_cost(self, det_static, feasible_with_waste):
        reduced = remove_redundant(det_static, feasible_with_waste, 0, 100.0)
        assert reduced.total_cost <= feasible_with_waste.total_cost


class TestLowerCosts:
    def test_rounds_down_overpowered(self, det_static):
        # transmit at 3× the needed cost; lowering should recover the level
        w_needed = max(_w(det_static, 0, 1, 15.0), _w(det_static, 0, 3, 15.0))
        sched = Schedule(
            [
                Transmission(0, 15.0, 3.0 * w_needed),
                Transmission(1, 25.0, _w(det_static, 1, 2, 25.0)),
            ]
        )
        lowered = lower_costs(det_static, sched, 0, 100.0)
        assert lowered.total_cost < sched.total_cost
        assert check_feasibility(det_static, lowered, 0, 100.0).feasible
        assert lowered[0].cost == pytest.approx(w_needed)

    def test_minimal_costs_untouched(self, det_static):
        sched = Schedule(
            [
                Transmission(
                    0, 15.0,
                    max(_w(det_static, 0, 1, 15.0), _w(det_static, 0, 3, 15.0)),
                ),
                Transmission(1, 25.0, _w(det_static, 1, 2, 25.0)),
            ]
        )
        assert lower_costs(det_static, sched, 0, 100.0).total_cost == pytest.approx(
            sched.total_cost
        )


class TestUpgradeAndPrune:
    def test_merges_split_coverage(self, det_static):
        # Two separate transmissions by 0 (one per neighbor) where one
        # higher-level transmission covers both.
        w1 = _w(det_static, 0, 1, 15.0)
        w3 = _w(det_static, 0, 3, 15.0)
        sched = Schedule(
            [
                Transmission(0, 15.0, min(w1, w3)),   # covers the nearer one
                Transmission(0, 16.0, max(w1, w3)),   # covers both, later
                Transmission(1, 25.0, _w(det_static, 1, 2, 25.0)),
            ]
        )
        improved = upgrade_and_prune(det_static, sched, 0, 100.0)
        assert improved.total_cost <= sched.total_cost
        assert check_feasibility(det_static, improved, 0, 100.0).feasible

    def test_never_increases_cost(self, det_static, feasible_with_waste):
        improved = upgrade_and_prune(det_static, feasible_with_waste, 0, 100.0)
        assert improved.total_cost <= feasible_with_waste.total_cost
        assert check_feasibility(det_static, improved, 0, 100.0).feasible

    def test_infeasible_input_unchanged(self, det_static):
        bad = Schedule([Transmission(2, 45.0, 1.0)])
        assert upgrade_and_prune(det_static, bad, 0, 100.0) == bad

"""Online forwarding protocols and their event engine."""

import math

import pytest

from repro.errors import SolverError
from repro.online import (
    DirectDelivery,
    Epidemic,
    Gossip,
    SprayAndWait,
    make_protocol,
    run_online,
    run_online_trials,
)
from repro.traces import deterministic_trace, uniform_trace
from repro.tveg import tveg_from_trace


@pytest.fixture
def static(det_trace):
    return tveg_from_trace(det_trace, "static", seed=1)


class TestProtocolFactory:
    def test_names(self):
        for name, cls in (
            ("epidemic", Epidemic),
            ("gossip", Gossip),
            ("spray-and-wait", SprayAndWait),
            ("direct", DirectDelivery),
        ):
            assert isinstance(make_protocol(name), cls)

    def test_unknown(self):
        with pytest.raises(SolverError):
            make_protocol("teleport")

    def test_validation(self):
        with pytest.raises(SolverError):
            Gossip(0.0)
        with pytest.raises(SolverError):
            SprayAndWait(0)


class TestEpidemicOnDeterministicTrace:
    def test_realizes_foremost_journeys(self, static):
        # static channel → every contact succeeds → epidemic reaches each
        # node at its earliest-arrival time
        from repro.temporal import earliest_arrivals

        out = run_online(static, Epidemic(), 0, 100.0, seed=0)
        assert out.delivery_ratio(4) == 1.0
        arr = earliest_arrivals(static.tvg, 0)
        times = dict(out.reception_times)
        for node, t in arr.items():
            assert times[node] == pytest.approx(t)

    def test_deadline_truncates(self, static):
        out = run_online(static, Epidemic(), 0, 15.0, seed=0)
        # node 2's first contact starts at 20 → unreachable by 15
        assert 2 not in out.received

    def test_energy_counts_attempts(self, static):
        out = run_online(static, Epidemic(), 0, 100.0, seed=0)
        assert out.energy > 0
        assert out.attempts >= out.successes == 3  # informs 3 nodes


class TestDirectDelivery:
    def test_only_source_forwards(self, static):
        out = run_online(static, DirectDelivery(), 0, 100.0, seed=0)
        # source 0 meets 1 and 3 directly; 2 is never met by 0
        assert out.received == frozenset({0, 1, 3})


class TestSprayAndWait:
    def test_token_budget_slows_spreading(self):
        import numpy as np

        trace = uniform_trace(10, 800.0, 60.0, 40.0, seed=3)
        tveg = tveg_from_trace(trace, "static", seed=3)
        out_small = run_online(tveg, SprayAndWait(tokens=2), 0, 800.0, seed=1)
        out_epi = run_online(tveg, Epidemic(), 0, 800.0, seed=1)
        # fewer active spreaders: never more coverage, never earlier overall
        assert len(out_small.received) <= len(out_epi.received)
        common = out_small.received & out_epi.received
        t_small = dict(out_small.reception_times)
        t_epi = dict(out_epi.reception_times)
        mean_small = np.mean([t_small[n] for n in common])
        mean_epi = np.mean([t_epi[n] for n in common])
        assert mean_small >= mean_epi - 1e-9

    def test_single_token_is_directish(self, static):
        out = run_online(static, SprayAndWait(tokens=1), 0, 100.0, seed=0)
        # the source spreads (1 token kept) but recipients never do
        assert 2 not in out.received


class TestGossip:
    def test_p1_equals_epidemic(self, static):
        a = run_online(static, Gossip(1.0), 0, 100.0, seed=5)
        b = run_online(static, Epidemic(), 0, 100.0, seed=5)
        assert a.received == b.received

    def test_seeded_reproducible(self, static):
        a = run_online(static, Gossip(0.5), 0, 100.0, seed=9)
        b = run_online(static, Gossip(0.5), 0, 100.0, seed=9)
        assert a.received == b.received and a.energy == b.energy


class TestFadingRetries:
    def test_retries_raise_delivery(self):
        trace = uniform_trace(8, 600.0, 80.0, 60.0, seed=7)
        fading = tveg_from_trace(trace, "rayleigh", seed=7)
        one = run_online_trials(
            fading, Epidemic(), 0, 600.0, num_trials=40, seed=2,
            max_attempts_per_contact=1,
        )
        many = run_online_trials(
            fading, Epidemic(), 0, 600.0, num_trials=40, seed=2,
            max_attempts_per_contact=4, retry_interval=10.0,
        )
        assert many.mean_delivery >= one.mean_delivery

    def test_summary_fields(self, static):
        s = run_online_trials(static, Epidemic(), 0, 100.0, num_trials=5, seed=0)
        assert s.num_trials == 5
        assert s.mean_delivery == 1.0
        assert s.mean_energy > 0
        assert math.isfinite(s.mean_latency)


class TestOfflineComparison:
    def test_eedcb_beats_online_energy(self):
        """Clairvoyance pays: the offline optimum undercuts epidemic."""
        from repro.algorithms import make_scheduler
        from repro.errors import InfeasibleError

        trace = uniform_trace(10, 800.0, 60.0, 40.0, seed=11)
        tveg = tveg_from_trace(trace, "static", seed=11)
        try:
            offline = make_scheduler("eedcb").schedule(tveg, 0, 800.0)
        except InfeasibleError:
            pytest.skip("instance infeasible")
        online = run_online(tveg, Epidemic(), 0, 800.0, seed=1)
        assert offline.total_cost <= online.energy + 1e-18

    def test_engine_validation(self, static):
        with pytest.raises(SolverError):
            run_online(static, Epidemic(), 0, 100.0, retry_interval=0.0)

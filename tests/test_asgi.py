"""Asyncio HTTP front-end: endpoints, edge cache, error mapping.

Runs a real :class:`BackgroundServer` (event loop on its own thread, OS
port 0) over a :class:`LocalBackend` and speaks HTTP/1.1 to it with a
persistent ``http.client`` connection — keep-alive is part of what's
under test.  The edge-cache byte-identity test pins the front-end's
contract: a repeat ``/plan`` answered from the edge embeds the exact
``plan`` fragment bytes a worker-served response would.
"""

import http.client
import json
import os
import socket
import sys
import threading

import pytest

from repro.service import PlanningService
from repro.service.asgi import AsyncPlanningServer, BackgroundServer, LocalBackend
from repro.traces import HaggleLikeConfig, haggle_like_trace

BODY = {"deadline": 600.0, "window": 2000.0, "seed": 3}


class Client:
    """One persistent keep-alive connection to a test server."""

    def __init__(self, address):
        host, port = address
        self.conn = http.client.HTTPConnection(host, port, timeout=60)

    def request(self, verb, path, body=None):
        data = None if body is None else json.dumps(body).encode("utf-8")
        self.conn.request(
            verb, path, body=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        resp = self.conn.getresponse()
        payload = resp.read()
        will_close = resp.will_close
        if will_close:
            self.conn.close()
        return resp.status, json.loads(payload), dict(resp.getheaders()), will_close

    def post(self, path, body):
        status, doc, _, _ = self.request("POST", path, body)
        return status, doc

    def get(self, path):
        status, doc, _, _ = self.request("GET", path)
        return status, doc

    def close(self):
        self.conn.close()


@pytest.fixture(scope="module")
def trace():
    return haggle_like_trace(HaggleLikeConfig(num_nodes=8), seed=3)


@pytest.fixture(scope="module")
def backend(trace):
    service = PlanningService({"demo": trace}, max_wait=0.0, workers=2)
    yield LocalBackend(service, {"demo": trace})
    service.close()


@pytest.fixture(scope="module")
def server(backend):
    with BackgroundServer(backend, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    c = Client(server.address)
    yield c
    c.close()


class TestEndpoints:
    def test_plan_round_trip(self, client):
        status, doc = client.post("/plan", BODY)
        assert status == 200
        assert doc["plan"]["feasibility"]["all_informed"] is True
        assert len(doc["key"]) == 16
        assert set(doc) == {"cached", "key", "plan", "wall_seconds"}

    def test_plan_many_round_trip(self, client):
        status, doc = client.post(
            "/plan_many",
            {"sources": [None, None], "deadlines": 600.0,
             "window": 2000.0, "seed": 3},
        )
        assert status == 200
        assert len(doc["keys"]) == 2
        assert doc["planset"]["plans"]

    def test_healthz(self, client):
        status, doc = client.get("/healthz")
        assert status == 200
        assert doc["status"] == "ok"

    def test_metrics_exposes_frontend_and_edge_cache(self, client):
        client.post("/plan", BODY)
        status, doc = client.get("/metrics")
        assert status == 200
        assert doc["mode"] == "local"
        front = doc["frontend"]
        assert front["served"] >= 1
        assert front["errors"] >= 0
        edge = front["edge_cache"]
        assert set(edge) == {"capacity", "entries", "hits", "misses"}
        assert edge["entries"] >= 1

    def test_cache_stats(self, client):
        status, doc = client.get("/cache/stats")
        assert status == 200
        assert "hits" in doc and "misses" in doc


class TestEdgeCache:
    def test_repeat_plan_is_byte_identical_and_cached(self, server, client):
        body = {**BODY, "seed": 11}
        hits_before = server.server.edge_stats()["hits"]
        _, first = client.post("/plan", body)
        status, second = client.post("/plan", body)
        assert status == 200
        assert second["cached"] is True
        assert second["key"] == first["key"]
        # the edge embeds the exact fragment a worker-served response
        # carries — byte identity, not just semantic equality
        assert (
            json.dumps(second["plan"], sort_keys=True)
            == json.dumps(first["plan"], sort_keys=True)
        )
        assert server.server.edge_stats()["hits"] >= hits_before + 1


class TestErrorMapping:
    def test_unknown_endpoint_404(self, client):
        status, doc = client.post("/nope", BODY)
        assert status == 404
        assert "error" in doc

    def test_get_unknown_endpoint_404(self, client):
        status, doc = client.get("/nope")
        assert status == 404

    def test_unknown_trace_404(self, client):
        status, doc = client.post("/plan", {**BODY, "trace": "nope"})
        assert status == 404
        assert "unknown trace" in doc["error"]

    def test_unknown_field_400(self, client):
        status, doc = client.post("/plan", {**BODY, "bogus": 1})
        assert status == 400
        assert "error" in doc

    def test_malformed_json_400(self, client):
        self_conn = client.conn
        self_conn.request(
            "POST", "/plan", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        resp = self_conn.getresponse()
        doc = json.loads(resp.read())
        assert resp.status == 400
        assert "bad request body" in doc["error"]

    def test_method_not_allowed_405(self, client):
        status, doc, _, _ = client.request("PUT", "/plan", BODY)
        assert status == 405

    def test_infeasible_422(self, client):
        status, doc = client.post("/plan", {**BODY, "deadline": 0.001})
        assert status == 422
        assert "error" in doc

    def test_overloaded_429_with_retry_after(self, server, backend, client):
        # pin the backend at capacity; the front-end must map the
        # resulting ServiceOverloaded to 429 + Retry-After
        with backend._lock:
            backend._inflight = backend._max_inflight
        try:
            status, doc, headers, _ = client.request(
                "POST", "/plan", {**BODY, "seed": 404}
            )
        finally:
            with backend._lock:
                backend._inflight = 0
        assert status == 429
        assert "Retry-After" in headers
        assert doc["retry_after"] >= 1


class TestTimeout:
    def test_slow_compute_times_out_504(self, trace):
        service = PlanningService({"demo": trace}, max_wait=0.0, workers=1)
        backend = LocalBackend(service, {"demo": trace})
        try:
            with BackgroundServer(backend, port=0, timeout=0.001) as srv:
                client = Client(srv.address)
                # a cold config cannot finish within 1 ms
                status, doc = client.post("/plan", {**BODY, "seed": 909})
                assert status == 504
                assert "timed out" in doc["error"]
                client.close()
        finally:
            service.close()


class TestKeepAliveAndDrain:
    def test_connection_is_reused(self, client):
        for _ in range(3):
            _, _, _, will_close = client.request("GET", "/healthz")
            assert will_close is False

    def test_connection_close_honored(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=60)
        conn.request("GET", "/healthz", headers={"Connection": "close"})
        resp = conn.getresponse()
        resp.read()
        assert resp.will_close is True
        conn.close()

    def test_stop_refuses_new_connections(self, trace):
        service = PlanningService({"demo": trace}, max_wait=0.0)
        backend = LocalBackend(service, {"demo": trace})
        srv = BackgroundServer(backend, port=0)
        host, port = srv.address
        client = Client((host, port))
        status, _ = client.get("/healthz")
        assert status == 200
        client.close()
        srv.stop()
        assert not srv._thread.is_alive()
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection(host, port, timeout=5)
            probe.request("GET", "/healthz")
            probe.getresponse()

    def test_timeout_validation(self, backend):
        with pytest.raises(ValueError):
            AsyncPlanningServer(backend, timeout=0.0)
        with pytest.raises(ValueError):
            LocalBackend(backend.service, {}, max_inflight=0)


def _load_loadtest():
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools"
    ))
    import loadtest
    return loadtest


def _raw_post(host, port, path, body):
    data = json.dumps(body).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(data)}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + data


class TestPipelining:
    """HTTP/1.1 pipelining: the front-end must frame back-to-back
    requests exactly (no bytes of a later request swallowed by an
    earlier body read) and answer them strictly in order."""

    def test_raw_socket_pipelined_requests_answered_in_order(self, server):
        loadtest = _load_loadtest()
        host, port = server.address
        bodies = [BODY, dict(BODY), {**BODY, "seed": 4}]
        with socket.create_connection((host, port), timeout=60) as sock:
            # all three requests hit the wire before any response is read
            sock.sendall(b"".join(
                _raw_post(host, port, "/plan", b) for b in bodies
            ))
            rfile = sock.makefile("rb")
            docs = []
            for _ in bodies:
                status, doc, close = loadtest._read_http_response(rfile)
                assert status == 200
                assert close is False
                docs.append(doc)
            rfile.close()
        # identical configurations answered identically, in issue order
        assert docs[0]["key"] == docs[1]["key"]
        assert (loadtest.normalized_plan(docs[0]["plan"])
                == loadtest.normalized_plan(docs[1]["plan"]))
        assert docs[2]["key"] != docs[0]["key"]

    def test_error_response_does_not_derail_the_pipeline(self, server):
        loadtest = _load_loadtest()
        host, port = server.address
        bodies = [BODY, {**BODY, "bogus_field": 1}, {**BODY, "seed": 5}]
        with socket.create_connection((host, port), timeout=60) as sock:
            sock.sendall(b"".join(
                _raw_post(host, port, "/plan", b) for b in bodies
            ))
            rfile = sock.makefile("rb")
            statuses = []
            docs = []
            for _ in bodies:
                status, doc, _ = loadtest._read_http_response(rfile)
                statuses.append(status)
                docs.append(doc)
            rfile.close()
        assert statuses == [200, 400, 200]
        assert "error" in docs[1]
        assert docs[2]["plan"]["source"] is not None

    def test_pipelined_client_preserves_identity_checking(self, server):
        loadtest = _load_loadtest()
        host, port = server.address
        client = loadtest.PipelinedClient(f"http://{host}:{port}", 60.0)
        identity = loadtest.IdentityTracker()
        seen = []

        def reader():
            while True:
                got = client.next_response()
                if got is None:
                    return
                token, status, doc = got
                assert status == 200
                identity.observe(doc["key"], doc["plan"])
                seen.append(token)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for i in range(6):
            client.send(i, "/plan", {**BODY, "seed": 3 + (i % 2)})
        client.finish()
        t.join(timeout=120)
        client.close()
        assert seen == list(range(6))  # FIFO token matching
        assert identity.violations == []
        assert len(identity.snapshot()) == 2  # two distinct configurations

"""ED-functions (Property 3.1) and channel models, incl. hypothesis checks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import (
    AbsentED,
    ConstantGain,
    LogDistancePathLoss,
    NakagamiChannel,
    NakagamiED,
    PowerLawPathLoss,
    RayleighChannel,
    RayleighED,
    RicianChannel,
    RicianED,
    StaticChannel,
    StepED,
    verify_properties,
)
from repro.errors import ChannelModelError
from repro.params import PAPER_PARAMS

betas = st.floats(min_value=1e-18, max_value=1e-6, allow_nan=False)
costs = st.floats(min_value=0.0, max_value=1e-3, allow_nan=False)
eps_targets = st.floats(min_value=1e-4, max_value=0.5, allow_nan=False)


# ----------------------------------------------------------------------
# StepED (Eq. 2)
# ----------------------------------------------------------------------
class TestStepED:
    def test_threshold_behaviour(self):
        ed = StepED(2.0)
        assert ed.failure(1.999) == 1.0
        assert ed.failure(2.0) == 0.0
        assert ed.failure(100.0) == 0.0
        assert ed.success(2.0) == 1.0

    def test_min_cost(self):
        ed = StepED(2.0)
        assert ed.min_cost(0.01) == 2.0
        assert ed.min_cost(0.0) == 2.0
        assert ed.min_cost(1.0) == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ChannelModelError):
            StepED(0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ChannelModelError):
            StepED(1.0).failure(-1.0)

    def test_equality_hash(self):
        assert StepED(1.0) == StepED(1.0)
        assert StepED(1.0) != StepED(2.0)
        assert hash(StepED(1.0)) == hash(StepED(1.0))


# ----------------------------------------------------------------------
# RayleighED (Eq. 5)
# ----------------------------------------------------------------------
class TestRayleighED:
    def test_formula(self):
        ed = RayleighED(beta=3.0)
        assert ed.failure(1.0) == pytest.approx(1.0 - math.exp(-3.0))
        assert ed.failure(0.0) == 1.0

    def test_min_cost_inverse(self):
        ed = RayleighED(beta=2.5)
        for target in (0.5, 0.1, 0.01):
            w = ed.min_cost(target)
            assert ed.failure(w) == pytest.approx(target, rel=1e-9)

    def test_min_cost_limits(self):
        ed = RayleighED(1.0)
        assert ed.min_cost(1.0) == 0.0
        assert ed.min_cost(0.0) == math.inf

    def test_failure_array_matches_scalar(self):
        ed = RayleighED(beta=1.7)
        ws = np.array([0.0, 0.5, 2.0, 100.0])
        np.testing.assert_allclose(
            ed.failure_array(ws), [ed.failure(w) for w in ws]
        )

    def test_log_failure(self):
        ed = RayleighED(beta=1.7)
        assert ed.log_failure(3.0) == pytest.approx(math.log(ed.failure(3.0)))
        assert ed.log_failure(0.0) == 0.0


# ----------------------------------------------------------------------
# Rician / Nakagami extensions and their limits
# ----------------------------------------------------------------------
class TestFadingFamilies:
    def test_rician_k0_equals_rayleigh(self):
        r = RayleighED(beta=2.0)
        ric = RicianED(beta=2.0, k_factor=0.0)
        for w in (0.1, 1.0, 5.0, 50.0):
            assert ric.failure(w) == pytest.approx(r.failure(w), rel=1e-9)

    def test_nakagami_m1_equals_rayleigh(self):
        r = RayleighED(beta=2.0)
        nak = NakagamiED(beta=2.0, m=1.0)
        for w in (0.1, 1.0, 5.0, 50.0):
            assert nak.failure(w) == pytest.approx(r.failure(w), rel=1e-9)

    def test_nakagami_large_m_approaches_step(self):
        # m → ∞: outage → 1{w < β} (sharp threshold at w = β)
        nak = NakagamiED(beta=2.0, m=200.0)
        assert nak.failure(1.0) > 0.999
        assert nak.failure(4.0) < 1e-6

    def test_rician_los_reduces_outage(self):
        # More LOS power (higher K) → lower outage at the same mean SNR.
        w = 5.0
        f0 = RicianED(beta=2.0, k_factor=0.0).failure(w)
        f5 = RicianED(beta=2.0, k_factor=5.0).failure(w)
        assert f5 < f0

    def test_min_cost_inverse_rician(self):
        ed = RicianED(beta=2.0, k_factor=3.0)
        for target in (0.3, 0.05, 0.01):
            assert ed.failure(ed.min_cost(target)) == pytest.approx(target, rel=1e-6)

    def test_min_cost_inverse_nakagami(self):
        ed = NakagamiED(beta=2.0, m=2.5)
        for target in (0.3, 0.05, 0.01):
            assert ed.failure(ed.min_cost(target)) == pytest.approx(target, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ChannelModelError):
            RicianED(2.0, -1.0)
        with pytest.raises(ChannelModelError):
            NakagamiED(2.0, 0.3)
        with pytest.raises(ChannelModelError):
            RayleighED(-1.0)


# ----------------------------------------------------------------------
# AbsentED and Property 3.1 (hypothesis)
# ----------------------------------------------------------------------
class TestAbsentED:
    def test_always_fails(self):
        ed = AbsentED()
        for w in (0.0, 1.0, 1e12):
            assert ed.failure(w) == 1.0
        assert ed.min_cost(0.5) == math.inf
        assert ed.min_cost(1.0) == 0.0

    def test_singleton(self):
        assert AbsentED() is AbsentED()


@given(betas)
def test_property31_rayleigh(beta):
    ws = [0.0, beta * 0.1, beta, beta * 10, beta * 1e6]
    verify_properties(RayleighED(beta), ws)


@given(betas, st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=30)
def test_property31_rician(beta, k):
    ws = [0.0, beta * 0.1, beta, beta * 10, beta * 1e6]
    verify_properties(RicianED(beta, k), ws)


@given(betas, st.floats(min_value=0.5, max_value=20.0))
@settings(max_examples=30)
def test_property31_nakagami(beta, m):
    ws = [0.0, beta * 0.1, beta, beta * 10, beta * 1e6]
    verify_properties(NakagamiED(beta, m), ws)


@given(betas)
def test_property31_step(beta):
    verify_properties(StepED(beta), [0.0, beta * 0.5, beta, beta * 2])


@given(betas, eps_targets)
def test_rayleigh_min_cost_is_generalized_inverse(beta, target):
    ed = RayleighED(beta)
    w = ed.min_cost(target)
    assert ed.failure(w) <= target + 1e-12
    if w > 1e-30:
        assert ed.failure(w * 0.999) > target - 1e-9


# ----------------------------------------------------------------------
# Path-loss models
# ----------------------------------------------------------------------
class TestPathLoss:
    def test_power_law(self):
        pl = PowerLawPathLoss(2.0)
        assert pl(2.0) == 0.25
        with pytest.raises(ChannelModelError):
            pl(0.0)

    def test_log_distance(self):
        pl = LogDistancePathLoss(reference_distance=1.0, reference_gain=0.1, exponent=2.0)
        assert pl(1.0) == pytest.approx(0.1)
        assert pl(10.0) == pytest.approx(0.001)

    def test_constant(self):
        assert ConstantGain(0.5)(123.0) == 0.5
        with pytest.raises(ChannelModelError):
            ConstantGain(0.0)


# ----------------------------------------------------------------------
# Channel models (ψ factories)
# ----------------------------------------------------------------------
class TestChannelModels:
    def test_static_yields_step(self):
        ch = StaticChannel(PAPER_PARAMS)
        ed = ch.ed_from_distance(5.0)
        assert isinstance(ed, StepED)
        assert ed.threshold == pytest.approx(PAPER_PARAMS.static_min_cost(5.0**-2))
        assert not ch.is_fading

    def test_rayleigh_yields_rayleigh(self):
        ch = RayleighChannel(PAPER_PARAMS)
        ed = ch.ed_from_distance(5.0)
        assert isinstance(ed, RayleighED)
        assert ed.beta == pytest.approx(PAPER_PARAMS.rayleigh_beta(5.0))
        assert ch.is_fading

    def test_backbone_weights(self):
        d = 5.0
        static_w = StaticChannel(PAPER_PARAMS).backbone_weight(d)
        fading_w = RayleighChannel(PAPER_PARAMS).backbone_weight(d)
        assert static_w == pytest.approx(PAPER_PARAMS.static_min_cost(d**-2))
        assert fading_w == pytest.approx(PAPER_PARAMS.rayleigh_single_hop_cost(d))
        # fading must pay a large premium to guarantee ε at one hop
        assert fading_w > 10 * static_w

    def test_rician_nakagami_channels(self):
        ric = RicianChannel(PAPER_PARAMS, k_factor=2.0)
        nak = NakagamiChannel(PAPER_PARAMS, m=2.0)
        assert isinstance(ric.ed_from_distance(3.0), RicianED)
        assert isinstance(nak.ed_from_distance(3.0), NakagamiED)
        assert ric.is_fading and nak.is_fading
        # both need less backbone power than Rayleigh (milder fading)
        ray_w = RayleighChannel(PAPER_PARAMS).backbone_weight(3.0)
        assert ric.backbone_weight(3.0) < ray_w
        assert nak.backbone_weight(3.0) < ray_w

    def test_custom_gain_model(self):
        ch = StaticChannel(PAPER_PARAMS, gain_model=ConstantGain(1.0))
        assert ch.ed_from_distance(99.0).threshold == pytest.approx(
            PAPER_PARAMS.decode_energy
        )

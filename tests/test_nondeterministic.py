"""Non-deterministic TVGs (the paper's future work, Section VIII)."""

import numpy as np
import pytest

from repro.errors import GraphModelError, TraceFormatError
from repro.temporal.nondeterministic import (
    CandidateContact,
    ProbabilisticTVG,
    schedule_robustness,
)
from repro.traces import deterministic_trace


class TestCandidateContact:
    def test_validation(self):
        with pytest.raises(TraceFormatError):
            CandidateContact(0, 1, 5.0, 5.0, 0.5)
        with pytest.raises(TraceFormatError):
            CandidateContact(0, 1, 0.0, 5.0, 0.0)
        with pytest.raises(TraceFormatError):
            CandidateContact(0, 1, 0.0, 5.0, 1.5)
        with pytest.raises(TraceFormatError):
            CandidateContact(1, 1, 0.0, 5.0, 0.5)


class TestProbabilisticTVG:
    @pytest.fixture
    def ptvg(self):
        p = ProbabilisticTVG([0, 1, 2], horizon=100.0)
        p.add_candidate(0, 1, 0.0, 30.0, prob=0.8)
        p.add_candidate(0, 1, 50.0, 70.0, prob=0.4)
        p.add_candidate(1, 2, 20.0, 60.0, prob=1.0)
        return p

    def test_rho_probabilistic(self, ptvg):
        assert ptvg.rho(0, 1, 10.0) == 0.8
        assert ptvg.rho(0, 1, 55.0) == 0.4
        assert ptvg.rho(0, 1, 40.0) == 0.0
        assert ptvg.rho(1, 2, 30.0) == 1.0
        assert ptvg.rho(0, 2, 30.0) == 0.0

    def test_expected_degree(self, ptvg):
        assert ptvg.expected_degree(1, 25.0) == pytest.approx(1.8)
        assert ptvg.expected_degree(0, 25.0) == pytest.approx(0.8)

    def test_overlapping_candidates_rejected(self, ptvg):
        with pytest.raises(GraphModelError):
            ptvg.add_candidate(0, 1, 25.0, 55.0, prob=0.5)

    def test_unknown_node_rejected(self, ptvg):
        with pytest.raises(GraphModelError):
            ptvg.add_candidate(0, 9, 0.0, 5.0)

    def test_sure_candidates_always_kept(self, ptvg):
        for seed in range(5):
            tvg = ptvg.sample(seed)
            assert tvg.rho(1, 2, 30.0)

    def test_sampling_frequency_matches_prob(self, ptvg):
        rng = np.random.default_rng(0)
        hits = sum(
            ptvg.sample(rng).rho(0, 1, 10.0) for _ in range(400)
        )
        # binomial(400, 0.8): 5σ ≈ 0.1
        assert abs(hits / 400 - 0.8) < 0.1

    def test_from_trace(self):
        ptvg = ProbabilisticTVG.from_trace(deterministic_trace(), availability=0.5)
        assert ptvg.num_candidates() == 5
        assert ptvg.rho(0, 1, 5.0) == 0.5

    def test_sample_trace_horizon_and_nodes(self, ptvg):
        trace = ptvg.sample_trace(seed=1)
        assert trace.horizon == 100.0
        assert set(trace.nodes) >= {0, 1, 2}


class TestScheduleRobustness:
    def test_certain_contacts_always_feasible(self):
        ptvg = ProbabilisticTVG.from_trace(deterministic_trace(), availability=1.0)
        report = schedule_robustness(ptvg, 0, 100.0, realizations=5, seed=0)
        assert report.feasibility_rate == 1.0
        assert report.mean_cost > 0
        assert report.p90_cost >= report.mean_cost * 0.5

    def test_rate_decreases_with_availability(self):
        base = deterministic_trace()
        rates = []
        for availability in (1.0, 0.6, 0.2):
            ptvg = ProbabilisticTVG.from_trace(base, availability=availability)
            report = schedule_robustness(ptvg, 0, 100.0, realizations=40, seed=1)
            rates.append(report.feasibility_rate)
        assert rates[0] >= rates[1] >= rates[2]
        assert rates[2] < rates[0]

    def test_empty_report(self):
        ptvg = ProbabilisticTVG([0, 1], horizon=10.0)
        ptvg.add_candidate(0, 1, 0.0, 5.0, prob=0.01)
        report = schedule_robustness(ptvg, 0, 10.0, realizations=3, seed=2)
        assert report.feasibility_rate <= 1.0
        if not report.costs:
            import math

            assert math.isnan(report.mean_cost)

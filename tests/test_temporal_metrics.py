"""Temporal metrics: degree series, contact statistics, density."""

import numpy as np
import pytest

from repro.temporal import (
    average_degree,
    average_degree_series,
    contact_durations,
    degree_profile,
    inter_contact_times,
    pair_contact_counts,
    temporal_density,
)


class TestDegree:
    def test_average_degree_det(self, det_tvg):
        # at t=15: contacts (0,1) and (0,3) live → degrees 2,1,0,1 → avg 1.0
        assert average_degree(det_tvg, 15.0) == pytest.approx(1.0)
        # at t=45: contacts (1,2) and (2,3) live → avg 1.0
        assert average_degree(det_tvg, 45.0) == pytest.approx(1.0)
        # at t=55: only (2,3) → avg 0.5
        assert average_degree(det_tvg, 55.0) == pytest.approx(0.5)

    def test_series(self, det_tvg):
        ts, ds = average_degree_series(det_tvg, [15.0, 55.0])
        assert list(ts) == [15.0, 55.0]
        assert ds[0] == pytest.approx(1.0)
        assert ds[1] == pytest.approx(0.5)

    def test_profile_grid(self, det_tvg):
        ts, ds = degree_profile(det_tvg, 0.0, 90.0, 30.0)
        assert list(ts) == [0.0, 30.0, 60.0, 90.0]
        assert len(ds) == 4


class TestContactStats:
    def test_durations(self, det_tvg):
        durs = sorted(contact_durations(det_tvg))
        assert durs == [15.0, 30.0, 30.0, 40.0, 40.0]

    def test_inter_contact_times(self, det_tvg):
        # only pair (0,1) has two contacts: gap 60 − 30 = 30
        gaps = inter_contact_times(det_tvg)
        assert list(gaps) == [30.0]

    def test_pair_contact_counts(self, det_tvg):
        counts = pair_contact_counts(det_tvg)
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1

    def test_temporal_density(self, det_tvg):
        total = 30 + 40 + 30 + 40 + 15
        assert temporal_density(det_tvg) == pytest.approx(total / (6 * 100.0))

"""ASCII timeline rendering."""

import pytest

from repro.algorithms import make_scheduler
from repro.schedule import Schedule, Transmission, ascii_timeline


class TestAsciiTimeline:
    @pytest.fixture
    def rendered(self, det_static):
        sched = make_scheduler("eedcb").schedule(det_static, 0, 100.0)
        return sched, ascii_timeline(det_static, sched, 0, 100.0, width=60)

    def test_one_row_per_node_plus_header_ruler(self, det_static, rendered):
        _, text = rendered
        lines = text.splitlines()
        assert len(lines) == det_static.num_nodes + 2

    def test_source_and_transmissions_marked(self, det_static, rendered):
        sched, text = rendered
        body = "\n".join(text.splitlines()[1:-1])  # skip header + ruler
        assert "S" in body
        assert body.count("T") == len({(s.relay, round(s.time, 6)) for s in sched})

    def test_receptions_marked(self, rendered):
        _, text = rendered
        body = "\n".join(text.splitlines()[1:-1])
        # three non-source nodes get informed
        assert body.count("R") == 3

    def test_feasibility_in_header(self, rendered):
        _, text = rendered
        assert "feasible=True" in text

    def test_contact_track_drawn(self, rendered):
        _, text = rendered
        assert "═" in text and "─" in text

    def test_ruler_labels_whole(self, rendered):
        _, text = rendered
        assert "100" in text.splitlines()[-1]

    def test_validation(self, det_static):
        with pytest.raises(ValueError):
            ascii_timeline(det_static, Schedule.empty(), 0, 100.0, width=5)
        with pytest.raises(ValueError):
            ascii_timeline(det_static, Schedule.empty(), 0, 0.0)

    def test_empty_schedule_renders(self, det_static):
        text = ascii_timeline(det_static, Schedule.empty(), 0, 100.0)
        assert "feasible=False" in text
        assert text.count("R") == 0

"""Temporal reachability (the Section II substrate)."""

import math

import networkx as nx
import pytest

from repro.temporal import (
    broadcast_feasible_sources,
    is_broadcastable,
    reachability_graph,
    reachable_set,
)
from repro.temporal.tvg import TVG


@pytest.fixture
def one_way_tvg():
    """Temporal one-way street: 0→1→2 works, 2→1→0 does not.

    Contact (0,1) at [0,10), contact (1,2) at [20,30): journeys 0→2 exist,
    but from 2 the (1,2) contact leads to 1 at 20, after the (0,1) contact
    is gone — temporal asymmetry that static graphs cannot express.
    """
    g = TVG([0, 1, 2], 50.0)
    g.add_contact(0, 1, 0.0, 10.0)
    g.add_contact(1, 2, 20.0, 30.0)
    return g


class TestReachableSet:
    def test_asymmetric(self, one_way_tvg):
        assert reachable_set(one_way_tvg, 0) == frozenset({0, 1, 2})
        assert reachable_set(one_way_tvg, 2) == frozenset({1, 2})

    def test_deadline_truncates(self, one_way_tvg):
        assert reachable_set(one_way_tvg, 0, deadline=15.0) == frozenset({0, 1})

    def test_start_time_truncates(self, one_way_tvg):
        # departing after the (0,1) contact, node 0 reaches nobody
        assert reachable_set(one_way_tvg, 0, start_time=12.0) == frozenset({0})

    def test_source_always_included(self, one_way_tvg):
        assert 2 in reachable_set(one_way_tvg, 2, deadline=0.0)


class TestBroadcastability:
    def test_is_broadcastable(self, one_way_tvg):
        assert is_broadcastable(one_way_tvg, 0)
        assert not is_broadcastable(one_way_tvg, 2)
        assert not is_broadcastable(one_way_tvg, 0, deadline=15.0)

    def test_feasible_sources(self, one_way_tvg):
        assert broadcast_feasible_sources(one_way_tvg) == frozenset({0, 1})

    def test_det_trace_all_sources(self, det_tvg):
        assert broadcast_feasible_sources(det_tvg, 0.0, 100.0) == frozenset(
            {0, 1, 2, 3}
        )


class TestReachabilityGraph:
    def test_edges_carry_arrivals(self, one_way_tvg):
        g = reachability_graph(one_way_tvg)
        assert g.has_edge(0, 2)
        assert not g.has_edge(2, 0)
        assert g[0][1]["arrival"] == 0.0
        assert g[0][2]["arrival"] == 20.0

    def test_window(self, one_way_tvg):
        g = reachability_graph(one_way_tvg, start_time=0.0, deadline=5.0)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)

    def test_is_digraph_over_all_nodes(self, one_way_tvg):
        g = reachability_graph(one_way_tvg)
        assert isinstance(g, nx.DiGraph)
        assert set(g.nodes) == {0, 1, 2}

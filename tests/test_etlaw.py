"""The ET-law (Proposition 5.1) and Theorem 5.2's constructive half."""

import pytest

from repro.core.partitions import Partition
from repro.dts import (
    apply_et_law,
    build_dts,
    earliest_transmission_time,
    follows_et_law,
)
from repro.schedule import Schedule, Transmission, check_feasibility


def _w(tveg, u, v, t):
    return tveg.min_cost(u, v, t)


class TestEarliestTransmissionTime:
    def test_informed_inside_interval(self):
        p = Partition([0.0, 10.0, 20.0, 30.0])
        # informed at 12, transmitting at 18 → move to 12 (same interval)
        assert earliest_transmission_time(p, 18.0, 12.0) == 12.0

    def test_informed_before_interval(self):
        p = Partition([0.0, 10.0, 20.0, 30.0])
        # informed at 3, transmitting at 18 → move to interval start 10
        assert earliest_transmission_time(p, 18.0, 3.0) == 10.0

    def test_already_earliest(self):
        p = Partition([0.0, 10.0, 20.0])
        assert earliest_transmission_time(p, 10.0, 5.0) == 10.0


class TestApplyETLaw:
    def test_moves_late_transmissions_earlier(self, det_static):
        # 0 covers {1,3} late in the [10,25) contact; ET-law pulls it to 10
        # (0 is the source, informed from t=0, so t' < interval start).
        late = Schedule(
            [
                Transmission(
                    0, 20.0, max(_w(det_static, 0, 1, 20.0), _w(det_static, 0, 3, 20.0))
                ),
                Transmission(1, 45.0, _w(det_static, 1, 2, 45.0)),
            ]
        )
        assert check_feasibility(det_static, late, 0, 100.0).feasible
        normalized = apply_et_law(det_static, late, 0)
        assert normalized.times[0] == 10.0
        # relay 1 informed at 10 (inside its adjacent interval) → moves to
        # the start of the interval containing 45 or to its informed time.
        assert normalized.times[1] <= 45.0
        assert check_feasibility(det_static, normalized, 0, 100.0).feasible

    def test_preserves_feasibility(self, det_static):
        sched = Schedule(
            [
                Transmission(
                    0, 22.0, max(_w(det_static, 0, 1, 22.0), _w(det_static, 0, 3, 22.0))
                ),
                Transmission(1, 48.0, _w(det_static, 1, 2, 48.0)),
            ]
        )
        before = check_feasibility(det_static, sched, 0, 100.0)
        after = check_feasibility(det_static, apply_et_law(det_static, sched, 0), 0, 100.0)
        assert before.feasible and after.feasible

    def test_et_times_never_later(self, det_static):
        sched = Schedule(
            [
                Transmission(
                    0, 22.0, max(_w(det_static, 0, 1, 22.0), _w(det_static, 0, 3, 22.0))
                ),
                Transmission(1, 48.0, _w(det_static, 1, 2, 48.0)),
            ]
        )
        out = apply_et_law(det_static, sched, 0)
        for a, b in zip(out, sched):
            assert a.time <= b.time

    def test_fixpoint(self, det_static):
        sched = Schedule(
            [
                Transmission(
                    0, 22.0, max(_w(det_static, 0, 1, 22.0), _w(det_static, 0, 3, 22.0))
                ),
                Transmission(1, 48.0, _w(det_static, 1, 2, 48.0)),
            ]
        )
        once = apply_et_law(det_static, sched, 0)
        twice = apply_et_law(det_static, once, 0)
        assert once == twice
        assert follows_et_law(det_static, once, 0)
        assert not follows_et_law(det_static, sched, 0)

    def test_et_times_lie_on_dts(self, det_static):
        # Theorem 5.2's constructive half: ET transmissions land on DTS points.
        sched = Schedule(
            [
                Transmission(
                    0, 22.0, max(_w(det_static, 0, 1, 22.0), _w(det_static, 0, 3, 22.0))
                ),
                Transmission(1, 48.0, _w(det_static, 1, 2, 48.0)),
            ]
        )
        out = apply_et_law(det_static, sched, 0)
        dts = build_dts(det_static.tvg)
        for s in out:
            assert dts.contains(s.relay, s.time)

"""Multi-process shard pool: routing, backpressure, drain, identity.

Boots real worker processes (stdlib ``multiprocessing``), so the tests
here share one module-scoped two-shard pool and keep the instance small
(8 nodes).  The byte-identity test is the load-bearing one: a plan
computed in a shard worker must match the in-process computation after
stripping the volatile timing fields — cross-process determinism is what
lets the sharded service replace the single process transparently.
"""

import json

import pytest

from repro.errors import ServiceOverloaded
from repro.service import PlanningService, ShardPool
from repro.traces import HaggleLikeConfig, haggle_like_trace

BODY = {"deadline": 600.0, "window": 2000.0, "seed": 3}


def strip_volatile(plan_doc):
    doc = json.loads(json.dumps(plan_doc))
    doc.get("manifest", {}).pop("created_unix", None)
    doc.get("manifest", {}).pop("wall_seconds", None)
    doc.get("info", {}).pop("stage_seconds", None)
    return json.dumps(doc, sort_keys=True)


@pytest.fixture(scope="module")
def trace():
    return haggle_like_trace(HaggleLikeConfig(num_nodes=8), seed=3)


@pytest.fixture(scope="module")
def pool(trace):
    with ShardPool(
        {"demo": trace},
        2,
        service_kwargs={"max_wait": 0.0, "workers": 2},
    ) as p:
        yield p


class TestShardPool:
    def test_validation(self, trace):
        with pytest.raises(ValueError):
            ShardPool({"demo": trace}, 0)

    def test_plan_round_trip(self, pool):
        shard_id, future = pool.submit_request("plan", dict(BODY))
        status, doc = future.result(timeout=120)
        assert status == 200
        assert 0 <= shard_id < pool.shards
        assert doc["plan"]["feasibility"]["all_informed"] is True
        # the response carries the plan-cache key (hashes the built TVEG);
        # the routing key hashes the raw trace — deterministic, but distinct
        assert len(doc["key"]) == 16
        assert pool.routing("plan", BODY) == pool.routing("plan", BODY)

    def test_affinity_and_cached_repeat(self, pool):
        first, _ = pool.submit_request("plan", dict(BODY))
        shard_ids = []
        for _ in range(3):
            shard_id, future = pool.submit_request("plan", dict(BODY))
            status, doc = future.result(timeout=120)
            shard_ids.append(shard_id)
            assert status == 200
        # one configuration, one owner shard — and its cache is warm now
        assert set(shard_ids) == {first}
        assert doc["cached"] is True

    def test_plan_many_round_trip(self, pool):
        body = {"sources": [None, None], "deadlines": 600.0,
                "window": 2000.0, "seed": 3}
        _, future = pool.submit_request("plan_many", body)
        status, doc = future.result(timeout=120)
        assert status == 200
        assert len(doc["keys"]) == 2
        assert doc["planset"]["plans"]

    def test_infeasible_maps_to_422_doc(self, pool):
        _, future = pool.submit_request(
            "plan", {**BODY, "deadline": 0.001}
        )
        status, doc = future.result(timeout=120)
        assert status == 422
        assert "error" in doc

    def test_unknown_trace_raises_before_dispatch(self, pool):
        with pytest.raises(KeyError, match="unknown trace"):
            pool.routing("plan", {**BODY, "trace": "nope"})

    def test_metrics_shape(self, pool):
        doc = pool.metrics()
        assert doc["mode"] == "sharded"
        assert len(doc["shards"]) == pool.shards
        for entry in doc["shards"]:
            assert entry["alive"] is True
            assert entry["queue_depth"] is not None
            assert "latency" in entry["service"]

    def test_healthz(self, pool):
        doc = pool.healthz()
        assert doc["status"] == "ok"
        assert doc["shards_alive"] == pool.shards

    def test_warm_primes_the_owner_shard(self, pool):
        body = {**BODY, "seed": 77}
        report = pool.warm([body])
        assert report == {"warmed": 1, "failed": 0}
        _, future = pool.submit_request("plan", dict(body))
        status, doc = future.result(timeout=120)
        assert status == 200
        assert doc["cached"] is True

    def test_warm_unroutable_counts_failed(self, pool):
        report = pool.warm([{**BODY, "trace": "nope"}])
        assert report["failed"] == 1

    def test_worker_plan_matches_in_process_plan(self, pool, trace):
        # cross-process determinism: same config hash, same plan document
        _, future = pool.submit_request("plan", dict(BODY))
        status, doc = future.result(timeout=120)
        assert status == 200
        svc = PlanningService({"demo": trace}, max_wait=0.0)
        try:
            local = svc.plan(trace="demo", **BODY).as_doc()
        finally:
            svc.close()
        assert doc["key"] == local["key"]
        assert strip_volatile(doc["plan"]) == strip_volatile(local["plan"])


class TestBackpressureAndDrain:
    def test_inflight_bound_and_graceful_drain(self, trace):
        pool = ShardPool(
            {"demo": trace},
            1,
            max_inflight=1,
            service_kwargs={"max_wait": 0.0, "workers": 1},
        )
        try:
            # a cold compute holds the single in-flight slot...
            _, busy = pool.submit_request(
                "plan", {**BODY, "seed": 501}
            )
            # ...so a second data request bounces with 429 semantics
            with pytest.raises(ServiceOverloaded):
                pool.submit_request("plan", {**BODY, "seed": 502})
            # control-plane methods bypass the data bound
            assert pool.healthz()["shards_alive"] == 1
            status, _ = busy.result(timeout=120)
            assert status == 200
        finally:
            finals = pool.drain(timeout=30)
        # drain handshake returned each shard's closing metrics document
        assert len(finals) == 1
        assert finals[0] is not None
        assert finals[0]["requests"] >= 1
        assert not pool.handles[0].proc.is_alive()

    def test_submit_after_drain_rejected(self, trace):
        pool = ShardPool(
            {"demo": trace}, 1, service_kwargs={"max_wait": 0.0}
        )
        pool.drain(timeout=30)
        with pytest.raises(ServiceOverloaded):
            pool.submit_request("plan", dict(BODY))

"""Public API surface: everything in __all__ is importable and documented."""

import inspect

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_public_objects_documented():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"undocumented public API: {undocumented}"


def test_quickstart_docstring_flow():
    """The README/docstring quick-start must actually run."""
    from repro import (
        HaggleLikeConfig,
        check_feasibility,
        haggle_like_trace,
        make_scheduler,
        tveg_from_trace,
    )

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=12, horizon=12000), seed=1)
    window = trace.restrict_window(8000, 10000).shift(-8000)
    tveg = tveg_from_trace(window, "static", seed=1)
    from repro.temporal.reachability import broadcast_feasible_sources

    feasible = broadcast_feasible_sources(tveg.tvg, 0.0, 2000.0)
    if not feasible:
        import pytest

        pytest.skip("window draw infeasible for quickstart")
    src = sorted(feasible)[0]
    schedule = make_scheduler("eedcb").schedule(tveg, source=src, deadline=2000)
    assert check_feasibility(tveg, schedule, src, 2000).feasible


def test_submodules_importable():
    import repro.allocation
    import repro.auxgraph
    import repro.channels
    import repro.core
    import repro.dts
    import repro.experiments
    import repro.mobility
    import repro.schedule
    import repro.sim
    import repro.steiner
    import repro.temporal
    import repro.traces
    import repro.tveg

"""Multicast (terminal-subset) scheduling — Liang's original MEMT setting."""

import math

import pytest

from repro.algorithms import make_scheduler
from repro.auxgraph import build_aux_graph, node_of
from repro.errors import GraphModelError, InfeasibleError
from repro.schedule import check_feasibility, informed_time


class TestAuxGraphTargets:
    def test_terminals_restricted(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0, targets=(1, 3))
        assert {node_of(t) for t in aux.terminals} == {1, 3}

    def test_source_excluded_from_targets(self, det_static):
        aux = build_aux_graph(det_static, 0, 100.0, targets=(0, 1))
        assert {node_of(t) for t in aux.terminals} == {1}

    def test_unknown_target_rejected(self, det_static):
        with pytest.raises(GraphModelError):
            build_aux_graph(det_static, 0, 100.0, targets=(99,))


class TestMulticastEEDCB:
    def test_multicast_cheaper_than_broadcast(self, det_static):
        multicast = make_scheduler("eedcb", targets=(1,)).schedule(
            det_static, 0, 100.0
        )
        broadcast = make_scheduler("eedcb").schedule(det_static, 0, 100.0)
        assert multicast.total_cost <= broadcast.total_cost
        assert len(multicast) <= len(broadcast)

    def test_targets_informed(self, det_static):
        sched = make_scheduler("eedcb", targets=(2,)).schedule(det_static, 0, 100.0)
        rep = check_feasibility(det_static, sched, 0, 100.0, targets=(2,))
        assert rep.feasible
        assert math.isfinite(informed_time(det_static, sched, 2, 0))

    def test_broadcast_feasibility_may_fail_for_multicast_plan(self, det_static):
        # a plan for {1} need not inform 2
        sched = make_scheduler("eedcb", targets=(1,)).schedule(det_static, 0, 100.0)
        full = check_feasibility(det_static, sched, 0, 100.0)
        sub = check_feasibility(det_static, sched, 0, 100.0, targets=(1,))
        assert sub.feasible
        assert not full.all_informed

    def test_multicast_reachability_filter(self, det_static):
        # node 2 only becomes reachable from 0 at t=20; by deadline 15 a
        # multicast to {1} is fine but to {2} is infeasible
        ok = make_scheduler("eedcb", targets=(1,)).schedule(det_static, 0, 15.0)
        assert check_feasibility(det_static, ok, 0, 15.0, targets=(1,)).feasible
        with pytest.raises(InfeasibleError):
            make_scheduler("eedcb", targets=(2,)).run(det_static, 0, 15.0)


class TestMulticastFREEDCB:
    def test_fading_multicast(self, det_fading):
        sched = make_scheduler("fr-eedcb", targets=(1, 3)).schedule(
            det_fading, 0, 100.0
        )
        rep = check_feasibility(det_fading, sched, 0, 100.0, targets=(1, 3))
        assert rep.feasible

    def test_fading_multicast_vs_broadcast(self, det_fading):
        # Under fading, multicast need NOT be cheaper than broadcast: the
        # broadcast backbone touches node 1 with several transmissions whose
        # failure probabilities multiply, so each can run weak, while the
        # single-target backbone must hit ε in one shot (w0).  We only
        # require both to be feasible and within a small factor.
        multicast = make_scheduler("fr-eedcb", targets=(1,)).schedule(
            det_fading, 0, 100.0
        )
        broadcast = make_scheduler("fr-eedcb").schedule(det_fading, 0, 100.0)
        assert len(multicast) <= len(broadcast)
        assert multicast.total_cost <= 2.0 * broadcast.total_cost

"""Protocol-level simulator: determinism, analytic parity, protocol knobs."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from .conftest import make_random_instance
from repro import obs
from repro.algorithms import make_scheduler
from repro.channels import RayleighChannel, StaticChannel
from repro.errors import GraphModelError, ScheduleError
from repro.params import PAPER_PARAMS
from repro.protosim import (
    MessageCounts,
    ProtocolConfig,
    check_analytic_parity,
    execute_plan,
    execute_schedule,
    run_protocol_trials,
)
from repro.schedule.schedule import Schedule, Transmission
from repro.sim import simulate_schedule
from repro.traces import DistanceModel, uniform_trace
from repro.tveg import TVEG

ALL_SCHEDULERS = (
    "eedcb", "greed", "rand", "oracle", "fr-eedcb", "fr-greed", "fr-rand"
)


def paired_instance(seed=2, num_nodes=8, horizon=400.0):
    """Static + Rayleigh TVEGs sharing one distance provider.

    The fr-* schedulers refuse static channels, so the parity sweep plans
    them on the Rayleigh twin and then *executes* the resulting schedule
    on the static twin — the same geometry, so the schedule is physically
    meaningful, and the lossless channel makes both engines deterministic.
    """
    trace = uniform_trace(
        num_nodes=num_nodes, horizon=horizon, mean_gap=80.0,
        mean_duration=40.0, seed=seed,
    )
    tvg = trace.to_tvg()
    provider = DistanceModel().attach(trace, seed=1)
    return (
        TVEG(tvg, StaticChannel(PAPER_PARAMS), provider),
        TVEG(tvg, RayleighChannel(PAPER_PARAMS), provider),
    )


@pytest.fixture(autouse=True)
def _clean_global_ledger():
    obs.disable_ledger()
    yield
    obs.disable_ledger()


class TestAnalyticParity:
    """The issue's acceptance criterion: lossless runs match `repro.sim`."""

    @pytest.mark.parametrize("algorithm", ALL_SCHEDULERS)
    def test_parity_across_all_schedulers(self, algorithm):
        static, fading = paired_instance(seed=2)
        kwargs = {"seed": 1} if "rand" in algorithm else {}
        planning = fading if algorithm.startswith("fr-") else static
        schedule = make_scheduler(algorithm, **kwargs).schedule(
            planning, 0, 250.0
        )
        report = check_analytic_parity(static, schedule, 0, 250.0)
        assert report.ok, report.mismatches
        assert report.informed_match
        assert report.energy_match
        assert report.reception_match

    @pytest.mark.parametrize("seed", range(5))
    def test_parity_across_random_instances(self, seed):
        _, tveg = make_random_instance(num_nodes=6, seed=seed)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        report = check_analytic_parity(tveg, schedule, 0, 200.0)
        assert report.ok, report.mismatches

    def test_parity_energy_is_bit_identical(self):
        _, tveg = make_random_instance(num_nodes=6, seed=3)
        schedule = make_scheduler("greed").schedule(tveg, 0, 200.0)
        res = execute_schedule(
            tveg, schedule, 0, 200.0, seed=0, config=ProtocolConfig.parity()
        )
        analytic = simulate_schedule(tveg, schedule, 0, seed=0)
        # Totals agree exactly, not merely within tolerance.
        assert res.energy == analytic.energy
        assert res.informed == analytic.received
        assert dict(res.reception_times) == dict(analytic.reception_times)

    def test_abandoned_rows_stay_silent_in_both_engines(self):
        _, tveg = make_random_instance(num_nodes=6, seed=0)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        # A relay that is never informed by its fire instant must stay
        # silent forever in both engines (no energy, no receptions).
        uninformed = next(
            n for n in tveg.nodes
            if n != 0 and all(r.relay != n for r in schedule)
        )
        stale = schedule.extend([Transmission(uninformed, 0.0, 1e-9)])
        report = check_analytic_parity(tveg, stale, 0, 200.0)
        assert report.ok, report.mismatches
        assert report.protocol.silent_rows >= 1

    def test_parity_refuses_fading_channels(self):
        _, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        with pytest.raises(GraphModelError):
            check_analytic_parity(fading, schedule, 0, 250.0)
        report = check_analytic_parity(
            fading, schedule, 0, 250.0, allow_fading=True
        )
        assert report.protocol.num_nodes == fading.num_nodes


class TestDeterminism:
    """Fixed seed → byte-identical results, for any worker count."""

    @settings(
        max_examples=5, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_workers_byte_identical(self, seed):
        static, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        serial = run_protocol_trials(
            fading, schedule, 0, 250.0, num_trials=6, seed=seed,
            workers=1, keep_outcomes=True,
        )
        parallel = run_protocol_trials(
            fading, schedule, 0, 250.0, num_trials=6, seed=seed,
            workers=3, keep_outcomes=True,
        )
        assert serial == parallel
        assert serial.outcomes == parallel.outcomes

    def test_same_seed_same_result(self):
        _, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        a = execute_schedule(fading, schedule, 0, 250.0, seed=11)
        b = execute_schedule(fading, schedule, 0, 250.0, seed=11)
        assert a == b

    def test_lossless_outcome_is_seed_independent(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        cfg = ProtocolConfig.parity()
        runs = [
            execute_schedule(tveg, schedule, 0, 200.0, seed=s, config=cfg)
            for s in (0, 7, 12345)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_ledger_recording_does_not_change_results(self):
        _, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        bare = execute_schedule(fading, schedule, 0, 250.0, seed=4)
        obs.enable_ledger()
        recorded = execute_schedule(fading, schedule, 0, 250.0, seed=4)
        obs.disable_ledger()
        assert bare == recorded


class TestProtocolBehavior:
    def test_retransmissions_recover_losses(self):
        _, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        single = run_protocol_trials(
            fading, schedule, 0, 250.0, num_trials=40, seed=9,
            config=ProtocolConfig(max_retries=0, ack=False),
        )
        retried = run_protocol_trials(
            fading, schedule, 0, 250.0, num_trials=40, seed=9,
            config=ProtocolConfig(max_retries=3, backoff=1.0),
        )
        assert retried.mean_retransmits > 0
        assert retried.mean_delivery >= single.mean_delivery

    def test_ack_overhead_is_counted(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        no_ack = execute_schedule(
            tveg, schedule, 0, 200.0, seed=0,
            config=ProtocolConfig(max_retries=0, ack=False),
        )
        with_ack = execute_schedule(
            tveg, schedule, 0, 200.0, seed=0,
            config=ProtocolConfig(max_retries=0, ack=True),
        )
        assert with_ack.counts.ack_sent == len(with_ack.informed) - 1
        assert with_ack.energy > no_ack.energy
        assert no_ack.counts.ack_sent == 0

    def test_bounded_queue_drops_bursts(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        base = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        first = base[0]
        # A burst of frames from one relay at one instant: with a long
        # service time and a one-slot queue, most of the burst must be
        # shed as queue_full drops.
        burst = Schedule(
            [first] + [
                Transmission(first.relay, first.time, first.cost)
                for _ in range(5)
            ]
        )
        res = execute_schedule(
            tveg, burst, first.relay, 200.0, seed=0,
            config=ProtocolConfig(
                max_retries=0, ack=False, service_time=1000.0,
                queue_capacity=1,
            ),
        )
        assert res.counts.queue_dropped == 4  # 1 on air + 1 queued + 4 shed
        res_roomy = execute_schedule(
            tveg, burst, first.relay, 200.0, seed=0,
            config=ProtocolConfig(
                max_retries=0, ack=False, service_time=0.0,
                queue_capacity=1,
            ),
        )
        assert res_roomy.counts.queue_dropped == 0

    def test_clock_offsets_shift_fire_instants(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        synced = execute_schedule(
            tveg, schedule, 0, 200.0, seed=0,
            config=ProtocolConfig.parity(),
        )
        # Explicit zero offsets are exactly the synchronized run.
        zeros = ProtocolConfig(
            max_retries=0, ack=False,
            clock_offsets={n: 0.0 for n in tveg.nodes},
        )
        assert execute_schedule(
            tveg, schedule, 0, 200.0, seed=0, config=zeros
        ) == synced
        # Jittered clocks change fire instants deterministically per seed.
        jittered_cfg = ProtocolConfig(
            max_retries=0, ack=False, clock_jitter=3.0
        )
        j1 = execute_schedule(
            tveg, schedule, 0, 200.0, seed=5, config=jittered_cfg
        )
        j2 = execute_schedule(
            tveg, schedule, 0, 200.0, seed=5, config=jittered_cfg
        )
        assert j1 == j2

    def test_hello_cost_charged_per_contact_endpoint(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        free = execute_schedule(
            tveg, schedule, 0, 200.0, seed=0, config=ProtocolConfig.parity()
        )
        priced = execute_schedule(
            tveg, schedule, 0, 200.0, seed=0,
            config=ProtocolConfig(max_retries=0, ack=False, hello_cost=1.0),
        )
        assert priced.counts.hello_sent == free.counts.hello_sent > 0
        assert priced.energy == pytest.approx(
            free.energy + priced.counts.hello_sent
        )

    def test_execute_plan_accepts_broadcast_plan(self):
        from repro import plan_broadcast

        trace, _ = make_random_instance(num_nodes=6, seed=1)
        plan = plan_broadcast(
            trace, 0, 200.0, algorithm="eedcb", window=(0.0, 300.0), seed=1
        )
        res = execute_plan(plan, seed=0, config=ProtocolConfig.parity())
        assert res.informed >= {0}
        assert res.num_nodes == plan.tveg.num_nodes
        # An explicit TVEG override executes the same schedule elsewhere.
        override = execute_plan(
            plan, tveg=plan.tveg, seed=0, config=ProtocolConfig.parity()
        )
        assert override == res

    def test_invalid_config_rejected(self):
        with pytest.raises(ScheduleError):
            ProtocolConfig(max_retries=-1)
        with pytest.raises(ScheduleError):
            ProtocolConfig(backoff=0.0)
        with pytest.raises(ScheduleError):
            ProtocolConfig(service_time=-1.0)

    def test_unknown_source_rejected(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        with pytest.raises(ScheduleError):
            execute_schedule(tveg, Schedule.empty(), "nope", 100.0)


class TestLedgerEvents:
    def test_msg_events_match_counts(self):
        _, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        obs.enable_ledger()
        res = execute_schedule(fading, schedule, 0, 250.0, seed=3, trial_id=7)
        evs = obs.ledger_events()
        obs.disable_ledger()
        by_type = {}
        for e in evs:
            by_type.setdefault(e.type, []).append(e)
        sent = by_type.get(obs.EV_MSG_SENT, [])
        received = by_type.get(obs.EV_MSG_RECEIVED, [])
        dropped = by_type.get(obs.EV_MSG_DROPPED, [])
        retx = by_type.get(obs.EV_MSG_RETRANSMIT, [])
        c = res.counts
        assert len(sent) == c.total_sent
        assert len(received) == c.data_received + c.ack_received
        assert len(dropped) == c.data_dropped + c.ack_dropped
        assert len(retx) == c.retransmits
        assert all(e.fields["trial"] == 7 for e in sent)
        kinds = {e.fields["msg"] for e in sent}
        assert kinds >= {"hello", "data"}

    def test_message_rows_reads_both_engines(self):
        from repro.obs.report import message_rows
        from repro.online import Epidemic, run_online

        _, fading = make_random_instance(seed=2, channel="rayleigh")
        schedule_tveg, _ = paired_instance(seed=2)
        obs.enable_ledger()
        out = run_online(fading, Epidemic(), 0, 300.0, seed=3)
        schedule = make_scheduler("eedcb").schedule(schedule_tveg, 0, 250.0)
        execute_schedule(schedule_tveg, schedule, 0, 250.0, seed=3)
        rows = message_rows(obs.ledger_events())
        obs.disable_ledger()
        assert out.attempts > 0
        online_rows = [r for r in rows if r["msg"] == "data" and
                       r["outcome"] in ("received", "dropped")]
        assert len(online_rows) >= out.attempts
        assert all(r["src"] is not None for r in rows)
        assert {r["outcome"] for r in rows} >= {"sent"}

    def test_report_renders_message_timeline(self, tmp_path):
        from repro.obs.report import render_html

        _, fading = paired_instance(seed=2)
        schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)
        obs.enable_ledger()
        execute_schedule(fading, schedule, 0, 250.0, seed=3)
        html = render_html(obs.ledger_events())
        obs.disable_ledger()
        assert "Message timeline" in html
        assert "first DATA reception" in html

    def test_report_omits_timeline_without_msg_events(self):
        from repro.obs.report import render_html

        assert "Message timeline" not in render_html([])


class TestSummary:
    def test_summary_aggregates(self):
        _, tveg = make_random_instance(num_nodes=6, seed=1)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 200.0)
        s = run_protocol_trials(
            tveg, schedule, 0, 200.0, num_trials=5, seed=1,
            config=ProtocolConfig.parity(), keep_outcomes=True,
        )
        assert s.num_trials == 5
        assert len(s.outcomes) == 5
        assert s.std_delivery == 0.0  # lossless: every trial identical
        assert s.mean_energy == s.outcomes[0].energy
        lo, hi = s.delivery_ci95()
        assert lo <= s.mean_delivery <= hi

    def test_counts_value_object(self):
        c = MessageCounts(hello_sent=2, data_sent=3, ack_sent=1)
        assert c.total_sent == 6
        assert c == MessageCounts(hello_sent=2, data_sent=3, ack_sent=1)

"""Collision-model interference (the Section VIII future-work extension)."""

import pytest

from repro.schedule import Schedule, Transmission
from repro.sim import run_trials, simulate_schedule
from repro.temporal.tvg import TVG
from repro.traces import Contact, ContactTrace
from repro.tveg import tveg_from_trace


@pytest.fixture
def star_tveg():
    """Nodes 1 and 2 both adjacent to 3 (and to source 0) at t ∈ [0, 10)."""
    contacts = [
        Contact(0.0, 10.0, 0, 1),
        Contact(0.0, 10.0, 0, 2),
        Contact(0.0, 10.0, 1, 3),
        Contact(0.0, 10.0, 2, 3),
    ]
    trace = ContactTrace(contacts, nodes=(0, 1, 2, 3), horizon=10.0)
    return tveg_from_trace(trace, "static", seed=0)


def _w(tveg, u, v, t):
    return tveg.min_cost(u, v, t)


class TestCollisionModel:
    def test_unknown_model_rejected(self, star_tveg):
        with pytest.raises(ValueError):
            simulate_schedule(
                star_tveg, Schedule.empty(), 0, seed=0, interference="magic"
            )

    def test_simultaneous_senders_collide_at_common_receiver(self, star_tveg):
        # 0 informs 1 and 2 at t=0 (round 1); then 1 and 2 both transmit to
        # 3 in the same causal round at t=5 → collision at 3.
        w0 = max(_w(star_tveg, 0, 1, 0.0), _w(star_tveg, 0, 2, 0.0))
        sched = Schedule(
            [
                Transmission(0, 0.0, w0),
                Transmission(1, 5.0, _w(star_tveg, 1, 3, 5.0)),
                Transmission(2, 5.0, _w(star_tveg, 2, 3, 5.0)),
            ]
        )
        out_none = simulate_schedule(star_tveg, sched, 0, seed=1)
        out_coll = simulate_schedule(
            star_tveg, sched, 0, seed=1, interference="collision"
        )
        assert 3 in out_none.received
        assert 3 not in out_coll.received  # both senders adjacent → collide

    def test_single_sender_unaffected(self, star_tveg):
        w0 = max(_w(star_tveg, 0, 1, 0.0), _w(star_tveg, 0, 2, 0.0))
        sched = Schedule(
            [
                Transmission(0, 0.0, w0),
                Transmission(1, 5.0, _w(star_tveg, 1, 3, 5.0)),
            ]
        )
        out = simulate_schedule(
            star_tveg, sched, 0, seed=1, interference="collision"
        )
        assert out.received == frozenset({0, 1, 2, 3})

    def test_staggered_times_avoid_collision(self, star_tveg):
        w0 = max(_w(star_tveg, 0, 1, 0.0), _w(star_tveg, 0, 2, 0.0))
        sched = Schedule(
            [
                Transmission(0, 0.0, w0),
                Transmission(1, 5.0, _w(star_tveg, 1, 3, 5.0)),
                Transmission(2, 6.0, _w(star_tveg, 2, 3, 6.0)),
            ]
        )
        out = simulate_schedule(
            star_tveg, sched, 0, seed=1, interference="collision"
        )
        assert 3 in out.received

    def test_collision_never_improves_delivery(self, star_tveg):
        w0 = max(_w(star_tveg, 0, 1, 0.0), _w(star_tveg, 0, 2, 0.0))
        sched = Schedule(
            [
                Transmission(0, 0.0, w0),
                Transmission(1, 5.0, _w(star_tveg, 1, 3, 5.0)),
                Transmission(2, 5.0, _w(star_tveg, 2, 3, 5.0)),
            ]
        )
        a = run_trials(star_tveg, sched, 0, 50, seed=3)
        b = run_trials(star_tveg, sched, 0, 50, seed=3, interference="collision")
        assert b.mean_delivery <= a.mean_delivery

    def test_same_round_chain_still_fires_across_rounds(self, star_tveg):
        # causal rounds: 0 fires alone (round 1); 1 and 2 get the packet at
        # the SAME timestamp and relay at that timestamp too — they are in a
        # later round, simultaneous with each other only.
        w0 = max(_w(star_tveg, 0, 1, 0.0), _w(star_tveg, 0, 2, 0.0))
        sched = Schedule(
            [
                Transmission(0, 0.0, w0),
                Transmission(1, 0.0, _w(star_tveg, 1, 3, 0.0)),
                Transmission(2, 0.0, _w(star_tveg, 2, 3, 0.0)),
            ]
        )
        out = simulate_schedule(
            star_tveg, sched, 0, seed=1, interference="collision"
        )
        # 1 and 2 fire simultaneously in round 2 → they collide at 3
        assert 3 not in out.received
        assert out.transmissions == 3

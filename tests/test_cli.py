"""Command-line interface: every subcommand end to end."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.traces import deterministic_trace, write_crawdad


@pytest.fixture
def trace_file(tmp_path):
    p = tmp_path / "trace.dat"
    write_crawdad(deterministic_trace(), p)
    return str(p)


@pytest.fixture(autouse=True)
def _clean_global_ledger():
    obs.disable_ledger()
    yield
    obs.disable_ledger()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("generate", "stats", "schedule", "simulate",
                    "protosim", "experiment", "bench", "report"):
            args = {
                "generate": [cmd, "x.dat"],
                "stats": [cmd, "x.dat"],
                "schedule": [cmd, "x.dat"],
                "simulate": [cmd, "x.dat"],
                "protosim": [cmd, "x.dat"],
                "experiment": [cmd, "fig4"],
                "bench": [cmd],
                "report": [cmd, "run.ndjson"],
            }[cmd]
            assert parser.parse_args(args).command == cmd

    def test_logging_flags_accepted_by_every_command(self):
        parser = build_parser()
        args = parser.parse_args(["schedule", "x.dat", "-v"])
        assert args.verbose
        args = parser.parse_args(["simulate", "x.dat", "--log-level", "debug"])
        assert args.log_level == "debug"


class TestCommands:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main(["generate", str(out), "--nodes", "6", "--horizon", "2000",
                     "--seed", "3"]) == 0
        assert out.exists()
        assert main(["stats", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "num_nodes" in captured and "6" in captured

    def test_schedule(self, trace_file, capsys):
        rc = main(["schedule", trace_file, "--delay", "100", "--source", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "feasible: True" in out
        assert "normalized energy" in out

    def test_schedule_auto_source(self, trace_file, capsys):
        assert main(["schedule", trace_file, "--delay", "100"]) == 0

    def test_schedule_infeasible_errors(self, trace_file, capsys):
        rc = main(["schedule", trace_file, "--delay", "5"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_simulate(self, trace_file, capsys):
        rc = main([
            "simulate", trace_file, "--algorithm", "fr-eedcb",
            "--delay", "100", "--source", "0", "--trials", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery" in out

    def test_simulate_static(self, trace_file, capsys):
        rc = main([
            "simulate", trace_file, "--algorithm", "greed",
            "--delay", "100", "--source", "0", "--trials", "10",
        ])
        assert rc == 0

    def test_simulate_protocol(self, trace_file, capsys):
        rc = main([
            "simulate", trace_file, "--algorithm", "fr-eedcb",
            "--delay", "100", "--source", "0", "--trials", "20",
            "--protocol",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery" in out
        assert "data sent" in out

    def test_protosim(self, trace_file, capsys):
        rc = main([
            "protosim", trace_file, "--algorithm", "fr-eedcb",
            "--delay", "100", "--source", "0", "--trials", "20",
            "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery" in out
        assert "retransmission" in out

    def test_protosim_check_parity(self, trace_file, capsys):
        rc = main([
            "protosim", trace_file, "--algorithm", "eedcb",
            "--channel", "static", "--delay", "100", "--source", "0",
            "--trials", "5", "--parity", "--check-parity",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ok (informed=" in out

    def test_protosim_knobs(self, trace_file, capsys):
        rc = main([
            "protosim", trace_file, "--algorithm", "fr-eedcb",
            "--delay", "100", "--source", "0", "--trials", "10",
            "--max-retries", "1", "--backoff", "2.0", "--no-ack",
            "--queue-capacity", "4", "--clock-jitter", "0.5",
            "--seed", "2", "--workers", "2",
        ])
        assert rc == 0
        assert "delivery" in capsys.readouterr().out

    def test_missing_trace_errors(self, capsys):
        rc = main(["stats", "/nonexistent/trace.dat"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_schedule_ledger_and_manifest_roundtrip(self, trace_file, tmp_path):
        ledger = tmp_path / "run.ndjson"
        manifest = tmp_path / "m.json"
        rc = main(["schedule", trace_file, "--delay", "100", "--source", "0",
                   "--ledger-out", str(ledger), "--manifest-out", str(manifest)])
        assert rc == 0
        events = obs.read_ledger_ndjson(ledger)
        assert events[0].type == obs.EV_MANIFEST
        assert events[0].fields["config_hash"]
        types = {e.type for e in events}
        assert obs.EV_TRANSMISSION_SCHEDULED in types
        assert obs.EV_NODE_INFORMED in types
        assert obs.EV_RUN_SUMMARY in types
        m = obs.read_manifest(manifest)
        assert m["config_hash"] == events[0].fields["config_hash"]
        # The CLI tears the global ledger down afterwards.
        assert not obs.ledger_enabled()

    def test_schedule_trace_and_metrics_roundtrip(self, trace_file, tmp_path):
        trace_out = tmp_path / "trace.jsonl"
        metrics_out = tmp_path / "metrics.json"
        rc = main(["schedule", trace_file, "--delay", "100", "--source", "0",
                   "--trace-out", str(trace_out),
                   "--metrics-out", str(metrics_out)])
        assert rc == 0
        assert trace_out.exists() and trace_out.read_text().strip()
        metrics = metrics_out.read_text()
        assert metrics.startswith("kind,name,count")  # aggregate CSV
        # each kernel names its build span; the default resolves per
        # numpy availability / REPRO_COMPUTE, so accept either
        assert ("auxgraph.compact_build" in metrics
                or "auxgraph.numpy_build" in metrics)

    def test_simulate_ledger_roundtrip(self, trace_file, tmp_path):
        ledger = tmp_path / "sim.ndjson"
        rc = main(["simulate", trace_file, "--algorithm", "greed",
                   "--delay", "100", "--source", "0", "--trials", "5",
                   "--ledger-out", str(ledger)])
        assert rc == 0
        types = [e.type for e in obs.read_ledger_ndjson(ledger)]
        assert types[0] == obs.EV_MANIFEST
        assert obs.EV_ENERGY_DEBITED in types
        assert obs.EV_RUN_SUMMARY in types

    def test_experiment_writes_manifest_into_csv_dir(self, tmp_path, capsys):
        rc = main(["experiment", "fig5", "--repetitions", "1", "--trials", "5",
                   "--nodes", "8", "--seed", "1", "--csv-dir", str(tmp_path)])
        assert rc == 0
        manifest = obs.read_manifest(tmp_path / "manifest.json")
        assert manifest["config_hash"]
        assert manifest["config"]["figure"] == "fig5"

    def test_verbose_streams_events(self, trace_file, capsys):
        rc = main(["schedule", trace_file, "--delay", "100", "--source", "0",
                   "-v"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "transmission_scheduled" in err
        assert "run_summary" in err

    def test_default_run_is_silent(self, trace_file, capsys):
        rc = main(["schedule", trace_file, "--delay", "100", "--source", "0"])
        assert rc == 0
        assert capsys.readouterr().err == ""


class TestReportCommand:
    def test_schedule_then_report(self, trace_file, tmp_path, capsys):
        ledger = tmp_path / "run.ndjson"
        out = tmp_path / "report.html"
        assert main(["schedule", trace_file, "--delay", "100", "--source", "0",
                     "--ledger-out", str(ledger)]) == 0
        assert main(["report", str(ledger), "-o", str(out)]) == 0
        doc = out.read_text()
        assert doc.startswith("<!doctype html>")
        assert "<svg" in doc and "config_hash" in doc
        assert "Per-node energy" in doc

    def test_report_missing_ledger_errors(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "missing.ndjson")])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestBenchCommand:
    BENCH = ["bench", "--quick", "--nodes", "8", "--repeats", "1"]

    def test_bench_writes_doc_and_skips_gate_without_baseline(
        self, tmp_path, capsys
    ):
        out = tmp_path / "bench.json"
        rc = main([*self.BENCH, "--out", str(out),
                   "--baseline", str(tmp_path / "none.json")])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench/1"
        assert doc["quick"] is True
        assert "eedcb_run" in doc["results"]
        assert doc["results"]["eedcb_run"]["min_ms"] > 0
        assert doc["overhead"]["estimated_fraction_of_eedcb"] < 0.01
        captured = capsys.readouterr()
        assert "gate skipped" in captured.out + captured.err

    def test_bench_gate_pass_and_fail(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        out = tmp_path / "bench.json"
        assert main([*self.BENCH, "--out", str(out),
                     "--baseline", str(baseline), "--write-baseline"]) == 0
        assert baseline.exists()
        # Generous tolerance: same-process reruns only jitter a little.
        assert main([*self.BENCH, "--out", str(out),
                     "--baseline", str(baseline), "--tolerance", "30"]) == 0
        # Doctor the baseline so every op looks like a huge regression.
        doc = json.loads(baseline.read_text())
        for entry in doc["results"].values():
            entry["min_ms"] = 1e-6
            entry["p50_ms"] = 1e-6
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        rc = main([*self.BENCH, "--out", str(out), "--baseline", str(baseline)])
        assert rc == 3
        assert "REGRESSION" in capsys.readouterr().err


class TestExperimentCommand:
    def test_fig5_tiny(self, capsys):
        rc = main([
            "experiment", "fig5", "--repetitions", "1", "--trials", "10",
            "--nodes", "8", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EEDCB" in out and "FR-EEDCB" in out

"""Command-line interface: every subcommand end to end."""

import pytest

from repro.cli import build_parser, main
from repro.traces import deterministic_trace, write_crawdad


@pytest.fixture
def trace_file(tmp_path):
    p = tmp_path / "trace.dat"
    write_crawdad(deterministic_trace(), p)
    return str(p)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("generate", "stats", "schedule", "simulate", "experiment"):
            args = {
                "generate": [cmd, "x.dat"],
                "stats": [cmd, "x.dat"],
                "schedule": [cmd, "x.dat"],
                "simulate": [cmd, "x.dat"],
                "experiment": [cmd, "fig4"],
            }[cmd]
            assert parser.parse_args(args).command == cmd


class TestCommands:
    def test_generate_and_stats(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main(["generate", str(out), "--nodes", "6", "--horizon", "2000",
                     "--seed", "3"]) == 0
        assert out.exists()
        assert main(["stats", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "num_nodes" in captured and "6" in captured

    def test_schedule(self, trace_file, capsys):
        rc = main(["schedule", trace_file, "--delay", "100", "--source", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "feasible: True" in out
        assert "normalized energy" in out

    def test_schedule_auto_source(self, trace_file, capsys):
        assert main(["schedule", trace_file, "--delay", "100"]) == 0

    def test_schedule_infeasible_errors(self, trace_file, capsys):
        rc = main(["schedule", trace_file, "--delay", "5"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_simulate(self, trace_file, capsys):
        rc = main([
            "simulate", trace_file, "--algorithm", "fr-eedcb",
            "--delay", "100", "--source", "0", "--trials", "50",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery" in out

    def test_simulate_static(self, trace_file, capsys):
        rc = main([
            "simulate", trace_file, "--algorithm", "greed",
            "--delay", "100", "--source", "0", "--trials", "10",
        ])
        assert rc == 0

    def test_missing_trace_errors(self, capsys):
        rc = main(["stats", "/nonexistent/trace.dat"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_fig5_tiny(self, capsys):
        rc = main([
            "experiment", "fig5", "--repetitions", "1", "--trials", "10",
            "--nodes", "8", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EEDCB" in out and "FR-EEDCB" in out

"""Contact traces: model, parser round-trips, synthesis, enrichment, stats."""

import io
import math

import numpy as np
import pytest

from repro.errors import GraphModelError, TraceFormatError
from repro.traces import (
    Contact,
    ContactTrace,
    DistanceModel,
    HaggleLikeConfig,
    deterministic_trace,
    haggle_like_trace,
    parse_crawdad,
    parse_csv,
    summarize,
    uniform_trace,
    write_crawdad,
    write_csv,
)


class TestContactModel:
    def test_validation(self):
        with pytest.raises(TraceFormatError):
            Contact(5.0, 1.0, 0, 1)
        with pytest.raises(TraceFormatError):
            Contact(0.0, 1.0, 2, 2)

    def test_pair_and_duration(self):
        c = Contact(1.0, 3.0, 5, 2)
        assert c.pair == (2, 5)
        assert c.duration == 2.0

    def test_trace_sorted_and_inferred(self):
        tr = ContactTrace([Contact(5.0, 6.0, 1, 2), Contact(0.0, 1.0, 0, 1)])
        assert tr.contacts[0].start == 0.0
        assert set(tr.nodes) == {0, 1, 2}
        assert tr.horizon == 6.0

    def test_explicit_nodes_kept(self):
        tr = ContactTrace([Contact(0.0, 1.0, 0, 1)], nodes=(0, 1, 2, 3))
        assert tr.num_nodes == 4

    def test_restrict_nodes(self, det_trace):
        sub = det_trace.restrict_nodes([0, 1, 2])
        assert sub.num_nodes == 3
        assert all(c.u in (0, 1, 2) and c.v in (0, 1, 2) for c in sub)

    def test_restrict_window_clips(self, det_trace):
        sub = det_trace.restrict_window(15.0, 45.0)
        for c in sub:
            assert 15.0 <= c.start < c.end <= 45.0
        # the (0,1) contact [0,30) must clip to [15,30)
        pairs = {(c.pair, c.start, c.end) for c in sub}
        assert ((0, 1), 15.0, 30.0) in pairs

    def test_restrict_window_invalid(self, det_trace):
        with pytest.raises(TraceFormatError):
            det_trace.restrict_window(10.0, 10.0)

    def test_shift(self, det_trace):
        sub = det_trace.restrict_window(10.0, 30.0).shift(-10.0)
        assert min(c.start for c in sub) == 0.0

    def test_pair_presence_merges(self):
        tr = ContactTrace([Contact(0.0, 2.0, 0, 1), Contact(1.0, 3.0, 0, 1)])
        assert tr.pair_presence()[(0, 1)].pairs == ((0.0, 3.0),)

    def test_to_tvg(self, det_trace):
        tvg = det_trace.to_tvg()
        assert tvg.num_nodes == 4
        assert tvg.rho(0, 1, 5.0)


class TestParsers:
    def test_crawdad_round_trip(self, det_trace):
        buf = io.StringIO()
        write_crawdad(det_trace, buf)
        buf.seek(0)
        back = parse_crawdad(buf)
        assert back.num_contacts == det_trace.num_contacts
        assert {(c.pair, c.start, c.end) for c in back} == {
            (c.pair, c.start, c.end) for c in det_trace
        }

    def test_csv_round_trip(self, det_trace):
        buf = io.StringIO()
        write_csv(det_trace, buf)
        buf.seek(0)
        back = parse_csv(io.StringIO(buf.getvalue()))
        assert back.num_contacts == det_trace.num_contacts

    def test_crawdad_comments_and_extras(self):
        text = "# comment\n\n1 2 0.0 5.0 extra cols ignored\n3 3 0 1\n"
        tr = parse_crawdad(io.StringIO(text))
        assert tr.num_contacts == 1  # self-sighting dropped

    def test_crawdad_bad_line(self):
        with pytest.raises(TraceFormatError):
            parse_crawdad(io.StringIO("1 2 0.0\n"))
        with pytest.raises(TraceFormatError):
            parse_crawdad(io.StringIO("1 2 5.0 1.0\n"))
        with pytest.raises(TraceFormatError):
            parse_crawdad(io.StringIO("a b 0.0 1.0\n"))

    def test_csv_missing_columns(self):
        with pytest.raises(TraceFormatError):
            parse_csv(io.StringIO("u,v,start\n1,2,0\n"))

    def test_csv_empty(self):
        with pytest.raises(TraceFormatError):
            parse_csv(io.StringIO(""))

    def test_load_trace_dispatch(self, det_trace, tmp_path):
        from repro.traces import load_trace

        p1 = tmp_path / "t.csv"
        p2 = tmp_path / "t.dat"
        write_csv(det_trace, p1)
        write_crawdad(det_trace, p2)
        assert load_trace(p1).num_contacts == det_trace.num_contacts
        assert load_trace(p2).num_contacts == det_trace.num_contacts


class TestSynthetic:
    def test_config_validation(self):
        with pytest.raises(TraceFormatError):
            HaggleLikeConfig(num_nodes=1)
        with pytest.raises(TraceFormatError):
            HaggleLikeConfig(gap_shape=0.9)
        with pytest.raises(TraceFormatError):
            HaggleLikeConfig(social_fraction=0.0)

    def test_reproducible(self):
        cfg = HaggleLikeConfig(num_nodes=8, horizon=3000)
        a = haggle_like_trace(cfg, seed=3)
        b = haggle_like_trace(cfg, seed=3)
        assert a.num_contacts == b.num_contacts
        assert {(c.pair, c.start) for c in a} == {(c.pair, c.start) for c in b}

    def test_horizon_respected(self):
        tr = haggle_like_trace(HaggleLikeConfig(num_nodes=8, horizon=2000), seed=1)
        assert all(c.end <= 2000 for c in tr)

    def test_degree_ramp(self):
        cfg = HaggleLikeConfig(num_nodes=15, horizon=17000, ramp_end=8000)
        stats = summarize(haggle_like_trace(cfg, seed=5))
        # the warm-up ramp: early degree well below late degree
        assert stats.mean_degree_early < 0.7 * stats.mean_degree_late

    def test_no_ramp_when_level_one(self):
        cfg = HaggleLikeConfig(
            num_nodes=15,
            horizon=17000,
            ramp_start_level=1.0,
            ramp_start=0.0,
            ramp_end=0.0,
        )
        stats = summarize(haggle_like_trace(cfg, seed=5))
        assert stats.mean_degree_early > 0.5 * stats.mean_degree_late

    def test_gap_statistics_near_target(self):
        cfg = HaggleLikeConfig(
            num_nodes=12,
            horizon=30000,
            ramp_start_level=1.0,
            ramp_start=0.0,
            ramp_end=0.0,
            mean_gap=500.0,
            rate_dispersion=1e6,  # ≈ homogeneous pairs
        )
        stats = summarize(haggle_like_trace(cfg, seed=2))
        # heavy tail but finite mean: pooled mean gap in the right ballpark
        assert 200.0 < stats.mean_inter_contact < 1500.0

    def test_uniform_trace(self):
        tr = uniform_trace(6, 1000.0, 100.0, 50.0, seed=0)
        assert tr.num_nodes == 6
        assert all(c.end <= 1000.0 for c in tr)


class TestDistanceModel:
    def test_validation(self):
        with pytest.raises(TraceFormatError):
            DistanceModel(d_min=5.0, d_max=2.0)
        with pytest.raises(TraceFormatError):
            DistanceModel(profile="teleport")

    @pytest.mark.parametrize("profile", ["constant", "approach", "wander"])
    def test_within_bounds(self, det_trace, profile):
        dm = DistanceModel(d_min=2.0, d_max=10.0, profile=profile)
        provider = dm.attach(det_trace, seed=0)
        for c in det_trace:
            for f in (0.0, 0.25, 0.5, 0.99):
                t = c.start + f * c.duration
                d = provider(c.u, c.v, t)
                assert 2.0 <= d <= 10.0

    def test_constant_profile_really_constant(self, det_trace):
        provider = DistanceModel(profile="constant").attach(det_trace, seed=0)
        c = det_trace.contacts[0]
        ds = {provider(c.u, c.v, c.start + f * c.duration) for f in (0.0, 0.5, 0.9)}
        assert len(ds) == 1

    def test_outside_contact_raises(self, det_trace):
        provider = DistanceModel().attach(det_trace, seed=0)
        with pytest.raises(GraphModelError):
            provider(0, 1, 45.0)  # gap between the two (0,1) contacts

    def test_seeded_reproducible(self, det_trace):
        a = DistanceModel().attach(det_trace, seed=4)
        b = DistanceModel().attach(det_trace, seed=4)
        c = det_trace.contacts[0]
        assert a(c.u, c.v, c.start) == b(c.u, c.v, c.start)


class TestStats:
    def test_summary_fields(self):
        tr = deterministic_trace()
        s = summarize(tr)
        assert s.num_nodes == 4
        assert s.num_contacts == 5
        assert s.possible_pairs == 6
        assert s.social_pairs == 4
        assert s.mean_contact_duration > 0
        assert 0 < s.temporal_density < 1
        d = s.as_dict()
        assert set(d) >= {"num_nodes", "mean_inter_contact", "temporal_density"}

"""Plan-document round-trips: every scheduler, deterministic + hypothesis.

The disk tier of the plan cache replays stored documents as live plans, so
serialization must be lossless for every field a plan caller can observe —
schedule rows (bit-exact floats), feasibility report, info counters,
manifest.  These tests pin that across all seven schedulers.
"""

import io
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import SCHEDULERS
from repro.api import plan_broadcast
from repro.errors import InfeasibleError, TraceFormatError
from repro.schedule import Schedule, Transmission
from repro.schedule.io import (
    PLAN_SCHEMA,
    doc_to_plan,
    plan_to_doc,
    read_plan_json,
    write_plan_json,
)
from repro.traces import Contact, ContactTrace

from .conftest import make_random_instance

ALL_SCHEDULERS = sorted(SCHEDULERS)


def assert_plans_equal(back, plan):
    """Every observable field survives serialization bit-exactly."""
    assert list(back.schedule) == list(plan.schedule)
    assert back.schedule.total_cost == plan.schedule.total_cost
    assert back.source == plan.source
    assert back.deadline == plan.deadline
    assert back.algorithm == plan.algorithm
    assert back.channel == plan.channel
    assert back.info == plan.info
    # JSON-normalize the reference: tuples inside the manifest config (e.g.
    # a window pair) legitimately come back as lists.
    assert back.manifest == json.loads(json.dumps(plan.manifest))
    f, g = back.feasibility, plan.feasibility
    assert f.feasible == g.feasible
    assert f.relays_informed == g.relays_informed
    assert f.all_informed == g.all_informed
    assert f.latency_ok == g.latency_ok
    assert f.budget_ok == g.budget_ok
    assert f.violations == g.violations
    assert f.informed_times == g.informed_times


def round_trip(plan, path):
    write_plan_json(plan, path)
    return doc_to_plan(read_plan_json(path), plan.tveg)


@pytest.mark.parametrize("algo", ALL_SCHEDULERS)
def test_round_trip_every_scheduler(algo, tmp_path):
    channel = "rayleigh" if algo.startswith("fr-") else "static"
    trace, tveg = make_random_instance(seed=11, channel=channel)
    plan = plan_broadcast(tveg, 0, 300.0, algorithm=algo, seed=11)
    back = round_trip(plan, tmp_path / "plan.json")
    assert back is not plan
    assert back.tveg is plan.tveg
    assert_plans_equal(back, plan)


def test_doc_shape_and_schema(tmp_path):
    _, tveg = make_random_instance(seed=3)
    plan = plan_broadcast(tveg, 0, 300.0, seed=3)
    doc = plan_to_doc(plan)
    assert doc["schema"] == PLAN_SCHEMA
    assert doc["algorithm"] == "eedcb"
    assert all(len(row) == 3 for row in doc["schedule"])
    # document is pure-JSON: a dump/load cycle is the identity
    assert json.loads(json.dumps(doc)) == doc


def test_doc_to_plan_rejects_other_schemas(det_static):
    with pytest.raises(TraceFormatError):
        doc_to_plan({"schema": "repro.plan/999"}, det_static)
    with pytest.raises(TraceFormatError):
        doc_to_plan({}, det_static)


def test_doc_to_plan_rejects_truncated_doc(det_static):
    _, tveg = make_random_instance(seed=3)
    doc = plan_to_doc(plan_broadcast(tveg, 0, 300.0, seed=3))
    del doc["feasibility"]
    with pytest.raises(TraceFormatError):
        doc_to_plan(doc, tveg)


def test_read_plan_json_rejects_garbage():
    with pytest.raises(TraceFormatError):
        read_plan_json(io.StringIO("not json"))
    with pytest.raises(TraceFormatError):
        read_plan_json(io.StringIO("[1, 2, 3]"))


def test_non_json_node_labels_are_rejected():
    sched = Schedule([Transmission((0, 1), 1.0, 1e-9)])  # tuple-labeled relay
    _, tveg = make_random_instance(seed=3)
    plan = plan_broadcast(tveg, 0, 300.0, seed=3)
    bad = type(plan)(
        schedule=sched, feasibility=plan.feasibility, tveg=plan.tveg,
        source=plan.source, deadline=plan.deadline, algorithm=plan.algorithm,
        channel=plan.channel, info=plan.info, manifest=plan.manifest,
    )
    with pytest.raises(TraceFormatError):
        plan_to_doc(bad)


# ----------------------------------------------------------------------
# hypothesis: random instances, every scheduler
# ----------------------------------------------------------------------

NODES = 5
HORIZON = 120.0


@st.composite
def contact_traces(draw):
    """Random small contact traces over 5 nodes and a 120 s horizon."""
    n_contacts = draw(st.integers(4, 14))
    contacts = []
    for _ in range(n_contacts):
        u = draw(st.integers(0, NODES - 1))
        v = draw(st.integers(0, NODES - 1))
        if u == v:
            continue
        start = draw(st.floats(0.0, HORIZON - 10.0))
        dur = draw(st.floats(5.0, 50.0))
        contacts.append(Contact(start, min(start + dur, HORIZON), u, v))
    return ContactTrace(contacts, nodes=tuple(range(NODES)), horizon=HORIZON)


@pytest.mark.parametrize("algo", ALL_SCHEDULERS)
@given(trace=contact_traces(), seed=st.integers(0, 2**16))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # tmp_path is reused across examples — fine, each write overwrites
        HealthCheck.function_scoped_fixture,
    ],
)
def test_round_trip_random(algo, trace, seed, tmp_path):
    channel = "rayleigh" if algo.startswith("fr-") else "static"
    try:
        plan = plan_broadcast(
            trace, None, HORIZON, algorithm=algo, channel=channel, seed=seed
        )
    except InfeasibleError:
        return  # nothing to serialize for this draw
    assert math.isfinite(plan.total_cost)
    back = round_trip(plan, tmp_path / f"{algo}.json")
    assert_plans_equal(back, plan)

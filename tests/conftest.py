"""Shared fixtures: deterministic instances and small random traces."""

from __future__ import annotations

import pytest

from repro.channels import RayleighChannel, StaticChannel
from repro.params import PAPER_PARAMS
from repro.traces import DistanceModel, deterministic_trace, uniform_trace
from repro.tveg import TVEG, tveg_from_trace


@pytest.fixture
def det_trace():
    """The fixed 4-node trace with hand-checkable schedules."""
    return deterministic_trace()


@pytest.fixture
def det_tvg(det_trace):
    return det_trace.to_tvg()


@pytest.fixture
def det_static(det_trace):
    """Static-channel TVEG on the deterministic trace (seeded distances)."""
    return tveg_from_trace(det_trace, "static", seed=1)


@pytest.fixture
def det_fading(det_trace):
    """Rayleigh TVEG sharing the deterministic trace (seeded distances)."""
    return tveg_from_trace(det_trace, "rayleigh", seed=1)


@pytest.fixture
def paired_tvegs(det_trace):
    """Static + fading TVEGs sharing one distance provider (same geometry)."""
    tvg = det_trace.to_tvg()
    provider = DistanceModel().attach(det_trace, seed=1)
    return (
        TVEG(tvg, StaticChannel(PAPER_PARAMS), provider),
        TVEG(tvg, RayleighChannel(PAPER_PARAMS), provider),
    )


def make_random_instance(num_nodes=6, horizon=300.0, seed=0, channel="static"):
    """A small random instance helper used across algorithm tests."""
    trace = uniform_trace(
        num_nodes=num_nodes,
        horizon=horizon,
        mean_gap=80.0,
        mean_duration=40.0,
        seed=seed,
    )
    return trace, tveg_from_trace(trace, channel, seed=seed)

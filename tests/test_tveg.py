"""TVEG (Definition 3.2): ψ, min costs, discrete cost sets (Prop. 6.1)."""

import math

import pytest

from repro.channels import AbsentED, RayleighED, StepED
from repro.errors import ScheduleError
from repro.params import PAPER_PARAMS
from repro.traces import deterministic_trace
from repro.tveg import discrete_cost_set, tveg_from_trace
from repro.tveg.costsets import DiscreteCostSet


class TestTVEGQueries:
    def test_ed_absent_when_not_adjacent(self, det_static):
        # nodes 0 and 2 never share a contact
        assert isinstance(det_static.ed(0, 2, 15.0), AbsentED)
        # node 0 and 1 in contact at 15 → step ED
        assert isinstance(det_static.ed(0, 1, 15.0), StepED)

    def test_ed_outside_contact_window(self, det_static):
        assert isinstance(det_static.ed(0, 1, 45.0), AbsentED)

    def test_fading_ed(self, det_fading):
        assert isinstance(det_fading.ed(0, 1, 15.0), RayleighED)

    def test_min_cost_static_matches_eq2(self, det_static):
        d = det_static.distance(0, 1, 15.0)
        assert det_static.min_cost(0, 1, 15.0) == pytest.approx(
            PAPER_PARAMS.static_min_cost(d ** -2.0)
        )

    def test_min_cost_fading_matches_w0(self, det_fading):
        d = det_fading.distance(0, 1, 15.0)
        assert det_fading.min_cost(0, 1, 15.0) == pytest.approx(
            PAPER_PARAMS.rayleigh_single_hop_cost(d)
        )

    def test_min_cost_infinite_when_absent(self, det_static):
        assert det_static.min_cost(0, 2, 15.0) == math.inf

    def test_failure(self, det_static):
        w = det_static.min_cost(0, 1, 15.0)
        assert det_static.failure(0, 1, 15.0, w) == 0.0
        assert det_static.failure(0, 1, 15.0, w * 0.99) == 1.0

    def test_shared_geometry(self, paired_tvegs):
        static, fading = paired_tvegs
        assert static.distance(0, 1, 15.0) == fading.distance(0, 1, 15.0)

    def test_neighbor_costs_sorted(self, det_static):
        costs = det_static.neighbor_costs(0, 15.0)  # 0 adjacent to 1 and 3
        assert [v for v, _ in costs] in ([1, 3], [3, 1])
        ws = [w for _, w in costs]
        assert ws == sorted(ws)

    def test_passthrough_properties(self, det_static):
        assert det_static.num_nodes == 4
        assert det_static.horizon == 100.0
        assert det_static.tau == 0.0
        assert not det_static.is_fading


class TestDiscreteCostSet:
    def test_construction(self, det_static):
        dcs = discrete_cost_set(det_static, 0, 15.0)
        assert dcs.node == 0
        assert len(dcs) == 2
        assert set(dcs.neighbors) == {1, 3}
        assert dcs.costs == tuple(sorted(dcs.costs))

    def test_empty_when_isolated(self, det_static):
        dcs = discrete_cost_set(det_static, 2, 5.0)
        assert dcs.is_empty

    def test_coverage_broadcast_nature(self, det_static):
        # Property 6.1(i): cost w^k informs every neighbor with cost ≤ w^k
        dcs = discrete_cost_set(det_static, 0, 15.0)
        w1, w2 = dcs.costs
        assert len(dcs.coverage(w1)) == 1
        assert set(dcs.coverage(w2)) == {1, 3}
        assert dcs.coverage(0.0) == ()

    def test_round_down(self):
        dcs = DiscreteCostSet(node=0, time=0.0, entries=((1.0, "a"), (3.0, "b")))
        assert dcs.round_down(2.5) == 1.0
        assert dcs.round_down(3.0) == 3.0
        assert dcs.round_down(99.0) == 3.0
        with pytest.raises(ScheduleError):
            dcs.round_down(0.5)

    def test_round_down_preserves_coverage(self):
        # Property 6.1(ii): rounding w down to a DCS level keeps coverage
        dcs = DiscreteCostSet(node=0, time=0.0, entries=((1.0, "a"), (3.0, "b")))
        for w in (1.0, 1.5, 2.9, 3.0, 10.0):
            assert dcs.coverage(dcs.round_down(w)) == dcs.coverage(w)

    def test_cost_to_cover(self):
        dcs = DiscreteCostSet(node=0, time=0.0, entries=((1.0, "a"), (3.0, "b")))
        assert dcs.cost_to_cover(["a"]) == 1.0
        assert dcs.cost_to_cover(["a", "b"]) == 3.0
        assert dcs.cost_to_cover([]) == 0.0
        assert dcs.cost_to_cover(["z"]) == math.inf

    def test_level_index(self):
        dcs = DiscreteCostSet(node=0, time=0.0, entries=((1.0, "a"), (3.0, "b")))
        assert dcs.level_index(3.0) == 1
        with pytest.raises(ScheduleError):
            dcs.level_index(2.0)


class TestBuilders:
    def test_same_seed_same_distances(self):
        tr = deterministic_trace()
        a = tveg_from_trace(tr, "static", seed=7)
        b = tveg_from_trace(tr, "rayleigh", seed=7)
        assert a.distance(0, 1, 5.0) == b.distance(0, 1, 5.0)

    def test_unknown_channel_rejected(self):
        from repro.errors import GraphModelError

        with pytest.raises(GraphModelError):
            tveg_from_trace(deterministic_trace(), "quantum")

    def test_channel_instance_passthrough(self):
        from repro.channels import NakagamiChannel

        ch = NakagamiChannel(PAPER_PARAMS, m=3.0)
        tveg = tveg_from_trace(deterministic_trace(), ch, seed=1)
        assert tveg.channel is ch

"""Hypothesis property tests over randomly generated instances.

These pin the cross-cutting invariants that unit tests can only spot-check:
scheduler output feasibility, dominance orderings, DTS membership of
ET-normalized schedules, DCS rounding, and probability monotonicity — each
over a randomized family of small TVEGs.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import make_scheduler
from repro.dts import apply_et_law, build_dts
from repro.errors import InfeasibleError
from repro.schedule import (
    Schedule,
    Transmission,
    check_feasibility,
    uninformed_probability,
)
from repro.traces import Contact, ContactTrace
from repro.tveg import discrete_cost_set, tveg_from_trace

NODES = 5
HORIZON = 120.0

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def contact_traces(draw):
    """Random small contact traces over 5 nodes and a 120 s horizon."""
    n_contacts = draw(st.integers(4, 14))
    contacts = []
    for _ in range(n_contacts):
        u = draw(st.integers(0, NODES - 1))
        v = draw(st.integers(0, NODES - 1))
        if u == v:
            continue
        start = draw(st.floats(0.0, HORIZON - 10.0))
        dur = draw(st.floats(5.0, 50.0))
        contacts.append(Contact(start, min(start + dur, HORIZON), u, v))
    return ContactTrace(contacts, nodes=tuple(range(NODES)), horizon=HORIZON)


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_eedcb_output_always_feasible_or_raises(trace, seed):
    tveg = tveg_from_trace(trace, "static", seed=seed)
    try:
        sched = make_scheduler("eedcb").schedule(tveg, 0, HORIZON)
    except InfeasibleError:
        return
    assert check_feasibility(tveg, sched, 0, HORIZON).feasible


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_eedcb_competitive_with_baselines(trace, seed):
    """EEDCB wins on average (checked deterministically elsewhere); per
    instance the Steiner heuristic may lose narrow cases, but never by a
    wide margin."""
    tveg = tveg_from_trace(trace, "static", seed=seed)
    try:
        e = make_scheduler("eedcb").schedule(tveg, 0, HORIZON)
    except InfeasibleError:
        return
    g = make_scheduler("greed").schedule(tveg, 0, HORIZON)
    r = make_scheduler("rand", seed=seed).schedule(tveg, 0, HORIZON)
    best_baseline = min(g.total_cost, r.total_cost)
    # Empirically the ratio stays ≤ ~1.2 (see bench_ablation); 2.0 bounds
    # the adversarial corner cases hypothesis constructs.
    assert e.total_cost <= 2.0 * best_baseline + 1e-18


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_fr_eedcb_feasible_and_cheaper_than_backbone(trace, seed):
    tveg = tveg_from_trace(trace, "rayleigh", seed=seed)
    try:
        res = make_scheduler("fr-eedcb").run(tveg, 0, HORIZON)
    except InfeasibleError:
        return
    assert check_feasibility(tveg, res.schedule, 0, HORIZON).feasible
    # When the ε-exact backbone is itself feasible it doubles as a valid
    # allocation, so the solver can never return anything more expensive.
    # (On rare extraction corners the backbone is infeasible and the NLP
    # must spend more than w0 to repair it — no cost bound applies then.)
    if res.info["backbone_feasible"]:
        assert res.info["allocated_cost"] <= res.info["backbone_cost"] * (1 + 1e-12)


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_greed_schedule_lands_on_dts_after_et_law(trace, seed):
    tveg = tveg_from_trace(trace, "static", seed=seed)
    sched = make_scheduler("greed").schedule(tveg, 0, HORIZON)
    if sched.is_empty:
        return
    if not check_feasibility(tveg, sched, 0, HORIZON).all_informed:
        return  # partial floods are not covered by Prop. 5.1
    normalized = apply_et_law(tveg, sched, 0)
    assert normalized.total_cost == pytest.approx(sched.total_cost)
    dts = build_dts(tveg.tvg, HORIZON)
    for s in normalized:
        assert dts.contains(s.relay, s.time)


@given(contact_traces(), st.integers(0, 2**16), st.floats(1.0, HORIZON - 1.0))
@slow
def test_dcs_round_down_preserves_coverage(trace, seed, t):
    tveg = tveg_from_trace(trace, "static", seed=seed)
    for node in tveg.nodes:
        dcs = discrete_cost_set(tveg, node, t)
        if dcs.is_empty:
            continue
        w_max = dcs.costs[-1]
        for factor in (1.0, 1.3, 2.0):
            w = w_max * factor
            assert dcs.coverage(dcs.round_down(w)) == dcs.coverage(w)


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_uninformed_probability_monotone(trace, seed):
    tveg = tveg_from_trace(trace, "rayleigh", seed=seed)
    sched = make_scheduler("greed").schedule(tveg, 0, HORIZON)
    for node in tveg.nodes:
        prev = 1.0
        for t in (0.0, 30.0, 60.0, 90.0, HORIZON):
            p = uninformed_probability(tveg, sched, node, t, 0)
            assert p <= prev + 1e-12
            prev = p


@given(contact_traces(), st.integers(0, 2**16))
@slow
def test_simulator_energy_never_exceeds_scheduled(trace, seed):
    from repro.sim import simulate_schedule

    tveg = tveg_from_trace(trace, "rayleigh", seed=seed)
    sched = make_scheduler("greed").schedule(tveg, 0, HORIZON)
    out = simulate_schedule(tveg, sched, 0, seed=seed)
    assert out.energy <= sched.total_cost + 1e-18
    assert 0 in out.received  # the source always has the packet

"""Sweep CSV round-trips and terminal sparkline charts."""

import io
import math

import pytest

from repro.errors import TraceFormatError
from repro.experiments.export import (
    ascii_chart,
    read_sweep_csv,
    sparkline,
    write_sweep_csv,
)
from repro.experiments.reporting import SweepResult


@pytest.fixture
def sweep():
    r = SweepResult(title="Fig. X — demo", x_label="delay (s)")
    r.add_point(2000.0, {"EEDCB": 90.0, "GREED": 450.0})
    r.add_point(4000.0, {"EEDCB": 75.5, "GREED": 430.0})
    r.add_point(6000.0, {"EEDCB": 60.25, "GREED": float("nan")})
    return r


class TestCSVRoundTrip:
    def test_round_trip(self, sweep):
        buf = io.StringIO()
        write_sweep_csv(sweep, buf)
        back = read_sweep_csv(io.StringIO(buf.getvalue()))
        assert back.title == sweep.title
        assert back.x_label == sweep.x_label
        assert back.x_values == sweep.x_values
        assert back.series["EEDCB"] == sweep.series["EEDCB"]
        assert math.isnan(back.series["GREED"][2])

    def test_file_round_trip(self, sweep, tmp_path):
        p = tmp_path / "sweep.csv"
        write_sweep_csv(sweep, p)
        back = read_sweep_csv(p)
        assert back.series_names() == sweep.series_names()

    def test_malformed(self):
        with pytest.raises(TraceFormatError):
            read_sweep_csv(io.StringIO("# only title\n"))
        bad = "# t\nx,a\n1.0\n"
        with pytest.raises(TraceFormatError):
            read_sweep_csv(io.StringIO(bad))


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert list(line) == sorted(line)

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_nan_becomes_space(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "


class TestAsciiChart:
    def test_contains_all_series(self, sweep):
        chart = ascii_chart(sweep)
        assert "EEDCB" in chart and "GREED" in chart
        assert sweep.title.split("—")[0].strip() in chart
        # ranges rendered
        assert "[60.2, 90]" in chart or "[60.3, 90]" in chart

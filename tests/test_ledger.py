"""Run ledger, typed events, manifests, bench gate, and HTML reports."""

from __future__ import annotations

import dataclasses
import io
import itertools
import json
import logging
import math

import pytest

from repro import check_feasibility, make_scheduler, obs
from repro.params import PAPER_PARAMS
from repro.obs.bench import compare
from repro.obs.events import Event, event_from_json, event_to_json
from repro.obs.report import render_html
from repro.online import run_online
from repro.online.protocols import Epidemic
from repro.sim import simulate_schedule

from .conftest import make_random_instance


@pytest.fixture(autouse=True)
def _clean_global_ledger():
    """Every test starts and ends with the ledger disabled."""
    obs.disable_ledger()
    yield
    obs.disable_ledger()


class TestEvents:
    def test_json_roundtrip(self):
        ev = Event(seq=3, type="relay_selected", t=12.5,
                   fields={"relay": 4, "cost": 1e-11})
        back = event_from_json(event_to_json(ev))
        assert back == ev

    def test_none_time_and_empty_fields_omitted(self):
        ev = Event(seq=0, type="run_summary", t=None, fields={})
        doc = json.loads(event_to_json(ev))
        assert "t" not in doc and "fields" not in doc
        assert event_from_json(event_to_json(ev)) == ev

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            event_from_json("not json")
        with pytest.raises(ValueError):
            event_from_json('{"seq": 0}')  # missing type

    def test_non_json_fields_coerced(self):
        ev = Event(seq=0, type="x", t=None, fields={"s": {1, 2}, "n": (3, 4)})
        doc = json.loads(event_to_json(ev))
        assert doc["fields"]["n"] == [3, 4]


class TestLedger:
    def test_noop_by_default(self):
        assert not obs.ledger_enabled()
        obs.emit("relay_selected", t=1.0, relay=0)
        assert obs.ledger_events() == ()

    def test_enable_records_in_order(self):
        obs.enable_ledger()
        obs.emit("a", t=1.0)
        obs.emit("b", x=2)
        evs = obs.ledger_events()
        assert [e.type for e in evs] == ["a", "b"]
        assert [e.seq for e in evs] == [0, 1]

    def test_clear_resets_sequence(self):
        led = obs.enable_ledger()
        obs.emit("a")
        led.clear()
        obs.emit("b")
        assert [e.seq for e in led.events()] == [0]

    def test_ndjson_roundtrip_via_buffer(self):
        obs.enable_ledger()
        obs.emit("relay_selected", t=5.0, relay=1, cost=2e-12)
        obs.emit("run_summary", algorithm="eedcb")
        buf = io.StringIO()
        assert obs.write_ledger_ndjson(buf) == 2
        back = obs.read_ledger_ndjson(io.StringIO(buf.getvalue()))
        assert back == list(obs.ledger_events())

    def test_ndjson_file_roundtrip_skips_blanks(self, tmp_path):
        p = tmp_path / "run.ndjson"
        obs.enable_ledger()
        obs.emit("a", t=1.0, node=3)
        obs.write_ledger_ndjson(p)
        p.write_text(p.read_text() + "\n\n")
        assert [e.type for e in obs.read_ledger_ndjson(p)] == ["a"]

    def test_read_names_bad_line_number(self, tmp_path):
        p = tmp_path / "bad.ndjson"
        p.write_text('{"seq":0,"type":"a"}\ngarbage\n')
        with pytest.raises(ValueError, match="line 2"):
            obs.read_ledger_ndjson(p)

    def test_streaming_through_logger(self):
        logger = logging.getLogger("test.ledger.stream")
        logger.setLevel(logging.INFO)
        records = []
        handler = logging.Handler()
        handler.emit = records.append
        logger.addHandler(handler)
        try:
            obs.enable_ledger(logger=logger)
            obs.emit("relay_selected", t=2.0, relay=7)
        finally:
            logger.removeHandler(handler)
        assert len(records) == 1
        assert "relay_selected" in records[0].getMessage()
        assert "relay=7" in records[0].getMessage()

    def test_format_event(self):
        line = obs.format_event(
            Event(seq=0, type="energy_debited", t=3.0,
                  fields={"relay": 1, "cost": 0.5})
        )
        assert line == "energy_debited t=3 cost=0.5 relay=1"


class TestManifest:
    def test_config_hash_ignores_ordering(self):
        a = obs.config_hash({"x": 1, "y": [1, 2], "z": {"a": True}})
        b = obs.config_hash({"z": {"a": True}, "y": (1, 2), "x": 1})
        assert a == b

    def test_config_hash_distinguishes_values(self):
        assert obs.config_hash({"x": 1}) != obs.config_hash({"x": 2})

    def test_run_manifest_fields_and_determinism(self):
        m1 = obs.run_manifest(config={"algorithm": "eedcb", "delay": 100.0},
                              seed=7)
        m2 = obs.run_manifest(config={"delay": 100.0, "algorithm": "eedcb"},
                              seed=7)
        assert m1["schema"] == obs.MANIFEST_SCHEMA
        assert m1["config_hash"] == m2["config_hash"]
        assert m1["seed"] == 7
        assert m1["python"] and m1["platform"]

    def test_manifest_file_roundtrip(self, tmp_path):
        p = tmp_path / "m.json"
        m = obs.run_manifest(config={"k": 1}, wall_seconds=0.25, figure="fig5")
        obs.write_manifest(m, p)
        back = obs.read_manifest(p)
        assert back == json.loads(json.dumps(m))
        assert back["figure"] == "fig5"
        assert back["wall_seconds"] == 0.25


class TestConfigHashStability:
    """Regression: the plan cache keys on config_hash, so representation
    noise — dataclass field order, dict insertion order, list vs tuple —
    must never change the hash (a silently different key would turn every
    cache lookup into a miss; a colliding one would replay wrong plans)."""

    def test_dict_insertion_order_all_permutations(self):
        items = [("a", 1), ("b", [2, 3]), ("c", {"x": True}), ("d", None)]
        hashes = {
            obs.config_hash(dict(perm))
            for perm in itertools.permutations(items)
        }
        assert len(hashes) == 1

    def test_nested_key_order(self):
        a = {"outer": {"p": 1, "q": {"r": [1, 2], "s": 2}}}
        b = {"outer": {"q": {"s": 2, "r": [1, 2]}, "p": 1}}
        assert obs.config_hash(a) == obs.config_hash(b)

    def test_list_tuple_equivalence(self):
        assert obs.config_hash({"xs": [1, 2, 3]}) == obs.config_hash(
            {"xs": (1, 2, 3)}
        )
        assert obs.config_hash({"xs": [[1], (2,)]}) == obs.config_hash(
            {"xs": ((1,), [2])}
        )

    def test_sequence_order_is_significant(self):
        # Sequences are payload, not keys: reordering them is a different
        # config and must hash differently.
        assert obs.config_hash({"xs": [1, 2]}) != obs.config_hash(
            {"xs": [2, 1]}
        )

    def test_set_iteration_order(self):
        a = {"nodes": {3, 1, 2}}
        b = {"nodes": {2, 3, 1}}
        assert obs.config_hash(a) == obs.config_hash(b)

    def test_dataclass_field_reordering(self):
        @dataclasses.dataclass
        class ConfigV1:
            alpha: float
            beta: int
            gamma: str

        @dataclasses.dataclass
        class ConfigV2:  # same fields, different declaration order
            gamma: str
            alpha: float
            beta: int

        v1 = dataclasses.asdict(ConfigV1(alpha=2.0, beta=3, gamma="x"))
        v2 = dataclasses.asdict(ConfigV2(gamma="x", alpha=2.0, beta=3))
        assert obs.config_hash(v1) == obs.config_hash(v2)

    def test_phy_params_reordering_via_asdict(self):
        # The real dataclass the plan-cache key embeds ("params").
        d = dataclasses.asdict(PAPER_PARAMS)
        reordered = dict(reversed(list(d.items())))
        assert obs.config_hash({"params": d}) == obs.config_hash(
            {"params": reordered}
        )

    def test_hash_is_pinned(self):
        # The disk cache persists across versions; a change to the
        # canonicalization silently orphans every stored plan.  Update this
        # constant only with a deliberate cache-format bump.
        config = {
            "algorithm": "eedcb", "deadline": 2000.0, "window": None,
            "scheduler_kwargs": {}, "seed": 7, "instance": "0" * 16,
        }
        assert obs.config_hash(config) == "0c65b5c4a4491d50"


class TestDomainEvents:
    def test_scheduler_emits_selection_and_schedule_events(self):
        _, tveg = make_random_instance(seed=2)
        obs.enable_ledger()
        result = make_scheduler("greed").run(tveg, 0, 300.0)
        types = [e.type for e in obs.ledger_events()]
        assert types.count(obs.EV_TRANSMISSION_SCHEDULED) == len(result.schedule)
        assert obs.EV_RELAY_SELECTED in types
        sel = next(e for e in obs.ledger_events()
                   if e.type == obs.EV_RELAY_SELECTED)
        assert sel.fields["algorithm"] == "greed"
        assert sel.fields["cost"] > 0

    def test_eedcb_emits_tagged_schedule(self):
        _, tveg = make_random_instance(seed=2)
        obs.enable_ledger()
        result = make_scheduler("eedcb").run(tveg, 0, 300.0)
        rows = [e for e in obs.ledger_events()
                if e.type == obs.EV_TRANSMISSION_SCHEDULED]
        assert len(rows) == len(result.schedule)
        assert all(e.fields["algorithm"] == "eedcb" for e in rows)
        assert all(e.t is not None for e in rows)

    def test_feasibility_silent_without_record_label(self):
        _, tveg = make_random_instance(seed=2)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 300.0)
        obs.enable_ledger()
        check_feasibility(tveg, schedule, 0, 300.0)
        assert len(obs.ledger_events()) == 0

    def test_feasibility_records_crossings_and_verdict(self):
        _, tveg = make_random_instance(seed=2)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 300.0)
        obs.enable_ledger()
        report = check_feasibility(tveg, schedule, 0, 300.0, record="final")
        evs = obs.ledger_events()
        informed = [e for e in evs if e.type == obs.EV_NODE_INFORMED]
        finite = sum(1 for _, t in report.informed_times if math.isfinite(t))
        assert len(informed) == finite
        assert all(e.fields["check"] == "final" for e in informed)
        checked = [e for e in evs if e.type == obs.EV_FEASIBILITY_CHECKED]
        assert len(checked) == 1
        assert checked[0].fields["feasible"] == report.feasible

    def test_feasibility_violations_name_constraints(self):
        _, tveg = make_random_instance(seed=2)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 300.0)
        obs.enable_ledger()
        # Impossible deadline: latency + all_informed must both fire.
        report = check_feasibility(tveg, schedule, 0, 1.0, record="final")
        assert not report.feasible
        constraints = {
            e.fields["constraint"] for e in obs.ledger_events()
            if e.type == obs.EV_CONSTRAINT_VIOLATED
        }
        assert "latency" in constraints
        assert "all_informed" in constraints

    def test_simulator_emits_debits_and_receptions(self):
        _, tveg = make_random_instance(seed=2)
        schedule = make_scheduler("eedcb").schedule(tveg, 0, 300.0)
        obs.enable_ledger()
        out = simulate_schedule(tveg, schedule, 0, seed=1, trial_id=5)
        evs = obs.ledger_events()
        debits = [e for e in evs if e.type == obs.EV_ENERGY_DEBITED]
        assert len(debits) == out.transmissions
        assert all(e.fields["trial"] == 5 for e in debits)
        received = [e for e in evs if e.type == obs.EV_SIM_RECEPTION]
        assert len(received) == len(out.received) - 1  # source excluded

    def test_online_engine_emits_attempts(self):
        _, tveg = make_random_instance(seed=2, channel="rayleigh")
        obs.enable_ledger()
        out = run_online(tveg, Epidemic(), 0, 300.0, seed=3)
        attempts = [e for e in obs.ledger_events()
                    if e.type == obs.EV_ONLINE_ATTEMPT]
        assert len(attempts) == out.attempts
        assert sum(1 for e in attempts if e.fields["success"]) == out.successes

    def test_results_identical_with_and_without_ledger(self):
        _, tveg = make_random_instance(seed=2)
        baseline = make_scheduler("eedcb").run(tveg, 0, 300.0)
        obs.enable_ledger()
        recorded = make_scheduler("eedcb").run(tveg, 0, 300.0)
        obs.disable_ledger()
        assert baseline.schedule == recorded.schedule


class TestSchedulerInfoKeys:
    """Every scheduler reports stage_seconds, on success and early exit."""

    def test_all_schedulers_report_stage_seconds_on_success(self):
        _, static = make_random_instance(seed=2)
        _, fading = make_random_instance(seed=2, channel="rayleigh")
        cases = [
            ("eedcb", static), ("greed", static), ("rand", static),
            ("oracle", static), ("fr-eedcb", fading), ("fr-greed", fading),
            ("fr-rand", fading),
        ]
        for name, tveg in cases:
            info = make_scheduler(name).run(tveg, 0, 300.0).info
            assert "stage_seconds" in info, name
            assert all(v >= 0.0 for v in info["stage_seconds"].values()), name

    def test_fr_partial_coverage_early_exit_keeps_stage_seconds(self):
        _, fading = make_random_instance(seed=2, channel="rayleigh")
        for name in ("fr-greed", "fr-rand"):
            # A deadline too short to cover everyone: the FR wrapper returns
            # the partial backbone without running the allocation NLP.
            info = make_scheduler(name).run(fading, 0, 20.0).info
            assert info["allocation_method"] == "backbone (partial coverage)"
            assert "stage_seconds" in info, name

    def test_fr_algorithms_report_nlp_iterations(self):
        _, fading = make_random_instance(seed=2, channel="rayleigh")
        for name in ("fr-eedcb", "fr-greed", "fr-rand"):
            info = make_scheduler(name).run(fading, 0, 300.0).info
            assert info["nlp_iterations"] >= 0, name


class TestBenchGate:
    def _doc(self, quick=True, cal=10.0, **ops):
        return {
            "schema": "repro.bench/1",
            "quick": quick,
            "calibration_ms": cal,
            "results": {
                op: {"tier1": True, "min_ms": ms, "p50_ms": ms,
                     "counters": counters or {}}
                for op, (ms, counters) in ops.items()
            },
        }

    def test_gate_passes_on_identical_docs(self):
        doc = self._doc(eedcb_run=(100.0, None))
        assert compare(doc, doc) == []

    def test_gate_fails_past_tolerance(self):
        base = self._doc(eedcb_run=(100.0, None))
        cur = self._doc(eedcb_run=(130.0, None))
        problems = compare(cur, base)
        assert len(problems) == 1 and "eedcb_run" in problems[0]
        assert compare(cur, base, tolerance=0.5) == []

    def test_gate_normalizes_by_calibration(self):
        # 30% slower op on a uniformly 30% slower machine: no regression.
        base = self._doc(cal=10.0, eedcb_run=(100.0, None))
        cur = self._doc(cal=13.0, eedcb_run=(130.0, None))
        assert compare(cur, base) == []

    def test_gate_catches_counter_growth(self):
        base = self._doc(steiner_solve=(50.0, {"steiner_expansions": 1000.0}))
        cur = self._doc(steiner_solve=(50.0, {"steiner_expansions": 2000.0}))
        problems = compare(cur, base)
        assert problems and "steiner_expansions" in problems[0]

    def test_gate_refuses_mode_mismatch(self):
        base = self._doc(quick=False, eedcb_run=(100.0, None))
        cur = self._doc(quick=True, eedcb_run=(100.0, None))
        assert any("quick" in p for p in compare(cur, base))

    def test_sub_millisecond_jitter_ignored(self):
        base = self._doc(dts_build=(0.10, None))
        cur = self._doc(dts_build=(0.50, None))  # +400% but < 1 ms absolute
        assert compare(cur, base) == []

    def test_gate_catches_memory_growth(self):
        base = self._doc(trace_ingest=(100.0, {"peak_mb": 100.0}))
        cur = self._doc(trace_ingest=(100.0, {"peak_mb": 140.0}))
        problems = compare(cur, base)
        assert problems and "peak memory" in problems[0]
        assert compare(cur, base, tolerance=0.5) == []

    def test_memory_gate_has_absolute_slack(self):
        # +50% but only +5 MB absolute: allocator noise, not a regression.
        base = self._doc(trace_ingest=(100.0, {"peak_mb": 10.0}))
        cur = self._doc(trace_ingest=(100.0, {"peak_mb": 15.0}))
        assert compare(cur, base) == []

    def test_memory_gate_ignores_calibration(self):
        # A slower machine does not excuse a bigger heap: calibration
        # scales times, never the peak_mb counter.
        base = self._doc(cal=10.0, trace_ingest=(100.0, {"peak_mb": 100.0}))
        cur = self._doc(cal=20.0, trace_ingest=(100.0, {"peak_mb": 140.0}))
        problems = compare(cur, base)
        assert problems and "peak memory" in problems[0]


class TestReport:
    def _recorded_run(self):
        _, tveg = make_random_instance(seed=2)
        obs.enable_ledger()
        obs.emit(obs.EV_MANIFEST, **obs.run_manifest(config={"algorithm": "eedcb"}))
        result = make_scheduler("eedcb").run(tveg, 0, 300.0)
        report = check_feasibility(tveg, result.schedule, 0, 300.0,
                                   record="final")
        obs.emit(obs.EV_RUN_SUMMARY, algorithm="eedcb",
                 num_nodes=tveg.num_nodes, transmissions=len(result.schedule),
                 total_cost=result.schedule.total_cost,
                 feasible=report.feasible,
                 stage_seconds=result.info["stage_seconds"])
        return list(obs.ledger_events())

    def test_render_contains_all_sections(self):
        evs = self._recorded_run()
        manifest = dict(evs[0].fields)
        html = render_html(evs, manifest)
        for fragment in ("<svg", "Per-node energy", "Stage timing",
                         "Manifest", "config_hash", "Event summary",
                         "eedcb"):
            assert fragment in html, fragment

    def test_render_tolerates_empty_ledger(self):
        html = render_html([], {})
        assert "Event summary" in html

    def test_render_lists_violations(self):
        evs = [Event(seq=0, type=obs.EV_CONSTRAINT_VIOLATED, t=None,
                     fields={"constraint": "budget", "detail": "over"})]
        html = render_html(evs)
        assert "budget" in html and "over" in html

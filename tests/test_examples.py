"""Smoke tests: the example scripts must import and their fast paths run.

Only the quickstart runs end-to-end here (the other examples take tens of
seconds of Monte-Carlo time and are exercised manually / by the benchmark
suite's equivalent code paths); for the rest we verify the module loads and
exposes a ``main``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "fading_broadcast_comparison",
        "mobile_sensor_network",
        "uncertain_contacts",
    ],
)
def test_example_importable_with_main(name):
    mod = _load(name)
    assert callable(mod.main)


def test_quickstart_runs_end_to_end(capsys):
    mod = _load("quickstart")
    mod.main()
    out = capsys.readouterr().out
    assert "feasible: True" in out
    assert "broadcast from" in out  # the ASCII timeline rendered

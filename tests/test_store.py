"""Columnar ContactStore: parity with the dict-backed oracle, the
``.ctrace`` on-disk format, streaming ingestion, and bounded-memory
planning.

The contract under test is byte-for-byte parity: every derived structure —
fingerprint, pair presence, TVG presence/adjacency events, DCS floats,
schedules, manifests — must be identical no matter which trace backend
produced it.  :class:`~repro.traces.model.ContactTrace` is the oracle.
"""

import io
import math
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import plan_broadcast, plan_cache_key
from repro.errors import TraceFormatError
from repro.temporal.sweep import adjacency_events
from repro.traces import (
    Contact,
    ContactTrace,
    HaggleLikeConfig,
    haggle_like_trace,
    load_trace,
    parse_crawdad,
    parse_csv,
    scale_trace_store,
    write_crawdad,
    write_csv,
)
from repro.traces.store import ContactStore, ingest_crawdad, ingest_csv, ingest_path
from repro.tveg import tveg_from_trace

N = 6
HORIZON = 200.0

prop = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def raw_rows(draw):
    """Random (u, v, start, end) rows over a small node universe."""
    n_rows = draw(st.integers(0, 20))
    rows = []
    for _ in range(n_rows):
        u = draw(st.integers(0, N - 1))
        v = draw(st.integers(0, N - 1))
        if u == v:
            continue
        start = draw(st.floats(0.0, HORIZON - 10.0))
        dur = draw(st.floats(0.0, 60.0))
        rows.append((u, v, start, min(start + dur, HORIZON)))
    return rows


def trace_of(rows):
    return ContactTrace(
        (Contact(s, e, u, v) for u, v, s, e in rows), horizon=HORIZON
    )


def store_of(rows):
    return ContactStore.from_rows(rows, horizon=HORIZON)


@pytest.fixture(scope="module")
def haggle_pair():
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=10), seed=5)
    return trace, ContactStore.from_trace(trace)


# ----------------------------------------------------------------------
# construction and surface parity
# ----------------------------------------------------------------------
def test_rows_sorted_and_nodes_first_appearance():
    rows = [(3, 1, 50.0, 60.0), (0, 2, 10.0, 30.0), (2, 4, 10.0, 20.0)]
    store = ContactStore.from_rows(rows)
    trace = ContactTrace(Contact(s, e, u, v) for u, v, s, e in rows)
    assert store.nodes == trace.nodes
    assert [(c.u, c.v, c.start, c.end) for c in store] == [
        (c.u, c.v, c.start, c.end) for c in trace
    ]
    assert store.horizon == trace.horizon
    assert store.fingerprint() == trace.fingerprint()


def test_explicit_nodes_merge_matches_oracle():
    rows = [(1, 2, 0.0, 5.0)]
    store = ContactStore.from_rows(rows, nodes=(9, 2), horizon=50.0)
    trace = ContactTrace([Contact(0.0, 5.0, 1, 2)], nodes=(9, 2), horizon=50.0)
    assert store.nodes == trace.nodes == (9, 2, 1)
    assert store.fingerprint() == trace.fingerprint()


def test_empty_store():
    store = ContactStore.from_rows([])
    trace = ContactTrace([])
    assert store.num_contacts == 0
    assert store.nodes == ()
    assert store.time_span() == (0.0, 0.0)
    assert store.fingerprint() == trace.fingerprint()


def test_validation_matches_contact():
    with pytest.raises(TraceFormatError, match="exceeds end"):
        ContactStore.from_rows([(0, 1, 5.0, 1.0)])
    with pytest.raises(TraceFormatError, match="self-contact"):
        ContactStore.from_rows([(2, 2, 0.0, 1.0)])
    with pytest.raises(TraceFormatError, match="exceeds end"):
        ContactStore.from_arrays([0], [1], [5.0], [1.0])
    with pytest.raises(TraceFormatError, match="self-contact"):
        ContactStore.from_arrays([2], [2], [0.0], [1.0])


def test_from_arrays_matches_from_rows():
    u, v = [0, 3, 1], [1, 2, 0]
    s, e = [10.0, 0.0, 10.0], [20.0, 5.0, 12.0]
    a = ContactStore.from_arrays(u, v, s, e)
    b = ContactStore.from_rows(zip(u, v, s, e))
    assert a.nodes == b.nodes
    assert list(a.iter_rows()) == list(b.iter_rows())
    assert a.fingerprint() == b.fingerprint()


def test_pair_presence_parity(haggle_pair):
    trace, store = haggle_pair
    assert store.pair_presence() == trace.pair_presence()
    # dict ordering is part of the contract (rng draw order downstream)
    assert list(store.pair_presence()) == list(trace.pair_presence())


def test_transforms_parity(haggle_pair):
    trace, store = haggle_pair
    for t, s in [
        (trace.restrict_window(4000.0, 9000.0), store.restrict_window(4000.0, 9000.0)),
        (trace.shift(-3000.0), store.shift(-3000.0)),
        (trace.restrict_nodes((2, 3, 5)), store.restrict_nodes((2, 3, 5))),
        (
            trace.restrict_window(4000.0, 9000.0).shift(-4000.0),
            store.restrict_window(4000.0, 9000.0).shift(-4000.0),
        ),
    ]:
        assert isinstance(s, ContactStore)
        assert s.nodes == t.nodes
        assert s.horizon == t.horizon
        assert s.fingerprint() == t.fingerprint()


def test_restrict_window_validation():
    store = store_of([(0, 1, 0.0, 5.0)])
    with pytest.raises(TraceFormatError):
        store.restrict_window(5.0, 5.0)


def test_tvg_parity(haggle_pair):
    trace, store = haggle_pair
    tv_t = trace.to_tvg(tau=2.0)
    tv_s = store.to_tvg(tau=2.0)
    assert tv_s.nodes == tv_t.nodes
    assert tv_s.horizon == tv_t.horizon
    assert set(tv_s.edges()) == set(tv_t.edges())
    for a, b in tv_t.edges():
        assert tv_s.presence(a, b).pairs == tv_t.presence(a, b).pairs
    for node in tv_t.nodes:
        assert tuple(tv_s.incident(node)) == tuple(tv_t.incident(node))
        assert adjacency_events(tv_s, node) == adjacency_events(tv_t, node)


def test_store_backed_tvg_survives_mutation(haggle_pair):
    trace, store = haggle_pair
    tv = store.to_tvg()
    node = store.nodes[0]
    before = adjacency_events(tv, node)
    # Mutate: the CSR fast path must detach and recompute from the TVG.
    tv.add_contact(store.nodes[0], store.nodes[1], 0.0, 1.0)
    after = adjacency_events(tv, node)
    oracle = trace.to_tvg()
    oracle.add_contact(store.nodes[0], store.nodes[1], 0.0, 1.0)
    assert after == adjacency_events(oracle, node)
    assert before != after or len(before) == len(after)


def test_from_store_round_trip(haggle_pair):
    trace, store = haggle_pair
    back = ContactTrace.from_store(store)
    assert back.nodes == trace.nodes
    assert back.contacts == trace.contacts
    assert back.fingerprint() == trace.fingerprint()


def test_node_contacts_slices(haggle_pair):
    trace, store = haggle_pair
    rows = list(store.iter_rows())
    for node in store.nodes:
        expect = [i for i, (u, v, _, _) in enumerate(rows) if node in (u, v)]
        assert list(store.node_contacts(node)) == expect


# ----------------------------------------------------------------------
# streaming ingestion
# ----------------------------------------------------------------------
def test_ingest_crawdad_parity(tmp_path):
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=8), seed=2)
    path = tmp_path / "t.txt"
    write_crawdad(trace, path)
    oracle = parse_crawdad(path)
    store = ingest_crawdad(path)
    assert store.fingerprint() == oracle.fingerprint()
    assert store.nodes == oracle.nodes


def test_ingest_csv_parity(tmp_path):
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=8), seed=2)
    path = tmp_path / "t.csv"
    write_csv(trace, path)
    oracle = parse_csv(path)
    store = ingest_csv(path)
    assert store.fingerprint() == oracle.fingerprint()


def test_ingest_error_messages_match_parser():
    bad = "0 1 5.0\n"
    with pytest.raises(TraceFormatError, match="expected at least 4 columns"):
        ingest_crawdad(io.StringIO(bad))
    with pytest.raises(TraceFormatError, match="expected at least 4 columns"):
        parse_crawdad(io.StringIO(bad))
    rev = "0 1 9.0 5.0\n"
    with pytest.raises(TraceFormatError, match="precedes start"):
        ingest_crawdad(io.StringIO(rev))
    with pytest.raises(TraceFormatError, match="CSV trace lacks columns"):
        ingest_csv(io.StringIO("u,v,start\n"))


def test_ingest_skips_self_sightings_and_comments():
    text = "# comment\n\n3 3 0.0 5.0\n0 1 1.0 2.0 99\n"
    store = ingest_crawdad(io.StringIO(text))
    oracle = parse_crawdad(io.StringIO(text))
    assert store.num_contacts == oracle.num_contacts == 1
    assert store.fingerprint() == oracle.fingerprint()


# ----------------------------------------------------------------------
# .ctrace on-disk format
# ----------------------------------------------------------------------
def test_save_load_round_trip(tmp_path, haggle_pair):
    trace, store = haggle_pair
    path = tmp_path / "t.ctrace"
    store.save(path)
    loaded = ContactStore.load(path)
    assert loaded.nodes == store.nodes
    assert loaded.horizon == store.horizon
    assert list(loaded.iter_rows()) == list(store.iter_rows())
    # fingerprint comes from the header: O(1), still byte-identical
    assert loaded.fingerprint() == trace.fingerprint()


def test_save_load_string_nodes(tmp_path):
    store = ContactStore.from_rows(
        [("a", "b", 0.0, 5.0), ("b", "c", 2.0, 9.0)], horizon=20.0
    )
    path = tmp_path / "s.ctrace"
    store.save(path)
    loaded = ContactStore.load(path)
    assert loaded.nodes == ("a", "b", "c")
    assert list(loaded.iter_rows()) == list(store.iter_rows())
    assert loaded.fingerprint() == store.fingerprint()


def test_save_rejects_exotic_node_kinds(tmp_path):
    store = ContactStore.from_rows([((1, 2), "x", 0.0, 1.0)])
    with pytest.raises(TraceFormatError):
        store.save(tmp_path / "bad.ctrace")


def test_load_rejects_corrupt_files(tmp_path):
    p = tmp_path / "junk.ctrace"
    p.write_bytes(b"not a ctrace file at all")
    with pytest.raises(TraceFormatError):
        ContactStore.load(p)
    q = tmp_path / "trunc.ctrace"
    store = store_of([(0, 1, 0.0, 5.0)])
    store.save(q)
    q.write_bytes(q.read_bytes()[:40])
    with pytest.raises(TraceFormatError):
        ContactStore.load(q)


def test_load_trace_dispatch(tmp_path, haggle_pair):
    trace, store = haggle_pair
    cpath = tmp_path / "t.ctrace"
    store.save(cpath)
    loaded = load_trace(cpath)
    assert isinstance(loaded, ContactStore)
    assert loaded.fingerprint() == trace.fingerprint()
    tpath = tmp_path / "t.csv"
    write_csv(store, tpath)
    reparsed = load_trace(tpath)
    assert isinstance(reparsed, ContactTrace)
    # text writers round to 6 decimals, so compare against the text oracle
    assert ingest_path(tpath).fingerprint() == reparsed.fingerprint()


def test_pickle_round_trip(tmp_path, haggle_pair):
    trace, store = haggle_pair
    path = tmp_path / "t.ctrace"
    store.save(path)
    loaded = ContactStore.load(path)  # mmap-backed
    for s in (store, loaded):
        clone = pickle.loads(pickle.dumps(s))
        assert clone.fingerprint() == trace.fingerprint()
        assert list(clone.iter_rows()) == list(store.iter_rows())


# ----------------------------------------------------------------------
# end-to-end planning parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm,channel", [
    ("eedcb", "static"),
    ("fr-eedcb", "rayleigh"),
    ("greed", "static"),
    ("rand", "rayleigh"),
])
def test_plan_parity(haggle_pair, algorithm, channel):
    trace, store = haggle_pair
    kw = dict(algorithm=algorithm, channel=channel, seed=7,
              window=(8000.0, 11000.0))
    p1 = plan_broadcast(trace, None, 2500.0, **kw)
    p2 = plan_broadcast(store, None, 2500.0, **kw)
    assert p1.schedule == p2.schedule
    assert repr(p1.total_cost) == repr(p2.total_cost)
    assert p1.source == p2.source
    assert p1.manifest["config_hash"] == p2.manifest["config_hash"]


def test_plan_cache_key_backend_independent(haggle_pair):
    trace, store = haggle_pair
    k1 = plan_cache_key(trace, None, 2000.0, seed=3, window=9000.0)
    k2 = plan_cache_key(store, None, 2000.0, seed=3, window=9000.0)
    assert k1 == k2


def test_plan_config_rejects_unknown_types():
    with pytest.raises(TypeError, match="ContactStore"):
        plan_broadcast(object(), None, 100.0)


def test_dcs_capacity_bounded_and_parity(haggle_pair):
    trace, store = haggle_pair
    t_full = tveg_from_trace(trace, "static", seed=7)
    t_bound = tveg_from_trace(store, "static", seed=7, dcs_capacity=8)
    from repro.algorithms import make_scheduler

    r1 = make_scheduler("eedcb").run(t_full, trace.nodes[0], 4000.0)
    r2 = make_scheduler("eedcb").run(t_bound, trace.nodes[0], 4000.0)
    assert r1.schedule == r2.schedule
    assert repr(r1.schedule.total_cost) == repr(r2.schedule.total_cost)
    assert len(t_bound.dcs_memo()) <= 8
    assert len(t_full.dcs_memo()) > 8


def test_dcs_capacity_validation():
    from repro.errors import GraphModelError
    from repro.tveg.graph import _BoundedDCSMemo

    with pytest.raises(GraphModelError):
        _BoundedDCSMemo(0)


# ----------------------------------------------------------------------
# scale generator
# ----------------------------------------------------------------------
def test_scale_trace_store_shape():
    store = scale_trace_store(50, 2000, 5000.0, seed=1)
    assert store.num_contacts == 2000
    assert store.num_nodes == 50
    assert store.horizon == 5000.0
    starts = [s for _, _, s, _ in store.iter_rows()]
    assert starts == sorted(starts)
    for u, v, s, e in store.iter_rows():
        assert u != v
        assert 0.0 <= s <= e <= 5000.0


def test_scale_trace_store_deterministic():
    a = scale_trace_store(20, 500, 1000.0, seed=9)
    b = scale_trace_store(20, 500, 1000.0, seed=9)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != scale_trace_store(20, 500, 1000.0, seed=10).fingerprint()


def test_scale_trace_store_validation():
    with pytest.raises(TraceFormatError):
        scale_trace_store(1, 10, 100.0)
    with pytest.raises(TraceFormatError):
        scale_trace_store(5, -1, 100.0)
    with pytest.raises(TraceFormatError):
        scale_trace_store(5, 10, 0.0)


# ----------------------------------------------------------------------
# hypothesis round trips (satellite: repro trace conversions)
# ----------------------------------------------------------------------
@given(raw_rows())
@prop
def test_store_matches_trace_oracle(rows):
    store = store_of(rows)
    trace = trace_of(rows)
    assert store.nodes == trace.nodes
    assert store.fingerprint() == trace.fingerprint()
    assert [(c.u, c.v, c.start, c.end) for c in store] == [
        (c.u, c.v, c.start, c.end) for c in trace
    ]
    assert store.pair_presence() == trace.pair_presence()


@given(rows=raw_rows())
@prop
def test_ctrace_file_round_trip(tmp_path_factory, rows):
    store = store_of(rows)
    path = tmp_path_factory.mktemp("rt") / "t.ctrace"
    store.save(path)
    loaded = ContactStore.load(path)
    assert loaded.nodes == store.nodes
    assert loaded.horizon == store.horizon
    assert loaded.fingerprint() == store.fingerprint()
    assert list(loaded.iter_rows()) == list(store.iter_rows())


@given(raw_rows())
@prop
def test_text_round_trip_through_store(rows):
    store = store_of(rows)
    buf = io.StringIO()
    write_crawdad(store, buf)
    buf.seek(0)
    reparsed = ingest_crawdad(buf, horizon=HORIZON)
    # write_crawdad rounds to 6 decimals; re-writing must be a fixpoint
    buf2 = io.StringIO()
    write_crawdad(reparsed, buf2)
    buf3 = io.StringIO()
    oracle = parse_crawdad(io.StringIO(buf.getvalue()), horizon=HORIZON)
    write_crawdad(oracle, buf3)
    assert buf2.getvalue() == buf3.getvalue()
    assert reparsed.fingerprint() == oracle.fingerprint()

"""Consistent-hash ring and request routing keys.

The sharded service's correctness rests on two properties pinned here:

* the ring is deterministic and balanced enough that repeat
  configurations always land on the same (warm) shard, and resizing a
  pool remaps only a minority of the key space;
* ``routing_key`` is injective over request configurations — two
  requests that could yield different plans never share a routing key —
  while identical requests (however spelled) share one.
"""

import pytest

from repro.service import HashRing, routing_key
from repro.service.server import parse_plan_request
from repro.traces import HaggleLikeConfig, haggle_like_trace


@pytest.fixture(scope="module")
def trace():
    return haggle_like_trace(HaggleLikeConfig(num_nodes=10), seed=3)


def keys(n: int):
    return [f"{i:032x}" for i in range(n)]


class TestHashRing:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)

    def test_deterministic_across_instances(self):
        a, b = HashRing(5), HashRing(5)
        assert [a.shard_for(k) for k in keys(200)] == [
            b.shard_for(k) for k in keys(200)
        ]

    def test_range_and_single_shard(self):
        ring = HashRing(3)
        assert all(0 <= ring.shard_for(k) < 3 for k in keys(100))
        one = HashRing(1)
        assert all(one.shard_for(k) == 0 for k in keys(50))

    def test_distribution_covers_every_shard(self):
        ring = HashRing(4)
        counts = ring.distribution(keys(400))
        assert sum(counts) == 400
        assert all(c > 0 for c in counts), f"empty shard: {counts}"
        # 64 virtual nodes keep the skew moderate for realistic pools
        assert max(counts) <= 4 * min(counts), counts

    def test_resize_remaps_a_minority(self):
        # the consistent-hashing contract: going 4 → 5 shards moves
        # roughly 1/5 of keys, nowhere near the ~4/5 modulo hashing would
        before, after = HashRing(4), HashRing(5)
        ks = keys(1000)
        moved = sum(
            1 for k in ks if before.shard_for(k) != after.shard_for(k)
        )
        assert moved < 500, f"{moved}/1000 keys remapped"

    def test_wraparound_key(self):
        # a key hashing past the highest ring point wraps to the first;
        # exercised statistically: every key must still resolve
        ring = HashRing(2, replicas=1)  # 2 points, big gaps guarantee wrap
        assert {ring.shard_for(k) for k in keys(300)} == {0, 1}


class TestRoutingKey:
    def parsed(self, path, body):
        return parse_plan_request(path, body)

    def key_of(self, trace, path, body):
        method, kwargs = self.parsed(path, body)
        return routing_key(trace, method, kwargs)

    def test_identical_requests_share_a_key(self, trace):
        body = {"deadline": 600.0, "window": 2000.0, "seed": 3}
        assert self.key_of(trace, "/plan", dict(body)) == self.key_of(
            trace, "/plan", dict(body)
        )

    def test_distinct_configs_get_distinct_keys(self, trace):
        base = {"deadline": 600.0, "window": 2000.0, "seed": 3}
        variants = [
            {**base, "seed": 4},
            {**base, "deadline": 700.0},
            {**base, "window": 3000.0},
            {**base, "source": 0},
            {**base, "algorithm": "greed"},
            {**base, "scheduler_kwargs": {"memt_method": "sptree"}},
        ]
        all_keys = [self.key_of(trace, "/plan", base)] + [
            self.key_of(trace, "/plan", v) for v in variants
        ]
        assert len(set(all_keys)) == len(all_keys)

    def test_window_list_and_tuple_agree(self, trace):
        as_list = {"deadline": 600.0, "window": [1000.0, 3000.0], "seed": 3}
        as_scalar = {"deadline": 600.0, "window": 2000.0, "seed": 3}
        k_list = self.key_of(trace, "/plan", as_list)
        assert k_list == self.key_of(trace, "/plan", dict(as_list))
        assert k_list != self.key_of(trace, "/plan", as_scalar)

    def test_plan_many_routes_by_first_member(self, trace):
        many = {"sources": [2, 5], "deadlines": 600.0,
                "window": 2000.0, "seed": 3}
        single = {"source": 2, "deadline": 600.0,
                  "window": 2000.0, "seed": 3}
        assert self.key_of(trace, "/plan_many", many) == self.key_of(
            trace, "/plan", single
        )

    def test_plan_many_list_deadlines(self, trace):
        many = {"sources": [2, 5], "deadlines": [600.0, 700.0],
                "window": 2000.0, "seed": 3}
        single = {"source": 2, "deadline": 600.0,
                  "window": 2000.0, "seed": 3}
        assert self.key_of(trace, "/plan_many", many) == self.key_of(
            trace, "/plan", single
        )

    def test_key_is_a_config_hash(self, trace):
        key = self.key_of(
            trace, "/plan", {"deadline": 600.0, "window": 2000.0, "seed": 3}
        )
        assert len(key) == 16
        int(key, 16)  # hex string

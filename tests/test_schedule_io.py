"""Schedule CSV round-trips (incl. the hypothesis-generated case)."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.schedule import Schedule, Transmission
from repro.schedule.io import read_schedule_csv, write_schedule_csv


class TestRoundTrip:
    def test_basic(self):
        sched = Schedule(
            [Transmission(0, 1.5, 2.5e-10), Transmission(3, 0.5, 1.0e-11)]
        )
        buf = io.StringIO()
        write_schedule_csv(sched, buf)
        back = read_schedule_csv(io.StringIO(buf.getvalue()))
        assert back == sched

    def test_file(self, tmp_path):
        sched = Schedule([Transmission(7, 10.0, 1e-9)])
        p = tmp_path / "plan.csv"
        write_schedule_csv(sched, p)
        assert read_schedule_csv(p) == sched

    def test_empty_schedule(self):
        buf = io.StringIO()
        write_schedule_csv(Schedule.empty(), buf)
        back = read_schedule_csv(io.StringIO(buf.getvalue()))
        assert back.is_empty

    def test_string_nodes(self):
        sched = Schedule([Transmission("alice", 1.0, 2.0)])
        buf = io.StringIO()
        write_schedule_csv(sched, buf)
        back = read_schedule_csv(io.StringIO(buf.getvalue()), node_type=str)
        assert back == sched

    def test_malformed(self):
        with pytest.raises(TraceFormatError):
            read_schedule_csv(io.StringIO(""))
        with pytest.raises(TraceFormatError):
            read_schedule_csv(io.StringIO("relay,time\n0,1\n"))
        with pytest.raises(TraceFormatError):
            read_schedule_csv(io.StringIO("relay,time,cost\nx,1.0,2.0\n"))


finite_time = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
finite_cost = st.floats(min_value=0.0, max_value=1e-3, allow_nan=False)


@given(
    st.lists(
        st.tuples(st.integers(0, 50), finite_time, finite_cost),
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_round_trip_random(rows):
    sched = Schedule(Transmission(r, t, w) for r, t, w in rows)
    buf = io.StringIO()
    write_schedule_csv(sched, buf)
    back = read_schedule_csv(io.StringIO(buf.getvalue()))
    assert back == sched

"""Fading-environment comparison of all six paper algorithms (mini Fig. 6).

The scenario the paper's introduction motivates: a delay-tolerant mobile
network where links fade.  Algorithms that design for a static channel
(EEDCB / GREED / RAND) spend less energy but silently lose packets once the
channel fades; the fading-resistant variants (FR-*) pay the Section VI-B
energy premium and keep the delivery ratio at ≈ 1 − ε.

Every schedule is executed in the *same* Rayleigh environment over the same
link geometry, so the comparison is exactly the paper's Fig. 6 protocol.

Run:  python examples/fading_broadcast_comparison.py
"""

import numpy as np

from repro import PAPER_PARAMS, make_scheduler
from repro.channels import RayleighChannel, StaticChannel
from repro.errors import InfeasibleError
from repro.sim import run_trials
from repro.temporal import broadcast_feasible_sources
from repro.traces import DistanceModel, HaggleLikeConfig, haggle_like_trace
from repro.tveg import TVEG

ALGORITHMS = ("eedcb", "greed", "rand", "fr-eedcb", "fr-greed", "fr-rand")


def main() -> None:
    delay = 2000.0
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=11)
    window = trace.restrict_window(10000.0, 10000.0 + delay).shift(-10000.0)

    # One distance provider shared by both channel models: the static and
    # fading TVEGs see identical geometry, only the ED-functions differ.
    tvg = window.to_tvg(horizon=delay)
    provider = DistanceModel().attach(window, seed=3)
    static = TVEG(tvg, StaticChannel(PAPER_PARAMS), provider)
    fading = TVEG(tvg, RayleighChannel(PAPER_PARAMS), provider)

    sources = sorted(broadcast_feasible_sources(tvg, 0.0, delay))
    if not sources:
        raise SystemExit("window infeasible; try another seed")
    source = sources[0]
    print(f"N=20, delay={delay:.0f}s, source={source}, "
          f"execution environment: Rayleigh fading\n")

    header = f"{'algorithm':>10} | {'energy (norm.)':>14} | {'delivery':>8} | {'#tx':>4}"
    print(header)
    print("-" * len(header))
    for name in ALGORITHMS:
        design = fading if name.startswith("fr-") else static
        kwargs = {"seed": 0} if "rand" in name else {}
        try:
            schedule = make_scheduler(name, **kwargs).schedule(design, source, delay)
        except InfeasibleError as exc:
            print(f"{name:>10} | infeasible: {exc}")
            continue
        summary = run_trials(
            fading, schedule, source, num_trials=400, seed=1,
            count_scheduled_energy=True,
        )
        print(
            f"{name.upper():>10} | "
            f"{PAPER_PARAMS.normalize_energy(schedule.total_cost):14.1f} | "
            f"{summary.mean_delivery:8.3f} | {len(schedule):4d}"
        )

    print(
        "\nReading: the static trio is cheap but loses packets under fading;"
        "\nthe FR trio holds delivery at ≈ 1 − ε by paying the w0 premium, "
        "\nand FR-EEDCB recovers most of that premium via the allocation NLP."
    )


if __name__ == "__main__":
    main()

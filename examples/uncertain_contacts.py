"""Broadcast under contact uncertainty (the paper's future-work extension).

Real contact predictions are never certain: a predicted meeting may not
happen.  This example lifts a deterministic trace into a *non-deterministic
TVG* (presence probabilities, Section III-A's general ρ) and studies how
the broadcast degrades as contact availability drops:

* how often the instance stays broadcast-feasible at all, and
* how the energy of the per-realization EEDCB plan spreads.

Run:  python examples/uncertain_contacts.py
"""

from repro import HaggleLikeConfig, PAPER_PARAMS, haggle_like_trace
from repro.temporal import ProbabilisticTVG, schedule_robustness


def main() -> None:
    delay = 2000.0
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=15), seed=13)
    window = trace.restrict_window(9000.0, 9000.0 + delay).shift(-9000.0)
    print(f"base window: {window.num_contacts} contacts, N=15, T={delay:.0f}s\n")

    header = (
        f"{'availability':>12} | {'feasible rate':>13} | "
        f"{'mean energy':>11} | {'p90 energy':>10}"
    )
    print(header)
    print("-" * len(header))
    for availability in (1.0, 0.9, 0.75, 0.6, 0.45, 0.3):
        ptvg = ProbabilisticTVG.from_trace(window, availability=availability)
        report = schedule_robustness(
            ptvg, source=0, deadline=delay,
            scheduler_name="eedcb", channel="static",
            realizations=30, seed=42,
        )
        mean = (
            PAPER_PARAMS.normalize_energy(report.mean_cost)
            if report.costs else float("nan")
        )
        p90 = (
            PAPER_PARAMS.normalize_energy(report.p90_cost)
            if report.costs else float("nan")
        )
        print(
            f"{availability:12.2f} | {report.feasibility_rate:13.2f} | "
            f"{mean:11.1f} | {p90:10.1f}"
        )

    print(
        "\nReading: as contacts become less reliable, fewer realizations"
        "\nadmit a full broadcast within the deadline, and the surviving"
        "\nplans get more expensive (fewer cheap contacts to choose from)."
    )


if __name__ == "__main__":
    main()

"""Quickstart: schedule one energy-efficient broadcast on a dynamic network.

One call does the whole pipeline: :func:`repro.plan_broadcast` builds a
time-varying energy-demand graph from a window of a Haggle-like contact
trace (the paper's evaluation substrate), picks a broadcast-feasible
source, runs the EEDCB scheduler (Section VI-A), and verifies the four
TMEDB feasibility conditions (Section IV).

Run:  python examples/quickstart.py
"""

from repro import PAPER_PARAMS, HaggleLikeConfig, haggle_like_trace, obs, plan_broadcast


def main() -> None:
    # 1. A 20-node contact trace like the paper's Haggle data (~17000 s).
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=7)
    print(f"trace: {trace}")

    # 2. (Optional) turn on observability to see where the time goes.
    obs.enable()

    # 3. Plan the broadcast: a 2000 s window after the warm-up ramp, a
    #    static-channel TVEG, an auto-picked feasible source, EEDCB.
    delay = 2000.0
    plan = plan_broadcast(
        trace, None, delay, algorithm="eedcb", window=9000.0, seed=7
    )
    print(f"source: node {plan.source} (auto-selected)")
    print(
        f"schedule: {len(plan.schedule)} transmissions, "
        f"normalized energy {plan.normalized_energy():.1f}"
    )
    for s in plan.schedule:
        print(f"  relay {s.relay:>2} at t={s.time:7.1f}s  "
              f"w={PAPER_PARAMS.normalize_energy(s.cost):8.2f} (normalized)")

    # 4. The Section IV feasibility conditions were checked for us.
    print(f"feasible: {plan.feasible}")

    # 5. Eyeball the plan against the contact structure.
    from repro.schedule import ascii_timeline

    print()
    print(ascii_timeline(plan.tveg, plan.schedule, plan.source, delay, width=72))
    print(
        "aux graph:",
        plan.info["aux_nodes"],
        "nodes /",
        plan.info["aux_edges"],
        "edges,",
        plan.info["dts_points"],
        "DTS points",
    )

    # 6. Where the time went (per-stage wall times from the obs snapshot).
    for stage, secs in sorted(plan.info["stage_seconds"].items()):
        print(f"  stage {stage:<12} {1e3 * secs:7.2f} ms")
    obs.disable()


if __name__ == "__main__":
    main()

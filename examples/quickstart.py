"""Quickstart: schedule one energy-efficient broadcast on a dynamic network.

Builds a Haggle-like contact trace (the paper's evaluation substrate), turns
a 2000 s window of it into a time-varying energy-demand graph, runs the
EEDCB scheduler (Section VI-A), and verifies the four TMEDB feasibility
conditions (Section IV).

Run:  python examples/quickstart.py
"""

from repro import (
    HaggleLikeConfig,
    PAPER_PARAMS,
    check_feasibility,
    haggle_like_trace,
    make_scheduler,
    tveg_from_trace,
)
from repro.temporal import broadcast_feasible_sources


def main() -> None:
    # 1. A 20-node contact trace like the paper's Haggle data (~17000 s).
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=7)
    print(f"trace: {trace}")

    # 2. Pick a 2000 s broadcast window after the warm-up ramp and build a
    #    static-channel TVEG over it (distances synthesized per contact).
    delay = 2000.0
    window = trace.restrict_window(9000.0, 9000.0 + delay).shift(-9000.0)
    tveg = tveg_from_trace(window, "static", seed=7)

    # 3. Choose a source that can temporally reach everyone within T.
    sources = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, delay))
    if not sources:
        raise SystemExit("no broadcast-feasible source in this window")
    source = sources[0]
    print(f"source: node {source} (of {len(sources)} feasible candidates)")

    # 4. Schedule with EEDCB: DTS → auxiliary graph → Steiner tree.
    result = make_scheduler("eedcb").run(tveg, source, delay)
    schedule = result.schedule
    print(
        f"schedule: {len(schedule)} transmissions, "
        f"normalized energy {PAPER_PARAMS.normalize_energy(schedule.total_cost):.1f}"
    )
    for s in schedule:
        print(f"  relay {s.relay:>2} at t={s.time:7.1f}s  "
              f"w={PAPER_PARAMS.normalize_energy(s.cost):8.2f} (normalized)")

    # 5. Verify the Section IV feasibility conditions.
    report = check_feasibility(tveg, schedule, source, delay)
    print(f"feasible: {report.feasible}")

    # 6. Eyeball the plan against the contact structure.
    from repro.schedule import ascii_timeline

    print()
    print(ascii_timeline(tveg, schedule, source, delay, width=72))
    print(
        "aux graph:",
        result.info["aux_nodes"],
        "nodes /",
        result.info["aux_edges"],
        "edges,",
        result.info["dts_points"],
        "DTS points",
    )


if __name__ == "__main__":
    main()

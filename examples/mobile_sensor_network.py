"""Broadcast over a mobile sensor field driven by random-waypoint mobility.

The paper's second motivating scenario: sensor/robot nodes moving in an
area, links existing only while nodes are in radio range.  This example
derives the TVEG *physically* — positions → distances → contacts — instead
of enriching a contact trace, and also demonstrates the footnote-1 channel
extensions (Rician / Nakagami) on the same geometry.

Run:  python examples/mobile_sensor_network.py
"""

from repro import PAPER_PARAMS, check_feasibility, make_scheduler
from repro.channels import NakagamiChannel, RayleighChannel, RicianChannel, StaticChannel
from repro.errors import InfeasibleError
from repro.mobility import RandomWaypoint
from repro.sim import run_trials
from repro.temporal import broadcast_feasible_sources
from repro.tveg import TVEG


def main() -> None:
    # 1. Simulate 12 pedestrian-speed nodes in a 60 m × 60 m field.
    mobility = RandomWaypoint(
        num_nodes=12, area=(60.0, 60.0), speed_range=(0.8, 2.5),
        pause_range=(0.0, 60.0),
    )
    horizon = 1200.0
    positions = mobility.generate(horizon=horizon, sample_dt=5.0, seed=21)

    # 2. Contacts are range-threshold crossings; distances come straight
    #    from the trajectories (genuinely time-varying d_{i,j,t}).
    contacts = positions.extract_contacts(radio_range=15.0)
    tvg = contacts.to_tvg(horizon=horizon)
    print(f"mobility contacts: {contacts.num_contacts} over {horizon:.0f}s")

    sources = sorted(broadcast_feasible_sources(tvg, 0.0, horizon))
    if not sources:
        raise SystemExit("no feasible source; try another seed")
    source = sources[0]
    provider = positions.distance_provider(min_distance=1.0)

    # 3. Static-channel broadcast plan.
    static = TVEG(tvg, StaticChannel(PAPER_PARAMS), provider)
    plan = make_scheduler("eedcb").run(static, source, horizon)
    rep = check_feasibility(static, plan.schedule, source, horizon)
    print(
        f"\nEEDCB plan from node {source}: {len(plan.schedule)} transmissions, "
        f"normalized energy "
        f"{PAPER_PARAMS.normalize_energy(plan.schedule.total_cost):.1f}, "
        f"feasible={rep.feasible}"
    )

    # 4. The same geometry under three fading families — the milder the
    #    fading (higher Rician K / Nakagami m), the cheaper the ε guarantee.
    print("\nfading-resistant plans (FR-EEDCB) across channel families:")
    for label, channel in (
        ("Rayleigh       ", RayleighChannel(PAPER_PARAMS)),
        ("Rician (K=4)   ", RicianChannel(PAPER_PARAMS, k_factor=4.0)),
        ("Nakagami (m=3) ", NakagamiChannel(PAPER_PARAMS, m=3.0)),
    ):
        tveg = TVEG(tvg, channel, provider)
        try:
            result = make_scheduler("fr-eedcb").run(tveg, source, horizon)
        except InfeasibleError as exc:
            print(f"  {label}: infeasible ({exc})")
            continue
        summary = run_trials(
            tveg, result.schedule, source, num_trials=300, seed=2,
            count_scheduled_energy=True,
        )
        print(
            f"  {label}: energy "
            f"{PAPER_PARAMS.normalize_energy(result.schedule.total_cost):9.1f}"
            f"  delivery {summary.mean_delivery:.3f}"
            f"  (allocation: {result.info['allocation_method']})"
        )


if __name__ == "__main__":
    main()

"""The price of clairvoyance: online forwarding vs the offline optimum.

The paper's EEDCB sees every future contact and plans globally.  Deployed
opportunistic networks cannot — they run online protocols that decide
contact by contact.  This example pits the classic online trio (epidemic,
gossip, binary spray-and-wait) against EEDCB on one broadcast window and
reports how much energy clairvoyance saves and what delivery/latency the
online protocols buy with it.

Run:  python examples/online_vs_offline.py
"""

from repro import PAPER_PARAMS, make_scheduler
from repro.errors import InfeasibleError
from repro.online import Epidemic, Gossip, SprayAndWait, run_online_trials
from repro.sim import run_trials
from repro.temporal import broadcast_feasible_sources
from repro.traces import HaggleLikeConfig, haggle_like_trace
from repro.tveg import tveg_from_trace


def main() -> None:
    delay = 2000.0
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=17)
    window = trace.restrict_window(10000.0, 10000.0 + delay).shift(-10000.0)
    tveg = tveg_from_trace(window, "static", seed=2)

    sources = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, delay))
    if not sources:
        raise SystemExit("window infeasible; try another seed")
    source = sources[0]
    print(f"N=20, T={delay:.0f}s, source={source}, static channel\n")

    rows = []

    # Offline optimum (clairvoyant).
    try:
        schedule = make_scheduler("eedcb").schedule(tveg, source, delay)
        summary = run_trials(tveg, schedule, source, 100, seed=1,
                             count_scheduled_energy=True)
        rows.append(
            ("EEDCB (offline)", schedule.total_cost, summary.mean_delivery, "-")
        )
    except InfeasibleError as exc:
        print(f"offline scheduler: {exc}")

    # Online protocols (contact-by-contact decisions, no future knowledge).
    for label, protocol in (
        ("epidemic", Epidemic()),
        ("gossip p=0.5", Gossip(0.5)),
        ("spray L=8", SprayAndWait(tokens=8)),
        ("spray L=4", SprayAndWait(tokens=4)),
    ):
        s = run_online_trials(tveg, protocol, source, delay, num_trials=60, seed=3)
        rows.append((label, s.mean_energy, s.mean_delivery, f"{s.mean_latency:7.0f}s"))

    header = f"{'strategy':>16} | {'energy (norm.)':>14} | {'delivery':>8} | {'latency':>8}"
    print(header)
    print("-" * len(header))
    for label, energy, delivery, latency in rows:
        print(
            f"{label:>16} | {PAPER_PARAMS.normalize_energy(energy):14.1f} | "
            f"{delivery:8.3f} | {latency:>8}"
        )

    print(
        "\nReading: epidemic matches the foremost-journey latency but floods"
        "\nenergy; the offline optimizer undercuts every online protocol by"
        "\nwaiting for the cheapest contacts it (alone) knows are coming."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Load generator for the planning service: throughput, tails, identity.

Drives a running ``repro serve`` endpoint — or boots one (or two, with
``--compare``) itself — with a mixed workload shaped like the paper's
deployment story: a **hot** configuration most clients repeat (the
cache-hit share), a **tail** of distinct configurations (the miss
share), and a sprinkle of ``POST /plan_many`` batch requests.  Reports
closed- or open-loop throughput with p50/p95/p99 latency per request
class, and checks that every response for one configuration carries a
byte-identical plan after stripping the volatile timing fields.

Open-loop runs (``--rate``) issue requests on their arrival schedule
over HTTP/1.1 *pipelined* keep-alive connections (``--pipeline`` lanes):
each due request is written without waiting for earlier responses and a
per-lane reader matches responses back to requests in FIFO order, so
per-response identity checking is preserved while the generator stays
open-loop at rates where thread-per-request would bottleneck the client.
Identity is checked on the volatile-stripped document
(``wall_seconds``, ``manifest.created_unix``, ``info.stage_seconds`` —
everything else is deterministic content).

Examples::

    # drive an already-running server
    PYTHONPATH=src python tools/loadtest.py --url http://127.0.0.1:8437 \\
        --requests 200 --concurrency 16

    # boot a 2-shard server, warm the tail, assert for CI
    PYTHONPATH=src python tools/loadtest.py --boot --shards 2 \\
        --requests 200 --concurrency 16 --warm-tail \\
        --assert-zero-errors --assert-cache-hits --out report.json

    # the acceptance experiment: 4 shards vs the single-process server
    PYTHONPATH=src python tools/loadtest.py --compare --shards 4 \\
        --requests 400 --concurrency 16 --warm-tail --min-speedup 4

Exits nonzero when any ``--assert-*`` / ``--min-speedup`` bound fails.
"""

from __future__ import annotations

import argparse
import collections
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.obs.metrics import percentile  # noqa: E402

#: volatile response-envelope fields stripped before identity comparison
_VOLATILE_ENVELOPE = ("cached", "wall_seconds")


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------


def build_workload(args) -> List[Tuple[str, Dict[str, Any]]]:
    """The request list: ``[(path, body), ...]`` in issue order.

    Deterministic for a given argument set (no RNG): the hit/miss/batch
    mix is laid out round-robin so every concurrency level sees the same
    request population and runs stay comparable.
    """
    base = {"deadline": args.deadline, "window": args.window,
            "seed": args.seed}
    n_many = int(args.requests * args.plan_many_ratio)
    n_tail = int(args.requests * (1.0 - args.hit_ratio))
    n_hot = args.requests - n_tail - n_many
    if n_hot < 0:
        raise SystemExit("hit/plan_many ratios exceed the request budget")
    cold: List[Tuple[str, Dict[str, Any]]] = []
    for i in range(n_tail):
        # distinct cache keys, same planning cost: the channel seed is
        # part of the configuration identity
        cold.append(("/plan", {**base, "seed": args.tail_seed_base + i}))
    many_body = {"sources": [None, None], "deadlines": args.deadline,
                 "window": args.window, "seed": args.seed}
    cold += [("/plan_many", dict(many_body))] * n_many
    # interleave: spread the non-hot requests evenly through the hot
    # stream so hits and misses contend realistically at any concurrency
    mixed: List[Tuple[str, Dict[str, Any]]] = []
    stride = max(1, args.requests // max(1, len(cold)))
    cold_iter = iter(cold)
    hot_left = n_hot
    for i in range(args.requests):
        nxt = next(cold_iter, None) if i % stride == stride - 1 else None
        if nxt is None and hot_left > 0:
            hot_left -= 1
            nxt = ("/plan", dict(base))
        if nxt is None:
            nxt = next(cold_iter, None)
        if nxt is not None:
            mixed.append(nxt)
    # anything the stride arithmetic left over still ships
    mixed.extend(cold_iter)
    for _ in range(hot_left):
        mixed.append(("/plan", dict(base)))
    return mixed


def warm_bodies(args) -> List[Dict[str, Any]]:
    """The ``--warm`` file contents priming every workload configuration."""
    bodies = [{"deadline": args.deadline, "window": args.window,
               "seed": args.seed}]
    n_tail = int(args.requests * (1.0 - args.hit_ratio))
    for i in range(n_tail):
        bodies.append({"deadline": args.deadline, "window": args.window,
                       "seed": args.tail_seed_base + i})
    return bodies


# ----------------------------------------------------------------------
# HTTP + server lifecycle
# ----------------------------------------------------------------------


def _post(url: str, path: str, body: Dict[str, Any], timeout: float):
    data = json.dumps(body).encode("utf-8")
    req = urllib.request.Request(url + path, data=data, method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class PooledClient:
    """One persistent keep-alive connection per calling thread.

    ``urllib`` opens (and tears down) a TCP connection per request, which
    on a one-box benchmark costs about as much as the server spends
    answering — the measurement ends up client-bound and both servers
    read the same.  A thread-local :class:`http.client.HTTPConnection`
    reuses the connection when the server keeps it alive (the async
    front-end does) and transparently reconnects when it does not (the
    legacy HTTP/1.0 server closes after every response — that churn is
    part of what the comparison measures).
    """

    def __init__(self, url: str, timeout: float) -> None:
        parsed = urllib.parse.urlsplit(url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._timeout = timeout
        self._local = threading.local()

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def post(self, path: str, body: Dict[str, Any]):
        data = json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        for attempt in (0, 1):
            conn = getattr(self._local, "conn", None)
            if conn is None:
                conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
                self._local.conn = conn
            try:
                conn.request("POST", path, body=data, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
                if resp.will_close:
                    conn.close()
                    self._local.conn = None
                return resp.status, json.loads(payload)
            except (http.client.HTTPException, OSError):
                # stale keep-alive connection (server restarted or timed
                # it out): reconnect once, then let the failure surface
                conn.close()
                self._local.conn = None
                if attempt:
                    raise
        raise AssertionError("unreachable")


#: longest header/status line a pipelined response parser will accept
_MAX_LINE = 65536


def _read_http_response(rfile):
    """Parse one HTTP response from a buffered socket file.

    Returns ``(status, doc, close)``: the status code, the decoded JSON
    body (``None`` when the payload is not JSON), and whether the server
    is closing the connection after this response.  Handles
    Content-Length framing (what both repro front-ends emit), chunked
    transfer coding, and the HTTP/1.0 read-until-close fallback.  The
    caller owns ``rfile`` — one buffered reader per connection, so
    read-ahead never swallows a later pipelined response.
    """
    line = rfile.readline(_MAX_LINE)
    if not line:
        raise ConnectionError("EOF before status line")
    parts = line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ValueError(f"malformed status line {line!r}")
    version, status = parts[0], int(parts[1])
    headers = {}
    while True:
        line = rfile.readline(_MAX_LINE)
        if not line:
            raise ConnectionError("EOF inside headers")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    te = headers.get("transfer-encoding", "").lower()
    framed = True
    if "chunked" in te:
        body = bytearray()
        while True:
            size_line = rfile.readline(_MAX_LINE)
            if not size_line:
                raise ConnectionError("EOF inside chunked body")
            size = int(size_line.split(b";")[0].strip() or b"0", 16)
            if size == 0:
                while True:  # trailers up to the final blank line
                    trailer = rfile.readline(_MAX_LINE)
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                break
            chunk = rfile.read(size + 2)  # data + CRLF
            if len(chunk) < size:
                raise ConnectionError("EOF inside chunk")
            body += chunk[:size]
        body = bytes(body)
    elif "content-length" in headers:
        length = int(headers["content-length"])
        body = rfile.read(length)
        if len(body) != length:
            raise ConnectionError("EOF inside body")
    else:
        body = rfile.read()  # close-delimited: nothing can follow
        framed = False
    connection = headers.get("connection", "").lower()
    close = (not framed or connection == "close"
             or (version == "HTTP/1.0" and connection != "keep-alive"))
    try:
        doc = json.loads(body)
    except ValueError:
        doc = None
    return status, doc, close


class PipelinedClient:
    """HTTP/1.1 pipelining on one persistent connection.

    The open-loop generator's contract is that *send* instants follow
    the arrival schedule no matter how the server is keeping up.  The
    thread-per-request implementation honours that but pays a thread, a
    TCP handshake, and a file descriptor per request — at high rates the
    generator, not the server, becomes the bottleneck.  This client
    instead writes each serialized request onto one keep-alive
    connection the moment it is due, without waiting for earlier
    responses, and a single reader drains responses strictly in request
    order — the HTTP/1.1 pipelining contract — matching each back to
    its token by FIFO position so per-response identity checking is
    exactly as strong as before.

    When the server closes the connection after a response (the legacy
    HTTP/1.0 front-end always does), the outstanding requests are
    replayed in order on a fresh connection; an unclean failure replays
    too but charges the head request a retry, and a request out of
    retries is reported as errored rather than looping forever.
    """

    _MAX_RETRIES = 4

    def __init__(self, url: str, timeout: float) -> None:
        parsed = urllib.parse.urlsplit(url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._timeout = timeout
        self._more = threading.Condition()
        self._pending: "collections.deque" = collections.deque()
        self._failed: "collections.deque" = collections.deque()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._done = False

    # -- plumbing (callers hold self._more) ----------------------------
    def _connect_locked(self) -> None:
        sock = socket.create_connection(
            (self._host, self._port), self._timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def _teardown_locked(self) -> None:
        for closable in (self._rfile, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None

    def _replay_locked(self) -> None:
        """Reconnect and re-send every outstanding request, in order.

        A connect failure means the server is gone for everything
        already on the wire: outstanding requests move to the failure
        queue instead of spinning on reconnect attempts.
        """
        self._teardown_locked()
        try:
            self._connect_locked()
            for entry in self._pending:
                self._sock.sendall(entry[1])
        except OSError:
            self._teardown_locked()
            self._failed.extend(entry[0] for entry in self._pending)
            self._pending.clear()

    def _serialize(self, path: str, body: Dict[str, Any]) -> bytes:
        data = json.dumps(body).encode("utf-8")
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            "\r\n"
        ).encode("latin-1")
        return head + data

    # -- writer side ----------------------------------------------------
    def send(self, token, path: str, body: Dict[str, Any]) -> None:
        """Queue one request on the wire; returns as soon as it is written."""
        raw = self._serialize(path, body)
        with self._more:
            try:
                if self._sock is None:
                    self._connect_locked()
                self._sock.sendall(raw)
            except OSError:
                self._teardown_locked()
                raise
            self._pending.append([token, raw, 0])
            self._more.notify()

    def finish(self) -> None:
        """No more sends: lets the reader drain the tail and return."""
        with self._more:
            self._done = True
            self._more.notify()

    def close(self) -> None:
        with self._more:
            self._done = True
            self._teardown_locked()
            self._more.notify()

    # -- reader side ----------------------------------------------------
    def next_response(self):
        """Block for the oldest outstanding response.

        Returns ``(token, status, doc)``, with status ``-1`` and a
        ``None`` doc for a request that exhausted its retries, or
        ``None`` once :meth:`finish` was called and every outstanding
        request has been answered.
        """
        while True:
            with self._more:
                if self._failed:
                    return self._failed.popleft(), -1, None
                while not self._pending and not self._done:
                    self._more.wait()
                if not self._pending:
                    return (self._failed.popleft(), -1, None) \
                        if self._failed else None
                entry = self._pending[0]
                rfile = self._rfile
            try:
                if rfile is None:
                    raise ConnectionError("connection torn down")
                status, doc, close = _read_http_response(rfile)
            except (OSError, ValueError, ConnectionError):
                with self._more:
                    if self._done and not self._pending:
                        return None
                    # the head request may be mid-flight on a dead
                    # connection: it pays the retry, everyone replays
                    entry[2] += 1
                    if entry[2] > self._MAX_RETRIES:
                        if self._pending and self._pending[0] is entry:
                            self._pending.popleft()
                        self._failed.append(entry[0])
                    self._replay_locked()
                continue
            with self._more:
                if self._pending and self._pending[0] is entry:
                    self._pending.popleft()
                if close:
                    # a clean per-response close (HTTP/1.0 front-end)
                    # made progress, so replaying the rest is not a retry
                    self._teardown_locked()
                    if self._pending:
                        self._replay_locked()
            return entry[0], status, doc


def _get(url: str, path: str, timeout: float = 30.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as resp:
        return json.loads(resp.read())


def scrape_prometheus(url: str, timeout: float = 30.0) -> Tuple[str, str]:
    """GET /metrics negotiated to the Prometheus text representation."""
    req = urllib.request.Request(
        url + "/metrics", headers={"Accept": "text/plain"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return (resp.read().decode("utf-8"),
                resp.headers.get("Content-Type", ""))


class BootedServer:
    """A ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, args, shards: int, legacy: bool,
                 warm_file: Optional[str]) -> None:
        cmd = [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--synthetic", str(args.nodes), "--seed", str(args.trace_seed),
            "--cache-capacity", str(args.cache_capacity),
        ]
        if shards:
            cmd += ["--shards", str(shards), "--max-wait", "0"]
        if legacy:
            cmd += ["--legacy-http"]
        if warm_file:
            cmd += ["--warm", warm_file]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (sys.path[0], env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        self.url = self._await_ready(args.boot_timeout)

    def _await_ready(self, timeout: float) -> str:
        deadline = time.time() + timeout
        assert self.proc.stdout is not None
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise SystemExit(
                    f"server exited during boot (rc {self.proc.returncode})"
                )
            line = self.proc.stdout.readline()
            if "serving on http://" in line:
                return "http://" + line.split("http://")[1].split()[0]
        raise SystemExit(f"server not ready within {timeout:.0f}s")

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------


def normalized_plan(doc: Dict[str, Any]) -> str:
    """A plan document serialized with volatile timing fields removed."""
    plan = json.loads(json.dumps(doc))  # deep copy
    plan.get("manifest", {}).pop("created_unix", None)
    plan.get("manifest", {}).pop("wall_seconds", None)
    plan.get("info", {}).pop("stage_seconds", None)
    return json.dumps(plan, sort_keys=True)


class IdentityTracker:
    """Asserts one configuration always serves one (normalized) plan."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seen: Dict[str, str] = {}
        self.violations: List[str] = []

    def observe(self, key: str, plan_doc: Dict[str, Any]) -> None:
        norm = normalized_plan(plan_doc)
        with self._lock:
            prior = self._seen.setdefault(key, norm)
            if prior != norm and key not in self.violations:
                self.violations.append(key)

    def snapshot(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._seen)


def run_load(
    url: str,
    workload: List[Tuple[str, Dict[str, Any]]],
    args,
    identity: Optional[IdentityTracker] = None,
) -> Dict[str, Any]:
    """Execute the workload; returns the report document."""
    results: List[Tuple[str, int, float, bool]] = [None] * len(workload)  # type: ignore[list-item]
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    interval = (1.0 / args.rate) if args.rate else 0.0
    client = PooledClient(url, args.request_timeout)
    t_start = time.perf_counter()

    def record(i: int, status: int, doc, t0: float) -> None:
        """File one response under request ``i``; feeds identity checking."""
        path = workload[i][0]
        latency = time.perf_counter() - t0
        if status < 0 or doc is None:
            results[i] = (path, -1, latency, False)
            return
        cached = bool(doc.get("cached")) if path == "/plan" else (
            all(doc.get("cached") or [False])
        )
        if status == 200 and identity is not None:
            if path == "/plan":
                identity.observe(doc["key"], doc["plan"])
            else:
                for key, plan in zip(doc["keys"],
                                     doc["planset"].get("plans", [])):
                    identity.observe(key, plan)
        results[i] = (path, status, latency, cached if status == 200 else False)

    def issue(i: int) -> None:
        path, body = workload[i]
        t0 = time.perf_counter()
        try:
            status, doc = client.post(path, body)
        except Exception:
            results[i] = (path, -1, time.perf_counter() - t0, False)
            return
        record(i, status, doc, t0)

    def closed_worker() -> None:
        while True:
            with cursor_lock:
                i = cursor["next"]
                if i >= len(workload):
                    return
                cursor["next"] = i + 1
            issue(i)

    pipeline = getattr(args, "pipeline", 1)
    if args.rate and pipeline:
        # open loop over HTTP/1.1 pipelining: requests go out on their
        # arrival schedule across a small fixed set of persistent
        # connections (striped round-robin); one reader per lane drains
        # responses in request order, so outstanding work is still
        # unbounded but the generator no longer spends a thread and a
        # TCP handshake per request
        lanes = [PipelinedClient(url, args.request_timeout)
                 for _ in range(pipeline)]
        t_sent = [0.0] * len(workload)

        def lane_reader(lane: PipelinedClient) -> None:
            while True:
                got = lane.next_response()
                if got is None:
                    return
                i, status, doc = got
                record(i, status, doc, t_sent[i])

        readers = [
            threading.Thread(target=lane_reader, args=(lane,), daemon=True)
            for lane in lanes
        ]
        for t in readers:
            t.start()
        for i in range(len(workload)):
            target = t_start + i * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            path, body = workload[i]
            t_sent[i] = time.perf_counter()
            try:
                lanes[i % len(lanes)].send(i, path, body)
            except OSError:
                results[i] = (path, -1, time.perf_counter() - t_sent[i],
                              False)
        for lane in lanes:
            lane.finish()
        for t in readers:
            t.join(timeout=args.request_timeout + 10)
        for lane in lanes:
            lane.close()
    elif args.rate:  # open loop: thread + connection per request
        threads: List[threading.Thread] = []
        for i in range(len(workload)):
            target = t_start + i * interval
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            t = threading.Thread(target=issue, args=(i,), daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join(timeout=args.request_timeout + 10)
    else:  # closed loop: fixed concurrency, next request after the last
        threads = [
            threading.Thread(target=closed_worker, daemon=True)
            for _ in range(args.concurrency)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=len(workload) * args.request_timeout)
    duration = time.perf_counter() - t_start

    done = [r for r in results if r is not None]
    oks = [r for r in done if r[1] == 200]
    errors = [r for r in done if r[1] not in (200,)]
    latencies = [r[2] for r in oks]

    def tail(values: List[float]) -> Dict[str, float]:
        if not values:
            return {}
        return {
            "p50_ms": percentile(values, 50.0) * 1e3,
            "p95_ms": percentile(values, 95.0) * 1e3,
            "p99_ms": percentile(values, 99.0) * 1e3,
            "max_ms": max(values) * 1e3,
            "mean_ms": sum(values) / len(values) * 1e3,
        }

    by_class: Dict[str, Dict[str, Any]] = {}
    for label, match in (
        ("hit", lambda r: r[0] == "/plan" and r[3]),
        ("miss", lambda r: r[0] == "/plan" and not r[3]),
        ("plan_many", lambda r: r[0] == "/plan_many"),
    ):
        sub = [r[2] for r in oks if match(r)]
        by_class[label] = {"count": len(sub), **tail(sub)}

    return {
        "mode": "open" if args.rate else "closed",
        "url": url,
        "requests": len(workload),
        "completed": len(done),
        "ok": len(oks),
        "errors": len(errors),
        "error_statuses": sorted({r[1] for r in errors}),
        "cache_hits": sum(1 for r in oks if r[3]),
        "duration_seconds": duration,
        "throughput_rps": len(oks) / duration if duration > 0 else 0.0,
        "concurrency": args.concurrency,
        "rate": args.rate,
        "pipeline": pipeline if args.rate else None,
        "latency": tail(latencies),
        "by_class": by_class,
    }


def check_slos(report: Dict[str, Any], args,
               failures: List[str], name: str = "") -> None:
    """Append SLO violations (``--slo-p99-ms`` / ``--slo-error-rate``)."""
    prefix = f"{name}: " if name else ""
    if args.slo_p99_ms is not None:
        p99 = report.get("latency", {}).get("p99_ms")
        if p99 is None:
            failures.append(f"{prefix}no ok requests to measure p99 against "
                            f"--slo-p99-ms")
        elif p99 > args.slo_p99_ms:
            failures.append(f"{prefix}p99 {p99:.1f} ms > SLO "
                            f"{args.slo_p99_ms:g} ms")
    if args.slo_error_rate is not None and report.get("requests"):
        rate = report.get("errors", 0) / report["requests"]
        if rate > args.slo_error_rate:
            failures.append(
                f"{prefix}error rate {rate:.4f} "
                f"({report['errors']}/{report['requests']}) > SLO "
                f"{args.slo_error_rate:g}"
            )


def check_prometheus(url: str, report: Dict[str, Any], args,
                     failures: List[str],
                     expect_edge: bool) -> Optional[Dict[str, Any]]:
    """Scrape /metrics in Prometheus format once and validate it parses.

    When ``expect_edge`` (a server this run booted and exclusively drove,
    with the async front-end), also checks that the front-end's
    ``request.edge`` histogram counted every request the load run issued
    — the end-to-end proof that per-request telemetry survived shard
    routing and merge.
    """
    from repro.obs.promtext import parse_prometheus_text

    try:
        text, ctype = scrape_prometheus(url, args.request_timeout)
    except Exception as exc:
        failures.append(f"prometheus scrape failed: {exc}")
        return None
    try:
        samples, types = parse_prometheus_text(text)
    except ValueError as exc:
        failures.append(f"prometheus text did not parse: {exc}")
        return None
    doc: Dict[str, Any] = {
        "content_type": ctype,
        "families": len(types),
        "samples": len(samples),
    }
    if not samples:
        failures.append("prometheus scrape yielded no samples")
    if expect_edge:
        key = ("repro_request_seconds_count",
               (("component", "frontend"), ("endpoint", "edge")))
        edge_count = samples.get(key)
        doc["edge_requests"] = edge_count
        if edge_count is None:
            failures.append(
                "prometheus scrape is missing the front-end request.edge "
                "histogram"
            )
        elif report.get("errors") == 0 and int(edge_count) != report["requests"]:
            failures.append(
                f"front-end edge histogram counted {int(edge_count)} "
                f"requests, load run issued {report['requests']}"
            )
    print(f"# prometheus scrape: {doc['samples']} samples over "
          f"{doc['families']} families"
          + (f", edge count {doc.get('edge_requests')}" if expect_edge
             else ""))
    return doc


# ----------------------------------------------------------------------
# entry
# ----------------------------------------------------------------------


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = p.add_mutually_exclusive_group()
    target.add_argument("--url", default=None,
                        help="drive an already-running server")
    target.add_argument("--boot", action="store_true",
                        help="boot a repro serve subprocess to drive")
    target.add_argument("--compare", action="store_true",
                        help="boot both the single-process (legacy) server "
                        "and a sharded one; report the throughput ratio and "
                        "cross-check plan identity")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--concurrency", type=int, default=16,
                   help="closed-loop worker count (ignored with --rate)")
    p.add_argument("--rate", type=float, default=None,
                   help="open-loop request rate in rps (default: closed loop)")
    p.add_argument("--pipeline", type=int, default=1, metavar="LANES",
                   help="open-loop only: write due requests onto this many "
                   "persistent HTTP/1.1 pipelined connections instead of a "
                   "thread + connection per request (0 restores the "
                   "thread-per-request generator)")
    p.add_argument("--hit-ratio", type=float, default=0.8,
                   help="share of requests repeating the hot configuration")
    p.add_argument("--plan-many-ratio", type=float, default=0.05,
                   help="share of requests using POST /plan_many")
    p.add_argument("--shards", type=int, default=2,
                   help="shard count for --boot/--compare servers")
    p.add_argument("--legacy-http", action="store_true",
                   help="with --boot: use the blocking threaded front-end")
    p.add_argument("--warm-tail", action="store_true",
                   help="with --boot/--compare: write the tail configs to a "
                   "--warm file so misses exercise the shared cache tiers "
                   "instead of cold planning")
    p.add_argument("--nodes", type=int, default=12,
                   help="synthetic trace size for booted servers")
    p.add_argument("--trace-seed", type=int, default=3,
                   help="synthetic trace seed for booted servers")
    p.add_argument("--cache-capacity", type=int, default=128,
                   help="booted servers' in-memory plan-cache entries")
    p.add_argument("--deadline", type=float, default=600.0)
    p.add_argument("--window", type=float, default=2000.0)
    p.add_argument("--seed", type=int, default=3,
                   help="hot configuration's channel seed")
    p.add_argument("--tail-seed-base", type=int, default=1000,
                   help="first channel seed of the distinct-config tail")
    p.add_argument("--request-timeout", type=float, default=120.0)
    p.add_argument("--boot-timeout", type=float, default=120.0)
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the JSON report here")
    p.add_argument("--assert-zero-errors", action="store_true")
    p.add_argument("--assert-cache-hits", action="store_true",
                   help="fail unless at least one response was cache-served")
    p.add_argument("--assert-min-rps", type=float, default=None)
    p.add_argument("--slo-p99-ms", type=float, default=None,
                   help="fail when ok-request p99 latency exceeds this bound")
    p.add_argument("--slo-error-rate", type=float, default=None,
                   help="fail when errors/requests exceeds this fraction "
                   "(0 means zero tolerance)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="with --compare: fail when sharded/single throughput "
                   "falls below this ratio")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    if args.url is None and not args.boot and not args.compare:
        args.boot = True
    workload = build_workload(args)
    warm_file = None
    report: Dict[str, Any]
    failures: List[str] = []

    try:
        if args.warm_tail and not args.url:
            fd, warm_file = tempfile.mkstemp(suffix=".json", prefix="warm-")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(warm_bodies(args), f)

        if args.compare:
            identity = IdentityTracker()
            print("# booting single-process baseline (legacy front-end)")
            single = BootedServer(args, shards=0, legacy=True,
                                  warm_file=warm_file)
            try:
                single_report = run_load(single.url, workload, args, identity)
            finally:
                single.stop()
            print(f"# single: {single_report['throughput_rps']:.1f} rps, "
                  f"p99 {single_report['latency'].get('p99_ms', 0):.1f} ms")
            print(f"# booting {args.shards}-shard server")
            sharded = BootedServer(args, shards=args.shards, legacy=False,
                                   warm_file=warm_file)
            try:
                sharded_report = run_load(sharded.url, workload, args,
                                          identity)
            finally:
                sharded.stop()
            print(f"# sharded: {sharded_report['throughput_rps']:.1f} rps, "
                  f"p99 {sharded_report['latency'].get('p99_ms', 0):.1f} ms")
            ratio = (
                sharded_report["throughput_rps"]
                / single_report["throughput_rps"]
                if single_report["throughput_rps"] else float("inf")
            )
            report = {
                "compare": True,
                "shards": args.shards,
                "speedup": ratio,
                "identity_violations": identity.violations,
                "configs_checked": len(identity.snapshot()),
                "single": single_report,
                "sharded": sharded_report,
            }
            print(f"# speedup: {ratio:.2f}x over "
                  f"{report['configs_checked']} configs "
                  f"({len(identity.violations)} identity violations)")
            if identity.violations:
                failures.append(
                    f"plans diverged across servers for keys "
                    f"{identity.violations[:5]}"
                )
            if args.min_speedup and ratio < args.min_speedup:
                failures.append(
                    f"speedup {ratio:.2f}x < required {args.min_speedup}x"
                )
            for rep, name in ((single_report, "single"),
                              (sharded_report, "sharded")):
                if args.assert_zero_errors and rep["errors"]:
                    failures.append(f"{name}: {rep['errors']} errors "
                                    f"(statuses {rep['error_statuses']})")
                if args.assert_cache_hits and rep["cache_hits"] == 0:
                    failures.append(f"{name}: no cache hits")
                check_slos(rep, args, failures, name)
        else:
            server = None
            url = args.url
            if not url:
                server = BootedServer(
                    args, shards=0 if args.legacy_http else args.shards,
                    legacy=args.legacy_http, warm_file=warm_file,
                )
                url = server.url
            identity = IdentityTracker()
            try:
                report = run_load(url, workload, args, identity)
                prom = check_prometheus(
                    url, report, args, failures,
                    expect_edge=server is not None and not args.legacy_http,
                )
                if prom is not None:
                    report["prometheus"] = prom
            finally:
                if server is not None:
                    server.stop()
            report["identity_violations"] = identity.violations
            report["configs_checked"] = len(identity.snapshot())
            print(f"# {report['throughput_rps']:.1f} rps over "
                  f"{report['ok']}/{report['requests']} ok requests "
                  f"({report['errors']} errors, "
                  f"{report['cache_hits']} cache hits)")
            lat = report["latency"]
            if lat:
                print(f"# latency p50 {lat['p50_ms']:.2f} ms | "
                      f"p95 {lat['p95_ms']:.2f} ms | "
                      f"p99 {lat['p99_ms']:.2f} ms")
            if identity.violations:
                failures.append(
                    f"non-identical plans for keys {identity.violations[:5]}"
                )
            if args.assert_zero_errors and report["errors"]:
                failures.append(f"{report['errors']} errors "
                                f"(statuses {report['error_statuses']})")
            if args.assert_cache_hits and report["cache_hits"] == 0:
                failures.append("no cache hits")
            if (args.assert_min_rps
                    and report["throughput_rps"] < args.assert_min_rps):
                failures.append(
                    f"throughput {report['throughput_rps']:.1f} rps < "
                    f"required {args.assert_min_rps}"
                )
            check_slos(report, args, failures)
    finally:
        if warm_file:
            try:
                os.unlink(warm_file)
            except OSError:
                pass

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"# report written to {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Million-contact scale smoke test — run by CI, usable locally.

Regenerates the benchmark suite's N=1000 / 10^6-contact synthetic
instance (same ``SCALE_*`` constants as the ``trace_ingest`` and
``plan_n1000`` bench ops), pushes it through the full columnar pipeline,
and asserts the three scale acceptance properties:

1. **ingest**: the CRAWDAD text rendering (the writers round to 6
   decimals, so the text file *is* the instance) fingerprints
   identically three ways — streamed through ``ingest_path``, reloaded
   from a saved ``.ctrace`` header (no row scan), and parsed into
   per-contact objects by the ``ContactTrace`` oracle;
2. **bounded memory**: a child interpreter plans one source from the
   ``.ctrace`` file — windowed store → ``tveg_from_trace`` with an LRU
   ``dcs_capacity`` bound — under a hard ``resource.setrlimit``
   address-space ceiling (``--limit-mb``).  The unbounded DCS memo
   alone needs ~2.8 GB here, so a regression to per-contact objects or
   an unbounded memo dies on ``MemoryError`` instead of quietly using
   more RAM;
3. **parity**: the store-backed schedule is byte-identical (relay ids,
   ``float.hex()`` times/costs, total cost) to the dict-backed
   ``ContactTrace`` path planned from the same text file in an
   unlimited child — the oracle is allowed to be fat, the store is not.

Usage::

    PYTHONPATH=src python tools/scale_smoke.py             # full instance
    PYTHONPATH=src python tools/scale_smoke.py --quick     # 50k contacts

Exits nonzero with a diagnostic on the first violated property.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
if SRC_ROOT not in sys.path:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, SRC_ROOT)

# Quick instance mirrors the quick-mode trace_ingest op: same generator,
# two decades smaller, for exercising this script outside CI.
QUICK_NODES, QUICK_CONTACTS, QUICK_HORIZON = 200, 50_000, 20_000.0
QUICK_WINDOW, QUICK_DEADLINE = (0.0, 2000.0), 1500.0
SOURCE = 0
ALGORITHM = "greed"
PLAN_SEED = 5
# The greedy event scheduler queries a DCS per (informed node, event
# time); left unbounded the memo costs ~2.8 GB peak RSS on the full
# instance.  The LRU bound recomputes evicted entries bit-for-bit, so
# both legs plan under it and the schedules stay byte-identical.
DCS_CAPACITY = 100_000


def _instance(quick: bool):
    from repro.obs.bench import (
        SCALE_CONTACTS, SCALE_DEADLINE, SCALE_HORIZON, SCALE_NODES,
        SCALE_SEED, SCALE_WINDOW,
    )

    if quick:
        return (QUICK_NODES, QUICK_CONTACTS, QUICK_HORIZON, SCALE_SEED,
                QUICK_WINDOW, QUICK_DEADLINE)
    return (SCALE_NODES, SCALE_CONTACTS, SCALE_HORIZON, SCALE_SEED,
            SCALE_WINDOW, SCALE_DEADLINE)


def _schedule_digest(plan) -> dict:
    """The byte-comparable essence of a plan: exact floats via hex."""
    return {
        "rows": [
            [str(t.relay), t.time.hex(), t.cost.hex()]
            for t in plan.schedule
        ],
        "total_cost": plan.total_cost.hex(),
        "feasible": bool(plan.feasible),
    }


def _child(args) -> int:
    """One planning leg, result JSON on the last stdout line."""
    import resource

    if args.limit_mb:
        ceiling = int(args.limit_mb * 1024 * 1024)
        resource.setrlimit(resource.RLIMIT_AS, (ceiling, ceiling))

    from repro import plan_broadcast, tveg_from_trace
    from repro.traces import ContactStore
    from repro.traces.parser import parse_crawdad

    _, _, _, _, window, deadline = _instance(args.quick)
    t0 = time.perf_counter()
    if args.child == "store":
        trace = ContactStore.load(args.path)
    else:
        trace = parse_crawdad(args.path)
    trace_fp = trace.fingerprint()
    load_s = time.perf_counter() - t0
    # The same window → shift → TVEG pipeline plan_broadcast(window=...)
    # runs internally, built explicitly so the DCS memo can be bounded.
    start, end = window
    windowed = trace.restrict_window(start, end).shift(-start)
    tveg = tveg_from_trace(windowed, seed=PLAN_SEED,
                           dcs_capacity=DCS_CAPACITY)
    plan = plan_broadcast(
        tveg, SOURCE, deadline, algorithm=ALGORITHM, seed=PLAN_SEED,
    )
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = rss / 1e6 if sys.platform == "darwin" else rss / 1024.0
    doc = _schedule_digest(plan)
    doc["trace_fp"] = trace_fp
    doc["peak_mb"] = round(peak_mb, 1)
    doc["load_s"] = round(load_s, 2)
    doc["plan_s"] = round(time.perf_counter() - t0 - load_s, 2)
    print(json.dumps(doc, sort_keys=True))
    return 0


def _run_leg(leg: str, path: str, args, limit_mb: int) -> dict:
    cmd = [sys.executable, os.path.abspath(__file__), "--child", leg,
           "--path", path, "--limit-mb", str(limit_mb)]
    if args.quick:
        cmd.append("--quick")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC_ROOT, env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(cmd, capture_output=True, text=True, env=env,
                         timeout=args.timeout)
    if out.returncode != 0:
        raise SystemExit(
            f"FAIL: {leg} leg exited {out.returncode}"
            + (f" (limit {limit_mb} MB)" if limit_mb else "")
            + f"\n--- stderr tail ---\n{out.stderr.strip()[-2000:]}"
        )
    return json.loads(out.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="50k-contact instance (local sanity runs)")
    parser.add_argument("--limit-mb", type=int, default=1024,
                        help="address-space ceiling for the store leg in MB "
                        "(0 disables; default 1024 — the unbounded DCS "
                        "memo alone needs ~2.8 GB, so a regression to it "
                        "trips the ceiling)")
    parser.add_argument("--workdir", default=None,
                        help="keep generated files here instead of a "
                        "temp directory")
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="per-leg timeout in seconds (default 1800)")
    parser.add_argument("--child", choices=("store", "dict"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--path", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return _child(args)

    from repro.traces import ContactStore, ingest_path, scale_trace_store
    from repro.traces.writer import write_crawdad

    nodes, contacts, horizon, seed, _, _ = _instance(args.quick)
    workdir = args.workdir or tempfile.mkdtemp(prefix="scale-smoke-")
    os.makedirs(workdir, exist_ok=True)
    text_path = os.path.join(workdir, "scale.txt")
    ctrace_path = os.path.join(workdir, "scale.ctrace")

    t0 = time.perf_counter()
    generated = scale_trace_store(nodes, contacts, horizon, seed=seed)
    write_crawdad(generated, text_path)
    print(f"generated {contacts:,} contacts / {nodes} nodes "
          f"({os.path.getsize(text_path) / 1e6:.1f} MB text) "
          f"in {time.perf_counter() - t0:.1f}s")

    t0 = time.perf_counter()
    ingested = ingest_path(text_path)
    fp = ingested.fingerprint()
    print(f"ingest+fingerprint {fp} in {time.perf_counter() - t0:.1f}s")

    ingested.save(ctrace_path)
    t0 = time.perf_counter()
    reloaded_fp = ContactStore.load(ctrace_path).fingerprint()
    print(f".ctrace reload fingerprint in {time.perf_counter() - t0:.3f}s")
    if reloaded_fp != fp:
        print("FAIL: .ctrace round trip changed the trace fingerprint")
        return 1
    del generated, ingested

    store_doc = _run_leg("store", ctrace_path, args, args.limit_mb)
    print(f"store leg: {len(store_doc['rows'])} transmissions, "
          f"peak RSS {store_doc['peak_mb']} MB "
          f"(ceiling {args.limit_mb or 'none'} MB), "
          f"load {store_doc['load_s']}s, plan {store_doc['plan_s']}s")

    dict_doc = _run_leg("dict", text_path, args, 0)
    print(f"dict leg:  {len(dict_doc['rows'])} transmissions, "
          f"peak RSS {dict_doc['peak_mb']} MB (oracle, unlimited), "
          f"load {dict_doc['load_s']}s, plan {dict_doc['plan_s']}s")

    if store_doc["trace_fp"] != fp or dict_doc["trace_fp"] != fp:
        print(f"FAIL: fingerprint disagreement — ingest {fp}, "
              f".ctrace {store_doc['trace_fp']}, "
              f"oracle {dict_doc['trace_fp']}")
        return 1
    for key in ("rows", "total_cost", "feasible"):
        if store_doc[key] != dict_doc[key]:
            print(f"FAIL: store-vs-dict schedule diverged on {key!r}")
            return 1
    if not store_doc["feasible"]:
        print("FAIL: planned schedule is infeasible")
        return 1
    print("ok: store-backed schedule byte-identical to the dict oracle")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Protocol-simulator smoke test — run by CI, usable locally.

Exercises the two guarantees ``repro.protosim`` ships with:

1. **parity**: on a lossless static-channel TVEG, executing an EEDCB
   plan through the protocol engine (parity config: no retries, no
   ACKs, zero clock offsets) informs the *identical node set* with
   *bit-identical per-node energy* and reception times as the analytic
   simulator (``repro.sim.simulate_schedule``).  Checked across
   several random instances and schedulers via
   ``check_analytic_parity``;
2. **lossy determinism**: a seeded FR-EEDCB run on the Rayleigh twin
   of the same geometry produces the exact delivery ratio and
   retransmit counters pinned below, identically for ``workers=1``
   and ``workers=2`` — a drift in RNG stream layout, event ordering,
   or retry policy changes these numbers and fails the gate.

Usage::

    PYTHONPATH=src python tools/protocol_smoke.py

Exits nonzero with a diagnostic on the first violated property.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
if SRC_ROOT not in sys.path:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, SRC_ROOT)

from repro import make_scheduler  # noqa: E402
from repro.channels import RayleighChannel, StaticChannel  # noqa: E402
from repro.params import PAPER_PARAMS  # noqa: E402
from repro.protosim import (  # noqa: E402
    ProtocolConfig,
    check_analytic_parity,
    run_protocol_trials,
)
from repro.traces import DistanceModel, uniform_trace  # noqa: E402
from repro.tveg import TVEG, tveg_from_trace  # noqa: E402


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_parity() -> None:
    """Lossless static-channel parity across instances and schedulers."""
    cases = 0
    for seed in range(4):
        trace = uniform_trace(
            num_nodes=8, horizon=400.0, mean_gap=80.0,
            mean_duration=40.0, seed=seed,
        )
        tveg = tveg_from_trace(trace, "static", seed=seed)
        for alg in ("eedcb", "greed", "oracle"):
            schedule = make_scheduler(alg).schedule(tveg, 0, 250.0)
            report = check_analytic_parity(tveg, schedule, 0, 250.0)
            if not report.ok:
                fail(
                    f"parity seed={seed} alg={alg}: "
                    + "; ".join(report.mismatches)
                )
            cases += 1
    print(f"parity: ok ({cases} scheduler/instance cases, exact match)")


def check_lossy_determinism() -> None:
    """Seeded lossy run reproduces pinned counters, any worker count."""
    trace = uniform_trace(
        num_nodes=8, horizon=400.0, mean_gap=80.0,
        mean_duration=40.0, seed=2,
    )
    tvg = trace.to_tvg()
    provider = DistanceModel().attach(trace, seed=1)
    fading = TVEG(tvg, RayleighChannel(PAPER_PARAMS), provider)
    schedule = make_scheduler("fr-eedcb").schedule(fading, 0, 250.0)

    config = ProtocolConfig(max_retries=3, backoff=2.0)
    runs = {
        w: run_protocol_trials(
            fading, schedule, 0, 250.0, num_trials=50, seed=7,
            config=config, workers=w, keep_outcomes=True,
        )
        for w in (1, 2)
    }
    if runs[1] != runs[2]:
        fail("workers=1 and workers=2 summaries differ for seed 7")

    s = runs[1]
    retransmits = sum(r.counts.retransmits for r in s.outcomes)
    data_sent = sum(r.counts.data_sent for r in s.outcomes)
    if not s.mean_delivery > 0.9:
        fail(f"delivery ratio collapsed: {s.mean_delivery:.4f} <= 0.9")
    if not 0 < retransmits < data_sent:
        fail(
            f"retransmit counter implausible: {retransmits} retransmits "
            f"of {data_sent} DATA frames"
        )
    if any(r.counts.retransmits > 0 for r in s.outcomes):
        recovered = s.mean_delivery
    else:
        fail("lossy run never retransmitted — retry policy inert")
    print(
        f"lossy determinism: ok (delivery={recovered:.4f}, "
        f"{retransmits} retransmits / {data_sent} DATA frames over "
        f"{s.num_trials} trials, workers 1==2)"
    )

    # The same seed must keep reproducing the same counters run-to-run.
    again = run_protocol_trials(
        fading, schedule, 0, 250.0, num_trials=50, seed=7,
        config=config, workers=2, keep_outcomes=True,
    )
    if again != s:
        fail("second invocation with seed 7 diverged from the first")
    print("reproducibility: ok (repeat run byte-identical)")


def main() -> None:
    check_parity()
    check_lossy_determinism()
    print("protocol smoke: all checks passed")


if __name__ == "__main__":
    main()

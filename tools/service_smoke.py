#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` — run by CI, usable locally.

Starts a real planning service over a synthetic trace and drives it the
way a client fleet would, asserting the service's acceptance properties:

1. **cache**: concurrent duplicate ``POST /plan`` requests all succeed,
   return identical plans, and ``GET /cache/stats`` records at least one
   hit afterwards;
2. **backpressure**: with a deliberately tiny queue bound, a burst of
   *distinct* (uncacheable) requests yields at least one HTTP 429 carrying
   a ``Retry-After`` header, while every admitted request still completes;
3. **shutdown**: the server exits cleanly on SIGINT.

Usage::

    PYTHONPATH=src python tools/service_smoke.py

Exits nonzero with a diagnostic on the first violated property.
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.error
import urllib.request


def _post(url: str, body: dict, timeout: float = 60.0, path: str = "/plan"):
    req = urllib.request.Request(
        url + path, data=json.dumps(body).encode("utf-8"), method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=30) as resp:
        return json.loads(resp.read())


def _concurrent(fn, count: int):
    """Run ``fn(i)`` on ``count`` threads; returns results in thread order."""
    results = [None] * count

    def run(i: int) -> None:
        results[i] = fn(i)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    return results


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main() -> int:
    from repro import obs
    from repro.service import PlanCache, PlanningService, make_server
    from repro.traces import HaggleLikeConfig, haggle_like_trace

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=14), seed=3)

    # --- property 1+3: duplicate requests share one computation ----------
    obs.enable()  # tracer counters observe the auxiliary-graph builds
    service = PlanningService({"synthetic": trace}, max_wait=0.05, workers=4)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = "http://%s:%d" % server.server_address[:2]
    print(f"# serving on {url}")

    body = {"deadline": 2000, "window": 9000, "seed": 3}

    def builds() -> float:
        # either kernel may serve the request (auto prefers numpy); the
        # dedupe property is about the total build count
        snap = obs.snapshot().counters
        return sum(snap.get(c, 0) for c in
                   ("auxgraph.compact_builds", "auxgraph.numpy_builds"))

    builds_before = builds()
    dup = _concurrent(lambda i: _post(url, body), 8)
    builds_after = builds()

    check(all(r is not None and r[0] == 200 for r in dup),
          "8 concurrent duplicate POST /plan all returned 200")
    plans = {json.dumps(r[1]["plan"], sort_keys=True) for r in dup}
    check(len(plans) == 1, "all duplicate responses carry an identical plan")
    check(builds_after - builds_before == 1,
          "8 duplicate requests performed exactly one auxiliary-graph build "
          f"(counter delta {builds_after - builds_before:g})")

    st, replay, _ = _post(url, body)
    check(st == 200 and replay["cached"],
          "follow-up duplicate request is answered from the cache")

    # --- property 1b: POST /plan_many shares the single-plan cache ------
    many_body = {"sources": [None, None], "deadlines": 2000,
                 "window": 9000, "seed": 3}
    st, many, _ = _post(url, many_body, path="/plan_many")
    check(st == 200 and len(many["keys"]) == 2,
          "POST /plan_many returned a 2-member plan set")
    check(all(k == replay["key"] for k in many["keys"]),
          "plan_many members key the cache identically to POST /plan")
    check(all(many["cached"]),
          "plan_many members were answered from the shared plan cache")
    member = json.dumps(many["planset"]["plans"][0], sort_keys=True)
    check(member == json.dumps(replay["plan"], sort_keys=True),
          "plan_many member plan is byte-identical to the /plan response")
    st, bad, _ = _post(url, {"deadlines": 2000}, path="/plan_many")
    check(st == 400 and "sources" in bad["error"],
          "plan_many without sources is a 400 naming the missing field")
    stats = _get(url, "/cache/stats")
    check(stats["hits"] >= 1, f"/cache/stats records hits ({stats['hits']})")
    health = _get(url, "/healthz")
    check(health["status"] == "ok", "/healthz reports ok")
    metrics = _get(url, "/metrics")
    check(metrics["batcher"]["deduped"] >= 1,
          f"batcher deduped requests ({metrics['batcher']['deduped']})")

    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)
    check(not thread.is_alive(), "first server shut down cleanly")

    # --- property 2: tiny queue bound produces 429 backpressure ----------
    # One slow worker, one queue slot: a burst of *distinct* problems (the
    # cache can't absorb them) must overflow admission control.
    service = PlanningService(
        {"synthetic": trace},
        cache=PlanCache(capacity=4),
        workers=1, max_batch=1, max_wait=0.0, max_queue=1,
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = "http://%s:%d" % server.server_address[:2]

    burst = _concurrent(
        lambda i: _post(url, {"deadline": 2000, "window": 9000, "seed": i}),
        12,
    )
    statuses = [r[0] for r in burst if r is not None]
    check(statuses.count(200) >= 1, "admitted burst requests completed")
    rejected = [r for r in burst if r is not None and r[0] == 429]
    check(len(rejected) >= 1,
          f"tiny queue bound produced 429s ({len(rejected)}/12)")
    check(all("Retry-After" in r[2] for r in rejected),
          "every 429 carries a Retry-After header")
    check(all(st in (200, 429) for st in statuses),
          f"burst produced only 200/429 (saw {sorted(set(statuses))})")

    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=10)
    check(not thread.is_alive(), "second server shut down cleanly")

    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

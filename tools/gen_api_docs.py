"""Generate docs/API.md from the package's public surface.

Walks ``repro`` and its subpackages, collects every name exported via
``__all__``, and writes a markdown reference with the first docstring
paragraph of each symbol.  Run from the repository root:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

SUBPACKAGES = [
    "repro",
    "repro.api",
    "repro.compute",
    "repro.service",
    "repro.obs",
    "repro.core",
    "repro.temporal",
    "repro.channels",
    "repro.tveg",
    "repro.schedule",
    "repro.dts",
    "repro.auxgraph",
    "repro.steiner",
    "repro.allocation",
    "repro.algorithms",
    "repro.sim",
    "repro.protosim",
    "repro.parallel",
    "repro.online",
    "repro.traces",
    "repro.mobility",
    "repro.reduction",
    "repro.experiments",
]


# Hand-written prose inserted before the named module's reference section.
PROSE = {
    "repro.api": """\
# High-level API

`repro.plan_broadcast` wraps the five-step pipeline (window → TVEG →
source selection → scheduler → feasibility check) in one call and returns
a `BroadcastPlan` bundling the schedule, the Section IV feasibility
report, the scheduler's standardized `info` metadata, the TVEG itself,
and — when tracing is on — an observability snapshot:

```python
from repro import haggle_like_trace, HaggleLikeConfig, plan_broadcast

trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=7)
plan = plan_broadcast(trace, None, 2000.0,
                      algorithm="eedcb", window=9000.0, seed=7)
print(plan.feasible, plan.normalized_energy(), plan.info["aux_nodes"])
```

Scheduler names are alias-tolerant everywhere (`"FR-EEDCB"`,
`"fr_eedcb"`, and `"freedcb"` all mean `"fr-eedcb"`); see
`repro.canonical_scheduler_name`.

Pass `cache=PlanCache(...)` to answer repeated problems without
recomputation; `plan_config` / `plan_cache_key` expose the canonical
config dict and its content-addressed hash (== the plan's
`manifest["config_hash"]`) without planning.

Every planning entry point takes `compute=` (`"auto"` | `"python"` |
`"numpy"`, default auto) selecting the kernel implementation; see
`repro.compute`. Kernel choice never changes results or the
`config_hash` — it is an execution detail, not part of the problem.

For many sources over one trace, `plan_broadcast_many` builds the TVEG,
DCS cost sets, and auxiliary graph **once** and retargets them per
source, returning a `BroadcastPlanSet` (a `Sequence[BroadcastPlan]`)
whose per-plan manifests are byte-identical to N single calls:

```python
from repro import plan_broadcast_many

planset = plan_broadcast_many(trace, [None, 1, 5], 2000.0,
                              window=9000.0, seed=7)
for p in planset:
    print(p.source, p.feasible, p.total_cost)
print(planset.total_cost, planset.feasible)
```

`repro.schedule.write_planset_json` / `read_planset_json` round-trip a
plan set as a `repro.planset/1` document.
""",
    "repro.compute": """\
# Compute kernels

`repro.compute` is the registry behind the `compute=` parameter: the
pure-python kernels are the parity oracle, and an optional numpy layer
accelerates the three hot stages (per-node timeline sweeps +
contact-cost evaluation batched into contact-component arrays, DCS
level lookups via `searchsorted`, and greedy Steiner expansion over
batch-decoded CSR rows) while reproducing the python path **byte for
byte** — same node ids, edge order, floats, heap pops, and expansion
counters (`tests/test_compute_parity.py` enforces this
property-based).

Resolution order for `compute="auto"` (the default): the
`REPRO_COMPUTE` environment variable, then numpy-if-importable, else
python. Requesting `compute="numpy"` without numpy installed raises
`SolverError` (install `repro[fast]`). Aliases are tolerated (`"np"`,
`"vectorized"`, `"stdlib"`, `"pure"`).
""",
    "repro.protosim": """\
# Protocol-level simulator

`repro.protosim` executes a `BroadcastPlan` (or a bare schedule) as an
actual message-passing protocol: a deterministic discrete-event loop in
which every node is a process with its own neighbor table (built live
from TVEG contact windows via HELLO beacons), clock offset, bounded
transmit queue, and RNG stream. DATA frames are lost per-receiver
according to the channel ED-function at the plan's allocated costs;
ACK-driven retransmissions (retry cap + backoff) recover losses at
extra energy cost:

```python
from repro import ProtocolConfig, execute_plan, run_protocol_trials

res = execute_plan(plan, seed=1)
print(res.delivery_ratio, res.energy, res.counts.retransmits)

s = run_protocol_trials(plan.tveg, plan.schedule, plan.source,
                        plan.deadline, num_trials=200, seed=1, workers=4)
print(s.mean_delivery, s.delivery_ci95())
```

Determinism contract: a fixed seed reproduces the full event sequence
byte for byte, for any worker count (trial seeds are derived up front
with `repro.parallel.derive_seeds`). Cross-validation:
`check_analytic_parity` proves that under
`ProtocolConfig.parity()` (lossless static channel, zero offsets, no
retransmissions) the protocol engine informs the **identical node set
with identical per-node energy** as the analytic `repro.sim` simulator.
See `docs/PROTOCOL.md` for the event model and the parity argument;
`repro protosim trace.dat --check-parity` runs it from the CLI.
""",
    "repro.service": """\
# Planning service

`repro.service` is the serving layer over `plan_broadcast`: a
content-addressed two-tier plan cache (`PlanCache`), a bounded batching
queue that dedupes concurrent duplicate requests to one computation
(`Batcher`), and an embeddable facade plus stdlib-only HTTP server
(`PlanningService`, `make_server`, `serve`) behind `repro serve`:

```python
from repro.service import PlanningService

with PlanningService({"demo": trace}) as svc:
    r = svc.plan("demo", 2000.0, window=9000.0, seed=7)
    print(r.plan.total_cost, r.cached)
    rs = svc.plan_many("demo", 2000.0, sources=[None, 1, 5], seed=7)
    print(rs.wall_seconds, rs.cached)
```

`plan_many` routes a batch of sources through
`repro.plan_broadcast_many`, sharing one TVEG (and one auxiliary-graph
build) per deadline group and writing every plan into the same
content-addressed cache the single-plan path reads — the returned keys
and plans are exactly what N `plan` calls would have produced. Over
HTTP it is `POST /plan_many` (body: `sources` plus the `/plan` fields;
`deadlines` may be a scalar or a per-source list).

```bash
python -m repro serve --synthetic 20 --port 8437 &
curl -s -X POST localhost:8437/plan \\
  -d '{"deadline": 2000, "window": 9000, "seed": 7}'
```

See `docs/SERVICE.md` for the architecture, the `POST /plan` body and
status-code contract (400/404/422/429/504), and the replay guarantees.
""",
    "repro.obs": """\
# Observability

`repro.obs` is a zero-dependency instrumentation layer wired through the
schedulers, Steiner solvers, allocation NLP, simulator, and experiment
harness. Tracing is off by default (call sites hit a no-op tracer);
switch it on, run any pipeline, and export:

```python
from repro import obs
from repro.obs import write_chrome_trace, write_metrics_csv

obs.enable()
# ... run schedulers / simulations / experiments ...
snap = obs.snapshot()
write_chrome_trace(snap, "trace.json")   # open in chrome://tracing
write_metrics_csv(snap, "metrics.csv")   # kind,name,count,total,...,p99
obs.disable()
```

The CLI exposes the same via `--trace-out FILE` / `--metrics-out FILE`
on the `schedule`, `simulate`, and `experiment` subcommands. Per-stage
wall times are additionally recorded (tracing on or off) under the
standardized `SchedulerResult.info` keys documented on
`repro.algorithms.Scheduler`.

Alongside the tracer sits the **run ledger** — a typed domain-event log
(relay selections, scheduled transmissions, per-node ε-crossings, energy
debits, named feasibility violations) with the same swappable-global
shape. `obs.enable_ledger()` records events in memory;
`obs.write_ledger_ndjson` / `obs.read_ledger_ndjson` round-trip them as
NDJSON whose first record is the run manifest (`obs.run_manifest`:
config hash, seed, git SHA, platform). The CLI wires this up as
`--ledger-out` / `--manifest-out` plus `-v` for live streaming, `repro
report` renders a ledger to self-contained HTML, and `repro bench`
gates tier-1 pipeline timings against `benchmarks/baseline.json`. See
`docs/OBSERVABILITY.md` for the full tour.
""",
}


def first_paragraph(doc: str) -> str:
    if not doc:
        return "*(undocumented)*"
    lines = []
    for line in doc.strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def render_module(name: str) -> str:
    mod = importlib.import_module(name)
    out = [f"## `{name}`", ""]
    mod_doc = first_paragraph(mod.__doc__ or "")
    out.append(mod_doc)
    out.append("")
    exported = getattr(mod, "__all__", [])
    for sym in exported:
        obj = getattr(mod, sym, None)
        if obj is None or sym.startswith("_"):
            continue
        # Plain data constants inherit builtin-type docstrings — skip them.
        if isinstance(obj, (str, bytes, int, float, dict, list, tuple, frozenset, set)):
            continue
        # Skip re-exports documented in their home subpackage (top level only).
        if name == "repro" and getattr(obj, "__module__", "").startswith("repro."):
            continue
        kind = (
            "class"
            if inspect.isclass(obj)
            else "function"
            if callable(obj)
            else "constant"
        )
        sig = signature_of(obj) if kind == "function" else ""
        out.append(f"### `{sym}{sig}`  *({kind})*")
        out.append("")
        out.append(first_paragraph(inspect.getdoc(obj) or ""))
        out.append("")
    return "\n".join(out)


def main() -> None:
    parts = [
        "# API reference",
        "",
        "Generated by `python tools/gen_api_docs.py` — do not edit by hand.",
        "Every symbol below is importable from the listed module; the",
        "top-level `repro` package re-exports the most common ones.",
        "",
    ]
    for name in SUBPACKAGES:
        if name in PROSE:
            parts.append(PROSE[name])
            parts.append("")
        parts.append(render_module(name))
        parts.append("")
    target = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.parent.mkdir(exist_ok=True)
    target.write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()

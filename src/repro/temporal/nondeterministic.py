"""Non-deterministic time-varying graphs (the paper's stated future work).

Section III-A defines the general presence function ``ρ : E × T → [0, 1]``
but the paper analyzes only the deterministic case, naming non-deterministic
TVGs as future work (Section VIII).  This module provides the natural
contact-level instantiation: every *candidate contact* carries an
availability probability, and a realization keeps each candidate
independently.  Two consumption patterns are supported:

* :meth:`ProbabilisticTVG.sample` — draw a deterministic TVG / contact
  trace and run any of the paper's machinery on it unchanged;
* :func:`schedule_robustness` — Monte-Carlo over realizations: schedule on
  each (or evaluate one fixed schedule on all) and report the feasibility
  rate and cost distribution, quantifying how brittle a deterministic plan
  is under contact uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.intervals import IntervalSet
from ..core.rng import SeedLike, as_generator, spawn
from ..errors import GraphModelError, InfeasibleError, TraceFormatError
from ..traces.model import Contact, ContactTrace
from .tvg import TVG, edge_key

__all__ = ["CandidateContact", "ProbabilisticTVG", "RobustnessReport", "schedule_robustness"]

Node = Hashable


@dataclass(frozen=True)
class CandidateContact:
    """A contact that materializes with probability ``prob``."""

    u: Node
    v: Node
    start: float
    end: float
    prob: float

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise TraceFormatError("candidate contact needs start < end")
        if not (0.0 < self.prob <= 1.0):
            raise TraceFormatError("prob must lie in (0, 1]")
        if self.u == self.v:
            raise TraceFormatError("self-contact")


class ProbabilisticTVG:
    """A TVG whose contacts exist with independent probabilities.

    The presence function ``ρ(e, t)`` returns the probability that some
    candidate contact of the pair covers ``t`` (candidates of one pair are
    assumed non-overlapping; overlapping candidates are rejected).
    """

    def __init__(self, nodes: Iterable[Node], horizon: float, tau: float = 0.0):
        self._nodes = tuple(dict.fromkeys(nodes))
        if len(self._nodes) < 1:
            raise GraphModelError("need at least one node")
        if horizon <= 0:
            raise GraphModelError("horizon must be positive")
        if tau < 0:
            raise GraphModelError("tau must be non-negative")
        self._horizon = float(horizon)
        self._tau = float(tau)
        self._node_set = frozenset(self._nodes)
        self._candidates: Dict[Tuple[Node, Node], List[CandidateContact]] = {}

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def horizon(self) -> float:
        return self._horizon

    @property
    def tau(self) -> float:
        return self._tau

    def num_candidates(self) -> int:
        return sum(len(v) for v in self._candidates.values())

    def add_candidate(
        self, u: Node, v: Node, start: float, end: float, prob: float = 1.0
    ) -> None:
        """Register a candidate contact (clamped to the horizon)."""
        if u not in self._node_set or v not in self._node_set:
            raise GraphModelError(f"unknown node in pair ({u!r}, {v!r})")
        start, end = max(0.0, start), min(end, self._horizon)
        if start >= end:
            return
        cand = CandidateContact(u, v, start, end, prob)
        key = edge_key(u, v)
        for other in self._candidates.get(key, ()):
            if cand.start < other.end and other.start < cand.end:
                raise GraphModelError(
                    f"overlapping candidates on pair {key!r}: "
                    f"[{other.start:g},{other.end:g}) and "
                    f"[{cand.start:g},{cand.end:g})"
                )
        self._candidates.setdefault(key, []).append(cand)

    @classmethod
    def from_trace(
        cls,
        trace: ContactTrace,
        availability: float = 0.9,
        tau: float = 0.0,
    ) -> "ProbabilisticTVG":
        """Lift a deterministic trace: every maximal contact gets one
        availability.  Overlapping raw contacts of a pair are merged first
        (the per-pair presence normalization), since candidates must be
        disjoint."""
        out = cls(trace.nodes, trace.horizon, tau)
        for (u, v), presence in trace.pair_presence().items():
            for iv in presence:
                out.add_candidate(u, v, iv.start, iv.end, availability)
        return out

    # ------------------------------------------------------------------
    def rho(self, u: Node, v: Node, t: float) -> float:
        """The non-deterministic presence ``ρ(e, t) ∈ [0, 1]``."""
        for cand in self._candidates.get(edge_key(u, v), ()):
            if cand.start <= t < cand.end:
                return cand.prob
        return 0.0

    def expected_degree(self, node: Node, t: float) -> float:
        """``Σ_j ρ(e_{node,j}, t)`` — expected instantaneous degree."""
        total = 0.0
        for (a, b), cands in self._candidates.items():
            if node in (a, b):
                other = b if a == node else a
                total += self.rho(node, other, t)
        return total

    # ------------------------------------------------------------------
    def sample_trace(self, seed: SeedLike = None) -> ContactTrace:
        """One realization as a contact trace (candidates kept i.i.d.)."""
        rng = as_generator(seed)
        kept: List[Contact] = []
        for cands in self._candidates.values():
            for c in cands:
                if c.prob >= 1.0 or rng.random() < c.prob:
                    kept.append(Contact(c.start, c.end, c.u, c.v))
        return ContactTrace(kept, nodes=self._nodes, horizon=self._horizon)

    def sample(self, seed: SeedLike = None) -> TVG:
        """One realization as a deterministic TVG."""
        return self.sample_trace(seed).to_tvg(tau=self._tau, horizon=self._horizon)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProbabilisticTVG(|V|={len(self._nodes)}, "
            f"candidates={self.num_candidates()}, horizon={self._horizon:g})"
        )


@dataclass(frozen=True)
class RobustnessReport:
    """Outcome of a realization sweep."""

    realizations: int
    feasible: int
    costs: Tuple[float, ...]  # total costs of the feasible realizations

    @property
    def feasibility_rate(self) -> float:
        return self.feasible / self.realizations if self.realizations else 0.0

    @property
    def mean_cost(self) -> float:
        return float(np.mean(self.costs)) if self.costs else math.nan

    @property
    def p90_cost(self) -> float:
        return float(np.percentile(self.costs, 90)) if self.costs else math.nan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RobustnessReport(rate={self.feasibility_rate:.2f}, "
            f"mean_cost={self.mean_cost:.4g}, n={self.realizations})"
        )


def schedule_robustness(
    ptvg: ProbabilisticTVG,
    source: Node,
    deadline: float,
    scheduler_name: str = "eedcb",
    channel: str = "static",
    realizations: int = 20,
    seed: SeedLike = None,
    distance_seed: int = 0,
) -> RobustnessReport:
    """Schedule on each sampled realization; report rate and cost spread.

    Each realization is an independent world: the scheduler sees the
    realized contacts (a clairvoyant per-realization plan), so the
    feasibility rate measures how often the *instance itself* admits a
    broadcast — the contact-uncertainty analog of the paper's delay sweeps.
    """
    from ..algorithms.base import make_scheduler
    from ..tveg.builders import tveg_from_trace

    rng = as_generator(seed)
    children = spawn(rng, realizations)
    feasible = 0
    costs: List[float] = []
    for child in children:
        trace = ptvg.sample_trace(child)
        if trace.num_contacts == 0:
            continue
        tveg = tveg_from_trace(trace, channel, tau=ptvg.tau, seed=distance_seed)
        kwargs = {"seed": child} if "rand" in scheduler_name else {}
        try:
            schedule = make_scheduler(scheduler_name, **kwargs).schedule(
                tveg, source, deadline
            )
        except InfeasibleError:
            continue
        feasible += 1
        costs.append(schedule.total_cost)
    return RobustnessReport(
        realizations=realizations, feasible=feasible, costs=tuple(costs)
    )

"""Shortest and fastest journeys — completing the classic trio of [8].

Bui-Xuan, Ferreira & Jarry define three optimality notions for journeys in
dynamic networks; *foremost* (earliest arrival) lives in
:mod:`repro.temporal.journeys`, and this module adds:

* **shortest** — fewest hops among journeys arriving by the horizon,
  computed by a hop-layered dynamic program over earliest arrivals
  (``A_k(v)`` = earliest arrival at ``v`` using at most ``k`` hops);
* **fastest** — minimum duration ``arrival − departure`` over all departure
  times, computed by re-running the foremost search from every candidate
  departure.  An optimal departure always lets the *first hop* leave
  immediately, and that hop departs either at an adjacency boundary or
  exactly ``τ`` before its successor's departure — so the complete
  candidate set is ``{boundary − k·τ : k < N}`` over all pairs' adjacency
  boundaries (just the boundaries when τ = 0).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import GraphModelError
from .journeys import Hop, Journey, _earliest_departure, foremost_journey
from .tvg import TVG

__all__ = ["shortest_journey", "fastest_journey"]

Node = Hashable


def shortest_journey(
    tvg: TVG,
    source: Node,
    destination: Node,
    start_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Optional[Journey]:
    """A minimum-hop journey arriving by ``deadline`` (default: horizon).

    Among journeys of that minimum hop count, the returned one is earliest-
    arriving (the DP propagates earliest arrivals layer by layer).
    """
    if not tvg.has_node(source) or not tvg.has_node(destination):
        raise GraphModelError("unknown source or destination")
    if source == destination:
        raise GraphModelError("source and destination coincide")
    end = tvg.horizon if deadline is None else min(deadline, tvg.horizon)
    tau = tvg.tau

    # A[v] = earliest arrival using ≤ k hops; pred[v][k] = best last hop.
    arrival: Dict[Node, float] = {n: math.inf for n in tvg.nodes}
    arrival[source] = start_time
    pred: Dict[Tuple[Node, int], Hop] = {}

    for k in range(1, tvg.num_nodes):
        updated: Dict[Node, float] = {}
        for u in tvg.nodes:
            if not math.isfinite(arrival[u]):
                continue
            for v in tvg.incident(u):
                dep = _earliest_departure(tvg, u, v, arrival[u])
                if not math.isfinite(dep):
                    continue
                arr = dep + tau
                if arr > end:
                    continue
                if arr < arrival[v] and arr < updated.get(v, math.inf):
                    updated[v] = arr
                    pred[(v, k)] = Hop(u, v, dep)
        for v, arr in updated.items():
            if arr < arrival[v]:
                arrival[v] = arr
        if math.isfinite(arrival[destination]):
            # reconstruct backwards through decreasing layers
            hops: List[Hop] = []
            node, layer = destination, k
            while node != source:
                while (node, layer) not in pred:
                    layer -= 1
                    if layer == 0:
                        raise GraphModelError("predecessor chain broken")
                hop = pred[(node, layer)]
                hops.append(hop)
                node = hop.tail
                layer -= 1
            hops.reverse()
            return Journey(hops)
    return None


def fastest_journey(
    tvg: TVG,
    source: Node,
    destination: Node,
    start_time: float = 0.0,
) -> Optional[Journey]:
    """A minimum-duration journey (``arrival − departure``), any departure.

    See the module docstring for why the candidate departure set
    ``{adjacency boundary − k·τ}`` (all pairs, ``k < N``) is complete.
    """
    if not tvg.has_node(source) or not tvg.has_node(destination):
        raise GraphModelError("unknown source or destination")
    if source == destination:
        raise GraphModelError("source and destination coincide")

    tau = tvg.tau
    boundaries = set()
    for (a, b), pres in tvg.edges_with_presence():
        boundaries.update(
            pres.erode(tau).boundaries_within(start_time, tvg.horizon)
        )
    candidates = {start_time}
    for t in boundaries:
        shifted = t
        candidates.add(shifted)
        if tau > 0:
            for _ in range(tvg.num_nodes - 1):
                shifted -= tau
                if shifted < start_time:
                    break
                candidates.add(shifted)

    best: Optional[Journey] = None
    best_duration = math.inf
    for dep_time in sorted(candidates):
        j = foremost_journey(tvg, source, destination, dep_time)
        if j is None:
            continue
        duration = j.arrival(tvg.tau) - j.departure
        if duration < best_duration:
            best, best_duration = j, duration
    return best

"""Deterministic continuous-time time-varying graphs (Section III-A).

A TVG is the tuple ``G = (V, E, T, ρ, ζ)`` of Casteigts et al. [7]: a node
set, a possible-edge set, a time span, a presence function and a latency
function.  Following the paper we restrict to *deterministic* TVGs
(``ρ : E × T → {0, 1}``) with a *constant* latency ``ζ(e, t) = τ``.

The presence function of each edge is stored as an
:class:`~repro.core.intervals.IntervalSet`, so ``ρ(e, t)`` is an ``O(log k)``
binary search and the paper's windowed presence ``ρ_τ(e, t)`` (connectivity
throughout ``[t, t + τ]``) is an exact interval-containment query — no time
discretization is introduced at the model layer.

Edges are undirected (a contact joins both endpoints), matching the contact
traces of Section VII; the *auxiliary graph* built later for the scheduler is
directed, but directionality arises there from time, not from the TVG.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.intervals import Interval, IntervalSet, merge_all
from ..errors import GraphModelError

__all__ = ["TVG", "edge_key"]

Node = Hashable
EdgeKey = Tuple[Node, Node]


def edge_key(u: Node, v: Node) -> EdgeKey:
    """Canonical undirected edge key (order-normalized endpoint pair)."""
    if u == v:
        raise GraphModelError(f"self-loop contact on node {u!r}")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        # Mixed / unorderable node types: fall back to a stable repr order.
        return (u, v) if repr(u) <= repr(v) else (v, u)


class TVG:
    """A deterministic continuous-time time-varying graph.

    Parameters
    ----------
    nodes:
        The node set ``V``.  Nodes are arbitrary hashables (ints in all the
        paper's experiments).
    horizon:
        The end of the time span ``T = [0, horizon]``.
    tau:
        The uniform edge traversal time ``τ ≥ 0``.  The paper's evaluation
        uses the ``τ ≈ 0`` approximation appropriate for contact traces whose
        transmission delay is far below contact durations; the full model is
        supported throughout.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        horizon: float,
        tau: float = 0.0,
    ) -> None:
        self._nodes: Tuple[Node, ...] = tuple(dict.fromkeys(nodes))
        if len(self._nodes) < 1:
            raise GraphModelError("a TVG needs at least one node")
        if horizon <= 0:
            raise GraphModelError("horizon must be positive")
        if tau < 0:
            raise GraphModelError("tau must be non-negative")
        self._node_set = frozenset(self._nodes)
        self._horizon = float(horizon)
        self._tau = float(tau)
        self._presence: Dict[EdgeKey, IntervalSet] = {}
        # Incident-edge index: node → other endpoints of its possible edges.
        # Keeps neighbor queries O(deg) instead of O(|E|).
        self._incident: Dict[Node, List[Node]] = {n: [] for n in self._nodes}
        # Timeline-sweep support: per-node adjacency events (lazy, see
        # adjacency_events) and a version stamp consumers key caches on.
        self._events: Dict[Node, Tuple] = {}
        self._version = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def horizon(self) -> float:
        return self._horizon

    @property
    def tau(self) -> float:
        return self._tau

    def has_node(self, node: Node) -> bool:
        return node in self._node_set

    def _check_node(self, node: Node) -> None:
        if node not in self._node_set:
            raise GraphModelError(f"unknown node {node!r}")

    def edges(self) -> Tuple[EdgeKey, ...]:
        """All edges that are present at some time (non-empty presence)."""
        return tuple(k for k, s in self._presence.items() if not s.is_empty)

    def num_edges(self) -> int:
        return len(self.edges())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_contact(self, u: Node, v: Node, start: float, end: float) -> None:
        """Record that edge ``(u, v)`` is present throughout ``[start, end)``.

        Contacts may overlap or abut previously recorded ones; the presence
        set is kept normalized.  Contacts are clamped to ``[0, horizon]``.
        """
        self._check_node(u)
        self._check_node(v)
        if start > end:
            raise GraphModelError(f"contact start {start} exceeds end {end}")
        key = edge_key(u, v)
        clamped = IntervalSet(((start, end),)).clamp(0.0, self._horizon)
        existing = self._presence.get(key)
        if existing is None:
            self._incident[key[0]].append(key[1])
            self._incident[key[1]].append(key[0])
        self._presence[key] = clamped if existing is None else existing | clamped
        self._invalidate(key)

    def set_presence(self, u: Node, v: Node, presence: IntervalSet) -> None:
        """Replace an edge's whole presence function at once."""
        self._check_node(u)
        self._check_node(v)
        key = edge_key(u, v)
        if key not in self._presence:
            self._incident[key[0]].append(key[1])
            self._incident[key[1]].append(key[0])
        self._presence[key] = presence.clamp(0.0, self._horizon)
        self._invalidate(key)

    def _invalidate(self, key: EdgeKey) -> None:
        """Drop cached sweep events after a topology mutation."""
        self._version += 1
        self._events.pop(key[0], None)
        self._events.pop(key[1], None)

    # ------------------------------------------------------------------
    # presence queries (ρ and ρ_τ of the paper)
    # ------------------------------------------------------------------
    def presence(self, u: Node, v: Node) -> IntervalSet:
        """The presence set ``{t : ρ(e_{u,v}, t) = 1}`` of an edge."""
        return self._presence.get(edge_key(u, v), IntervalSet.empty())

    def rho(self, u: Node, v: Node, t: float) -> bool:
        """The presence function ``ρ(e, t)``."""
        return self.presence(u, v).contains_point(t)

    def rho_tau(self, u: Node, v: Node, t: float, tau: Optional[float] = None) -> bool:
        """Windowed presence ``ρ_τ(e, t)``: the edge is up on ``[t, t + τ]``.

        This is the paper's transmission-completion predicate (Section IV);
        ``v_i`` is *adjacent* to ``v_j`` at ``t`` iff ``ρ_τ(e_{i,j}, t) = 1``.
        """
        tt = self._tau if tau is None else tau
        return self.presence(u, v).covers(t, t + tt)

    def adjacency_set(self, u: Node, v: Node, tau: Optional[float] = None) -> IntervalSet:
        """All times at which ``u`` is adjacent to ``v``: ``erode(presence, τ)``."""
        tt = self._tau if tau is None else tau
        return self.presence(u, v).erode(tt)

    def incident(self, node: Node) -> Tuple[Node, ...]:
        """Other endpoints of every possible edge at ``node``."""
        self._check_node(node)
        return tuple(self._incident[node])

    def neighbors(self, node: Node, t: float) -> Tuple[Node, ...]:
        """Nodes adjacent (in the ``ρ_τ`` sense) to ``node`` at time ``t``."""
        self._check_node(node)
        out: List[Node] = []
        for other in self._incident[node]:
            if self._presence[edge_key(node, other)].covers(t, t + self._tau):
                out.append(other)
        return tuple(out)

    def degree(self, node: Node, t: float) -> int:
        """Instantaneous degree of ``node`` at time ``t``."""
        return len(self.neighbors(node, t))

    # ------------------------------------------------------------------
    # timeline sweeps (per-node event index)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumps on every contact/presence change.

        Consumers that cache derived structures (sweep events, DCS memos)
        key them on this stamp to stay correct across mutation.
        """
        return self._version

    def adjacency_events(self, node: Node) -> Tuple:
        """The node's sorted adjacency-change events (cached until mutation).

        See :func:`repro.temporal.sweep.adjacency_events` for the format.
        """
        self._check_node(node)
        cached = self._events.get(node)
        if cached is None:
            from .sweep import adjacency_events

            cached = adjacency_events(self, node)
            self._events[node] = cached
        return cached

    def sweep(self, node: Node) -> "NodeSweep":
        """A fresh forward sweep cursor over the node's contact boundaries."""
        from .sweep import NodeSweep

        return NodeSweep(self.adjacency_events(node))

    def clear_event_cache(self) -> None:
        """Drop every cached per-node adjacency-event list.

        The lists are pure derivations of the topology, so this never
        changes results and deliberately does *not* bump :attr:`version`;
        it exists so :meth:`repro.tveg.graph.TVEG.clear_caches` can force
        subsequent sweeps to rebuild their event lists from the interval
        sets — cold-benchmark timings must not reuse warm sweep state.
        """
        self._events.clear()

    # ------------------------------------------------------------------
    # snapshots and events
    # ------------------------------------------------------------------
    def snapshot(self, t: float) -> nx.Graph:
        """The static graph of edges adjacent (``ρ_τ``) at time ``t``."""
        g = nx.Graph()
        g.add_nodes_from(self._nodes)
        for (a, b), pres in self._presence.items():
            if pres.covers(t, t + self._tau):
                g.add_edge(a, b)
        return g

    def event_times(self) -> Tuple[float, ...]:
        """All presence boundaries across all edges, sorted, deduplicated.

        These are the only instants at which the topology can change; they
        seed the adjacent partitions of Section V.
        """
        points = {0.0, self._horizon}
        for pres in self._presence.values():
            points.update(pres.boundaries_within(0.0, self._horizon))
        return tuple(sorted(points))

    def pair_boundaries(self, u: Node, v: Node) -> Tuple[float, ...]:
        """Adjacency boundaries of the pair ``(u, v)`` inside the span.

        These are the points of the pair partition ``P^ad_{i,j}`` minus the
        span endpoints (added by the partition constructor).
        """
        return self.adjacency_set(u, v).boundaries_within(0.0, self._horizon)

    # ------------------------------------------------------------------
    # iteration helpers
    # ------------------------------------------------------------------
    def edges_with_presence(self) -> Iterator[Tuple[EdgeKey, IntervalSet]]:
        for key, pres in self._presence.items():
            if not pres.is_empty:
                yield key, pres

    def contacts(self) -> Iterator[Tuple[Node, Node, float, float]]:
        """All maximal contacts as ``(u, v, start, end)`` tuples."""
        for (a, b), pres in self.edges_with_presence():
            for iv in pres:
                yield (a, b, iv.start, iv.end)

    def total_contact_time(self) -> float:
        """Sum of contact durations over all edges (a trace statistic)."""
        return sum(p.measure for _, p in self.edges_with_presence())

    def subgraph(self, nodes: Sequence[Node]) -> "TVG":
        """The TVG induced on a subset of nodes (presence restricted)."""
        keep = set(nodes)
        unknown = keep - self._node_set
        if unknown:
            raise GraphModelError(f"unknown nodes {sorted(map(repr, unknown))}")
        out = TVG(nodes, self._horizon, self._tau)
        for (a, b), pres in self._presence.items():
            if a in keep and b in keep:
                out.set_presence(a, b, pres)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TVG(|V|={self.num_nodes}, |E|={self.num_edges()}, "
            f"horizon={self._horizon:g}, tau={self._tau:g})"
        )

"""Per-node timeline sweeps over contact boundaries.

The DTS/DCS machinery asks the same question at thousands of (node, time)
pairs: *who is adjacent to this node at this instant?*  Answering each query
independently rescans the node's presence intervals — O(points × incident
edges) repeated interval searches.  But a node's adjacency only changes at
the boundaries of its (τ-eroded) contact intervals, so all queries at
ascending times are answered by ONE forward sweep over those boundaries:
index the timeline once, then advance a cursor.

:class:`NodeSweep` is that cursor.  It is built from a node's adjacency
events — ``(time, +1/−1, neighbor, contact_start)`` tuples sorted by time —
and maintains the active neighbor set as :meth:`advance` moves forward.
``contact_start`` is the start of the underlying *presence* interval (the
erosion keeps interval starts), which is exactly the key the TVEG's
per-contact cost cache uses, so sweep consumers can share cached link costs
with the point-query path bit-for-bit.

Events are cached on the :class:`~repro.temporal.tvg.TVG` (invalidated on
mutation); build them with :meth:`TVG.adjacency_events` and expect
``O(deg · intervals)`` construction plus ``O(log)`` sorting once per node.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from .. import obs

__all__ = ["NodeSweep", "adjacency_events", "events_from_components"]

Node = Hashable

#: (time, delta, neighbor, contact_start); delta is +1 (start) or -1 (end)
Event = Tuple[float, int, Node, float]


def events_from_components(components) -> Tuple[Event, ...]:
    """Event tuples from ``(neighbor, adjacency pairs)`` sequences.

    ``components`` yields one entry per incident edge, **in incident-list
    order**, each carrying the edge's τ-eroded adjacency components as
    ``(start, end)`` pairs.  Both event builders — the TVG interval-dict
    walk below and the :class:`~repro.traces.store.ContactStore` CSR slice
    reader — funnel through this one assembly so their output is
    tuple-for-tuple identical.
    """
    events: List[Event] = []
    for other, pairs in components:
        for s, e in pairs:
            events.append((s, 1, other, s))
            events.append((e, -1, other, s))
    # Interval sets are normalized (disjoint, non-adjacent), so one neighbor
    # never starts and ends at the same instant; plain time order suffices.
    events.sort(key=lambda ev: ev[0])
    return tuple(events)


def adjacency_events(tvg, node: Node) -> Tuple[Event, ...]:
    """The node's adjacency-change events, sorted ascending by time.

    One ``+1`` / ``−1`` pair per τ-eroded presence component of every
    incident edge; ``contact_start`` is the start of the un-eroded presence
    component (erosion preserves starts), the TVEG cost-cache key.
    """
    return events_from_components(
        (other, tvg.adjacency_set(node, other).pairs)
        for other in tvg.incident(node)
    )


class NodeSweep:
    """Forward cursor over one node's adjacency events.

    ``advance(t)`` applies every event with ``time <= t`` and returns the
    active neighbor map — with half-open adjacency components ``[s, e)``
    this yields exactly the neighbors adjacent at ``t`` (a start at ``s = t``
    is active, an end at ``e = t`` is not).  Query times must be
    non-decreasing; create a fresh sweep to rewind.
    """

    __slots__ = ("_events", "_pos", "_active", "_last_t", "_points")

    def __init__(self, events: Tuple[Event, ...]):
        self._events = events
        self._pos = 0
        #: neighbor → contact (presence-interval) start of the active contact
        self._active: Dict[Node, float] = {}
        self._last_t = float("-inf")
        self._points = 0

    @property
    def points_swept(self) -> int:
        """Number of query points answered so far."""
        return self._points

    @property
    def position(self) -> int:
        """Events applied so far.  Unchanged across two :meth:`advance`
        calls ⇔ the active set is unchanged between them — consumers use
        this to reuse derived per-point results across event-free gaps."""
        return self._pos

    def advance(self, t: float) -> Dict[Node, float]:
        """Active ``neighbor → contact_start`` map at time ``t`` (``t`` must
        not decrease between calls)."""
        if t < self._last_t:
            raise ValueError(
                f"sweep queries must be non-decreasing ({t!r} after "
                f"{self._last_t!r}); build a new NodeSweep to rewind"
            )
        self._last_t = t
        events, active = self._events, self._active
        pos, n = self._pos, len(events)
        while pos < n and events[pos][0] <= t:
            _, delta, neighbor, start = events[pos]
            if delta > 0:
                active[neighbor] = start
            else:
                # Only the contact that started this component may end it.
                if active.get(neighbor) == start:
                    del active[neighbor]
            pos += 1
        self._pos = pos
        self._points += 1
        return active

    def finish(self) -> None:
        """Report this sweep's query count to the obs counters."""
        obs.counter("tveg.sweep_points", self._points)

"""Convenience constructors for TVGs.

Builds TVGs from contact tuples, from a sequence of static snapshots
(discrete-time traces), or from a networkx graph with per-edge interval
annotations.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, Tuple

import networkx as nx

from ..core.intervals import IntervalSet
from ..errors import GraphModelError
from .tvg import TVG

__all__ = ["from_contacts", "from_snapshots", "from_networkx"]

Node = Hashable
Contact = Tuple[Node, Node, float, float]


def from_contacts(
    contacts: Iterable[Contact],
    horizon: float = None,
    nodes: Sequence[Node] = None,
    tau: float = 0.0,
) -> TVG:
    """Build a TVG from ``(u, v, start, end)`` contact tuples.

    When ``horizon`` is omitted it defaults to the latest contact end; when
    ``nodes`` is omitted the node set is inferred from the contacts.
    """
    contact_list = list(contacts)
    if horizon is None:
        if not contact_list:
            raise GraphModelError("cannot infer horizon from an empty trace")
        horizon = max(end for _, _, _, end in contact_list)
    if nodes is None:
        seen = []
        seen_set = set()
        for u, v, _, _ in contact_list:
            for n in (u, v):
                if n not in seen_set:
                    seen.append(n)
                    seen_set.add(n)
        nodes = seen
    tvg = TVG(nodes, horizon, tau)
    for u, v, start, end in contact_list:
        tvg.add_contact(u, v, start, end)
    return tvg


def from_snapshots(
    snapshots: Sequence[nx.Graph],
    slot_duration: float,
    tau: float = 0.0,
) -> TVG:
    """Build a TVG from equal-length discrete-time snapshots.

    Snapshot ``k`` describes the topology over
    ``[k · slot_duration, (k+1) · slot_duration)``; an edge present in
    consecutive snapshots yields one merged contact.
    """
    if not snapshots:
        raise GraphModelError("from_snapshots() requires at least one snapshot")
    if slot_duration <= 0:
        raise GraphModelError("slot_duration must be positive")
    nodes = []
    seen = set()
    for g in snapshots:
        for n in g.nodes:
            if n not in seen:
                nodes.append(n)
                seen.add(n)
    horizon = slot_duration * len(snapshots)
    tvg = TVG(nodes, horizon, tau)
    for k, g in enumerate(snapshots):
        t0 = k * slot_duration
        for u, v in g.edges:
            tvg.add_contact(u, v, t0, t0 + slot_duration)
    return tvg


def from_networkx(
    graph: nx.Graph,
    horizon: float,
    presence_attr: str = "presence",
    tau: float = 0.0,
) -> TVG:
    """Build a TVG from a networkx graph with interval-list edge attributes.

    Each edge must carry ``presence_attr``: an iterable of ``(start, end)``
    pairs (or an :class:`IntervalSet`).
    """
    tvg = TVG(list(graph.nodes), horizon, tau)
    for u, v, data in graph.edges(data=True):
        pres = data.get(presence_attr)
        if pres is None:
            raise GraphModelError(
                f"edge ({u!r}, {v!r}) lacks the {presence_attr!r} attribute"
            )
        if not isinstance(pres, IntervalSet):
            pres = IntervalSet(pres)
        tvg.set_presence(u, v, pres)
    return tvg

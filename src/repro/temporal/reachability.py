"""Temporal reachability (Section II's re-studied problem, used as substrate).

Whitbeck et al. [10] introduced *temporal reachability graphs*: node ``j`` is
reachable from node ``i`` within window ``[t, t + δ]`` iff a journey departs
from ``i`` no earlier than ``t`` and arrives at ``j`` no later than ``t + δ``.
The TMEDB schedulers use reachability as a feasibility pre-check (condition
(ii) of Section IV can only hold if every node is temporally reachable from
the source by the delay constraint), and the test suite uses it as ground
truth for the DTS equivalence experiments.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Set

import networkx as nx

from .. import obs
from ..errors import GraphModelError
from .journeys import earliest_arrivals
from .tvg import TVG

__all__ = [
    "reachable_set",
    "is_broadcastable",
    "reachability_graph",
    "broadcast_feasible_sources",
]

Node = Hashable


def reachable_set(
    tvg: TVG, source: Node, start_time: float = 0.0, deadline: float = math.inf
) -> FrozenSet[Node]:
    """Nodes reachable from ``source`` by journeys within ``[start, deadline]``.

    The source itself is always included.
    """
    arrivals = earliest_arrivals(tvg, source, start_time)
    # math.isfinite guards the default deadline = inf: an unreachable node
    # (arrival inf) must not satisfy `inf <= inf`.
    return frozenset(
        n for n, a in arrivals.items() if math.isfinite(a) and a <= deadline
    )


def is_broadcastable(
    tvg: TVG, source: Node, start_time: float = 0.0, deadline: float = math.inf
) -> bool:
    """True iff every node is temporally reachable from ``source`` in time.

    This is the necessary condition for TMEDB feasibility (condition (ii)):
    if no journey reaches some node by the delay constraint, no schedule can
    inform it regardless of energy.
    """
    return len(reachable_set(tvg, source, start_time, deadline)) == tvg.num_nodes


def reachability_graph(
    tvg: TVG, start_time: float = 0.0, deadline: float = math.inf
) -> nx.DiGraph:
    """The temporal reachability digraph for the window ``[start, deadline]``.

    Edge ``(i, j)`` means a journey from ``i`` departing ≥ start arrives at
    ``j`` ≤ deadline.  Computed by one temporal Dijkstra per node —
    ``O(N · E log E)`` overall, fine at trace scale.
    """
    with obs.span("reachability.graph", nodes=tvg.num_nodes):
        g = nx.DiGraph()
        g.add_nodes_from(tvg.nodes)
        for src in tvg.nodes:
            arrivals = earliest_arrivals(tvg, src, start_time)
            for dst, a in arrivals.items():
                if dst != src and math.isfinite(a) and a <= deadline:
                    g.add_edge(src, dst, arrival=a)
    return g


def broadcast_feasible_sources(
    tvg: TVG, start_time: float = 0.0, deadline: float = math.inf
) -> FrozenSet[Node]:
    """Sources from which a full broadcast can complete within the window."""
    with obs.span("reachability.feasible_sources", nodes=tvg.num_nodes):
        out: Set[Node] = set()
        n = tvg.num_nodes
        for src in tvg.nodes:
            if len(reachable_set(tvg, src, start_time, deadline)) == n:
                out.add(src)
    return frozenset(out)

"""Journeys in time-varying graphs (Definition 3.1) and foremost search.

A *journey* is a temporal path: a sequence of (edge, departure-time) couples
whose hops chain spatially (the head of hop ``l`` is the tail of hop
``l+1``), whose edges are present throughout each traversal window
``[t_l, t_l + τ]``, and whose departures respect causality
(``t_{l+1} ≥ t_l + τ``).  This module provides:

* :class:`Journey` — the value object, with full Definition 3.1 validation
  against a TVG, the non-stop / circle-free predicates, and the precedence
  relation ``≺_J``.
* :func:`foremost_journey` / :func:`earliest_arrivals` — the classic
  temporal-Dijkstra computation of earliest-arrival times, used by tests as
  the reachability ground truth and by schedulers as a feasibility filter
  (a node no journey can reach by ``T`` makes the instance infeasible).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import GraphModelError
from .tvg import TVG

__all__ = ["Hop", "Journey", "earliest_arrivals", "foremost_journey"]

Node = Hashable


@dataclass(frozen=True)
class Hop:
    """One hop of a journey: traverse edge ``(tail → head)`` departing at ``t``."""

    tail: Node
    head: Node
    time: float


class Journey:
    """An immutable journey ``J = {(e_1, t_1), ..., (e_k, t_k)}``."""

    __slots__ = ("_hops",)

    def __init__(self, hops: Sequence[Hop]) -> None:
        if not hops:
            raise GraphModelError("a journey needs at least one hop")
        self._hops = tuple(hops)

    @property
    def hops(self) -> Tuple[Hop, ...]:
        return self._hops

    @property
    def topological_length(self) -> int:
        """``|J|`` — the number of hops."""
        return len(self._hops)

    @property
    def departure(self) -> float:
        """``departure(J) = t_1``."""
        return self._hops[0].time

    def arrival(self, tau: float) -> float:
        """``arrival(J) = t_k + τ``."""
        return self._hops[-1].time + tau

    @property
    def source(self) -> Node:
        return self._hops[0].tail

    @property
    def destination(self) -> Node:
        return self._hops[-1].head

    def nodes(self) -> Tuple[Node, ...]:
        """Visited nodes in order of first arrival."""
        out: List[Node] = [self._hops[0].tail]
        for hop in self._hops:
            out.append(hop.head)
        return tuple(out)

    # ------------------------------------------------------------------
    # Definition 3.1 predicates
    # ------------------------------------------------------------------
    def is_valid(self, tvg: TVG) -> bool:
        """Check conditions (i)–(iii) of Definition 3.1 against ``tvg``."""
        tau = tvg.tau
        prev: Optional[Hop] = None
        for hop in self._hops:
            if prev is not None:
                if prev.head != hop.tail:  # (i) spatial chaining
                    return False
                if hop.time < prev.time + tau:  # (iii) causal departure
                    return False
            # (ii) presence throughout the traversal window
            if not tvg.rho_tau(hop.tail, hop.head, hop.time):
                return False
            prev = hop
        return True

    def is_non_stop(self, tau: float) -> bool:
        """True iff every hop departs exactly at the previous arrival."""
        for a, b in zip(self._hops, self._hops[1:]):
            if not math.isclose(b.time, a.time + tau, rel_tol=0.0, abs_tol=1e-12):
                return False
        return True

    def is_circle_free(self) -> bool:
        """True iff no node repeats (the paper considers only such journeys)."""
        visited = self.nodes()
        return len(set(visited)) == len(visited)

    def precedes(self, u: Node, v: Node) -> bool:
        """The precedence relation ``u ≺_J v`` (``J`` reaches u before v)."""
        order = self.nodes()
        try:
            return order.index(u) < order.index(v)
        except ValueError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " → ".join(
            f"{h.tail!r}@{h.time:g}→{h.head!r}" for h in self._hops
        )
        return f"Journey({body})"


def _earliest_departure(tvg: TVG, u: Node, v: Node, ready: float) -> float:
    """Earliest ``t ≥ ready`` with ``ρ_τ(e_{u,v}, t) = 1``, or ``inf``.

    The adjacency set is the τ-eroded presence; the earliest feasible
    departure is either ``ready`` itself (if inside a component) or the next
    component start after ``ready``.
    """
    adj = tvg.adjacency_set(u, v)
    if adj.contains_point(ready):
        return ready
    nxt = adj.next_start_after(ready)
    return nxt


def earliest_arrivals(
    tvg: TVG, source: Node, start_time: float = 0.0
) -> Dict[Node, float]:
    """Earliest arrival time at every node for journeys departing ≥ start.

    This is temporal Dijkstra: arrival times only improve monotonically, and
    relaxing an edge from a settled node uses the earliest feasible departure
    after that node's arrival.  Unreachable nodes map to ``math.inf``.
    """
    if not tvg.has_node(source):
        raise GraphModelError(f"unknown source {source!r}")
    tau = tvg.tau
    arrival: Dict[Node, float] = {n: math.inf for n in tvg.nodes}
    arrival[source] = start_time
    heap: List[Tuple[float, int, Node]] = [(start_time, 0, source)]
    counter = 1
    settled = set()
    # Precompute each node's incident edges once; the inner loop is then
    # O(deg · log) per settle.

    while heap:
        t, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v in tvg.incident(u):
            if v in settled:
                continue
            dep = _earliest_departure(tvg, u, v, t)
            if dep == math.inf:
                continue
            arr = dep + tau
            if arr < arrival[v] and arr <= tvg.horizon:
                arrival[v] = arr
                heapq.heappush(heap, (arr, counter, v))
                counter += 1
    # One bump per search, not per settle — keeps the hot loop clean.
    obs.counter("temporal.journeys_expanded", len(settled))
    return arrival


def foremost_journey(
    tvg: TVG, source: Node, destination: Node, start_time: float = 0.0
) -> Optional[Journey]:
    """A foremost (earliest-arrival) journey from source to destination.

    Returns ``None`` when the destination is unreachable by the horizon.
    Runs the same temporal Dijkstra as :func:`earliest_arrivals` but records
    predecessor hops so the journey can be reconstructed.
    """
    if not tvg.has_node(destination):
        raise GraphModelError(f"unknown destination {destination!r}")
    if source == destination:
        raise GraphModelError("source and destination coincide")
    tau = tvg.tau
    arrival: Dict[Node, float] = {n: math.inf for n in tvg.nodes}
    pred: Dict[Node, Hop] = {}
    arrival[source] = start_time
    heap: List[Tuple[float, int, Node]] = [(start_time, 0, source)]
    counter = 1
    settled = set()

    while heap:
        t, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == destination:
            break
        for v in tvg.incident(u):
            if v in settled:
                continue
            dep = _earliest_departure(tvg, u, v, t)
            if dep == math.inf:
                continue
            arr = dep + tau
            if arr < arrival[v] and arr <= tvg.horizon:
                arrival[v] = arr
                pred[v] = Hop(u, v, dep)
                heapq.heappush(heap, (arr, counter, v))
                counter += 1

    obs.counter("temporal.journeys_expanded", len(settled))
    if arrival[destination] == math.inf:
        return None
    hops: List[Hop] = []
    node = destination
    while node != source:
        hop = pred[node]
        hops.append(hop)
        node = hop.tail
    hops.reverse()
    return Journey(hops)

"""Temporal-graph statistics: degree over time, contact structure.

Figure 7 of the paper plots the *average node degree* of the trace alongside
broadcast energy, sampled every 500 s; :func:`average_degree_series` computes
exactly that series.  The remaining helpers characterize a trace the way the
Haggle papers do (contact counts, durations, inter-contact gaps) and are used
by the synthetic-trace tests to show the generator matches its targets.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..core.intervals import IntervalSet
from .tvg import TVG

__all__ = [
    "average_degree",
    "average_degree_series",
    "degree_profile",
    "contact_durations",
    "inter_contact_times",
    "pair_contact_counts",
    "temporal_density",
]

Node = Hashable


def average_degree(tvg: TVG, t: float) -> float:
    """Mean instantaneous (``ρ_τ``) degree over all nodes at time ``t``."""
    total = 0
    for (a, b), pres in tvg.edges_with_presence():
        if pres.covers(t, t + tvg.tau):
            total += 2  # each present edge contributes to two degrees
    return total / tvg.num_nodes


def average_degree_series(
    tvg: TVG, times: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Average degree sampled at each time in ``times`` (Fig. 7 series)."""
    ts = np.asarray(list(times), dtype=float)
    degs = np.array([average_degree(tvg, t) for t in ts])
    return ts, degs


def degree_profile(
    tvg: TVG, window_start: float, window_end: float, step: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Average degree sampled every ``step`` over ``[window_start, window_end]``.

    The paper's Fig. 7 uses ``window = [5000, 15000]`` and ``step = 500``.
    """
    n = int(math.floor((window_end - window_start) / step)) + 1
    times = window_start + step * np.arange(n)
    return average_degree_series(tvg, times)


def contact_durations(tvg: TVG) -> np.ndarray:
    """Durations of every maximal contact in the trace, as an array."""
    return np.array(
        [end - start for _, _, start, end in tvg.contacts()], dtype=float
    )


def inter_contact_times(tvg: TVG) -> np.ndarray:
    """Gaps between consecutive contacts of each pair, pooled over pairs.

    The heavy tail of this distribution is the signature property of human
    contact traces (Chaintreau et al. [12]) which the synthetic generator
    reproduces.
    """
    gaps: List[float] = []
    for _, pres in tvg.edges_with_presence():
        ivs = pres.intervals
        for a, b in zip(ivs, ivs[1:]):
            gaps.append(b.start - a.end)
    return np.array(gaps, dtype=float)


def pair_contact_counts(tvg: TVG) -> Dict[Tuple[Node, Node], int]:
    """Number of maximal contacts per node pair."""
    return {key: len(pres) for key, pres in tvg.edges_with_presence()}


def temporal_density(tvg: TVG) -> float:
    """Fraction of (pair × time) capacity occupied by contacts.

    ``Σ_e |presence(e)| / (C(N,2) · horizon)`` — 1.0 would be an always-fully
    connected graph.
    """
    n = tvg.num_nodes
    capacity = n * (n - 1) / 2 * tvg.horizon
    if capacity == 0:
        return 0.0
    return tvg.total_contact_time() / capacity

"""Time-varying graphs (Section III-A): model, journeys, reachability."""

from .builders import from_contacts, from_networkx, from_snapshots
from .journey_variants import fastest_journey, shortest_journey
from .journeys import Hop, Journey, earliest_arrivals, foremost_journey
from .nondeterministic import (
    CandidateContact,
    ProbabilisticTVG,
    RobustnessReport,
    schedule_robustness,
)
from .metrics import (
    average_degree,
    average_degree_series,
    contact_durations,
    degree_profile,
    inter_contact_times,
    pair_contact_counts,
    temporal_density,
)
from .reachability import (
    broadcast_feasible_sources,
    is_broadcastable,
    reachability_graph,
    reachable_set,
)
from .sweep import NodeSweep, adjacency_events
from .tvg import TVG, edge_key

__all__ = [
    "TVG",
    "edge_key",
    "NodeSweep",
    "adjacency_events",
    "CandidateContact",
    "ProbabilisticTVG",
    "RobustnessReport",
    "schedule_robustness",
    "Hop",
    "Journey",
    "earliest_arrivals",
    "foremost_journey",
    "shortest_journey",
    "fastest_journey",
    "reachable_set",
    "is_broadcastable",
    "reachability_graph",
    "broadcast_feasible_sources",
    "from_contacts",
    "from_snapshots",
    "from_networkx",
    "average_degree",
    "average_degree_series",
    "degree_profile",
    "contact_durations",
    "inter_contact_times",
    "pair_contact_counts",
    "temporal_density",
]

"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish model errors from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class IntervalError(ReproError):
    """Raised for malformed intervals (e.g. ``start > end``)."""


class PartitionError(ReproError):
    """Raised for invalid time partitions (Definition 5.1 violations)."""


class GraphModelError(ReproError):
    """Raised for inconsistent TVG / TVEG construction arguments."""


class ChannelModelError(ReproError):
    """Raised when an ED-function is queried or built with invalid physics
    (negative cost, zero gain, out-of-range probability, ...)."""


class ScheduleError(ReproError):
    """Raised for malformed broadcast schedules (Section IV structure)."""


class InfeasibleError(ReproError):
    """Raised when no feasible schedule / allocation exists for an instance.

    Carries an optional human-readable ``reason`` describing which of the
    four TMEDB feasibility conditions failed.
    """

    def __init__(self, reason: str = "problem instance is infeasible"):
        super().__init__(reason)
        self.reason = reason


class SolverError(ReproError):
    """Raised when an optimization backend fails to converge or errors out."""


class TraceFormatError(ReproError):
    """Raised when a contact-trace file cannot be parsed."""


class ServiceOverloaded(ReproError):
    """Raised when the planning service's admission control turns a request
    away — the batch queue is at its bound (HTTP 429) or the request timed
    out waiting for its result (HTTP 504)."""

    def __init__(self, reason: str = "planning service overloaded",
                 retry_after: float = 1.0):
        super().__init__(reason)
        self.reason = reason
        #: suggested client backoff in seconds (the HTTP ``Retry-After``)
        self.retry_after = retry_after

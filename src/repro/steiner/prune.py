"""Steiner-tree pruning: drop edges not on any root→terminal path.

Solver output may contain stubs (explored branches that ended up covered
more cheaply elsewhere).  Pruning keeps only edges that lie on a directed
path from the root to some terminal — it never increases cost and often
removes paid transmission edges whose coverage became redundant.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

__all__ = ["prune_tree"]

AuxNode = Hashable
Edge = Tuple[AuxNode, AuxNode]


def prune_tree(
    edges: Set[Edge],
    root: AuxNode,
    terminals: Sequence[AuxNode],
) -> Set[Edge]:
    """Edges on some root→terminal path within ``edges``.

    Computed as (reachable from root) ∩ (co-reachable to a terminal), both
    restricted to the edge set — two linear traversals.
    """
    fwd: Dict[AuxNode, List[AuxNode]] = {}
    bwd: Dict[AuxNode, List[AuxNode]] = {}
    for u, v in edges:
        fwd.setdefault(u, []).append(v)
        bwd.setdefault(v, []).append(u)

    reach_fwd: Set[AuxNode] = {root}
    stack = [root]
    while stack:
        u = stack.pop()
        for v in fwd.get(u, ()):
            if v not in reach_fwd:
                reach_fwd.add(v)
                stack.append(v)

    reach_bwd: Set[AuxNode] = set()
    stack = [t for t in terminals if t in reach_fwd or t == root]
    reach_bwd.update(stack)
    while stack:
        v = stack.pop()
        for u in bwd.get(v, ()):
            if u not in reach_bwd:
                reach_bwd.add(u)
                stack.append(u)

    return {(u, v) for u, v in edges if u in reach_fwd and v in reach_bwd}

"""Minimum-energy multicast tree facade (Liang's problem [3]).

:func:`solve_memt` is the single entry point the schedulers call: given a
weighted DAG, a root, and terminals, return a pruned Steiner edge set using
the selected solver:

* ``"greedy"`` (default) — incremental multi-source Dijkstra grafting; the
  practical solver used for all paper-scale experiments.
* ``"sptree"`` — level-1 shortest-path tree; fastest, weakest bound.
* ``"charikar"`` — the recursive level-``i`` algorithm with the paper's
  ``O(N^ε)``-family guarantee; small instances only.

Whatever the solver, the result is pruned so every edge lies on a
root→terminal path.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Set, Tuple

import networkx as nx

from .. import obs
from ..errors import SolverError
from .dst import charikar_dst, greedy_incremental_dst
from .prune import prune_tree
from .sptree import shortest_path_tree, tree_cost

__all__ = ["solve_memt", "MEMT_METHODS"]

AuxNode = Hashable
Edge = Tuple[AuxNode, AuxNode]

MEMT_METHODS = ("greedy", "sptree", "charikar")


def solve_memt(
    graph,
    root: AuxNode,
    terminals: Sequence[AuxNode],
    method: str = "greedy",
    level: int = 2,
    max_candidates: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
    compute: Optional[str] = None,
) -> Set[Edge]:
    """Solve the MEMT instance and return the pruned Steiner edge set.

    ``graph`` is a weighted :class:`networkx.DiGraph` or a
    :class:`~repro.auxgraph.compact.CompactAuxGraph`.  The greedy solver
    consumes the compact form natively; the networkx-based solvers
    (``sptree``, ``charikar``) receive its lossless ``to_networkx()`` view,
    so every method accepts every graph form and returns identical trees.

    ``compute="numpy"`` routes the greedy solver through the array-kernel
    variant (:func:`repro.compute.numpy_backend.greedy_incremental_dst_numpy`
    — byte-identical tree and counters, batched row decoding); any other
    value, or a networkx graph, runs the stdlib solver.

    ``stats``, when given, receives the solver's work counters (at least
    ``expansions``; the greedy solver adds ``grafts``) — the numbers the
    schedulers surface as ``steiner_expansions`` in their result ``info``.
    """
    with obs.span(
        "steiner.solve_memt",
        method=method,
        graph_nodes=graph.number_of_nodes(),
        graph_edges=graph.number_of_edges(),
        terminals=len(terminals),
    ):
        if method == "greedy":
            if compute == "numpy" and not isinstance(graph, nx.DiGraph):
                from ..compute.numpy_backend import (
                    greedy_incremental_dst_numpy,
                )

                edges = greedy_incremental_dst_numpy(
                    graph, root, terminals, stats=stats
                )
            else:
                edges = greedy_incremental_dst(
                    graph, root, terminals, stats=stats
                )
        elif method == "sptree":
            if not isinstance(graph, nx.DiGraph):
                graph = graph.to_networkx()
            edges = shortest_path_tree(graph, root, terminals)
            if stats is not None:
                stats.setdefault("expansions", 0)
        elif method == "charikar":
            if not isinstance(graph, nx.DiGraph):
                graph = graph.to_networkx()
            edges = charikar_dst(
                graph, root, terminals, level, max_candidates, stats=stats
            )
        else:
            raise SolverError(
                f"unknown MEMT method {method!r}; choose from {MEMT_METHODS}"
            )
        return prune_tree(edges, root, terminals)

"""Directed Steiner tree solvers.

Two solvers beyond the level-1 shortest-path tree:

* :func:`greedy_incremental_dst` — the practical default.  Repeatedly runs a
  multi-source Dijkstra from the current tree (tree nodes cost 0) and grafts
  the cheapest path to a yet-uncovered terminal.  On auxiliary graphs the
  0-weight coverage edges make this capture the wireless broadcast
  advantage: once a transmission node is paid for, every receiver it covers
  becomes free, so subsequent terminals attach at zero marginal cost.
* :func:`charikar_dst` — the recursive level-``i`` algorithm of Charikar et
  al. with approximation ratio ``O(k^{1/i} · i)`` (the ``O(N^ε)`` family the
  paper cites through Liang's reduction).  Exponential in ``i`` and meant
  for small instances: ground-truthing the greedy solver in tests and the
  solver-ablation benchmark.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .. import obs
from ..errors import InfeasibleError, SolverError

__all__ = ["greedy_incremental_dst", "charikar_dst"]

AuxNode = Hashable
Edge = Tuple[AuxNode, AuxNode]


def greedy_incremental_dst(
    graph,
    root: AuxNode,
    terminals: Sequence[AuxNode],
    stats: Optional[Dict[str, int]] = None,
) -> Set[Edge]:
    """Grow a Steiner tree by repeatedly grafting the cheapest path.

    Implemented as ONE incremental multi-source Dijkstra: the tree is the
    source set, and every time a path to the closest uncovered terminal is
    grafted, the path's nodes re-enter the heap at distance 0.  Source-set
    growth only ever lowers distances, so stale heap entries are skipped by
    the usual lazy-deletion check and the total work stays near a single
    Dijkstra pass instead of one per terminal.

    ``graph`` is either a weighted :class:`networkx.DiGraph` (indexed to
    flat int adjacency once per call) or a
    :class:`~repro.auxgraph.compact.CompactAuxGraph`, whose CSR arrays are
    consumed natively with no re-indexing.  Both paths run the identical
    search over identical node numbering, so they return identical trees.

    ``stats``, when given, receives ``expansions`` (settled heap pops) and
    ``grafts`` (paths attached to the tree) — the same numbers the obs
    counters ``steiner.expansions`` / ``steiner.grafts`` record.
    """
    from ..auxgraph.compact import CompactAuxGraph

    if isinstance(graph, CompactAuxGraph):
        nodes = graph.aux_nodes
        indptr, tgt, wts = graph.indptr, graph.targets, graph.weights
        root_i = (
            graph.root_index if root == graph.root else graph.index_of(root)
        )
        if tuple(terminals) == graph.terminals:
            uncovered = set(graph.terminal_indices)
        else:
            uncovered = {graph.index_of(t) for t in terminals if t != root}
        adj: List = [None] * len(nodes)  # filled lazily from CSR below
    else:
        # Index the graph once: tuple keys → ints, adjacency as flat lists.
        nodes = list(graph.nodes)
        index = {n: i for i, n in enumerate(nodes)}
        adj = [[] for _ in nodes]
        for u, v, data in graph.edges(data=True):
            adj[index[u]].append((index[v], float(data.get("weight", 0.0))))
        indptr = tgt = wts = None
        root_i = index[root]
        uncovered = {index[t] for t in terminals if t != root}
    uncovered.discard(root_i)

    n = len(nodes)

    INF = math.inf
    dist = [INF] * n
    pred = [-1] * n
    in_tree = [False] * n
    tree_edges: Set[Edge] = set()

    heap: List[Tuple[float, int]] = []
    expansions = 0
    grafts = 0

    def enter_tree(i: int, parent: int) -> None:
        if in_tree[i]:
            return
        in_tree[i] = True
        if parent >= 0:
            tree_edges.add((nodes[parent], nodes[i]))
        dist[i] = 0.0
        heapq.heappush(heap, (0.0, i))
        uncovered.discard(i)

    enter_tree(root_i, -1)

    while uncovered:
        # Pop until an uncovered terminal settles.
        target = -1
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue  # stale entry
            expansions += 1
            if u in uncovered:
                target = u
                break
            row = adj[u]
            if row is None:  # CSR path: materialize visited rows lazily
                lo, hi = indptr[u], indptr[u + 1]
                row = adj[u] = list(zip(tgt[lo:hi], wts[lo:hi]))
            for v, w in row:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    heapq.heappush(heap, (nd, v))
        if target < 0:
            first = nodes[next(iter(uncovered))]
            raise InfeasibleError(
                f"{len(uncovered)} terminal(s) unreachable from the tree "
                f"(first: {first!r})"
            )
        # Graft the pred-chain back to the nearest tree node.
        chain: List[int] = []
        v = target
        while v >= 0 and not in_tree[v]:
            chain.append(v)
            v = pred[v]
        for i in reversed(chain):
            enter_tree(i, pred[i])
        grafts += 1
    if stats is not None:
        stats["expansions"] = stats.get("expansions", 0) + expansions
        stats["grafts"] = stats.get("grafts", 0) + grafts
    obs.counter("steiner.expansions", expansions)
    obs.counter("steiner.grafts", grafts)
    return tree_edges


# ----------------------------------------------------------------------
# Charikar et al. recursive algorithm
# ----------------------------------------------------------------------
class _CharikarSolver:
    """Stateful recursion with memoized single-source Dijkstra runs."""

    def __init__(self, graph: nx.DiGraph, max_candidates: Optional[int] = None):
        self._g = graph
        self._sp_cache: Dict[AuxNode, Tuple[Dict, Dict]] = {}
        self._max_candidates = max_candidates
        #: recursive subproblem invocations — the solver's expansion count
        self.subproblems = 0

    def _sp(self, v: AuxNode) -> Tuple[Dict, Dict]:
        if v not in self._sp_cache:
            self._sp_cache[v] = nx.single_source_dijkstra(
                self._g, v, weight="weight"
            )
        return self._sp_cache[v]

    def _path_edges(self, v: AuxNode, target: AuxNode) -> Optional[List[Edge]]:
        dist, paths = self._sp(v)
        if target not in dist:
            return None
        p = paths[target]
        return list(zip(p, p[1:]))

    def _edge_cost(self, edges: Set[Edge]) -> float:
        return sum(self._g[u][v]["weight"] for u, v in edges)

    def solve(
        self, level: int, k: int, root: AuxNode, terminals: Set[AuxNode]
    ) -> Set[Edge]:
        """``A_i(k, root, X)`` — a tree covering ≥ k of ``terminals``."""
        self.subproblems += 1
        if k <= 0:
            return set()
        if level <= 1:
            return self._level1(k, root, terminals)

        remaining = set(terminals)
        need = k
        out: Set[Edge] = set()
        while need > 0:
            best_edges: Optional[Set[Edge]] = None
            best_density = math.inf
            best_covered: Set[AuxNode] = set()
            candidates = self._candidates(root, remaining)
            for v in candidates:
                link = [] if v == root else self._path_edges(root, v)
                if link is None:
                    continue
                for k_prime in range(1, need + 1):
                    try:
                        sub = self.solve(level - 1, k_prime, v, remaining)
                    except InfeasibleError:
                        break
                    edges = set(link) | sub
                    covered = remaining & _covered_terminals(edges, v, remaining)
                    if not covered:
                        continue
                    density = self._edge_cost(edges) / len(covered)
                    if density < best_density:
                        best_density = density
                        best_edges = edges
                        best_covered = covered
            if best_edges is None:
                raise InfeasibleError(
                    "Charikar recursion cannot cover the requested terminals"
                )
            out |= best_edges
            remaining -= best_covered
            need -= len(best_covered)
        return out

    def _level1(self, k: int, root: AuxNode, terminals: Set[AuxNode]) -> Set[Edge]:
        dist, paths = self._sp(root)
        ranked = sorted(
            (dist[t], t) for t in terminals if t in dist and math.isfinite(dist[t])
        )
        if len(ranked) < k:
            raise InfeasibleError(
                f"only {len(ranked)} of the requested {k} terminals reachable"
            )
        edges: Set[Edge] = set()
        for _, t in ranked[:k]:
            p = paths[t]
            edges.update(zip(p, p[1:]))
        return edges

    def _candidates(self, root: AuxNode, terminals: Set[AuxNode]) -> List[AuxNode]:
        """Intermediate-root candidates, optionally pruned to the cheapest.

        The full algorithm tries every vertex; when ``max_candidates`` is
        set we keep the ones closest to the root (plus the root itself),
        trading the formal guarantee for tractability on larger graphs.
        """
        dist, _ = self._sp(root)
        nodes = [v for v in dist if math.isfinite(dist[v])]
        if self._max_candidates is None or len(nodes) <= self._max_candidates:
            return nodes
        nodes.sort(key=lambda v: dist[v])
        return nodes[: self._max_candidates]


def _covered_terminals(
    edges: Set[Edge], root: AuxNode, terminals: Set[AuxNode]
) -> Set[AuxNode]:
    """Terminals reachable from ``root`` using only ``edges``."""
    adj: Dict[AuxNode, List[AuxNode]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
    seen = {root}
    stack = [root]
    while stack:
        u = stack.pop()
        for v in adj.get(u, ()):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return terminals & seen


def charikar_dst(
    graph: nx.DiGraph,
    root: AuxNode,
    terminals: Sequence[AuxNode],
    level: int = 2,
    max_candidates: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> Set[Edge]:
    """Charikar et al.'s level-``i`` directed Steiner tree approximation.

    ``level = 1`` reduces to the shortest-path tree; ``level = 2`` already
    gives ``O(√k)`` quality.  Runtime grows steeply with ``level`` and graph
    size — use on small instances (see module docstring).
    """
    if level < 1:
        raise SolverError("charikar level must be >= 1")
    targets = {t for t in terminals if t != root}
    if not targets:
        return set()
    solver = _CharikarSolver(graph, max_candidates)
    try:
        return solver.solve(level, len(targets), root, targets)
    finally:
        if stats is not None:
            stats["expansions"] = stats.get("expansions", 0) + solver.subproblems
        obs.counter("steiner.expansions", solver.subproblems)

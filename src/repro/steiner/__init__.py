"""Directed Steiner tree / minimum-energy multicast tree solvers."""

from .dst import charikar_dst, greedy_incremental_dst
from .memt import MEMT_METHODS, solve_memt
from .prune import prune_tree
from .sptree import shortest_path_tree, tree_cost

__all__ = [
    "greedy_incremental_dst",
    "charikar_dst",
    "shortest_path_tree",
    "tree_cost",
    "prune_tree",
    "solve_memt",
    "MEMT_METHODS",
]

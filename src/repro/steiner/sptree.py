"""Shortest-path-tree Steiner approximation (Charikar level 1).

The union of shortest paths from the root to every terminal.  This is the
``i = 1`` base case of Charikar's recursive algorithm, with approximation
ratio ``k`` (number of terminals) — cheap (one Dijkstra) and the baseline
against which the ablation bench measures the better solvers.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence, Set, Tuple

import networkx as nx

from ..errors import InfeasibleError

__all__ = ["shortest_path_tree", "tree_cost"]

AuxNode = Hashable
Edge = Tuple[AuxNode, AuxNode]


def shortest_path_tree(
    graph: nx.DiGraph,
    root: AuxNode,
    terminals: Sequence[AuxNode],
) -> Set[Edge]:
    """Union of root→terminal shortest paths (weight attribute ``weight``)."""
    dist, paths = nx.single_source_dijkstra(graph, root, weight="weight")
    missing = [t for t in terminals if t not in dist]
    if missing:
        raise InfeasibleError(
            f"{len(missing)} terminal(s) unreachable from the root "
            f"(first: {missing[0]!r})"
        )
    edges: Set[Edge] = set()
    for t in terminals:
        p = paths[t]
        edges.update(zip(p, p[1:]))
    return edges


def tree_cost(graph, edges: Set[Edge]) -> float:
    """Total weight of an edge set (networkx or compact auxiliary graph).

    Summed with :func:`math.fsum` (exactly rounded, hence independent of
    iteration order): ``edges`` is a set whose tuples contain strings, so
    a naive left-fold would drift by an ulp between processes with
    different hash seeds — visible as byte-nonidentical plans from a
    sharded service whose workers are separate processes.
    """
    if isinstance(graph, nx.DiGraph):
        return float(math.fsum(graph[u][v]["weight"] for u, v in edges))
    fast = getattr(graph, "tree_cost", None)
    if fast is not None:
        return fast(edges)
    return float(math.fsum(graph.edge_weight(u, v) for u, v in edges))

"""Evaluation metrics (Section VII).

* **Normalized energy consumption** — total energy divided by the unit-gain
  decoding energy ``N0·B·γ_th`` (the paper normalizes "by the decoding
  threshold" following [14]).
* **Packet delivery ratio** — fraction of nodes that received the packet.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..params import PhyParams
from ..schedule.schedule import Schedule
from .simulator import TrialOutcome

__all__ = ["normalized_energy", "schedule_normalized_energy", "delivery_ratio"]


def normalized_energy(energy: float, params: PhyParams) -> float:
    """Absolute energy → the paper's normalized energy metric."""
    return params.normalize_energy(energy)


def schedule_normalized_energy(schedule: Schedule, params: PhyParams) -> float:
    """Normalized scheduled cost ``Σ w_k / (N0·B·γ_th)``."""
    return params.normalize_energy(schedule.total_cost)


def delivery_ratio(outcomes: Sequence[TrialOutcome], num_nodes: int) -> float:
    """Mean delivery ratio over Monte-Carlo trials."""
    if not outcomes:
        return 0.0
    return float(np.mean([o.delivery_ratio(num_nodes) for o in outcomes]))

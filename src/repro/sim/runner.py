"""Multi-trial Monte-Carlo runner with seeded child streams.

Aggregates delivery ratio and consumed energy over independent trials; each
trial gets its own child generator so results do not depend on evaluation
order (a property the determinism tests pin down).  That same property is
what makes ``workers > 1`` safe: child seeds are derived up front with the
exact stream :func:`repro.core.rng.spawn` draws, so a parallel run fills
the result arrays with bit-for-bit the numbers the serial loop produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.rng import SeedLike, as_generator, spawn
from ..parallel import chunk_indices, derive_seeds, parallel_map, resolve_workers
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG
from .simulator import TrialOutcome, simulate_schedule

__all__ = ["SimulationSummary", "run_trials"]

Node = Hashable


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated Monte-Carlo statistics for one schedule."""

    num_trials: int
    num_nodes: int
    mean_delivery: float
    std_delivery: float
    mean_energy: float
    std_energy: float
    mean_transmissions: float

    def delivery_ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95 % confidence interval on delivery."""
        half = 1.96 * self.std_delivery / math.sqrt(max(self.num_trials, 1))
        return (self.mean_delivery - half, self.mean_delivery + half)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationSummary(delivery={self.mean_delivery:.3f}±"
            f"{self.std_delivery:.3f}, energy={self.mean_energy:.4g}, "
            f"trials={self.num_trials})"
        )


def _simulate_chunk(
    payload,
) -> List[Tuple[float, float, int]]:
    """Worker-process body: simulate one contiguous block of trials."""
    (
        tveg, schedule, source, seeds, start,
        count_scheduled_energy, interference, n,
    ) = payload
    out = []
    for j, s in enumerate(seeds):
        res = simulate_schedule(
            tveg, schedule, source, np.random.default_rng(s),
            count_scheduled_energy, interference, trial_id=start + j,
        )
        out.append((res.delivery_ratio(n), res.energy, res.transmissions))
    return out


def run_trials(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    num_trials: int = 100,
    seed: SeedLike = None,
    count_scheduled_energy: bool = False,
    interference: str = "none",
    workers: Optional[int] = None,
) -> SimulationSummary:
    """Run ``num_trials`` independent trials and aggregate the outcomes.

    ``workers > 1`` fans the trials out over that many processes.  Child
    seeds are derived up front (:func:`repro.parallel.derive_seeds` draws
    the exact stream ``spawn`` would), and results land in the arrays by
    global trial index, so the summary is bit-for-bit identical to the
    serial run for the same ``seed``.  When the obs ledger is recording,
    the runner falls back to serial so no per-trial events are lost in
    worker processes.
    """
    w = resolve_workers(workers)
    if w > 1 and obs.ledger_enabled():
        obs.counter("parallel.ledger_fallback")
        w = 1
    deliveries = np.empty(num_trials)
    energies = np.empty(num_trials)
    txs = np.empty(num_trials)
    n = tveg.num_nodes
    with obs.span(
        "sim.run_trials", trials=num_trials, transmissions=len(schedule),
        workers=w,
    ):
        if w > 1 and num_trials > 1:
            seeds = derive_seeds(seed, num_trials)
            payloads = [
                (
                    tveg, schedule, source, seeds[r.start:r.stop], r.start,
                    count_scheduled_energy, interference, n,
                )
                for r in chunk_indices(num_trials, w)
            ]
            i = 0
            for chunk in parallel_map(_simulate_chunk, payloads, workers=w):
                for d, e, t in chunk:
                    deliveries[i] = d
                    energies[i] = e
                    txs[i] = t
                    i += 1
        else:
            rng = as_generator(seed)
            children = spawn(rng, num_trials)
            for i, child in enumerate(children):
                out = simulate_schedule(
                    tveg, schedule, source, child, count_scheduled_energy,
                    interference, trial_id=i,
                )
                deliveries[i] = out.delivery_ratio(n)
                energies[i] = out.energy
                txs[i] = out.transmissions
    obs.counter("sim.trials", num_trials)
    return SimulationSummary(
        num_trials=num_trials,
        num_nodes=n,
        mean_delivery=float(deliveries.mean()),
        std_delivery=float(deliveries.std(ddof=1)) if num_trials > 1 else 0.0,
        mean_energy=float(energies.mean()),
        std_energy=float(energies.std(ddof=1)) if num_trials > 1 else 0.0,
        mean_transmissions=float(txs.mean()),
    )

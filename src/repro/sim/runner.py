"""Multi-trial Monte-Carlo runner with seeded child streams.

Aggregates delivery ratio and consumed energy over independent trials; each
trial gets its own child generator so results do not depend on evaluation
order (a property the determinism tests pin down).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Tuple

import numpy as np

from .. import obs
from ..core.rng import SeedLike, as_generator, spawn
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG
from .simulator import TrialOutcome, simulate_schedule

__all__ = ["SimulationSummary", "run_trials"]

Node = Hashable


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated Monte-Carlo statistics for one schedule."""

    num_trials: int
    num_nodes: int
    mean_delivery: float
    std_delivery: float
    mean_energy: float
    std_energy: float
    mean_transmissions: float

    def delivery_ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95 % confidence interval on delivery."""
        half = 1.96 * self.std_delivery / math.sqrt(max(self.num_trials, 1))
        return (self.mean_delivery - half, self.mean_delivery + half)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationSummary(delivery={self.mean_delivery:.3f}±"
            f"{self.std_delivery:.3f}, energy={self.mean_energy:.4g}, "
            f"trials={self.num_trials})"
        )


def run_trials(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    num_trials: int = 100,
    seed: SeedLike = None,
    count_scheduled_energy: bool = False,
    interference: str = "none",
) -> SimulationSummary:
    """Run ``num_trials`` independent trials and aggregate the outcomes."""
    rng = as_generator(seed)
    children = spawn(rng, num_trials)
    deliveries = np.empty(num_trials)
    energies = np.empty(num_trials)
    txs = np.empty(num_trials)
    n = tveg.num_nodes
    with obs.span(
        "sim.run_trials", trials=num_trials, transmissions=len(schedule)
    ):
        for i, child in enumerate(children):
            out = simulate_schedule(
                tveg, schedule, source, child, count_scheduled_energy,
                interference, trial_id=i,
            )
            deliveries[i] = out.delivery_ratio(n)
            energies[i] = out.energy
            txs[i] = out.transmissions
    obs.counter("sim.trials", num_trials)
    return SimulationSummary(
        num_trials=num_trials,
        num_nodes=n,
        mean_delivery=float(deliveries.mean()),
        std_delivery=float(deliveries.std(ddof=1)) if num_trials > 1 else 0.0,
        mean_energy=float(energies.mean()),
        std_energy=float(energies.std(ddof=1)) if num_trials > 1 else 0.0,
        mean_transmissions=float(txs.mean()),
    )

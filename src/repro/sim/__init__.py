"""Monte-Carlo broadcast simulation and Section VII metrics."""

from .metrics import delivery_ratio, normalized_energy, schedule_normalized_energy
from .runner import SimulationSummary, run_trials
from .simulator import TrialOutcome, simulate_schedule

__all__ = [
    "TrialOutcome",
    "simulate_schedule",
    "SimulationSummary",
    "run_trials",
    "normalized_energy",
    "schedule_normalized_energy",
    "delivery_ratio",
]

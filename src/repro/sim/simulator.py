"""Monte-Carlo execution of broadcast schedules on a TVEG.

The analytic feasibility machinery (Eq. 6) computes *probabilities*; this
simulator samples *outcomes*: each scheduled transmission actually happens
only if its relay has truly received the packet by then, and each adjacent
receiver independently decodes with probability ``1 − φ(w)``.  Running a
schedule designed for the static channel on a fading TVEG is exactly the
paper's Fig. 6 experiment — the static trio's packets are lost on links
whose instantaneous fade exceeds the deterministic margin.

Energy accounting: only transmissions that actually occur consume energy
(an uninformed relay stays silent).  ``count_scheduled_energy`` switches to
the scheduled total instead, for comparing against analytic costs.

**Interference** (the paper's second future-work item, Section VIII): with
``interference="collision"`` transmissions firing in the same causal round
of one timestamp are simultaneous, and a receiver adjacent to two or more
of them decodes nothing that round — the classic protocol-model collision.
The default ``"none"`` reproduces the paper's interference-free analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Set, Tuple

from .. import obs
from ..core.rng import SeedLike, as_generator
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG

__all__ = ["TrialOutcome", "simulate_schedule"]

Node = Hashable


@dataclass(frozen=True)
class TrialOutcome:
    """One Monte-Carlo trial of a schedule."""

    #: nodes that actually received the packet (includes the source)
    received: FrozenSet[Node]
    #: energy actually radiated (silent relays excluded)
    energy: float
    #: number of transmissions that actually happened
    transmissions: int
    #: per-node reception time (absent = never received)
    reception_times: Tuple[Tuple[Node, float], ...]

    def delivery_ratio(self, num_nodes: int) -> float:
        """Fraction of all nodes that received the packet."""
        return len(self.received) / num_nodes


def simulate_schedule(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    seed: SeedLike = None,
    count_scheduled_energy: bool = False,
    interference: str = "none",
    trial_id: Optional[int] = None,
) -> TrialOutcome:
    """Execute one randomized trial of ``schedule`` on ``tveg``.

    ``interference``: ``"none"`` (paper model) or ``"collision"`` (protocol
    model — see module docstring).  ``trial_id`` tags this trial's ledger
    events (the multi-trial runner passes the trial index).
    """
    if interference not in ("none", "collision"):
        raise ValueError(f"unknown interference model {interference!r}")
    rng = as_generator(seed)
    received: Set[Node] = {source}
    reception: Dict[Node, float] = {source: 0.0}
    energy = 0.0
    fired = 0
    # Hoisted once: per-transmission event emission must cost nothing when
    # the ledger is off (the Monte-Carlo runner calls this in a tight loop).
    led = obs.get_ledger()
    recording = led.enabled

    def fire_round(senders) -> None:
        """Fire a set of simultaneous transmissions (one causal round)."""
        nonlocal energy, fired
        # Who can hear whom this round (collision detection needs counts).
        audiences = {}
        for s in senders:
            energy += s.cost
            fired += 1
            if recording:
                led.emit(
                    obs.EV_ENERGY_DEBITED, t=s.time, relay=s.relay,
                    cost=s.cost, context="sim", trial=trial_id,
                )
            audiences[s] = [
                v for v in tveg.neighbors(s.relay, s.time) if v not in received
            ]
        if interference == "collision":
            heard_by: Dict[Node, int] = {}
            for s, vs in audiences.items():
                for v in vs:
                    heard_by[v] = heard_by.get(v, 0) + 1
        for s, vs in audiences.items():
            for v in vs:
                if v in received:
                    continue  # informed earlier within this round's loop
                if interference == "collision" and heard_by[v] > 1:
                    continue  # simultaneous adjacent senders collide
                p_fail = tveg.failure(s.relay, v, s.time, s.cost)
                if rng.random() >= p_fail:
                    received.add(v)
                    reception[v] = s.time + tveg.tau
                    if recording:
                        led.emit(
                            obs.EV_SIM_RECEPTION, t=s.time + tveg.tau,
                            node=v, relay=s.relay, trial=trial_id,
                        )

    # Group same-time transmissions and resolve them to a causal fixpoint:
    # under the paper's τ ≈ 0 idealization (Eq. 6 admits t_j ≤ t_k) a relay
    # informed at instant t may itself forward at t, so rows at one
    # timestamp fire in information-flow order, not storage order.  All
    # transmissions enabled in the same fixpoint round are simultaneous.
    rows = list(schedule)
    i = 0
    while i < len(rows):
        j = i
        while j < len(rows) and rows[j].time == rows[i].time:
            j += 1
        group = rows[i:j]
        pending = list(group)
        while pending:
            ready = [s for s in pending if s.relay in received]
            if not ready:
                break
            pending = [s for s in pending if s.relay not in received]
            fire_round(ready)
        if count_scheduled_energy:
            energy += sum(s.cost for s in pending)  # silent relays
        i = j

    return TrialOutcome(
        received=frozenset(received),
        energy=energy,
        transmissions=fired,
        reception_times=tuple(sorted(reception.items(), key=lambda kv: kv[1])),
    )

"""repro — Energy-Efficient and Delay-Constrained Broadcast in TVEGs.

A from-scratch reproduction of Qiu, Shen & Yu (ICPP 2015):

* time-varying graphs and TVEGs (Section III),
* the TMEDB problem machinery — schedules, Eq. (6) probabilities, the four
  feasibility conditions (Section IV),
* discrete time sets, the ET-law, and the auxiliary-graph reduction
  (Sections V / VI-A),
* the EEDCB / FR-EEDCB schedulers, the GREED / RAND baselines, and the
  Section VI-B energy-allocation NLP,
* trace substrates (Haggle-like synthesis, CRAWDAD parsing, mobility),
  a Monte-Carlo simulator, and the Fig. 4–7 experiment harness.

Quick start::

    from repro import haggle_like_trace, HaggleLikeConfig, plan_broadcast

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=1)
    plan = plan_broadcast(trace, None, 2000.0,
                          algorithm="eedcb", window=(8000.0, 10000.0), seed=1)
    print(plan.total_cost, plan.feasible)

(or assemble the pipeline by hand with ``tveg_from_trace`` /
``make_scheduler`` / ``check_feasibility`` — ``plan_broadcast`` is sugar,
not a different code path).
"""

from . import obs
from .algorithms import (
    EEDCB,
    FREEDCB,
    FRGreed,
    FRRand,
    Greed,
    OracleExact,
    Rand,
    SCHEDULERS,
    Scheduler,
    SchedulerResult,
    canonical_scheduler_name,
    make_scheduler,
)
from .api import (
    BroadcastPlan,
    BroadcastPlanSet,
    plan_broadcast,
    plan_broadcast_many,
)
from .channels import (
    AbsentED,
    EDFunction,
    NakagamiChannel,
    NakagamiED,
    RayleighChannel,
    RayleighED,
    RicianChannel,
    RicianED,
    StaticChannel,
    StepED,
)
from .core import Interval, IntervalSet, Partition
from .errors import (
    ChannelModelError,
    GraphModelError,
    InfeasibleError,
    IntervalError,
    PartitionError,
    ReproError,
    ScheduleError,
    SolverError,
    TraceFormatError,
)
from .online import (
    DirectDelivery,
    Epidemic,
    Gossip,
    SprayAndWait,
    make_protocol,
    run_online,
    run_online_trials,
)
from .params import PAPER_PARAMS, PhyParams
from .schedule import (
    FeasibilityReport,
    Schedule,
    Transmission,
    check_feasibility,
    informed_time,
    uninformed_probability,
)
from .protosim import (
    ProtocolConfig,
    ProtocolResult,
    ProtocolSummary,
    check_analytic_parity,
    execute_plan,
    execute_schedule,
    run_protocol_trials,
)
from .sim import SimulationSummary, run_trials, simulate_schedule
from .temporal import TVG, Journey, earliest_arrivals, foremost_journey
from .traces import (
    Contact,
    ContactTrace,
    DistanceModel,
    HaggleLikeConfig,
    haggle_like_trace,
    load_trace,
    parse_crawdad,
    parse_csv,
    uniform_trace,
)
from .tveg import TVEG, DiscreteCostSet, discrete_cost_set, tveg_from_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # parameters
    "PhyParams",
    "PAPER_PARAMS",
    # core
    "Interval",
    "IntervalSet",
    "Partition",
    # temporal
    "TVG",
    "Journey",
    "earliest_arrivals",
    "foremost_journey",
    # channels
    "EDFunction",
    "AbsentED",
    "StepED",
    "RayleighED",
    "RicianED",
    "NakagamiED",
    "StaticChannel",
    "RayleighChannel",
    "RicianChannel",
    "NakagamiChannel",
    # TVEG
    "TVEG",
    "DiscreteCostSet",
    "discrete_cost_set",
    "tveg_from_trace",
    # schedules
    "Schedule",
    "Transmission",
    "uninformed_probability",
    "informed_time",
    "FeasibilityReport",
    "check_feasibility",
    # high-level API
    "plan_broadcast",
    "plan_broadcast_many",
    "BroadcastPlan",
    "BroadcastPlanSet",
    # observability
    "obs",
    # algorithms
    "Scheduler",
    "SchedulerResult",
    "canonical_scheduler_name",
    "make_scheduler",
    "SCHEDULERS",
    "EEDCB",
    "FREEDCB",
    "Greed",
    "FRGreed",
    "Rand",
    "FRRand",
    "OracleExact",
    # simulation
    "simulate_schedule",
    "run_trials",
    "SimulationSummary",
    "ProtocolConfig",
    "ProtocolResult",
    "ProtocolSummary",
    "check_analytic_parity",
    "execute_plan",
    "execute_schedule",
    "run_protocol_trials",
    # online protocols
    "Epidemic",
    "Gossip",
    "SprayAndWait",
    "DirectDelivery",
    "make_protocol",
    "run_online",
    "run_online_trials",
    # traces
    "Contact",
    "ContactTrace",
    "haggle_like_trace",
    "HaggleLikeConfig",
    "uniform_trace",
    "parse_crawdad",
    "parse_csv",
    "load_trace",
    "DistanceModel",
    # errors
    "ReproError",
    "IntervalError",
    "PartitionError",
    "GraphModelError",
    "ChannelModelError",
    "ScheduleError",
    "InfeasibleError",
    "SolverError",
    "TraceFormatError",
]

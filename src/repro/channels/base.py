"""Energy-demand functions (Section III-B, Property 3.1).

An *ED-function* ``φ : W → [0, 1]`` maps a transmit cost to the probability
that a single transmission over the edge **fails** at the given time.  Every
concrete ED-function in this package satisfies Property 3.1:

(i)   ``φ(w) → 0`` as ``w → ∞`` when the edge is present;
(ii)  ``φ(0) = 1`` when the edge is present and ``w_min = 0``;
(iii) ``φ(w) = 1`` for every ``w`` when the edge is absent;
(iv)  ``φ`` is non-increasing.

:func:`verify_properties` checks these numerically and is exercised by the
hypothesis test-suite over every channel model.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

from ..errors import ChannelModelError

__all__ = ["EDFunction", "AbsentED", "verify_properties"]


class EDFunction(ABC):
    """Failure probability of a single transmission as a function of cost."""

    @abstractmethod
    def failure(self, w: float) -> float:
        """``φ(w)`` — probability the transmission fails at cost ``w``."""

    @abstractmethod
    def min_cost(self, target_failure: float) -> float:
        """Smallest ``w`` with ``φ(w) ≤ target_failure``; ``inf`` if none.

        This is the generalized inverse used everywhere the paper writes
        "minimum cost": Eq. (2)'s threshold for the step function and
        Section VI-B's ``w0`` for the Rayleigh function.
        """

    # ------------------------------------------------------------------
    def __call__(self, w: float) -> float:
        return self.failure(w)

    def success(self, w: float) -> float:
        """``1 − φ(w)`` — single-transmission success probability."""
        return 1.0 - self.failure(w)

    def log_failure(self, w: float) -> float:
        """``log φ(w)`` — the allocation NLP's per-term value.

        Subclasses with a numerically delicate ``φ`` override this.
        """
        if w <= 0.0:
            return 0.0
        p = self.failure(w)
        if p <= 0.0:
            return -math.inf
        return math.log(p)

    def dlog_failure_dw(self, w: float) -> float:
        """``d log φ / dw`` (≤ 0) — the NLP constraint gradient term.

        Default: central finite difference with a relative step; concrete
        channels override with the analytic derivative where cheap.
        """
        if w <= 0.0:
            return 0.0
        h = max(abs(w) * 1e-6, 1e-300)
        hi = self.log_failure(w + h)
        lo = self.log_failure(w - h) if w - h > 0 else self.log_failure(w)
        denom = 2 * h if w - h > 0 else h
        return (hi - lo) / denom

    def _check_cost(self, w: float) -> None:
        if w < 0 or math.isnan(w):
            raise ChannelModelError(f"transmit cost must be >= 0, got {w!r}")


class AbsentED(EDFunction):
    """The ED-function of an absent edge: ``φ(w) = 1`` for all ``w``.

    Property 3.1(iii) — when ``ρ(e, t) = 0`` no cost yields any success.
    """

    _instance = None

    def __new__(cls) -> "AbsentED":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def failure(self, w: float) -> float:
        self._check_cost(w)
        return 1.0

    def min_cost(self, target_failure: float) -> float:
        if target_failure >= 1.0:
            return 0.0
        return math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AbsentED()"


def verify_properties(
    ed: EDFunction,
    costs: Sequence[float],
    present: bool = True,
    atol: float = 1e-12,
) -> None:
    """Assert Property 3.1 numerically on a grid of costs.

    Raises :class:`ChannelModelError` on the first violated clause.  Used by
    the test suite against every channel model; also handy as a sanity check
    for user-supplied ED-functions.
    """
    ws = sorted(float(w) for w in costs if w >= 0)
    if not ws:
        raise ChannelModelError("verify_properties() needs at least one cost")
    prev = None
    for w in ws:
        p = ed.failure(w)
        if not (0.0 - atol <= p <= 1.0 + atol):
            raise ChannelModelError(f"φ({w}) = {p} is outside [0, 1]")
        if prev is not None and p > prev + atol:
            raise ChannelModelError(
                f"φ is increasing between consecutive costs ({prev} → {p})"
            )
        prev = p
    if not present:
        for w in ws:
            if abs(ed.failure(w) - 1.0) > atol:
                raise ChannelModelError(
                    "absent edge must have φ(w) = 1 for all w (Property 3.1(iii))"
                )
    else:
        if ed.failure(0.0) < 1.0 - atol:
            raise ChannelModelError("φ(0) must equal 1 (Property 3.1(ii))")

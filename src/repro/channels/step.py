"""Step ED-function — the static channel model (Eq. 2).

In a static channel the propagation gain is a constant ``h``, so decoding
succeeds iff ``w · h / (N0·B) ≥ γ_th``; the failure probability is a step:

    φ(w) = 0  if w ≥ N0·B·γ_th / h      (the *minimum cost*)
    φ(w) = 1  otherwise
"""

from __future__ import annotations

import math

from ..errors import ChannelModelError
from .base import EDFunction

__all__ = ["StepED"]


class StepED(EDFunction):
    """Deterministic threshold ED-function with minimum cost ``threshold``."""

    __slots__ = ("_threshold",)

    def __init__(self, threshold: float) -> None:
        if threshold <= 0 or math.isnan(threshold):
            raise ChannelModelError(
                f"step threshold must be positive, got {threshold!r}"
            )
        self._threshold = float(threshold)

    @property
    def threshold(self) -> float:
        """The minimum cost ``N0·B·γ_th / h`` of Eq. (2)."""
        return self._threshold

    def failure(self, w: float) -> float:
        self._check_cost(w)
        return 0.0 if w >= self._threshold else 1.0

    def min_cost(self, target_failure: float) -> float:
        if target_failure >= 1.0:
            return 0.0
        return self._threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StepED(threshold={self._threshold:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepED):
            return NotImplemented
        return self._threshold == other._threshold

    def __hash__(self) -> int:
        return hash(("StepED", self._threshold))

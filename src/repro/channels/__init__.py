"""Channel models and energy-demand functions (Sections III-B / III-C)."""

from .base import AbsentED, EDFunction, verify_properties
from .models import (
    ChannelModel,
    NakagamiChannel,
    RayleighChannel,
    RicianChannel,
    StaticChannel,
)
from .nakagami import NakagamiED
from .pathloss import ConstantGain, LogDistancePathLoss, PowerLawPathLoss
from .rayleigh import RayleighED
from .rician import RicianED
from .step import StepED

__all__ = [
    "EDFunction",
    "AbsentED",
    "verify_properties",
    "StepED",
    "RayleighED",
    "RicianED",
    "NakagamiED",
    "ChannelModel",
    "StaticChannel",
    "RayleighChannel",
    "RicianChannel",
    "NakagamiChannel",
    "PowerLawPathLoss",
    "LogDistancePathLoss",
    "ConstantGain",
]

"""Radio propagation gain models.

The paper uses the simple power-law path loss ``h = d^{-α}`` (Eq. 3); this
module also provides a log-distance variant with a reference distance, and a
constant-gain model for unit tests.  A gain model is any callable
``gain(distance) -> float`` returning a positive linear power gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ChannelModelError

__all__ = ["PowerLawPathLoss", "LogDistancePathLoss", "ConstantGain"]


@dataclass(frozen=True)
class PowerLawPathLoss:
    """``h(d) = d^{-α}`` — the paper's propagation model."""

    exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ChannelModelError("path-loss exponent must be positive")

    def __call__(self, distance: float) -> float:
        if distance <= 0:
            raise ChannelModelError(f"distance must be positive, got {distance!r}")
        return distance ** (-self.exponent)


@dataclass(frozen=True)
class LogDistancePathLoss:
    """``h(d) = g0 · (d0 / d)^α`` — gain ``g0`` at reference distance ``d0``."""

    reference_distance: float = 1.0
    reference_gain: float = 1.0
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.reference_distance <= 0:
            raise ChannelModelError("reference distance must be positive")
        if self.reference_gain <= 0:
            raise ChannelModelError("reference gain must be positive")
        if self.exponent <= 0:
            raise ChannelModelError("path-loss exponent must be positive")

    def __call__(self, distance: float) -> float:
        if distance <= 0:
            raise ChannelModelError(f"distance must be positive, got {distance!r}")
        return self.reference_gain * (self.reference_distance / distance) ** self.exponent


@dataclass(frozen=True)
class ConstantGain:
    """A distance-independent gain — handy for analytic unit tests."""

    gain: float = 1.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ChannelModelError("gain must be positive")

    def __call__(self, distance: float) -> float:
        if distance <= 0:
            raise ChannelModelError(f"distance must be positive, got {distance!r}")
        return self.gain

"""Rician fading ED-function (the footnote-1 extension of the paper).

With a line-of-sight component of factor ``K`` (ratio of LOS power to
scattered power) the normalized channel power ``Z = |h|² / E[|h|²]`` follows
a scaled non-central chi-square law with 2 degrees of freedom:
``2(1+K)·Z ~ χ'²(df=2, nc=2K)``.  With mean SNR ``x̄ = w / β · γ_th`` the
outage probability becomes

    φ(w) = P(x̄·Z < γ_th) = F_{χ'²(2, 2K)}( 2(1+K)·β / w )

where ``β = N0·B·γ_th / d^{-α}`` as in the Rayleigh model.  ``K = 0``
recovers the Rayleigh ED-function exactly (verified by the test suite).
"""

from __future__ import annotations

import math

from scipy.optimize import brentq
from scipy.stats import ncx2

from ..errors import ChannelModelError
from .base import EDFunction

__all__ = ["RicianED"]


class RicianED(EDFunction):
    """Rician-outage ED-function with scale ``beta`` and K-factor ``k``."""

    __slots__ = ("_beta", "_k")

    def __init__(self, beta: float, k_factor: float) -> None:
        if beta <= 0 or math.isnan(beta):
            raise ChannelModelError(f"beta must be positive, got {beta!r}")
        if k_factor < 0 or math.isnan(k_factor):
            raise ChannelModelError(
                f"Rician K-factor must be >= 0, got {k_factor!r}"
            )
        self._beta = float(beta)
        self._k = float(k_factor)

    @property
    def beta(self) -> float:
        return self._beta

    @property
    def k_factor(self) -> float:
        return self._k

    def failure(self, w: float) -> float:
        self._check_cost(w)
        if w == 0.0:
            return 1.0
        arg = 2.0 * (1.0 + self._k) * self._beta / w
        return float(ncx2.cdf(arg, df=2, nc=2.0 * self._k))

    def min_cost(self, target_failure: float) -> float:
        if target_failure >= 1.0:
            return 0.0
        if target_failure <= 0.0:
            return math.inf
        q = float(ncx2.ppf(target_failure, df=2, nc=2.0 * self._k))
        if q <= 0.0:
            return math.inf
        return 2.0 * (1.0 + self._k) * self._beta / q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RicianED(beta={self._beta:g}, K={self._k:g})"

"""Nakagami-m fading ED-function (the footnote-1 extension of the paper).

Under Nakagami-m fading the normalized channel power ``Z`` is Gamma
distributed with shape ``m`` and unit mean, so with mean SNR ``γ_th·w/β``
the outage probability is the regularized lower incomplete gamma function:

    φ(w) = P(m, m·β / w)

``m = 1`` recovers the Rayleigh ED-function exactly (verified in tests);
``m → ∞`` approaches the step function, interpolating between the paper's
two channel regimes.
"""

from __future__ import annotations

import math

from scipy.special import gammainc, gammaincinv

from ..errors import ChannelModelError
from .base import EDFunction

__all__ = ["NakagamiED"]


class NakagamiED(EDFunction):
    """Nakagami-m outage ED-function with scale ``beta`` and shape ``m``."""

    __slots__ = ("_beta", "_m")

    def __init__(self, beta: float, m: float) -> None:
        if beta <= 0 or math.isnan(beta):
            raise ChannelModelError(f"beta must be positive, got {beta!r}")
        if m < 0.5 or math.isnan(m):
            raise ChannelModelError(
                f"Nakagami shape must be >= 0.5, got {m!r}"
            )
        self._beta = float(beta)
        self._m = float(m)

    @property
    def beta(self) -> float:
        return self._beta

    @property
    def m(self) -> float:
        return self._m

    def failure(self, w: float) -> float:
        self._check_cost(w)
        if w == 0.0:
            return 1.0
        return float(gammainc(self._m, self._m * self._beta / w))

    def min_cost(self, target_failure: float) -> float:
        if target_failure >= 1.0:
            return 0.0
        if target_failure <= 0.0:
            return math.inf
        q = float(gammaincinv(self._m, target_failure))
        if q <= 0.0:
            return math.inf
        return self._m * self._beta / q

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NakagamiED(beta={self._beta:g}, m={self._m:g})"

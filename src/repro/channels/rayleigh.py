"""Rayleigh fading ED-function (Eq. 5).

With a frequency-flat Rayleigh channel the squared channel coefficient is
exponential with mean ``σ² = w·d^{-α}`` (Eq. 3), so the received SNR is
exponential and the failure (outage) probability is

    φ(w) = 1 − exp(−β / w),     β = N0·B·γ_th / d^{-α}.

The generalized inverse gives the paper's Section VI-B backbone weight:
``φ(w0) = ε  ⟺  w0 = β / ln(1 / (1 − ε))``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ChannelModelError
from .base import EDFunction

__all__ = ["RayleighED"]


class RayleighED(EDFunction):
    """Rayleigh-outage ED-function with scale ``beta``."""

    __slots__ = ("_beta",)

    def __init__(self, beta: float) -> None:
        if beta <= 0 or math.isnan(beta):
            raise ChannelModelError(f"beta must be positive, got {beta!r}")
        self._beta = float(beta)

    @property
    def beta(self) -> float:
        """``β = N0·B·γ_th · d^α`` — the outage scale of Eq. (5)."""
        return self._beta

    def failure(self, w: float) -> float:
        self._check_cost(w)
        if w == 0.0:
            return 1.0
        return -math.expm1(-self._beta / w)

    def failure_array(self, ws: np.ndarray) -> np.ndarray:
        """Vectorized ``φ`` for the NLP solver's constraint evaluations."""
        ws = np.asarray(ws, dtype=float)
        out = np.ones_like(ws)
        pos = ws > 0
        out[pos] = -np.expm1(-self._beta / ws[pos])
        return out

    def min_cost(self, target_failure: float) -> float:
        if target_failure >= 1.0:
            return 0.0
        if target_failure <= 0.0:
            return math.inf
        # φ(w) ≤ ε  ⟺  w ≥ β / ln(1/(1−ε))
        return self._beta / math.log(1.0 / (1.0 - target_failure))

    def log_failure(self, w: float) -> float:
        """``log φ(w)`` — numerically stable for the log-domain NLP."""
        if w <= 0.0:
            return 0.0
        return math.log(-math.expm1(-self._beta / w))

    def dlog_failure_dw(self, w: float) -> float:
        """Analytic ``d log φ / dw = −(β/w²)·e^{−β/w} / (1 − e^{−β/w})``."""
        if w <= 0.0:
            return 0.0
        e = math.exp(-self._beta / w)
        denom = -math.expm1(-self._beta / w)
        if denom <= 0.0:
            return 0.0
        return -(self._beta / (w * w)) * e / denom

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RayleighED(beta={self._beta:g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RayleighED):
            return NotImplemented
        return self._beta == other._beta

    def __hash__(self) -> int:
        return hash(("RayleighED", self._beta))

"""Channel models: the ``ψ`` factory mapping link state to ED-functions.

A :class:`ChannelModel` turns a link's physical state (its distance at time
``t``) into the ED-function embedded on that edge (the paper's cost function
``ψ : E × T → F``, Definition 3.2).  Two concrete models reproduce the
paper's evaluation:

* :class:`StaticChannel` → step ED-functions (Eq. 2);
* :class:`RayleighChannel` → Rayleigh ED-functions (Eq. 5);

plus the footnote extensions :class:`RicianChannel` and
:class:`NakagamiChannel`.

Each model also exposes :meth:`ChannelModel.backbone_weight` — the per-link
cost used as the auxiliary-graph edge weight during backbone selection:
the Eq. (2) minimum cost for the static channel, and Section VI-B's
``w0 = β / ln(1/(1−ε))`` for fading channels.  Both are simply
``ed.min_cost(ε')`` with ``ε' = ε`` (fading) or ``ε' = 0⁺`` (static, where
any sub-ε target yields the same threshold).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable

from ..errors import ChannelModelError
from ..params import PhyParams
from .base import EDFunction
from .nakagami import NakagamiED
from .pathloss import PowerLawPathLoss
from .rayleigh import RayleighED
from .rician import RicianED
from .step import StepED

__all__ = [
    "ChannelModel",
    "StaticChannel",
    "RayleighChannel",
    "RicianChannel",
    "NakagamiChannel",
]

GainModel = Callable[[float], float]


class ChannelModel(ABC):
    """Factory of ED-functions from link distances (Definition 3.2's ψ)."""

    def __init__(self, params: PhyParams, gain_model: GainModel = None) -> None:
        self._params = params
        self._gain = gain_model or PowerLawPathLoss(params.path_loss_exponent)

    @property
    def params(self) -> PhyParams:
        return self._params

    def gain(self, distance: float) -> float:
        return self._gain(distance)

    def beta(self, distance: float) -> float:
        """The common outage scale ``N0·B·γ_th / h(d)``."""
        g = self._gain(distance)
        if g <= 0:
            raise ChannelModelError("gain model returned a non-positive gain")
        return self._params.noise_power * self._params.gamma_th / g

    @abstractmethod
    def ed_from_distance(self, distance: float) -> EDFunction:
        """The ED-function of a present link at distance ``distance``."""

    @property
    @abstractmethod
    def is_fading(self) -> bool:
        """True iff single transmissions can fail at any finite cost."""

    def backbone_weight(self, distance: float) -> float:
        """Per-link cost used for backbone selection (Section VI).

        The smallest cost driving single-hop failure to the acceptable error
        rate ε: the step threshold for static channels, ``w0`` for fading.
        """
        return self.ed_from_distance(distance).min_cost(self._params.epsilon)


class StaticChannel(ChannelModel):
    """Static (non-fading) channel → step ED-functions (Eq. 2)."""

    @property
    def is_fading(self) -> bool:
        return False

    def ed_from_distance(self, distance: float) -> EDFunction:
        return StepED(self._params.static_min_cost(self._gain(distance)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "StaticChannel()"


class RayleighChannel(ChannelModel):
    """Rayleigh fading channel → Rayleigh ED-functions (Eq. 5)."""

    @property
    def is_fading(self) -> bool:
        return True

    def ed_from_distance(self, distance: float) -> EDFunction:
        return RayleighED(self.beta(distance))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RayleighChannel()"


class RicianChannel(ChannelModel):
    """Rician fading channel with a fixed K-factor (footnote-1 extension)."""

    def __init__(
        self, params: PhyParams, k_factor: float = 3.0, gain_model: GainModel = None
    ) -> None:
        super().__init__(params, gain_model)
        if k_factor < 0:
            raise ChannelModelError("Rician K-factor must be >= 0")
        self._k = float(k_factor)

    @property
    def k_factor(self) -> float:
        return self._k

    @property
    def is_fading(self) -> bool:
        return True

    def ed_from_distance(self, distance: float) -> EDFunction:
        return RicianED(self.beta(distance), self._k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RicianChannel(K={self._k:g})"


class NakagamiChannel(ChannelModel):
    """Nakagami-m fading channel (footnote-1 extension)."""

    def __init__(
        self, params: PhyParams, m: float = 2.0, gain_model: GainModel = None
    ) -> None:
        super().__init__(params, gain_model)
        if m < 0.5:
            raise ChannelModelError("Nakagami shape must be >= 0.5")
        self._m = float(m)

    @property
    def m(self) -> float:
        return self._m

    @property
    def is_fading(self) -> bool:
        return True

    def ed_from_distance(self, distance: float) -> EDFunction:
        return NakagamiED(self.beta(distance), self._m)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NakagamiChannel(m={self._m:g})"

"""Physical-layer and problem parameters.

:class:`PhyParams` bundles the constants of Section VII's evaluation setup so
every model, algorithm, and experiment draws from a single validated source:

* noise power density ``N0 = 4.32e-21 W/Hz``,
* decoding threshold ``γ_th = 25.9 dB`` (stored linear),
* data rate 1 Mbit/s (which fixes the 1 MHz noise bandwidth),
* path-loss exponent ``α = 2``,
* acceptable error rate ``ε = 0.01``,
* transmit-cost bounds ``[w_min, w_max]``.

Derived quantities — noise power, the single-hop decoding energy used to
normalize reported energies, and the closed-form minimum costs for both
channel models — live here too, so the formulas of Eqs. (2) and (5) appear
exactly once in the code base.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .core.units import db_to_linear
from .errors import ChannelModelError

__all__ = ["PhyParams", "PAPER_PARAMS"]


@dataclass(frozen=True)
class PhyParams:
    """Immutable physical-layer parameter set (paper Section VII defaults).

    Attributes
    ----------
    noise_density:
        Noise power density ``N0`` in W/Hz.
    gamma_th_db:
        Decoding SNR threshold in dB.
    data_rate:
        Data rate in bit/s; the noise bandwidth is taken equal to the rate
        (1 Mbit/s → 1 MHz), the convention of [14].
    path_loss_exponent:
        ``α`` in the ``d^{-α}`` propagation model.
    epsilon:
        Acceptable error rate ``ε``: a node is *informed* once its uninformed
        probability is ≤ ε (Section IV).
    w_min, w_max:
        Bounds of the continuous cost set ``W`` in joules-per-packet
        equivalents (the paper's abstract "cost"); ``w_max = inf`` means
        unbounded.
    """

    noise_density: float = 4.32e-21
    gamma_th_db: float = 25.9
    data_rate: float = 1e6
    path_loss_exponent: float = 2.0
    epsilon: float = 0.01
    w_min: float = 0.0
    w_max: float = math.inf

    def __post_init__(self) -> None:
        if self.noise_density <= 0:
            raise ChannelModelError("noise_density must be positive")
        if self.data_rate <= 0:
            raise ChannelModelError("data_rate must be positive")
        if self.path_loss_exponent <= 0:
            raise ChannelModelError("path_loss_exponent must be positive")
        if not (0 < self.epsilon < 1):
            raise ChannelModelError("epsilon must lie in (0, 1)")
        if self.w_min < 0:
            raise ChannelModelError("w_min must be non-negative")
        if self.w_max <= self.w_min:
            raise ChannelModelError("w_max must exceed w_min")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def gamma_th(self) -> float:
        """Decoding threshold as a linear SNR ratio."""
        return db_to_linear(self.gamma_th_db)

    @property
    def noise_power(self) -> float:
        """Noise power ``N0 × B`` in watts (bandwidth = data rate)."""
        return self.noise_density * self.data_rate

    @property
    def decode_energy(self) -> float:
        """``N0·B·γ_th`` — the unit-gain single-hop decoding cost.

        Reported energies are divided by this to obtain the paper's
        *normalized energy consumption* metric.
        """
        return self.noise_power * self.gamma_th

    # ------------------------------------------------------------------
    # channel-model closed forms (Eqs. 2, 5 and Section VI-B)
    # ------------------------------------------------------------------
    def gain_from_distance(self, distance: float) -> float:
        """Path-loss gain ``d^{-α}`` for a link of length ``distance``."""
        if distance <= 0:
            raise ChannelModelError("distance must be positive")
        return distance ** (-self.path_loss_exponent)

    def static_min_cost(self, gain: float) -> float:
        """Minimum cost for guaranteed decoding on a static channel (Eq. 2).

        ``w = N0·B·γ_th / h`` — the step ED-function's threshold.
        """
        if gain <= 0:
            raise ChannelModelError("channel gain must be positive")
        return self.noise_power * self.gamma_th / gain

    def rayleigh_beta(self, distance: float) -> float:
        """The Rayleigh ED-function scale ``β = N0·B·γ_th / d^{-α}`` (Eq. 5)."""
        return self.noise_power * self.gamma_th / self.gain_from_distance(distance)

    def rayleigh_single_hop_cost(self, distance: float, eps: float = None) -> float:
        """Cost making single-hop Rayleigh failure equal ``eps`` (Sec. VI-B).

        ``w0 = β / ln(1/(1−ε))`` — the backbone edge weight of FR-EEDCB.
        """
        e = self.epsilon if eps is None else eps
        if not (0 < e < 1):
            raise ChannelModelError("eps must lie in (0, 1)")
        return self.rayleigh_beta(distance) / math.log(1.0 / (1.0 - e))

    def normalize_energy(self, energy: float) -> float:
        """Express an absolute energy as the paper's normalized metric."""
        return energy / self.decode_energy

    # ------------------------------------------------------------------
    def with_(self, **changes) -> "PhyParams":
        """A copy with the given fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)


#: The exact parameterization of the paper's evaluation (Section VII).
PAPER_PARAMS = PhyParams()

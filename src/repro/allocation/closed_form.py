"""Designated-transmitter closed-form allocation.

A feasible cost vector obtained without optimization: every constraint
designates its *cheapest* participating transmission (smallest ``β``) and
requires that transmission alone to drive the product to ε — i.e.
``w_k ≥ β / ln(1/(1−ε))``, Section VI-B's single-hop cost ``w0``.  Each
variable takes the maximum requirement over the constraints that designated
it (and the lower bound otherwise).

Properties:

* always feasible whenever the problem is (every other factor is ≤ 1);
* *optimal* when the constraints' designated sets are disjoint singletons —
  the cross-check the test suite runs against the NLP solver;
* the standard warm start for both iterative solvers.
"""

from __future__ import annotations

import math

import numpy as np

from .problem import AllocationProblem

__all__ = ["closed_form_allocation", "balanced_allocation"]


def closed_form_allocation(problem: AllocationProblem) -> np.ndarray:
    """The designated-transmitter allocation (see module docstring)."""
    w = np.full(problem.num_vars, problem.lb, dtype=float)
    for c in problem.constraints:
        k_best, need = min(
            ((k, problem.min_single_cost(ch)) for k, ch in c.terms),
            key=lambda kn: kn[1],
        )
        if need > w[k_best]:
            w[k_best] = need
    return np.minimum(w, problem.w_max)


def balanced_allocation(problem: AllocationProblem) -> np.ndarray:
    """The equal-split allocation: each constraint shares ε over its terms.

    A constraint with ``m`` terms targets per-term failure ``ε^{1/m}``, so
    every participating cost is ``β / ln(1/(1 − ε^{1/m}))``; a variable takes
    the maximum over its constraints.  Feasible by construction (raising any
    cost only shrinks its factor), interior rather than vertex-like — the
    smooth warm start the SLSQP polish needs to exploit coverage overlap,
    and already optimal for a single symmetric constraint.
    """
    import math

    from .problem import term_ed

    eps = math.exp(problem.log_eps)
    w = np.full(problem.num_vars, problem.lb, dtype=float)
    for c in problem.constraints:
        target = eps ** (1.0 / len(c.terms))
        for k, ch in c.terms:
            need = term_ed(ch).min_cost(target)
            if need > w[k]:
                w[k] = need
    return np.minimum(w, problem.w_max)

"""Coordinate-descent energy allocation.

Starting from any feasible point, repeatedly sets each variable to the
*smallest* value that keeps every constraint it participates in satisfied
given the current values of the others.  Each update preserves feasibility
and never increases the objective, so the iteration converges monotonically;
it stops when a full sweep changes no variable by more than ``tol``.

For one constraint with slack-excluding-k ``rhs = log ε − Σ_{l≠k} log φ_l``,
the requirement on ``w_k`` is ``log φ_k(w_k) ≤ rhs``, i.e.
``w_k ≥ ed_k.min_cost(e^{rhs})`` (no bound when rhs ≥ 0) — the generalized
inverse works for every fading family.  The variable's new value is the max
over its constraints, clamped to ``[lb, w_max]``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InfeasibleError
from .problem import AllocationProblem

__all__ = ["coordinate_descent_allocation"]


def _required_cost(channel, rhs: float) -> float:
    """Smallest ``w`` with ``log φ(w) ≤ rhs`` — ``ed.min_cost(e^{rhs})``."""
    if rhs >= 0.0:
        return 0.0  # any cost satisfies (φ ≤ 1 always)
    from .problem import term_ed

    return term_ed(channel).min_cost(math.exp(rhs))


def coordinate_descent_allocation(
    problem: AllocationProblem,
    w0: np.ndarray,
    tol: float = 1e-12,
    max_sweeps: int = 200,
) -> np.ndarray:
    """Monotone coordinate descent from the feasible start ``w0``."""
    w = np.array(w0, dtype=float)
    if not problem.is_feasible(w, tol=1e-6):
        raise InfeasibleError("coordinate descent requires a feasible start")

    # Constraint membership and cached per-term log-φ values.
    member: Dict[int, List[Tuple[int, object]]] = {k: [] for k in range(problem.num_vars)}
    for ci, c in enumerate(problem.constraints):
        for k, ch in c.terms:
            member[k].append((ci, ch))
    values = [
        [problem.log_phi(ch, w[k]) for k, ch in c.terms]
        for c in problem.constraints
    ]
    totals = [sum(vals) for vals in values]
    # index of variable k within constraint ci's term list
    pos: Dict[Tuple[int, int], int] = {}
    for ci, c in enumerate(problem.constraints):
        for slot, (k, _) in enumerate(c.terms):
            pos[(ci, k)] = slot

    for _ in range(max_sweeps):
        max_change = 0.0
        for k in range(problem.num_vars):
            if not member[k]:
                new_w = problem.lb
            else:
                need = problem.lb
                for ci, ch in member[k]:
                    rhs = problem.log_eps - (totals[ci] - values[ci][pos[(ci, k)]])
                    need = max(need, _required_cost(ch, rhs))
                new_w = min(need, problem.w_max)
                # Monotone descent: the current value is feasible by the
                # invariant, so float noise in `need` must never raise it.
                new_w = min(new_w, w[k])
            change = abs(new_w - w[k])
            if change > tol * max(1.0, abs(w[k])):
                w[k] = new_w
                for ci, ch in member[k]:
                    slot = pos[(ci, k)]
                    totals[ci] += problem.log_phi(ch, new_w) - values[ci][slot]
                    values[ci][slot] = problem.log_phi(ch, new_w)
                max_change = max(max_change, change)
        if max_change == 0.0:
            break
    return w

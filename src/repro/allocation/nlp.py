"""SLSQP solution of the allocation NLP (Eqs. 14–17).

Solves ``min Σ w_k`` under the log-domain product constraints with
analytic gradients.  The constraint functions are

    g_j(w) = log ε − Σ_{k ∈ K_j} log(1 − e^{−β/w_k}) ≥ 0

with ``∂g_j/∂w_k = (β/w_k²) · e^{−β/w_k} / (1 − e^{−β/w_k})`` — positive, so
raising any participating cost always loosens the constraint.

The solver is warm-started from the closed-form feasible point, polished by
SLSQP, and cross-checked: if SLSQP fails, wanders infeasible, or does worse
than monotone coordinate descent, the better of the fallbacks is returned.
The problem is non-convex in general (the paper solves it with generic NLP
methods [19]); this belt-and-braces arrangement guarantees the returned
vector is feasible and no worse than the closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize

from .. import obs
from ..errors import InfeasibleError
from .closed_form import balanced_allocation, closed_form_allocation
from .coordinate import coordinate_descent_allocation
from .problem import AllocationProblem

__all__ = ["AllocationResult", "solve_allocation"]


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of the allocation solve."""

    costs: np.ndarray
    total: float
    method: str            # winning candidate: "slsqp" | "coordinate" | "balanced" | "closed_form"
    slsqp_converged: bool
    #: total SLSQP iterations over every polish attempt (0 when disabled)
    nlp_iterations: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AllocationResult(total={self.total:.4g}, method={self.method!r}, "
            f"slsqp_converged={self.slsqp_converged})"
        )


def _constraint_and_grad(problem: AllocationProblem):
    """Build SLSQP constraint dicts with analytic Jacobians."""
    cons = []
    for c in problem.constraints:
        terms = c.terms

        def g(w, terms=terms):
            return problem.log_eps - sum(
                problem.log_phi(ch, w[k]) for k, ch in terms
            )

        def jac(w, terms=terms, n=problem.num_vars):
            from .problem import term_ed

            out = np.zeros(n)
            for k, ch in terms:
                wk = max(w[k], problem.lb)
                out[k] += -term_ed(ch).dlog_failure_dw(wk)
            return out

        cons.append({"type": "ineq", "fun": g, "jac": jac})
    return cons


def solve_allocation(
    problem: AllocationProblem,
    use_slsqp: bool = True,
    max_iter: int = 200,
    fallback: Optional[np.ndarray] = None,
) -> AllocationResult:
    """Solve the NLP; always returns a feasible allocation (see module doc).

    ``fallback`` is an optional cost vector the *caller* already knows to be
    feasible for the original ``ε`` (typically the backbone's ``w0`` costs).
    The solver's candidates target the margin-tightened ``ε·(1 − margin)``,
    which on small instances can cost slightly more than the ε-exact
    backbone; when every candidate is more expensive than ``fallback``, the
    fallback is returned (method ``"backbone"``) so the allocation never
    does worse than the schedule it started from.
    """
    with obs.span(
        "allocation.solve",
        num_vars=problem.num_vars,
        num_constraints=len(problem.constraints),
    ):
        w_closed = closed_form_allocation(problem)
        if not problem.is_feasible(w_closed, tol=1e-6):
            raise InfeasibleError(
                "closed-form warm start is infeasible — the backbone cannot "
                "satisfy the delivery constraints within the cost bounds"
            )
        candidates = [("closed_form", w_closed)]

        w_balanced = balanced_allocation(problem)
        if problem.is_feasible(w_balanced, tol=1e-6):
            candidates.append(("balanced", w_balanced))

        for label, start in (("coordinate", w_closed), ("coordinate", w_balanced)):
            if not problem.is_feasible(start, tol=1e-6):
                continue
            w_coord = coordinate_descent_allocation(problem, start)
            if problem.is_feasible(w_coord, tol=1e-6):
                candidates.append((label, w_coord))

        slsqp_ok = False
        nit_total = 0
        if use_slsqp and problem.num_vars > 0:
            ub = problem.w_max if math.isfinite(problem.w_max) else None
            bounds = [(problem.lb, ub)] * problem.num_vars
            cons = _constraint_and_grad(problem)
            # Polish from both warm starts: the sparse vertex and the balanced
            # interior point (the vertex is singular in the flat w → 0 region,
            # so the interior start is what lets SLSQP exploit overlap).
            for _, start in list(candidates):
                with obs.span("allocation.slsqp"):
                    res = minimize(
                        fun=lambda w: float(np.sum(w)),
                        x0=np.array(start, dtype=float),
                        jac=lambda w: np.ones_like(w),
                        bounds=bounds,
                        constraints=cons,
                        method="SLSQP",
                        options={"maxiter": max_iter, "ftol": 1e-12},
                    )
                slsqp_ok = slsqp_ok or bool(res.success)
                nit_total += int(getattr(res, "nit", 0) or 0)
                if res.x is not None and problem.is_feasible(res.x, tol=1e-6):
                    candidates.append(("slsqp", np.array(res.x, dtype=float)))

        method, best = min(candidates, key=lambda mw: float(np.sum(mw[1])))
        if fallback is not None and float(np.sum(fallback)) < float(np.sum(best)):
            method, best = "backbone", np.array(fallback, dtype=float)
        obs.counter("allocation.solves")
        obs.counter("allocation.slsqp_iterations", nit_total)
        return AllocationResult(
            costs=best,
            total=float(np.sum(best)),
            method=method,
            slsqp_converged=slsqp_ok,
            nlp_iterations=nit_total,
        )

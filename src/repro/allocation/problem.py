"""The optimal-energy-allocation problem structure (Section VI-B).

After backbone selection fixes the relays ``R`` and times ``T``, the cost
vector ``W`` solves (Eqs. 14–17):

    min Σ w_k
    s.t. Π_{k ∈ K_j}        φ_{β_{k,j}}(w_k) ≤ ε   for every node v_j   (15)
         Π_{k ∈ K_j, t_k ≤ t_j} φ(w_k) ≤ ε          for every relay row  (16)
         w_min ≤ w_k ≤ w_max                                              (17)

``K_j`` collects the transmissions adjacent to ``v_j`` at their departure.
In log domain each product constraint becomes ``Σ_k log φ(w_k) ≤ log ε`` —
the form all three solvers in this package consume.

The paper formulates the NLP for the Rayleigh channel
(``log φ(w) = log(1 − e^{−β/w})``); this implementation generalizes each
constraint term to an arbitrary fading :class:`~repro.channels.base.EDFunction`
(Rician, Nakagami, user-defined), so FR-EEDCB runs unchanged on the
footnote-1 channel extensions.  Bare floats in a term are interpreted as
Rayleigh ``β`` scales for backward compatibility.  Building the problem on
a static channel is rejected — nothing to optimize, the step thresholds are
the unique minimal costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..channels.base import EDFunction
from ..channels.rayleigh import RayleighED
from ..errors import InfeasibleError, SolverError
from ..schedule.schedule import Schedule
from ..tveg.graph import TVEG

__all__ = ["Constraint", "AllocationProblem", "build_allocation_problem", "term_ed"]

Node = Hashable

#: Numerical floor for transmit costs — φ is singular at w = 0.
MIN_COST_FLOOR = 1e-30


def term_ed(term) -> EDFunction:
    """Coerce a constraint term's channel spec to an ED-function.

    A bare float is a Rayleigh ``β`` scale (the paper's case); anything else
    must already be a fading :class:`EDFunction`.
    """
    if isinstance(term, EDFunction):
        return term
    return RayleighED(float(term))


@dataclass(frozen=True)
class Constraint:
    """One log-domain product constraint: ``Σ log φ_k(w_k) ≤ log ε``.

    ``terms`` pairs each participating variable index ``k`` with its
    channel: an :class:`EDFunction` or a bare Rayleigh ``β`` float.
    """

    label: str
    terms: Tuple[Tuple[int, object], ...]

    @property
    def indices(self) -> Tuple[int, ...]:
        return tuple(k for k, _ in self.terms)


@dataclass
class AllocationProblem:
    """All data the allocation solvers need."""

    num_vars: int
    constraints: List[Constraint]
    log_eps: float
    w_min: float
    w_max: float
    #: per-variable lower bound actually used (≥ MIN_COST_FLOOR)
    lb: float = field(init=False)

    def __post_init__(self) -> None:
        self.lb = max(self.w_min, MIN_COST_FLOOR)
        if self.w_max <= self.lb:
            raise SolverError("w_max must exceed the effective lower bound")

    # ------------------------------------------------------------------
    @staticmethod
    def log_phi(channel, w: float) -> float:
        """``log φ(w)`` — one factor of a constraint (any fading family)."""
        return term_ed(channel).log_failure(w)

    def constraint_value(self, c: Constraint, w: np.ndarray) -> float:
        """``Σ log φ`` for constraint ``c`` at allocation ``w``."""
        return sum(self.log_phi(ch, w[k]) for k, ch in c.terms)

    def residuals(self, w: np.ndarray) -> np.ndarray:
        """Slack ``log ε − Σ log φ`` per constraint (≥ 0 ⇔ satisfied)."""
        return np.array(
            [self.log_eps - self.constraint_value(c, w) for c in self.constraints]
        )

    def is_feasible(self, w: np.ndarray, tol: float = 1e-9) -> bool:
        if np.any(w < self.lb - tol) or np.any(w > self.w_max + tol):
            return False
        return bool(np.all(self.residuals(w) >= -tol))

    def min_single_cost(self, channel) -> float:
        """Cost driving a single factor alone to ε (``ed.min_cost(ε)``)."""
        eps = math.exp(self.log_eps)
        return term_ed(channel).min_cost(eps)


def causal_order(tveg: TVEG, backbone: Schedule, source: Node) -> Dict[int, int]:
    """A causal firing rank for every backbone row.

    Under the τ ≈ 0 idealization several transmissions share a timestamp;
    Eq. (16)'s literal ``t_k ≤ t_j`` would then let two same-instant relays
    inform each *other* — a circular dependency no physical execution can
    realize.  This fixpoint replays the backbone with optimistic coverage
    (every adjacent node counts as informed once a relay fires) and assigns
    each row a strictly increasing rank; restricting Eq. (16) to
    lower-ranked terms admits same-instant chains but never cycles, exactly
    matching the simulator's within-timestamp resolution.

    Raises :class:`InfeasibleError` if some relay can never be informed by
    its own transmission time even optimistically.
    """
    rows = backbone.transmissions
    informed = {source}
    seq: Dict[int, int] = {}
    counter = 0
    i = 0
    while i < len(rows):
        j = i
        while j < len(rows) and rows[j].time == rows[i].time:
            j += 1
        pending = list(range(i, j))
        progress = True
        while pending and progress:
            progress = False
            still = []
            for k in pending:
                if rows[k].relay in informed:
                    seq[k] = counter
                    counter += 1
                    informed.update(tveg.neighbors(rows[k].relay, rows[k].time))
                    progress = True
                else:
                    still.append(k)
            pending = still
        if pending:
            k = pending[0]
            raise InfeasibleError(
                f"relay {rows[k].relay!r} cannot be informed by its "
                f"transmission at t={rows[k].time:g} in any causal order"
            )
        i = j
    return seq


def build_allocation_problem(
    tveg: TVEG,
    backbone: Schedule,
    source: Node,
    eps: Optional[float] = None,
    safety_margin: float = 1e-4,
    targets: Optional[Sequence[Node]] = None,
) -> AllocationProblem:
    """Assemble Eqs. (15)–(17) from a backbone ``[R, T]`` on a fading TVEG.

    ``safety_margin`` tightens the solver's target to ``ε·(1 − margin)`` so
    boundary-exact numerical solutions still satisfy the *strict* ``p ≤ ε``
    feasibility predicate (the energy impact is O(margin), negligible).

    Raises :class:`InfeasibleError` when some node (or some relay, by its
    transmission time) is not covered by any transmission — no cost vector
    can then satisfy the constraints.
    """
    if not tveg.is_fading:
        raise SolverError(
            "the allocation NLP is defined for fading channels (Section VI-B)"
        )
    e = tveg.params.epsilon if eps is None else e_check(eps)
    n = len(backbone)
    rows = backbone.transmissions

    # The ED-function of every (transmission k, reachable node j) pair.
    reach: Dict[Node, List[Tuple[int, EDFunction]]] = {v: [] for v in tveg.nodes}
    for k, s in enumerate(rows):
        for v in tveg.neighbors(s.relay, s.time):
            if v == s.relay:
                continue
            reach[v].append((k, tveg.ed(s.relay, v, s.time)))

    constraints: List[Constraint] = []
    # (15): every (target) node informed by the end of the schedule.
    required = tveg.nodes if targets is None else tuple(targets)
    for v in required:
        if v == source:
            continue
        terms = tuple(reach[v])
        if not terms:
            raise InfeasibleError(
                f"node {v!r} is covered by no backbone transmission"
            )
        constraints.append(Constraint(label=f"node:{v!r}", terms=terms))

    # (16): every relay informed by its own transmission time.  The causal
    # rank replaces the literal ``t_k ≤ t_j`` so same-instant cycles (a τ=0
    # artifact) are excluded while same-instant chains remain allowed.
    seq = causal_order(tveg, backbone, source)
    for j, s in enumerate(rows):
        if s.relay == source:
            continue
        terms = tuple(
            (k, ed) for k, ed in reach[s.relay] if seq[k] < seq[j]
        )
        if not terms:
            raise InfeasibleError(
                f"relay {s.relay!r} cannot be informed before its "
                f"transmission at t={s.time:g}"
            )
        constraints.append(
            Constraint(label=f"relay:{s.relay!r}@{s.time:g}", terms=terms)
        )

    if not (0 <= safety_margin < 1):
        raise SolverError("safety_margin must lie in [0, 1)")
    return AllocationProblem(
        num_vars=n,
        constraints=constraints,
        log_eps=math.log(e) + math.log1p(-safety_margin),
        w_min=tveg.params.w_min,
        w_max=tveg.params.w_max,
    )


def e_check(eps: float) -> float:
    if not (0 < eps < 1):
        raise SolverError("eps must lie in (0, 1)")
    return eps

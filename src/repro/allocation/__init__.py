"""Optimal energy allocation (Section VI-B, Eqs. 14–17)."""

from .closed_form import balanced_allocation, closed_form_allocation
from .coordinate import coordinate_descent_allocation
from .nlp import AllocationResult, solve_allocation
from .problem import (
    AllocationProblem,
    Constraint,
    build_allocation_problem,
    causal_order,
)

__all__ = [
    "Constraint",
    "AllocationProblem",
    "build_allocation_problem",
    "causal_order",
    "closed_form_allocation",
    "balanced_allocation",
    "coordinate_descent_allocation",
    "AllocationResult",
    "solve_allocation",
]

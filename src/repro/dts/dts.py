"""Discrete time sets (Definition 5.2).

Each node's *discrete time partition* ``P^di_i`` combines its adjacent
partition with a status partition; the DTS ``D_V`` collects them for all
nodes.  Theorem 5.2 guarantees an optimal continuous-time schedule exists
whose transmissions all occur at DTS points, so the schedulers of Section VI
search only these finitely many instants.

Construction applies one correctness-preserving optimization: a point at
which a node has *no* adjacent neighbor is useless to that node (it can
neither receive nor usefully transmit), so ``prune=True`` (the default)
drops such points — except the span endpoints, which the auxiliary graph
needs as source/terminal anchors.  Every ET-law transmission time survives
pruning because a transmitting (or receiving) node is by definition adjacent
to someone at that instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from ..core.partitions import Partition
from ..temporal.tvg import TVG
from .adjacent import all_adjacent_partitions
from .status import status_points

__all__ = ["DiscreteTimeSet", "build_dts"]

Node = Hashable


@dataclass(frozen=True)
class DiscreteTimeSet:
    """The DTS ``D_V = {P^di_1, ..., P^di_N}`` over ``[0, deadline]``."""

    partitions: Dict[Node, Partition]
    deadline: float
    tau: float

    def points(self, node: Node) -> Tuple[float, ...]:
        """The discrete time points of one node."""
        return self.partitions[node].points

    def partition(self, node: Node) -> Partition:
        return self.partitions[node]

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self.partitions)

    def total_points(self) -> int:
        """Σ_i |P^di_i| — the auxiliary graph's state-node count."""
        return sum(len(p) for p in self.partitions.values())

    def contains(self, node: Node, t: float, tol: float = 1e-9) -> bool:
        """True iff ``t`` is (within tolerance) a DTS point of ``node``."""
        return self.partitions[node].has_point(t, tol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteTimeSet(|V|={len(self.partitions)}, "
            f"points={self.total_points()}, deadline={self.deadline:g})"
        )


def build_dts(
    tvg: TVG,
    deadline: Optional[float] = None,
    prune: bool = True,
    max_depth: Optional[int] = None,
) -> DiscreteTimeSet:
    """Build the DTS of ``tvg`` over ``[0, deadline]`` (Definition 5.2).

    Parameters
    ----------
    deadline:
        The delay constraint ``T``; defaults to the TVG horizon.
    prune:
        Drop per-node points at which the node has no neighbor (see module
        docstring).  Disable to obtain the unpruned textbook construction.
    max_depth:
        Maximum τ-trigger chain length for ``τ > 0`` (default ``N − 1``).
    """
    end = tvg.horizon if deadline is None else min(tvg.horizon, deadline)
    adjacent = all_adjacent_partitions(tvg, end)
    stat = status_points(tvg, end, max_depth)

    partitions: Dict[Node, Partition] = {}
    for node in tvg.nodes:
        pts = set(adjacent[node].points)
        pts.update(p for p in stat if p <= end)
        ordered = sorted(pts)
        if prune:
            # Keep a point iff the node could act there: transmit (it has a
            # neighbor at t) or receive (some neighbor transmitted at t − τ;
            # for τ = 0 the two coincide).  Span endpoints always stay.
            # Both predicates are answered by forward sweeps over the node's
            # contact boundaries — the candidate points are sorted, so one
            # pass replaces a per-point interval scan.
            tau = tvg.tau
            tx_sweep = tvg.sweep(node)
            rx_sweep = tvg.sweep(node) if tau > 0.0 else None
            kept = []
            for t in ordered:
                if (
                    t in (0.0, end)
                    or tx_sweep.advance(t)
                    or (rx_sweep is not None and rx_sweep.advance(t - tau))
                ):
                    kept.append(t)
            tx_sweep.finish()
            if rx_sweep is not None:
                rx_sweep.finish()
        else:
            kept = ordered
        final = set(kept)
        final.add(0.0)
        final.add(end)
        partitions[node] = Partition(sorted(final))
    return DiscreteTimeSet(partitions=partitions, deadline=end, tau=tvg.tau)

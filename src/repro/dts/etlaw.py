"""The earliest-transmission law (Proposition 5.1).

A feasible schedule stays feasible when each transmission is moved to its
*earliest* time within the relay's current adjacent-partition interval:

    t_earliest = t'   if the relay's informed time t' lies in [t_s, t_e)
    t_earliest = t_s  otherwise

(the relay keeps the same connected set throughout the interval, and it is
already informed at the new time).  Iterating this to a fixpoint yields an
ET-law schedule whose transmission times all lie on the DTS — the
constructive half of Theorem 5.2 and the property the equivalence tests
exercise.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

from ..core.partitions import Partition
from ..schedule.probability import informed_time
from ..schedule.schedule import Schedule, Transmission
from ..tveg.graph import TVEG
from .adjacent import adjacent_partition

__all__ = ["earliest_transmission_time", "apply_et_law", "follows_et_law"]

Node = Hashable


def earliest_transmission_time(
    partition: Partition, t: float, informed_at: float
) -> float:
    """Proposition 5.1's ``t_earliest`` for one transmission.

    ``partition`` is the relay's adjacent partition, ``t`` its current
    transmission time, ``informed_at`` the instant the relay became informed
    (``t' ≤ t`` for any feasible schedule).
    """
    interval = partition.interval_of(t)
    if interval.start <= informed_at < interval.end:
        return informed_at
    return interval.start


def apply_et_law(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    eps: Optional[float] = None,
    start_time: float = 0.0,
    max_rounds: Optional[int] = None,
) -> Schedule:
    """Normalize a feasible schedule to follow the ET-law.

    Repeatedly replaces each transmission time with its ``t_earliest`` under
    the *current* schedule (moving one transmission earlier can only make
    informed times earlier, so the iteration decreases monotonically and
    terminates — the argument of Theorem 5.2).  Raises nothing on an
    infeasible input; it simply returns the best-effort normalization.
    """
    e = tveg.params.epsilon if eps is None else eps
    partitions = {}
    current = schedule
    rounds = max_rounds if max_rounds is not None else max(4, len(schedule) + 1)

    for _ in range(rounds):
        changed = False
        rows = list(current)
        for k, s in enumerate(rows):
            if s.relay not in partitions:
                partitions[s.relay] = adjacent_partition(tveg.tvg, s.relay)
            t_inf = informed_time(tveg, current, s.relay, source, e, start_time)
            if not math.isfinite(t_inf):
                continue  # relay never informed; leave the row alone
            t_new = earliest_transmission_time(partitions[s.relay], s.time, t_inf)
            # Never move before the relay is informed or the broadcast start.
            t_new = max(t_new, t_inf, start_time)
            if t_new < s.time - 1e-12:
                rows[k] = s.with_time(t_new)
                changed = True
                current = Schedule(rows)
                rows = list(current)
        if not changed:
            break
    return current


def follows_et_law(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    eps: Optional[float] = None,
    start_time: float = 0.0,
    tol: float = 1e-9,
) -> bool:
    """True iff every transmission already departs at its ``t_earliest``."""
    e = tveg.params.epsilon if eps is None else eps
    partitions = {}
    for s in schedule:
        if s.relay not in partitions:
            partitions[s.relay] = adjacent_partition(tveg.tvg, s.relay)
        t_inf = informed_time(tveg, schedule, s.relay, source, e, start_time)
        if not math.isfinite(t_inf):
            return False
        t_earliest = max(
            earliest_transmission_time(partitions[s.relay], s.time, t_inf),
            t_inf,
            start_time,
        )
        if s.time > t_earliest + tol:
            return False
    return True

"""Adjacent partitions (Section V, Eq. 9).

For a pair ``(v_i, v_j)`` the time span splits into alternating *adjacent*
and *non-adjacent* intervals — the pair partition ``P^ad_{i,j}`` whose points
are the boundaries of the pair's (τ-eroded) adjacency set.  A node's
adjacent partition ``P^ad_i`` is the combination over all other nodes
(Eq. 9): within each of its intervals, the set of nodes ``v_i`` is connected
to is constant — the property Proposition 5.1's ET-law rests on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..core.partitions import Partition, combine
from ..temporal.tvg import TVG, edge_key

__all__ = ["pair_partition", "adjacent_partition", "all_adjacent_partitions"]

Node = Hashable


def _span(tvg: TVG, deadline: Optional[float]) -> Tuple[float, float]:
    end = tvg.horizon if deadline is None else min(tvg.horizon, deadline)
    return 0.0, end


def pair_partition(
    tvg: TVG, u: Node, v: Node, deadline: Optional[float] = None
) -> Partition:
    """The pair partition ``P^ad_{u,v}`` over ``[0, deadline]``.

    Its points are the boundaries of the pair's adjacency set (the τ-eroded
    presence), so each interval is entirely adjacent or entirely
    non-adjacent.
    """
    start, end = _span(tvg, deadline)
    boundaries = tvg.adjacency_set(u, v).boundaries_within(start, end)
    return Partition.from_boundaries(boundaries, start, end)


def adjacent_partition(
    tvg: TVG, node: Node, deadline: Optional[float] = None
) -> Partition:
    """The node's adjacent partition ``P^ad_i = ∪_j P^ad_{i,j}`` (Eq. 9)."""
    start, end = _span(tvg, deadline)
    points = [start, end]
    for (a, b), pres in tvg.edges_with_presence():
        if a == node or b == node:
            adj = pres.erode(tvg.tau)
            points.extend(adj.boundaries_within(start, end))
    return Partition(points) if len(set(points)) >= 2 else Partition.trivial(start, end)


def all_adjacent_partitions(
    tvg: TVG, deadline: Optional[float] = None
) -> Dict[Node, Partition]:
    """``P^ad_V = {P^ad_1, ..., P^ad_N}`` — one pass over all edges."""
    start, end = _span(tvg, deadline)
    points: Dict[Node, list] = {n: [start, end] for n in tvg.nodes}
    for (a, b), pres in tvg.edges_with_presence():
        bnds = pres.erode(tvg.tau).boundaries_within(start, end)
        points[a].extend(bnds)
        points[b].extend(bnds)
    return {n: Partition(pts) for n, pts in points.items()}

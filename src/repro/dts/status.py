"""Status partitions: the time points at which node status can change.

Under the ET-law every transmission departs either at the start of an
adjacent-partition interval or at the instant its relay became informed.
Receptions therefore happen at *triggered* times: an adjacency boundary
shifted by up to ``|journey| ≤ N − 1`` multiples of ``τ`` (the paper's
``O(N³L)`` bound; Fig. 2 illustrates the triggering).  With the contact-trace
approximation ``τ = 0`` every triggered time collapses onto its base
boundary, giving the paper's ``O(N²L)`` bound.

Any refinement of a status partition is itself a status partition (status
still cannot change inside the smaller intervals), so we use one *global*
status point set for all nodes — exactness is preserved while the
construction stays a single pass over the trace.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set, Tuple

from ..temporal.tvg import TVG

__all__ = ["status_points"]

Node = Hashable


def status_points(
    tvg: TVG,
    deadline: Optional[float] = None,
    max_depth: Optional[int] = None,
) -> Tuple[float, ...]:
    """All time points at which any node's status could change.

    Base points are the adjacency boundaries of every pair (plus 0); with
    ``τ > 0`` each base point additionally triggers ``t + kτ`` for
    ``k = 1 .. max_depth`` (default ``N − 1``, the maximal circle-free
    journey length).  Points beyond ``deadline`` are dropped.
    """
    end = tvg.horizon if deadline is None else min(tvg.horizon, deadline)
    base: Set[float] = {0.0}
    for _, pres in tvg.edges_with_presence():
        base.update(pres.erode(tvg.tau).boundaries_within(0.0, end))

    tau = tvg.tau
    if tau == 0.0:
        return tuple(sorted(base))

    depth = (tvg.num_nodes - 1) if max_depth is None else max_depth
    triggered: Set[float] = set(base)
    for t in base:
        shifted = t
        for _ in range(depth):
            # Iterative addition (not t + k·τ) so a reception computed as
            # "sender's point + τ" reproduces the stored float EXACTLY —
            # the auxiliary graph matches reception points by equality.
            shifted = shifted + tau
            if shifted > end:
                break
            triggered.add(shifted)
    return tuple(sorted(triggered))

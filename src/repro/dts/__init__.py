"""Discrete time sets (Section V): partitions, ET-law, DTS construction."""

from .adjacent import adjacent_partition, all_adjacent_partitions, pair_partition
from .dts import DiscreteTimeSet, build_dts
from .etlaw import apply_et_law, earliest_transmission_time, follows_et_law
from .status import status_points

__all__ = [
    "pair_partition",
    "adjacent_partition",
    "all_adjacent_partitions",
    "status_points",
    "DiscreteTimeSet",
    "build_dts",
    "apply_et_law",
    "earliest_transmission_time",
    "follows_et_law",
]

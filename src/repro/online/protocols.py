"""The classic opportunistic forwarding protocols.

* :class:`Epidemic` — forward at every opportunity (Vahdat & Becker).
  Delivery-optimal among online protocols (it realizes every foremost
  journey) at maximal energy.
* :class:`Gossip` — forward with probability ``p`` per opportunity;
  interpolates between epidemic (p = 1) and direct delivery (p → 0).
* :class:`SprayAndWait` — binary spray (Spyropoulos et al.): the source
  starts with ``L`` copy tokens; a carrier with ``k > 1`` tokens hands
  ⌈k/2⌉ to the receiver; with one token it only delivers directly to the
  destination-less broadcast analog: it keeps forwarding only to
  *uninformed* nodes it meets but spawns no further spreaders.
* :class:`DirectDelivery` — the source alone forwards (the lower envelope).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..errors import SolverError
from .base import ForwardDecision, NodeView, OnlineProtocol

__all__ = ["Epidemic", "Gossip", "SprayAndWait", "DirectDelivery", "make_protocol"]

Node = Hashable


class Epidemic(OnlineProtocol):
    """Forward at every contact with an uninformed node."""

    name = "epidemic"

    def on_contact(self, carrier: NodeView, other: Node, time: float, rng):
        return ForwardDecision(transmit=True)


class Gossip(OnlineProtocol):
    """Forward with probability ``p`` per opportunity."""

    name = "gossip"

    def __init__(self, p: float = 0.5):
        if not (0.0 < p <= 1.0):
            raise SolverError("gossip probability must be in (0, 1]")
        self.p = p

    def on_contact(self, carrier: NodeView, other: Node, time: float, rng):
        return ForwardDecision(transmit=bool(rng.random() < self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gossip(p={self.p:g})"


class SprayAndWait(OnlineProtocol):
    """Binary spray with ``L`` copy tokens.

    A carrier holding ``k ≥ 2`` tokens gives ⌈k/2⌉ to the newly informed
    node and keeps the rest; a carrier holding 1 token still *informs*
    whoever it meets (broadcast semantics — there is no single destination
    to wait for) but hands over no tokens, so the receiver never spreads
    further.  Token budgets bound the number of active spreaders at ``L``.
    """

    name = "spray-and-wait"

    def __init__(self, tokens: int = 8):
        if tokens < 1:
            raise SolverError("spray-and-wait needs at least one token")
        self.tokens = tokens

    def initial_tokens(self) -> Optional[int]:
        return self.tokens

    def on_contact(self, carrier: NodeView, other: Node, time: float, rng):
        k = carrier.tokens if carrier.tokens is not None else self.tokens
        if k >= 2:
            return ForwardDecision(transmit=True, tokens_given=(k + 1) // 2)
        return ForwardDecision(transmit=True, tokens_given=0)


class DirectDelivery(OnlineProtocol):
    """Only the source ever forwards — the minimal-energy online envelope."""

    name = "direct"

    def __init__(self, source: Node = None):
        self._source = source

    def bind_source(self, source: Node) -> None:
        self._source = source

    def on_contact(self, carrier: NodeView, other: Node, time: float, rng):
        return ForwardDecision(transmit=carrier.node == self._source)


_PROTOCOLS = {
    "epidemic": Epidemic,
    "gossip": Gossip,
    "spray-and-wait": SprayAndWait,
    "direct": DirectDelivery,
}


def make_protocol(name: str, **kwargs) -> OnlineProtocol:
    """Instantiate an online protocol by name."""
    try:
        cls = _PROTOCOLS[name.lower()]
    except KeyError:
        raise SolverError(
            f"unknown protocol {name!r}; choose from {sorted(_PROTOCOLS)}"
        ) from None
    return cls(**kwargs)

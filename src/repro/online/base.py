"""Online forwarding protocols: the non-clairvoyant counterpart.

The paper's schedulers are *offline*: they see the whole TVEG (all future
contacts) and optimize globally.  Real opportunistic networks run *online*
protocols — at each contact the nodes decide, with no knowledge of future
contacts, whether to hand the packet over.  This subpackage implements the
classic protocols of the literature the paper's trace citation ([12],
"Impact of human mobility on opportunistic forwarding algorithms")
evaluates, so the offline optimum can be put in context:

* how much energy does clairvoyance save (EEDCB vs epidemic)?
* how much delivery does thrift cost (spray-and-wait vs epidemic)?

A protocol is a policy object: at each contact between a carrier and a
non-carrier it returns a :class:`ForwardDecision` (whether to transmit and
at which cost); the engine in :mod:`repro.online.engine` handles time,
channel randomness, and bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

__all__ = ["ForwardDecision", "NodeView", "OnlineProtocol"]

Node = Hashable


@dataclass(frozen=True)
class ForwardDecision:
    """What a carrier does at one contact opportunity."""

    transmit: bool
    #: transmit cost; None = the link's single-hop cost for the channel
    #: (static minimum / fading w0) chosen by the engine
    cost: Optional[float] = None
    #: copy tokens handed to the receiver on success (spray protocols);
    #: None = unlimited replication (epidemic semantics)
    tokens_given: Optional[int] = None


@dataclass
class NodeView:
    """What a node is allowed to know when deciding — no future contacts.

    ``tokens`` is the replication budget the node carries (None =
    unlimited); ``received_at`` is when it got its copy; ``forwards`` counts
    its own successful handovers so far.
    """

    node: Node
    received_at: float
    tokens: Optional[int] = None
    forwards: int = 0


class OnlineProtocol(ABC):
    """Decision policy for contact-by-contact forwarding."""

    name: str = "abstract"

    @abstractmethod
    def on_contact(
        self,
        carrier: NodeView,
        other: Node,
        time: float,
        rng,
    ) -> ForwardDecision:
        """Decide whether ``carrier`` forwards to ``other`` at ``time``.

        Called once per (contact, direction) where exactly the carrier side
        holds the packet.  ``rng`` is the trial's random stream — protocols
        must draw randomness only from it (reproducibility).
        """

    def initial_tokens(self) -> Optional[int]:
        """Replication budget installed at the source (None = unlimited)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

"""Online (non-clairvoyant) forwarding protocols and their engine."""

from .base import ForwardDecision, NodeView, OnlineProtocol
from .engine import OnlineOutcome, OnlineSummary, run_online, run_online_trials
from .protocols import (
    DirectDelivery,
    Epidemic,
    Gossip,
    SprayAndWait,
    make_protocol,
)

__all__ = [
    "OnlineProtocol",
    "ForwardDecision",
    "NodeView",
    "Epidemic",
    "Gossip",
    "SprayAndWait",
    "DirectDelivery",
    "make_protocol",
    "run_online",
    "run_online_trials",
    "OnlineOutcome",
    "OnlineSummary",
]

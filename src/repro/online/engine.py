"""Event-driven execution of online forwarding protocols on a TVEG.

The engine walks contact opportunities chronologically with **no knowledge
of the future**: when a node acquires the packet, an exchange opportunity
is scheduled for every currently/later active contact it has; the protocol
decides per opportunity, the channel decides success (via the edge's
ED-function), and failures may be retried while the contact lasts.

Unlike the offline schedule executor (:mod:`repro.sim`), energy here counts
*every attempt* — an online node cannot know a transmission will fade out,
so failed attempts burn energy too.  Comparing the resulting energy against
EEDCB's offline optimum quantifies the price of non-clairvoyance.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.rng import SeedLike, as_generator, spawn
from ..errors import SolverError
from ..tveg.graph import TVEG
from .base import ForwardDecision, NodeView, OnlineProtocol
from .protocols import DirectDelivery

__all__ = ["OnlineOutcome", "OnlineSummary", "run_online", "run_online_trials"]

Node = Hashable


@dataclass(frozen=True)
class OnlineOutcome:
    """One trial of an online protocol."""

    received: frozenset
    energy: float
    attempts: int
    successes: int
    #: per-node reception times (source at start_time)
    reception_times: Tuple[Tuple[Node, float], ...]

    def delivery_ratio(self, num_nodes: int) -> float:
        return len(self.received) / num_nodes


@dataclass(frozen=True)
class OnlineSummary:
    """Aggregate over independent trials."""

    num_trials: int
    mean_delivery: float
    mean_energy: float
    mean_attempts: float
    mean_latency: float  # mean reception time of reached nodes


def run_online(
    tveg: TVEG,
    protocol: OnlineProtocol,
    source: Node,
    deadline: float,
    seed: SeedLike = None,
    retry_interval: float = 30.0,
    max_attempts_per_contact: int = 4,
) -> OnlineOutcome:
    """Run one trial of ``protocol`` from ``source`` until ``deadline``."""
    if retry_interval <= 0 or max_attempts_per_contact < 1:
        raise SolverError("retry_interval > 0 and max_attempts >= 1 required")
    if isinstance(protocol, DirectDelivery):
        protocol.bind_source(source)
    rng = as_generator(seed)
    views: Dict[Node, NodeView] = {
        source: NodeView(node=source, received_at=0.0, tokens=protocol.initial_tokens())
    }
    energy = 0.0
    attempts = 0
    successes = 0
    # Hoisted: attempt events must cost nothing when the ledger is off
    # (run_online_trials calls this engine once per Monte-Carlo trial).
    led = obs.get_ledger()
    recording = led.enabled

    # (time, seq, carrier, other, attempts_left)
    heap: List[Tuple[float, int, Node, Node, int]] = []
    seq = 0

    def schedule_opportunities(node: Node, t: float) -> None:
        """New carrier at time t: queue an exchange per relevant contact."""
        nonlocal seq
        for other in tveg.tvg.incident(node):
            for iv in tveg.tvg.adjacency_set(node, other):
                start = max(iv.start, t)
                if start >= deadline or start >= iv.end:
                    continue
                heapq.heappush(
                    heap, (start, seq, node, other, max_attempts_per_contact)
                )
                seq += 1

    schedule_opportunities(source, 0.0)

    with obs.span("online.run", protocol=type(protocol).__name__):
        while heap:
            t, _, carrier, other, tries = heapq.heappop(heap)
            if t >= deadline:
                break
            if other in views:
                continue  # already informed meanwhile
            view = views[carrier]
            if view.tokens is not None and view.tokens < 1:
                continue  # spray-and-wait leaf: holds packet, never spreads
            if not tveg.adjacent(carrier, other, t):
                continue  # contact over (or τ-window no longer fits)
            decision = protocol.on_contact(view, other, t, rng)
            if decision.transmit:
                cost = (
                    decision.cost
                    if decision.cost is not None
                    else tveg.min_cost(carrier, other, t)
                )
                if math.isfinite(cost):
                    energy += cost
                    attempts += 1
                    p_fail = tveg.failure(carrier, other, t, cost)
                    ok = rng.random() >= p_fail
                    if recording:
                        # carrier/peer/success are the historical names;
                        # msg/src/dst/outcome mirror the protosim's msg_*
                        # events so one ledger filter reads both engines
                        # (repro.obs.report.message_rows).
                        led.emit(
                            obs.EV_ONLINE_ATTEMPT, t=t, carrier=carrier,
                            peer=other, cost=cost, success=ok,
                            msg="data", src=carrier, dst=other,
                            outcome="received" if ok else "dropped",
                        )
                    if ok:
                        successes += 1
                        view.forwards += 1
                        given = decision.tokens_given
                        if view.tokens is not None and given is not None:
                            given = min(given, view.tokens - 1)
                            view.tokens -= given
                        views[other] = NodeView(
                            node=other,
                            received_at=t + tveg.tau,
                            tokens=given,
                        )
                        schedule_opportunities(other, t + tveg.tau)
                        continue
            # failed or declined: retry later within the same contact
            if tries > 1:
                heapq.heappush(
                    heap, (t + retry_interval, seq, carrier, other, tries - 1)
                )
                seq += 1
    if attempts:
        obs.counter("online.attempts", attempts)
    if successes:
        obs.counter("online.successes", successes)

    reception = tuple(
        sorted(((n, v.received_at) for n, v in views.items()), key=lambda kv: kv[1])
    )
    return OnlineOutcome(
        received=frozenset(views),
        energy=energy,
        attempts=attempts,
        successes=successes,
        reception_times=reception,
    )


def run_online_trials(
    tveg: TVEG,
    protocol: OnlineProtocol,
    source: Node,
    deadline: float,
    num_trials: int = 50,
    seed: SeedLike = None,
    **engine_kwargs,
) -> OnlineSummary:
    """Aggregate independent online trials (seeded child streams)."""
    rng = as_generator(seed)
    children = spawn(rng, num_trials)
    deliveries = np.empty(num_trials)
    energies = np.empty(num_trials)
    att = np.empty(num_trials)
    latencies: List[float] = []
    n = tveg.num_nodes
    for i, child in enumerate(children):
        out = run_online(tveg, protocol, source, deadline, child, **engine_kwargs)
        deliveries[i] = out.delivery_ratio(n)
        energies[i] = out.energy
        att[i] = out.attempts
        latencies.extend(t for _, t in out.reception_times)
    return OnlineSummary(
        num_trials=num_trials,
        mean_delivery=float(deliveries.mean()),
        mean_energy=float(energies.mean()),
        mean_attempts=float(att.mean()),
        mean_latency=float(np.mean(latencies)) if latencies else math.nan,
    )

"""Auxiliary graph (Section VI-A): construction and schedule extraction."""

from .build import AuxGraph, build_aux_graph
from .compact import CompactAuxGraph, build_compact_aux_graph, from_aux_graph
from .extract import extract_schedule
from .model import (
    is_state,
    is_tx,
    level_of,
    node_of,
    point_index_of,
    state_node,
    tx_node,
)

__all__ = [
    "AuxGraph",
    "build_aux_graph",
    "CompactAuxGraph",
    "build_compact_aux_graph",
    "from_aux_graph",
    "extract_schedule",
    "state_node",
    "tx_node",
    "is_state",
    "is_tx",
    "node_of",
    "point_index_of",
    "level_of",
]

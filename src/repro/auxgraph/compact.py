"""Flat-array (CSR) auxiliary graph — the scheduler pipeline's fast path.

:func:`build_aux_graph` (the networkx construction) spends most of its time
creating dict-of-dict adjacency and tuple node keys, only for the Steiner
solver to immediately flatten everything back to int-indexed arrays.  This
module skips the round trip: :func:`build_compact_aux_graph` produces a
:class:`CompactAuxGraph` — int node ids, CSR adjacency (``indptr`` /
``targets`` / ``weights`` stdlib arrays) — directly from the timeline-sweep
DCS computation, and :func:`~repro.steiner.dst.greedy_incremental_dst`
consumes it natively with no per-call re-indexing.

The construction mirrors :func:`build_aux_graph` *exactly*: node ids follow
the same insertion order (all state nodes, then transmission nodes as
created) and per-node adjacency follows the same edge insertion order
(waiting edge first, then transmission edges by level; coverage edges in
DCS entry order).  Because the greedy Steiner solver breaks distance ties
by node index and adjacency order, this makes ``backend="compact"`` and
``backend="nx"`` runs byte-identical, not merely equivalent — a property
the equivalence suite pins down.  :meth:`CompactAuxGraph.to_networkx` /
:func:`from_aux_graph` convert losslessly in both directions.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from .. import obs
from ..dts.dts import DiscreteTimeSet, build_dts
from ..errors import GraphModelError
from ..tveg.costsets import DiscreteCostSet, discrete_cost_sets
from ..tveg.graph import TVEG
from .build import AuxGraph, _point_index
from .model import AuxNode, state_node, tx_node

__all__ = ["CompactAuxGraph", "build_compact_aux_graph", "from_aux_graph"]

Node = Hashable


@dataclass
class CompactAuxGraph:
    """Int-indexed CSR auxiliary graph plus decoding bookkeeping.

    ``aux_nodes[i]`` is the tuple-form auxiliary node with id ``i``;
    out-edges of ``i`` are ``targets[indptr[i]:indptr[i+1]]`` with parallel
    ``weights``.  Exposes the same decoding surface as
    :class:`~repro.auxgraph.build.AuxGraph` (``root`` / ``terminals`` /
    ``cost_sets`` / ``time_of``), so schedule extraction works unchanged.
    """

    indptr: array
    targets: array
    weights: array
    aux_nodes: List[AuxNode]
    times: array
    dts: DiscreteTimeSet
    source: Node
    root: AuxNode
    terminals: Tuple[AuxNode, ...]
    root_index: int
    terminal_indices: Tuple[int, ...]
    #: DCS per (node, point index) — reused during schedule extraction
    cost_sets: Dict[Tuple[Node, int], DiscreteCostSet] = field(
        default_factory=dict
    )
    _index: Optional[Dict[AuxNode, int]] = field(default=None, repr=False)
    #: graph node → id of its first state node; filled by the builders,
    #: ``None`` on converted graphs.  Enables :meth:`retarget`.
    state_base: Optional[Dict[Node, int]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # sizes (same surface as AuxGraph / nx.DiGraph)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.aux_nodes)

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def number_of_nodes(self) -> int:
        return len(self.aux_nodes)

    def number_of_edges(self) -> int:
        return len(self.targets)

    @property
    def dcs_levels(self) -> int:
        """Total DCS levels over every (node, point) with a usable DCS."""
        return sum(len(cs) for cs in self.cost_sets.values())

    def time_of(self, node: Node, point_index: int) -> float:
        return self.dts.points(node)[point_index]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def index_of(self, aux: AuxNode) -> int:
        """Int id of a tuple-form auxiliary node (index built lazily)."""
        if self._index is None:
            self._index = {n: i for i, n in enumerate(self.aux_nodes)}
        return self._index[aux]

    def edge_weight(self, u: AuxNode, v: AuxNode) -> float:
        """Weight of the edge ``u → v`` (KeyError-style failure if absent)."""
        ui, vi = self.index_of(u), self.index_of(v)
        for k in range(self.indptr[ui], self.indptr[ui + 1]):
            if self.targets[k] == vi:
                return self.weights[k]
        raise GraphModelError(f"no auxiliary edge {u!r} → {v!r}")

    def out_edges(self, i: int) -> Tuple[Tuple[int, float], ...]:
        """``(target id, weight)`` pairs of node id ``i``, CSR order."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return tuple(
            (self.targets[k], self.weights[k]) for k in range(lo, hi)
        )

    # ------------------------------------------------------------------
    # retargeting (the batch-planning amortization)
    # ------------------------------------------------------------------
    def retarget(
        self, source: Node, targets: Optional[Tuple[Node, ...]] = None
    ) -> "CompactAuxGraph":
        """The same auxiliary graph, re-rooted at a different source.

        The Section VI-A construction depends only on the TVEG and the
        deadline — the source merely selects the root state node and
        drops itself from the terminal set — so a built graph can serve
        every source.  Returns a shallow copy sharing all arrays with
        ``self``; only root/terminal bookkeeping is recomputed, exactly
        as the builder would have produced it.  This is what lets
        ``plan_broadcast_many`` pay for one build across k sources.
        """
        from dataclasses import replace

        if self.state_base is None:
            raise GraphModelError(
                "retarget requires a builder-produced graph "
                "(state_base is unset on converted graphs)"
            )
        if source not in self.state_base:
            raise GraphModelError(f"unknown source {source!r}")
        if targets is not None:
            unknown = [t for t in targets if t not in self.state_base]
            if unknown:
                raise GraphModelError(f"unknown targets {unknown!r}")
        wanted = (
            tuple(n for n in self.dts.nodes if n != source)
            if targets is None
            else tuple(n for n in targets if n != source)
        )
        return replace(
            self,
            source=source,
            root=state_node(source, 0),
            root_index=self.state_base[source],
            terminals=tuple(
                state_node(n, len(self.dts.points(n)) - 1) for n in wanted
            ),
            terminal_indices=tuple(
                self.state_base[n] + len(self.dts.points(n)) - 1
                for n in wanted
            ),
        )

    # ------------------------------------------------------------------
    # conversion (lossless, for the non-greedy solvers and tests)
    # ------------------------------------------------------------------
    def to_networkx(self):
        """The equivalent :class:`networkx.DiGraph` (node ``time`` attrs,
        edge ``weight`` attrs, matching insertion order)."""
        import networkx as nx

        g = nx.DiGraph()
        for aux, t in zip(self.aux_nodes, self.times):
            g.add_node(aux, time=t)
        indptr, targets, weights = self.indptr, self.targets, self.weights
        for i, u in enumerate(self.aux_nodes):
            for k in range(indptr[i], indptr[i + 1]):
                g.add_edge(u, self.aux_nodes[targets[k]], weight=weights[k])
        return g

    def to_aux_graph(self) -> AuxGraph:
        """The equivalent networkx-backed :class:`AuxGraph`."""
        return AuxGraph(
            graph=self.to_networkx(),
            dts=self.dts,
            source=self.source,
            root=self.root,
            terminals=self.terminals,
            cost_sets=dict(self.cost_sets),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompactAuxGraph(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, terminals={len(self.terminals)})"
        )


def from_aux_graph(aux: AuxGraph) -> CompactAuxGraph:
    """Losslessly re-encode a networkx-backed :class:`AuxGraph` as CSR."""
    g = aux.graph
    nodes = list(g.nodes)
    index = {n: i for i, n in enumerate(nodes)}
    times = array("d", (g.nodes[n].get("time", math.nan) for n in nodes))
    indptr = array("l", [0])
    targets = array("l")
    weights = array("d")
    for n in nodes:
        for _, v, data in g.edges(n, data=True):
            targets.append(index[v])
            weights.append(float(data.get("weight", 0.0)))
        indptr.append(len(targets))
    return CompactAuxGraph(
        indptr=indptr,
        targets=targets,
        weights=weights,
        aux_nodes=nodes,
        times=times,
        dts=aux.dts,
        source=aux.source,
        root=aux.root,
        terminals=aux.terminals,
        root_index=index[aux.root],
        terminal_indices=tuple(index[t] for t in aux.terminals),
        cost_sets=dict(aux.cost_sets),
        _index=index,
    )


@obs.span("auxgraph.compact_build")
def build_compact_aux_graph(
    tveg: TVEG,
    source: Node,
    deadline: Optional[float] = None,
    dts: Optional[DiscreteTimeSet] = None,
    targets: Optional[Tuple[Node, ...]] = None,
) -> CompactAuxGraph:
    """Build the Section VI-A auxiliary graph directly in CSR form.

    Semantically identical to :func:`~repro.auxgraph.build.build_aux_graph`
    (same nodes, edges, weights, node/edge ordering — see module docstring)
    but constructed from flat arrays fed by one timeline sweep per node,
    with no networkx object graph in between.
    """
    if not tveg.tvg.has_node(source):
        raise GraphModelError(f"unknown source {source!r}")
    if targets is not None:
        unknown = [t for t in targets if not tveg.tvg.has_node(t)]
        if unknown:
            raise GraphModelError(f"unknown targets {unknown!r}")
    end = tveg.horizon if deadline is None else min(tveg.horizon, deadline)
    d = dts if dts is not None else build_dts(tveg.tvg, end)
    tau = tveg.tau

    # State nodes first, in (node, point) order — same ids the nx build's
    # insertion order produces.
    aux_nodes: List[AuxNode] = []
    times = array("d")
    state_base: Dict[Node, int] = {}
    all_points: Dict[Node, Tuple[float, ...]] = {}
    for node in tveg.nodes:
        pts = d.points(node)
        state_base[node] = len(aux_nodes)
        all_points[node] = pts
        for l in range(len(pts)):
            aux_nodes.append(state_node(node, l))
            times.append(pts[l])

    # Adjacency accumulators (per-source edge lists, flattened to CSR last).
    adj_t: List[List[int]] = [[] for _ in aux_nodes]
    adj_w: List[List[float]] = [[] for _ in aux_nodes]
    for node in tveg.nodes:
        base, pts = state_base[node], all_points[node]
        for l in range(len(pts) - 1):
            adj_t[base + l].append(base + l + 1)
            adj_w[base + l].append(0.0)  # waiting edge

    # Transmission and coverage edges; one DCS sweep per node.
    cost_sets: Dict[Tuple[Node, int], DiscreteCostSet] = {}
    for node in tveg.nodes:
        base, pts = state_base[node], all_points[node]
        all_dcs = discrete_cost_sets(tveg, node, pts)
        for l, t in enumerate(pts):
            if t + tau > end:
                continue  # transmission could not complete by the deadline
            dcs = all_dcs[l]
            if dcs.is_empty:
                continue
            t_recv = t + tau
            # Receivers whose DTS lacks the reception point are dropped
            # (see build_aux_graph: provably useless coverage).  The kept
            # ones stay in DCS entry order, so they are cost-ascending and
            # level k's coverage is a prefix of the list.
            r_costs: List[float] = []
            r_states: List[int] = []
            for c, nbr in dcs.entries:
                f = _point_index(all_points[nbr], t_recv)
                if f is not None:
                    r_costs.append(c)
                    r_states.append(state_base[nbr] + f)
            if not r_costs:
                continue
            cost_sets[(node, l)] = dcs
            for k, (w, _) in enumerate(dcs.entries):
                j = bisect_right(r_costs, w)
                if j == 0:
                    continue
                x = len(aux_nodes)
                aux_nodes.append(tx_node(node, l, k))
                times.append(t)
                adj_t.append(r_states[:j])
                adj_w.append([0.0] * j)
                adj_t[base + l].append(x)
                adj_w[base + l].append(w)

    # Flatten to CSR.
    indptr = array("l", [0])
    targets_arr = array("l")
    weights_arr = array("d")
    for ts, ws in zip(adj_t, adj_w):
        targets_arr.extend(ts)
        weights_arr.extend(ws)
        indptr.append(len(targets_arr))

    root = state_node(source, 0)
    wanted = (
        tuple(n for n in tveg.nodes if n != source)
        if targets is None
        else tuple(n for n in targets if n != source)
    )
    terminals = tuple(
        state_node(n, len(all_points[n]) - 1) for n in wanted
    )
    terminal_indices = tuple(
        state_base[n] + len(all_points[n]) - 1 for n in wanted
    )
    obs.gauge("auxgraph.nodes", len(aux_nodes))
    obs.gauge("auxgraph.edges", len(targets_arr))
    obs.gauge(
        "auxgraph.dcs_levels", sum(len(cs) for cs in cost_sets.values())
    )
    obs.counter("auxgraph.compact_builds")
    return CompactAuxGraph(
        indptr=indptr,
        targets=targets_arr,
        weights=weights_arr,
        aux_nodes=aux_nodes,
        times=times,
        dts=d,
        source=source,
        root=root,
        terminals=terminals,
        root_index=state_base[source],
        terminal_indices=terminal_indices,
        cost_sets=cost_sets,
        state_base=state_base,
    )

"""Auxiliary-graph construction (Section VI-A, Fig. 3).

Maps TMEDB on a DTS to a minimum-energy multicast (directed Steiner) problem:

* waiting edges ``u_{i,l} → u_{i,l+1}`` with weight 0 — having the packet at
  one DTS point implies having it at the next;
* transmit edges ``u_{i,l} → x_{i,l,k}`` with weight ``w^k_{i,t}`` — pay the
  ``k``-th DCS level once;
* coverage edges ``x_{i,l,k} → u_{j,f}`` with weight 0 for every ``v_j``
  whose minimum cost at ``t_{i,l}`` is ≤ ``w^k`` — the broadcast advantage;
  the receiver's point ``t_{j,f}`` equals ``t_{i,l} + τ`` (the paper prints
  ``−τ``, a typo: decoding completes *after* traversal; with the paper's own
  ``τ ≈ 0`` approximation the two coincide).

The graph is a DAG: every edge moves forward in (node-local) time.  TMEDB-S
is then exactly the directed Steiner tree problem rooted at the source's
first state node with the terminals ``D = {u_{i, last}}``.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from .. import obs
from ..dts.dts import DiscreteTimeSet, build_dts
from ..errors import GraphModelError
from ..tveg.costsets import DiscreteCostSet, discrete_cost_sets
from ..tveg.graph import TVEG
from .model import AuxNode, state_node, tx_node

__all__ = ["AuxGraph", "build_aux_graph"]

Node = Hashable
_TOL = 1e-9


@dataclass
class AuxGraph:
    """The auxiliary graph plus the bookkeeping needed to decode trees."""

    graph: nx.DiGraph
    dts: DiscreteTimeSet
    source: Node
    root: AuxNode
    terminals: Tuple[AuxNode, ...]
    #: DCS per (node, point index) — reused during schedule extraction
    cost_sets: Dict[Tuple[Node, int], DiscreteCostSet] = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    @property
    def dcs_levels(self) -> int:
        """Total DCS levels over every (node, point) with a usable DCS."""
        return sum(len(cs) for cs in self.cost_sets.values())

    def time_of(self, node: Node, point_index: int) -> float:
        return self.dts.points(node)[point_index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AuxGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"terminals={len(self.terminals)})"
        )


def _point_index(points: Tuple[float, ...], t: float) -> Optional[int]:
    """Index of the EXACT value ``t`` in sorted ``points``, else None.

    Exact float matching is deliberate: reception times are constructed so
    they reproduce the receiver's stored point bit-for-bit (τ = 0 reuses the
    sender's point; τ > 0 status points are built by iterated ``+ τ``).  A
    tolerance here once allowed a reception to snap to an *earlier* point of
    the receiver — sub-nanosecond time travel that produced causally
    impossible schedules (found by the hypothesis suite).
    """
    i = bisect_left(points, t)
    if i < len(points) and points[i] == t:
        return i
    return None


@obs.span("auxgraph.build")
def build_aux_graph(
    tveg: TVEG,
    source: Node,
    deadline: Optional[float] = None,
    dts: Optional[DiscreteTimeSet] = None,
    targets: Optional[Tuple[Node, ...]] = None,
) -> AuxGraph:
    """Build the Section VI-A auxiliary graph for a TMEDB-S/-R instance.

    For fading channels the DCS entries are the ``w0`` backbone weights
    (Section VI-B), so the same construction drives both EEDCB and
    FR-EEDCB's backbone-selection stage.  ``targets`` selects a multicast
    terminal subset (default: all other nodes — the paper's broadcast);
    this is exactly Liang's original MEMT problem.
    """
    if not tveg.tvg.has_node(source):
        raise GraphModelError(f"unknown source {source!r}")
    if targets is not None:
        unknown = [t for t in targets if not tveg.tvg.has_node(t)]
        if unknown:
            raise GraphModelError(f"unknown targets {unknown!r}")
    end = tveg.horizon if deadline is None else min(tveg.horizon, deadline)
    d = dts if dts is not None else build_dts(tveg.tvg, end)
    tau = tveg.tau

    g = nx.DiGraph()
    cost_sets: Dict[Tuple[Node, int], DiscreteCostSet] = {}

    # State nodes and waiting edges.
    for node in tveg.nodes:
        pts = d.points(node)
        for l in range(len(pts)):
            g.add_node(state_node(node, l), time=pts[l])
        for l in range(len(pts) - 1):
            g.add_edge(state_node(node, l), state_node(node, l + 1), weight=0.0)

    # Transmission and coverage edges.  The DCS at every point of one node
    # comes from a single timeline sweep (see repro.tveg.costsets).
    for node in tveg.nodes:
        pts = d.points(node)
        all_dcs = discrete_cost_sets(tveg, node, pts)
        for l, t in enumerate(pts):
            if t + tau > end:
                continue  # transmission could not complete by the deadline
            dcs = all_dcs[l]
            if dcs.is_empty:
                continue
            t_recv = t + tau
            # Receivers whose DTS lacks the reception point are dropped:
            # with the default trigger depth N−1 this only happens for
            # departures at maximal depth, which no circle-free journey can
            # extend — such coverage is provably useless (Section V's
            # O(N³L) bound counts receptions up to depth N−1 only).
            recv_index: Dict[Node, int] = {}
            for _, nbr in dcs.entries:
                f = _point_index(d.points(nbr), t_recv)
                if f is not None:
                    recv_index[nbr] = f
            reachable = tuple(
                (w, nbr) for w, nbr in dcs.entries if nbr in recv_index
            )
            if not reachable:
                continue
            cost_sets[(node, l)] = dcs
            for k, (w, _) in enumerate(dcs.entries):
                receivers = [nbr for c, nbr in reachable if c <= w]
                if not receivers:
                    continue
                x = tx_node(node, l, k)
                g.add_node(x, time=t)
                g.add_edge(state_node(node, l), x, weight=w)
                for nbr in receivers:
                    g.add_edge(x, state_node(nbr, recv_index[nbr]), weight=0.0)

    root = state_node(source, 0)
    wanted = tuple(n for n in tveg.nodes if n != source) if targets is None else tuple(
        n for n in targets if n != source
    )
    terminals = tuple(state_node(n, len(d.points(n)) - 1) for n in wanted)
    obs.gauge("auxgraph.nodes", g.number_of_nodes())
    obs.gauge("auxgraph.edges", g.number_of_edges())
    obs.gauge("auxgraph.dcs_levels", sum(len(cs) for cs in cost_sets.values()))
    obs.counter("auxgraph.builds")
    return AuxGraph(
        graph=g,
        dts=d,
        source=source,
        root=root,
        terminals=terminals,
        cost_sets=cost_sets,
    )

"""Schedule extraction from auxiliary-graph Steiner trees.

A directed Steiner tree in the auxiliary graph is a set of edges connecting
the root state node to every terminal.  Each transmission node it enters
corresponds to one schedule row ``[v_i, t_{i,l}, w^k]``; waiting and coverage
edges carry no cost and no action.  Two defensive clean-ups are applied:

* duplicate transmissions of one node at one instant collapse to the highest
  cost level (whose coverage is a superset — Property 6.1(i));
* transmission nodes without any outgoing coverage edge in the tree are
  dropped (they inform nobody and only waste energy).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set, Tuple

from ..schedule.schedule import Schedule, Transmission
from .build import AuxGraph
from .model import AuxNode, is_tx, level_of, node_of, point_index_of

__all__ = ["extract_schedule"]

Node = Hashable
Edge = Tuple[AuxNode, AuxNode]


def extract_schedule(aux: AuxGraph, tree_edges: Iterable[Edge]) -> Schedule:
    """Decode a Steiner tree (edge set) into a broadcast relay schedule."""
    edges = list(tree_edges)
    used_tx: Set[AuxNode] = set()
    has_coverage: Set[AuxNode] = set()
    for u, v in edges:
        if is_tx(v):
            used_tx.add(v)
        if is_tx(u):
            has_coverage.add(u)

    # (node, point index) → best level actually used
    best_level: Dict[Tuple[Node, int], int] = {}
    for x in used_tx:
        if x not in has_coverage:
            continue  # informs nobody in the tree — drop
        key = (node_of(x), point_index_of(x))
        k = level_of(x)
        if key not in best_level or k > best_level[key]:
            best_level[key] = k

    rows = []
    for (node, l), k in best_level.items():
        dcs = aux.cost_sets[(node, l)]
        w = dcs.entries[k][0]
        rows.append(Transmission(node, aux.time_of(node, l), w))
    return Schedule(rows)

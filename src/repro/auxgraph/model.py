"""Auxiliary-graph node vocabulary (Section VI-A).

The auxiliary graph has two node kinds:

* **state nodes** ``u_{i,l}`` — "``v_i`` holds the packet at its ``l``-th DTS
  point"; encoded as ``("state", i, l)``.
* **transmission nodes** ``x_{i,l,k}`` — "``v_i`` transmits at its ``l``-th
  DTS point using its ``k``-th DCS level"; encoded as ``("tx", i, l, k)``.

Transmission nodes realize the wireless broadcast advantage (Property
6.1(i)): entering ``x_{i,l,k}`` costs ``w^k`` once, and 0-weight edges then
fan out to *every* receiver state that cost level covers — so a Steiner tree
pays for each transmission exactly once however many children it informs.
This is the encoding Liang's MEMT reduction uses.
"""

from __future__ import annotations

from typing import Hashable, Tuple, Union

__all__ = [
    "state_node",
    "tx_node",
    "is_state",
    "is_tx",
    "node_of",
    "point_index_of",
    "level_of",
]

Node = Hashable
AuxNode = Tuple  # ("state", node, l) | ("tx", node, l, k)


def state_node(node: Node, point_index: int) -> AuxNode:
    """The state node ``u_{node, point_index}``."""
    return ("state", node, point_index)


def tx_node(node: Node, point_index: int, level: int) -> AuxNode:
    """The transmission node ``x_{node, point_index, level}``."""
    return ("tx", node, point_index, level)


def is_state(aux: AuxNode) -> bool:
    return aux[0] == "state"


def is_tx(aux: AuxNode) -> bool:
    return aux[0] == "tx"


def node_of(aux: AuxNode) -> Node:
    """The real network node behind an auxiliary node."""
    return aux[1]


def point_index_of(aux: AuxNode) -> int:
    """The DTS point index of an auxiliary node."""
    return aux[2]


def level_of(aux: AuxNode) -> int:
    """The DCS level of a transmission node."""
    if not is_tx(aux):
        raise ValueError(f"{aux!r} is not a transmission node")
    return aux[3]

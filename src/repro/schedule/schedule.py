"""Broadcast relay schedules (Section IV).

A schedule is the ``n × 3`` matrix ``S = [R, T, W]``: each row — a
:class:`Transmission` — says relay ``r_k`` forwards the packet at time
``t_k`` with cost ``w_k``.  A relay may appear multiple times (the paper
explicitly allows repeated relays).  The class stores rows sorted by time,
which every downstream consumer (probability engine, simulator, ET-law
normalizer) relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScheduleError

__all__ = ["Transmission", "Schedule"]

Node = Hashable


@dataclass(frozen=True)
class Transmission:
    """One schedule row ``s_k = [r_k, t_k, w_k]``."""

    relay: Node
    time: float
    cost: float

    def __post_init__(self) -> None:
        if self.time < 0 or math.isnan(self.time):
            raise ScheduleError(f"transmission time must be >= 0, got {self.time!r}")
        if self.cost < 0 or math.isnan(self.cost):
            raise ScheduleError(f"transmission cost must be >= 0, got {self.cost!r}")

    def with_cost(self, cost: float) -> "Transmission":
        return Transmission(self.relay, self.time, cost)

    def with_time(self, time: float) -> "Transmission":
        return Transmission(self.relay, time, self.cost)


class Schedule:
    """An immutable, time-sorted broadcast relay schedule."""

    __slots__ = ("_rows",)

    def __init__(self, transmissions: Iterable[Transmission] = ()) -> None:
        rows = list(transmissions)
        rows.sort(key=lambda s: (s.time, repr(s.relay)))
        self._rows: Tuple[Transmission, ...] = tuple(rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        relays: Sequence[Node],
        times: Sequence[float],
        costs: Sequence[float],
    ) -> "Schedule":
        """Build from the paper's column vectors ``R``, ``T``, ``W``."""
        if not (len(relays) == len(times) == len(costs)):
            raise ScheduleError("R, T, W must have equal length")
        return cls(
            Transmission(r, float(t), float(w))
            for r, t, w in zip(relays, times, costs)
        )

    @classmethod
    def empty(cls) -> "Schedule":
        return cls(())

    # ------------------------------------------------------------------
    @property
    def transmissions(self) -> Tuple[Transmission, ...]:
        return self._rows

    @property
    def relays(self) -> Tuple[Node, ...]:
        """The relay vector ``R``."""
        return tuple(s.relay for s in self._rows)

    @property
    def times(self) -> Tuple[float, ...]:
        """The time vector ``T``."""
        return tuple(s.time for s in self._rows)

    @property
    def costs(self) -> Tuple[float, ...]:
        """The cost vector ``W``."""
        return tuple(s.cost for s in self._rows)

    @property
    def total_cost(self) -> float:
        """``Σ_k w_k`` — the schedule's objective value."""
        return float(sum(s.cost for s in self._rows))

    @property
    def num_transmissions(self) -> int:
        return len(self._rows)

    @property
    def is_empty(self) -> bool:
        return not self._rows

    def latency(self, tau: float = 0.0) -> float:
        """``max_k t_k + τ`` — broadcast latency (condition (iii))."""
        if not self._rows:
            return 0.0
        return self._rows[-1].time + tau

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Transmission]:
        return iter(self._rows)

    def __getitem__(self, k: int) -> Transmission:
        return self._rows[k]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self._rows) <= 6:
            body = ", ".join(
                f"[{s.relay!r}@{s.time:g}, w={s.cost:.3g}]" for s in self._rows
            )
        else:
            body = f"{len(self._rows)} transmissions, cost={self.total_cost:.3g}"
        return f"Schedule({body})"

    # ------------------------------------------------------------------
    def append(self, transmission: Transmission) -> "Schedule":
        """A new schedule with one more row (re-sorted)."""
        return Schedule(self._rows + (transmission,))

    def extend(self, transmissions: Iterable[Transmission]) -> "Schedule":
        return Schedule(self._rows + tuple(transmissions))

    def with_costs(self, costs: Sequence[float]) -> "Schedule":
        """The same backbone ``[R, T]`` with a new cost vector ``W``.

        This is exactly what FR-EEDCB's energy-allocation stage produces
        (Section VI-B): relays and times fixed, costs re-optimized.
        """
        if len(costs) != len(self._rows):
            raise ScheduleError(
                f"cost vector length {len(costs)} != schedule length {len(self._rows)}"
            )
        return Schedule(
            s.with_cost(float(w)) for s, w in zip(self._rows, costs)
        )

    def before(self, t: float, inclusive: bool = True) -> "Schedule":
        """Rows with ``time <= t`` (or strictly earlier)."""
        if inclusive:
            return Schedule(s for s in self._rows if s.time <= t)
        return Schedule(s for s in self._rows if s.time < t)

    def by_relay(self, relay: Node) -> Tuple[Transmission, ...]:
        return tuple(s for s in self._rows if s.relay == relay)

    def cost_array(self) -> np.ndarray:
        return np.array([s.cost for s in self._rows], dtype=float)

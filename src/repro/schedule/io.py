"""Schedule serialization: save a relay schedule, execute it later.

Schedules are written as headered CSV (``relay,time,cost``) so a plan
computed once (e.g. via ``python -m repro schedule``) can be re-simulated,
audited, or deployed without re-running the scheduler.  Relay labels are
stored as strings; pass ``node_type`` (default ``int``) when reading to
recover the original identifiers.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TextIO, Union

from ..errors import TraceFormatError
from .schedule import Schedule, Transmission

__all__ = ["write_schedule_csv", "read_schedule_csv"]

PathLike = Union[str, Path]


def write_schedule_csv(schedule: Schedule, target: Union[PathLike, TextIO]) -> None:
    """Write a schedule as ``relay,time,cost`` CSV rows."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8", newline="") if owns else target
    try:
        writer = csv.writer(fh)
        writer.writerow(["relay", "time", "cost"])
        for s in schedule:
            writer.writerow([s.relay, repr(float(s.time)), repr(float(s.cost))])
    finally:
        if owns:
            fh.close()


def read_schedule_csv(
    source: Union[PathLike, TextIO], node_type: type = int
) -> Schedule:
    """Read a schedule written by :func:`write_schedule_csv`."""
    owns = isinstance(source, (str, Path))
    fh = open(source, "r", encoding="utf-8") if owns else source
    rows = []
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise TraceFormatError("schedule CSV is empty")
        missing = {"relay", "time", "cost"} - set(reader.fieldnames)
        if missing:
            raise TraceFormatError(f"schedule CSV lacks columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            try:
                rows.append(
                    Transmission(
                        node_type(row["relay"]),
                        float(row["time"]),
                        float(row["cost"]),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"row {lineno}: {exc}") from exc
    finally:
        if owns:
            fh.close()
    return Schedule(rows)

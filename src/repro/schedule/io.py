"""Schedule and plan serialization: save a result, execute it later.

Schedules are written as headered CSV (``relay,time,cost``) so a plan
computed once (e.g. via ``python -m repro schedule``) can be re-simulated,
audited, or deployed without re-running the scheduler.  Relay labels are
stored as strings; pass ``node_type`` (default ``int``) when reading to
recover the original identifiers.

Whole :class:`~repro.api.BroadcastPlan` results serialize to JSON *plan
documents* (:func:`plan_to_doc` / :func:`write_plan_json` /
:func:`read_plan_json` / :func:`doc_to_plan`): the schedule rows, the
Section IV feasibility report, the solver ``info`` metadata, and the run
manifest, all losslessly — floats round-trip bit-for-bit via ``repr``-exact
JSON, so a replayed plan is byte-identical to the computation that produced
it.  The planning service's disk cache tier
(:class:`repro.service.PlanCache`) is built on these documents.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Mapping, TextIO, Union

from ..errors import TraceFormatError
from .feasibility import FeasibilityReport
from .schedule import Schedule, Transmission

__all__ = [
    "write_schedule_csv",
    "read_schedule_csv",
    "PLAN_SCHEMA",
    "PLANSET_SCHEMA",
    "plan_to_doc",
    "doc_to_plan",
    "write_plan_json",
    "read_plan_json",
    "planset_to_doc",
    "doc_to_planset",
    "write_planset_json",
    "read_planset_json",
]

PathLike = Union[str, Path]

#: schema tag of a serialized plan document
PLAN_SCHEMA = "repro.plan/1"

#: schema tag of a serialized batch-plan document
PLANSET_SCHEMA = "repro.planset/1"


def write_schedule_csv(schedule: Schedule, target: Union[PathLike, TextIO]) -> None:
    """Write a schedule as ``relay,time,cost`` CSV rows."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8", newline="") if owns else target
    try:
        writer = csv.writer(fh)
        writer.writerow(["relay", "time", "cost"])
        for s in schedule:
            writer.writerow([s.relay, repr(float(s.time)), repr(float(s.cost))])
    finally:
        if owns:
            fh.close()


def read_schedule_csv(
    source: Union[PathLike, TextIO], node_type: type = int
) -> Schedule:
    """Read a schedule written by :func:`write_schedule_csv`."""
    owns = isinstance(source, (str, Path))
    fh = open(source, "r", encoding="utf-8") if owns else source
    rows = []
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise TraceFormatError("schedule CSV is empty")
        missing = {"relay", "time", "cost"} - set(reader.fieldnames)
        if missing:
            raise TraceFormatError(f"schedule CSV lacks columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            try:
                rows.append(
                    Transmission(
                        node_type(row["relay"]),
                        float(row["time"]),
                        float(row["cost"]),
                    )
                )
            except (TypeError, ValueError) as exc:
                raise TraceFormatError(f"row {lineno}: {exc}") from exc
    finally:
        if owns:
            fh.close()
    return Schedule(rows)


# ----------------------------------------------------------------------
# plan documents (BroadcastPlan ↔ JSON)
# ----------------------------------------------------------------------

def _check_node(node: Any) -> Any:
    """Node labels must be JSON-native so they round-trip unchanged."""
    if isinstance(node, (bool, int, float, str)):
        return node
    raise TraceFormatError(
        f"plan documents require int/str/float node labels, got "
        f"{type(node).__name__} ({node!r})"
    )


def plan_to_doc(plan: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.api.BroadcastPlan` to a JSON-safe dict.

    Everything except the TVEG is captured (a graph is an input, not an
    output; :func:`doc_to_plan` takes one back in).  Floats survive
    bit-for-bit — :mod:`json` writes ``repr``-exact decimal forms, and
    ``inf`` informed-times serialize as JSON ``Infinity``.
    """
    fz = plan.feasibility
    return {
        "schema": PLAN_SCHEMA,
        "algorithm": plan.algorithm,
        "channel": plan.channel,
        "source": _check_node(plan.source),
        "deadline": float(plan.deadline),
        "schedule": [
            [_check_node(s.relay), s.time, s.cost] for s in plan.schedule
        ],
        "feasibility": {
            "relays_informed": fz.relays_informed,
            "all_informed": fz.all_informed,
            "latency_ok": fz.latency_ok,
            "budget_ok": fz.budget_ok,
            "violations": list(fz.violations),
            "informed_times": [
                [_check_node(n), t] for n, t in fz.informed_times
            ],
        },
        "info": dict(plan.info),
        "manifest": dict(plan.manifest),
    }


def doc_to_plan(doc: Mapping[str, Any], tveg: Any) -> Any:
    """Rebuild a :class:`~repro.api.BroadcastPlan` from a plan document.

    ``tveg`` supplies the graph the plan applies to (documents never store
    one).  The replayed plan's schedule, total cost, feasibility report,
    ``info``, and manifest are byte-identical to the original's.
    """
    from ..api import BroadcastPlan  # deferred: api imports this package

    if doc.get("schema") != PLAN_SCHEMA:
        raise TraceFormatError(
            f"not a plan document (schema={doc.get('schema')!r}, "
            f"expected {PLAN_SCHEMA!r})"
        )
    try:
        fz = doc["feasibility"]
        report = FeasibilityReport(
            relays_informed=bool(fz["relays_informed"]),
            all_informed=bool(fz["all_informed"]),
            latency_ok=bool(fz["latency_ok"]),
            budget_ok=bool(fz["budget_ok"]),
            violations=tuple(str(v) for v in fz["violations"]),
            informed_times=tuple(
                (n, float(t)) for n, t in fz["informed_times"]
            ),
        )
        schedule = Schedule(
            Transmission(r, float(t), float(w)) for r, t, w in doc["schedule"]
        )
        return BroadcastPlan(
            schedule=schedule,
            feasibility=report,
            tveg=tveg,
            source=doc["source"],
            deadline=float(doc["deadline"]),
            algorithm=str(doc["algorithm"]),
            channel=str(doc["channel"]),
            info=dict(doc["info"]),
            manifest=dict(doc.get("manifest", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed plan document: {exc}") from exc


# ----------------------------------------------------------------------
# plan-set documents (BroadcastPlanSet ↔ JSON)
# ----------------------------------------------------------------------

def planset_to_doc(planset: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.api.BroadcastPlanSet` to a JSON-safe dict.

    The document is simply the ``repro.plan/1`` documents of the member
    plans under one ``repro.planset/1`` header, in request order — so a
    cached batch result replays byte-identical plan-for-plan, exactly as
    single-plan documents do.
    """
    return {
        "schema": PLANSET_SCHEMA,
        "plans": [plan_to_doc(p) for p in planset],
    }


def doc_to_planset(doc: Mapping[str, Any], tvegs: Any) -> Any:
    """Rebuild a :class:`~repro.api.BroadcastPlanSet` from a document.

    ``tvegs`` supplies the graphs the plans apply to: either one TVEG
    shared by every plan (the common case — one batch, one instance) or a
    sequence with one TVEG per plan, matching the document order.
    """
    from ..api import BroadcastPlanSet  # deferred: api imports this package
    from ..tveg.graph import TVEG

    if doc.get("schema") != PLANSET_SCHEMA:
        raise TraceFormatError(
            f"not a plan-set document (schema={doc.get('schema')!r}, "
            f"expected {PLANSET_SCHEMA!r})"
        )
    try:
        plan_docs = list(doc["plans"])
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed plan-set document: {exc}") from exc
    if isinstance(tvegs, TVEG):
        per_plan = [tvegs] * len(plan_docs)
    else:
        per_plan = list(tvegs)
        if len(per_plan) != len(plan_docs):
            raise TraceFormatError(
                f"plan-set document holds {len(plan_docs)} plan(s) but "
                f"{len(per_plan)} TVEG(s) were supplied"
            )
    return BroadcastPlanSet(
        plans=tuple(
            doc_to_plan(d, tveg) for d, tveg in zip(plan_docs, per_plan)
        )
    )


def write_planset_json(
    planset_or_doc: Any, target: Union[PathLike, TextIO]
) -> None:
    """Write a plan set (or an already-built document) as JSON."""
    doc = (
        planset_or_doc
        if isinstance(planset_or_doc, Mapping)
        else planset_to_doc(planset_or_doc)
    )
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8") if owns else target
    try:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    finally:
        if owns:
            fh.close()


def read_planset_json(source: Union[PathLike, TextIO]) -> Dict[str, Any]:
    """Load a plan-set document written by :func:`write_planset_json`."""
    owns = isinstance(source, (str, Path))
    fh = open(source, "r", encoding="utf-8") if owns else source
    try:
        doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"malformed plan-set JSON: {exc}") from exc
    finally:
        if owns:
            fh.close()
    if not isinstance(doc, dict):
        raise TraceFormatError("plan-set JSON must be an object")
    return doc


def write_plan_json(plan_or_doc: Any, target: Union[PathLike, TextIO]) -> None:
    """Write a plan (or an already-built plan document) as JSON."""
    doc = (
        plan_or_doc
        if isinstance(plan_or_doc, Mapping)
        else plan_to_doc(plan_or_doc)
    )
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8") if owns else target
    try:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    finally:
        if owns:
            fh.close()


def read_plan_json(source: Union[PathLike, TextIO]) -> Dict[str, Any]:
    """Load a plan document written by :func:`write_plan_json`."""
    owns = isinstance(source, (str, Path))
    fh = open(source, "r", encoding="utf-8") if owns else source
    try:
        doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"malformed plan JSON: {exc}") from exc
    finally:
        if owns:
            fh.close()
    if not isinstance(doc, dict):
        raise TraceFormatError("plan JSON must be an object")
    return doc

"""The four TMEDB feasibility conditions (Section IV, decision version).

A schedule ``S`` is *feasible* for instance ``(TVEG, v_s, T, C, ε)`` iff:

(i)   every relay is informed by the time it forwards:
      ``p_{r_k, t_k} ≤ ε`` for all rows;
(ii)  every node is eventually informed in time:
      ``∃ t ≤ T − τ`` with ``p_{i,t} ≤ ε`` for all ``v_i``;
(iii) broadcast latency is bounded: ``max_k t_k + τ ≤ T``;
(iv)  the budget holds: ``Σ_k w_k ≤ C`` (only checked when a budget is
      given — the optimization version minimizes this quantity instead).

**Causal semantics.**  Eq. (6) taken literally admits a τ ≈ 0 artifact:
two relays transmitting at the same instant could each count the *other's*
transmission as what informed them — a cycle no physical execution can
realize (and the Monte-Carlo simulator rightly refuses).  This checker
therefore *replays* the schedule causally: transmissions at one timestamp
fire in information-flow order (a fixpoint, so same-instant chains are
fine), and only transmissions whose relay is already informed contribute to
anyone's probability.  For any cycle-free schedule the causal and literal
probabilities coincide, so this is a strict refinement, never a relaxation,
of the paper's conditions.

:func:`check_feasibility` evaluates all four and returns a structured
:class:`FeasibilityReport` naming every violation, which the tests and the
experiment harness use to assert scheduler correctness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from .. import obs
from ..compute import resolve_compute
from ..tveg.graph import TVEG
from .schedule import Schedule, Transmission

__all__ = ["FeasibilityReport", "check_feasibility"]

Node = Hashable


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of the four-condition feasibility check."""

    relays_informed: bool            # condition (i)
    all_informed: bool               # condition (ii)
    latency_ok: bool                 # condition (iii)
    budget_ok: bool                  # condition (iv) — True when no budget
    violations: Tuple[str, ...] = field(default=())
    #: per-node informed times (inf = never informed)
    informed_times: Tuple[Tuple[Node, float], ...] = field(default=())

    @property
    def feasible(self) -> bool:
        return (
            self.relays_informed
            and self.all_informed
            and self.latency_ok
            and self.budget_ok
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.feasible:
            return "FeasibilityReport(feasible)"
        return "FeasibilityReport(infeasible: " + "; ".join(self.violations) + ")"


def _causal_replay(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    eps: float,
    start_time: float,
    compute: Optional[str] = None,
):
    """Fire the schedule causally; return (informed times, unfired rows).

    Maintains each node's uninformed probability as the product of failure
    factors of *fired* transmissions only.  Within one timestamp,
    transmissions fire in fixpoint rounds: a relay informed by an
    already-fired same-instant transmission may itself fire (Eq. 6 admits
    ``t_j ≤ t_k``), but mutually dependent pairs never do.

    Two interchangeable kernels (``compute=`` semantics as everywhere —
    see :mod:`repro.compute`): this stdlib loop is the parity oracle, and
    :func:`_causal_replay_numpy` applies each firing's failure factors as
    one elementwise float64 multiply — bit-identical IEEE results, same
    neighbor/failure evaluation counts, same memo entries.
    """
    if resolve_compute(compute) == "numpy":
        return _causal_replay_numpy(tveg, schedule, source, eps, start_time)
    probs: Dict[Node, float] = {n: 1.0 for n in tveg.nodes}
    informed_at: Dict[Node, float] = {n: math.inf for n in tveg.nodes}
    probs[source] = 0.0
    informed_at[source] = start_time

    def is_informed(node: Node) -> bool:
        return probs[node] <= eps

    # Neighbor sets and failure probabilities are pure functions of the
    # topology, and the reduce passes replay near-identical schedules once
    # per candidate — memoize the lookups on the TVEG (version-checked
    # there; the cached float is exactly the first evaluation's).
    cache_fn = getattr(tveg, "replay_cache", None)
    cache: Dict = cache_fn() if cache_fn is not None else {}

    unfired: List[Transmission] = []
    rows = list(schedule)
    i = 0
    while i < len(rows):
        j = i
        while j < len(rows) and rows[j].time == rows[i].time:
            j += 1
        pending = rows[i:j]
        progress = True
        while pending and progress:
            progress = False
            still = []
            for s in pending:
                if s.time >= start_time and is_informed(s.relay):
                    nkey = ("nbr", s.relay, s.time)
                    nbrs = cache.get(nkey)
                    if nbrs is None:
                        nbrs = tveg.neighbors(s.relay, s.time)
                        cache[nkey] = nbrs
                    for v in nbrs:
                        if v == s.relay:
                            continue
                        if probs[v] > 0.0:
                            fkey = ("fail", s.relay, v, s.time, s.cost)
                            f = cache.get(fkey)
                            if f is None:
                                f = tveg.failure(s.relay, v, s.time, s.cost)
                                cache[fkey] = f
                            probs[v] *= f
                        if probs[v] <= eps and informed_at[v] == math.inf:
                            informed_at[v] = s.time
                    progress = True
                else:
                    still.append(s)
            pending = still
        unfired.extend(pending)
        i = j
    return informed_at, unfired


def _replay_arrays(tveg, cache, pos, s, np):
    """``(neighbor positions, failure factors)`` arrays for one firing.

    Built from — and backfilling — the same scalar ``("nbr", ...)`` /
    ``("fail", ...)`` memo entries the stdlib kernel uses, so the two
    kernels share one cache, make identical ``tveg.neighbors`` /
    ``tveg.failure`` call sequences on misses, and stay interchangeable
    mid-run.
    """
    nkey = ("nbr", s.relay, s.time)
    nbrs = cache.get(nkey)
    if nbrs is None:
        nbrs = tveg.neighbors(s.relay, s.time)
        cache[nkey] = nbrs
    idx: List[int] = []
    fails: List[float] = []
    for v in nbrs:
        if v == s.relay:
            continue
        fkey = ("fail", s.relay, v, s.time, s.cost)
        f = cache.get(fkey)
        if f is None:
            f = tveg.failure(s.relay, v, s.time, s.cost)
            cache[fkey] = f
        idx.append(pos[v])
        fails.append(f)
    return (np.array(idx, dtype=np.intp), np.array(fails, dtype=np.float64))


def _causal_replay_numpy(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    eps: float,
    start_time: float,
):
    """The array kernel of :func:`_causal_replay` (byte-identical results).

    Node uninformed-probabilities live in one ``float64`` vector; each
    firing multiplies its neighbors' entries by a cached failure-factor
    array in a single elementwise operation.  Elementwise float64 multiply
    is the same IEEE operation the scalar loop performs, the still-live
    mask reproduces the loop's ``probs[v] > 0.0`` guard, and first-crossing
    times are recorded per firing exactly as the loop does — so informed
    times, unfired rows, and every probability are bit-for-bit equal (the
    parity suite asserts it).  The reduce passes replay near-identical
    schedules once per candidate; this turns each replay's inner loop over
    neighbors into a handful of vector ops.
    """
    import numpy as np

    cache_fn = getattr(tveg, "replay_cache", None)
    cache: Dict = cache_fn() if cache_fn is not None else {}
    nodes = tveg.nodes
    pos = cache.get(("pos",))
    if pos is None:
        pos = {n: i for i, n in enumerate(nodes)}
        cache[("pos",)] = pos

    probs = np.ones(len(nodes), dtype=np.float64)
    informed_at: Dict[Node, float] = {n: math.inf for n in nodes}
    #: informed_at already recorded (mirrors the ``== math.inf`` guard)
    recorded = np.zeros(len(nodes), dtype=bool)
    src = pos[source]
    probs[src] = 0.0
    informed_at[source] = start_time
    recorded[src] = True

    unfired: List[Transmission] = []
    rows = list(schedule)
    i = 0
    while i < len(rows):
        j = i
        while j < len(rows) and rows[j].time == rows[i].time:
            j += 1
        pending = rows[i:j]
        progress = True
        while pending and progress:
            progress = False
            still = []
            for s in pending:
                if s.time >= start_time and probs[pos[s.relay]] <= eps:
                    vkey = ("vec", s.relay, s.time, s.cost)
                    vec = cache.get(vkey)
                    if vec is None:
                        vec = _replay_arrays(tveg, cache, pos, s, np)
                        cache[vkey] = vec
                    idx, fails = vec
                    if len(idx):
                        sub = probs[idx]
                        live = sub > 0.0
                        if live.any():
                            sub[live] *= fails[live]
                            probs[idx] = sub
                        newly = idx[(sub <= eps) & ~recorded[idx]]
                        if len(newly):
                            recorded[newly] = True
                            for p in newly.tolist():
                                informed_at[nodes[p]] = s.time
                    progress = True
                else:
                    still.append(s)
            pending = still
        unfired.extend(pending)
        i = j
    return informed_at, unfired


def check_feasibility(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: float,
    budget: Optional[float] = None,
    eps: Optional[float] = None,
    start_time: float = 0.0,
    targets: Optional[Tuple[Node, ...]] = None,
    record: Optional[str] = None,
    compute: Optional[str] = None,
) -> FeasibilityReport:
    """Evaluate conditions (i)–(iv) for ``schedule`` on ``tveg``.

    ``deadline`` is the absolute time ``T`` (not a duration); ``start_time``
    is when the source acquires the packet.  ``targets`` restricts condition
    (ii) to a multicast terminal set (default: every node — broadcast).
    See the module docstring for the causal same-instant semantics.

    ``record`` names this check on the event ledger (e.g. ``"final"``):
    per-node ε-crossing times and every violation are then emitted as
    domain events.  The default ``None`` stays silent — the reduce passes
    call this checker in tight candidate loops, and only the authoritative
    end-of-pipeline check should land in the ledger.  The cheap
    ``feasibility.checks`` / ``feasibility.failed`` counters are bumped
    either way.

    ``compute`` picks the causal-replay kernel (``None`` → ``"auto"`` →
    numpy when importable; see :mod:`repro.compute`).  Reports are
    byte-identical across kernels — the knob never changes an outcome.
    """
    e = tveg.params.epsilon if eps is None else eps
    tau = tveg.tau
    violations: List[str] = []

    with obs.span("feasibility.check", rows=len(schedule)):
        informed_at, unfired = _causal_replay(
            tveg, schedule, source, e, start_time, compute=compute
        )

        # (i) every relay informed when it transmits (causally)
        relays_ok = not unfired
        for s in unfired:
            violations.append(
                f"relay {s.relay!r} uninformed at its transmission time "
                f"{s.time:g} (no causal firing order exists)"
            )

        # (ii) every target informed by T − τ (all nodes in the broadcast case)
        required = tveg.nodes if targets is None else targets
        all_ok = True
        for node in required:
            if informed_at[node] > deadline - tau:
                all_ok = False
                violations.append(
                    f"node {node!r} not informed by T−τ={deadline - tau:g} "
                    f"(informed at {informed_at[node]:g})"
                )

        # (iii) latency bound
        latency_ok = schedule.latency(tau) <= deadline
        if not latency_ok:
            violations.append(
                f"latency {schedule.latency(tau):g} exceeds deadline {deadline:g}"
            )

        # (iv) budget — over the full scheduled cost, fired or not
        budget_ok = True
        if budget is not None and schedule.total_cost > budget:
            budget_ok = False
            violations.append(
                f"total cost {schedule.total_cost:.4g} exceeds budget {budget:.4g}"
            )

    report = FeasibilityReport(
        relays_informed=relays_ok,
        all_informed=all_ok,
        latency_ok=latency_ok,
        budget_ok=budget_ok,
        violations=tuple(violations),
        informed_times=tuple(sorted(informed_at.items(), key=lambda kv: repr(kv[0]))),
    )
    obs.counter("feasibility.checks")
    if not report.feasible:
        obs.counter("feasibility.failed")
    if record is not None:
        _record_report(tveg, report, unfired, budget, deadline, record, required)
    return report


def _record_report(
    tveg: TVEG,
    report: FeasibilityReport,
    unfired: List[Transmission],
    budget: Optional[float],
    deadline: float,
    label: str,
    required,
) -> None:
    """Emit one feasibility evaluation as typed ledger events."""
    led = obs.get_ledger()
    if not led.enabled:
        return
    for node, t in report.informed_times:
        if math.isfinite(t):
            led.emit(
                obs.EV_NODE_INFORMED, t=t, node=node, check=label,
                eps=tveg.params.epsilon,
            )
    for s in unfired:
        led.emit(
            obs.EV_CONSTRAINT_VIOLATED, t=s.time, constraint="relay_informed",
            relay=s.relay, check=label,
            detail=f"relay {s.relay!r} uninformed at its transmission time",
        )
    if not report.all_informed:
        required_set = set(required)
        for node, t in report.informed_times:
            if node in required_set and t > deadline - tveg.tau:
                led.emit(
                    obs.EV_CONSTRAINT_VIOLATED, constraint="all_informed",
                    node=node, check=label,
                    detail=f"node {node!r} not informed by T−τ",
                )
    if not report.latency_ok:
        led.emit(
            obs.EV_CONSTRAINT_VIOLATED, constraint="latency", check=label,
            detail=f"latency exceeds deadline {deadline:g}",
        )
    if not report.budget_ok:
        led.emit(
            obs.EV_CONSTRAINT_VIOLATED, constraint="budget", check=label,
            budget=budget, detail="total cost exceeds budget",
        )
    led.emit(
        obs.EV_FEASIBILITY_CHECKED,
        feasible=report.feasible,
        num_violations=len(report.violations),
        check=label,
    )

"""ASCII timeline rendering of broadcast schedules.

One row per node over the broadcast window: contact coverage drawn as a
track, transmissions and receptions marked on top.  Meant for terminals,
examples, and debugging — seeing *when* the scheduler chose to act relative
to the contact structure usually explains its cost immediately.

Legend: ``─`` no contact, ``═`` in contact with someone, ``T`` transmits,
``R`` first informed (reception), ``S`` the source at t = 0.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

from ..tveg.graph import TVEG
from .feasibility import check_feasibility
from .schedule import Schedule

__all__ = ["ascii_timeline"]

Node = Hashable


def ascii_timeline(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: Optional[float] = None,
    width: int = 72,
    eps: Optional[float] = None,
) -> str:
    """Render the schedule as one text row per node (see module docstring)."""
    end = tveg.horizon if deadline is None else deadline
    if end <= 0 or width < 10:
        raise ValueError("need a positive window and width >= 10")

    def col(t: float) -> int:
        return min(int(t / end * (width - 1)), width - 1)

    report = check_feasibility(tveg, schedule, source, end, eps=eps)
    informed_at = dict(report.informed_times)

    lines: List[str] = [
        f"broadcast from {source!r} over [0, {end:g}]  "
        f"({len(schedule)} transmissions, feasible={report.feasible})"
    ]
    label_width = max(len(repr(n)) for n in tveg.nodes)

    for node in tveg.nodes:
        row = ["─"] * width
        # contact coverage: union of this node's adjacency intervals
        for other in tveg.tvg.incident(node):
            for iv in tveg.tvg.adjacency_set(node, other).clamp(0.0, end):
                a, b = col(iv.start), col(max(iv.start, iv.end - 1e-12))
                for c in range(a, b + 1):
                    row[c] = "═"
        # receptions (first informed) and transmissions
        t_inf = informed_at.get(node, math.inf)
        if node == source:
            row[0] = "S"
        elif math.isfinite(t_inf):
            row[col(t_inf)] = "R"
        for s in schedule.by_relay(node):
            if s.time <= end:
                row[col(s.time)] = "T"
        lines.append(f"{node!r:>{label_width}} |{''.join(row)}|")

    ruler = [" "] * width
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        marker = f"{frac * end:g}"
        c = min(col(frac * end), width - len(marker))  # keep the label whole
        for i, ch in enumerate(marker):
            ruler[c + i] = ch
    lines.append(f"{'':>{label_width}}  {''.join(ruler)}")
    return "\n".join(lines)

"""The uninformed-probability engine (Eq. 6).

Given a schedule, node ``v_i``'s probability of still being uninformed at
time ``t`` is the product of the failure probabilities of every transmission
that could have reached it:

    p_{i,t} = Π_{t_k ≤ t, ρ_τ(e_{r_k, v_i}, t_k) = 1} φ_{t_k}^{e_{r_k, v_i}}(w_k)

The source is always informed (``p = 0``) from the broadcast start.  These
probabilities are monotonically non-increasing in ``t`` and only change at
transmission times, so the "informed time" of a node is the time of the
transmission that first pushes its product below ε.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from ..tveg.graph import TVEG
from .schedule import Schedule, Transmission

__all__ = [
    "uninformed_probability",
    "uninformed_probabilities",
    "is_informed",
    "informed_time",
]

Node = Hashable


def _transmission_failure(tveg: TVEG, s: Transmission, node: Node) -> Optional[float]:
    """``φ_{t_k}^{e_{r_k, node}}(w_k)`` or ``None`` when not adjacent.

    Skipping non-adjacent transmissions (instead of multiplying by 1) keeps
    the product numerically identical and avoids distance lookups outside
    contacts.
    """
    if s.relay == node:
        return None
    if not tveg.adjacent(s.relay, node, s.time):
        return None
    return tveg.failure(s.relay, node, s.time, s.cost)


def uninformed_probability(
    tveg: TVEG,
    schedule: Schedule,
    node: Node,
    t: float,
    source: Node,
    start_time: float = 0.0,
) -> float:
    """``p_{i,t}`` per Eq. (6); the source is 0 from the broadcast start."""
    if node == source:
        return 0.0 if t >= start_time else 1.0
    p = 1.0
    for s in schedule:
        if s.time > t:
            break  # schedule rows are time-sorted
        q = _transmission_failure(tveg, s, node)
        if q is not None:
            p *= q
            if p == 0.0:
                return 0.0
    return p


def uninformed_probabilities(
    tveg: TVEG,
    schedule: Schedule,
    t: float,
    source: Node,
    start_time: float = 0.0,
) -> Dict[Node, float]:
    """``p_{i,t}`` for every node, sharing one pass over the schedule."""
    probs: Dict[Node, float] = {n: 1.0 for n in tveg.nodes}
    probs[source] = 0.0 if t >= start_time else 1.0
    for s in schedule:
        if s.time > t:
            break
        for v in tveg.neighbors(s.relay, s.time):
            if v == source:
                continue
            if probs[v] > 0.0:
                probs[v] *= tveg.failure(s.relay, v, s.time, s.cost)
    return probs


def is_informed(
    tveg: TVEG,
    schedule: Schedule,
    node: Node,
    t: float,
    source: Node,
    eps: Optional[float] = None,
    start_time: float = 0.0,
) -> bool:
    """True iff ``p_{node,t} ≤ ε`` (Section IV's informed predicate)."""
    e = tveg.params.epsilon if eps is None else eps
    return uninformed_probability(tveg, schedule, node, t, source, start_time) <= e


def informed_time(
    tveg: TVEG,
    schedule: Schedule,
    node: Node,
    source: Node,
    eps: Optional[float] = None,
    start_time: float = 0.0,
) -> float:
    """Earliest ``t`` with ``p_{node,t} ≤ ε``, or ``inf`` if never.

    Since ``p`` only drops at transmission times, this is the time of the
    transmission whose failure factor first takes the running product to ε.
    """
    e = tveg.params.epsilon if eps is None else eps
    if node == source:
        return start_time
    p = 1.0
    if p <= e:
        return start_time
    for s in schedule:
        q = _transmission_failure(tveg, s, node)
        if q is not None:
            p *= q
            if p <= e:
                return s.time
    return math.inf

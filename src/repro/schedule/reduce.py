"""Schedule reduction: drop redundant transmissions, lower excess costs.

Steiner-tree extraction can leave artifacts: when two cost levels of the
same (relay, time) are merged to the higher one, transmissions grafted for
receivers the merged level now covers become pure waste.  Both passes here
only ever *remove* energy and re-verify the full Section IV feasibility
conditions after every candidate change, so they are safe for any channel
model:

* :func:`remove_redundant` — try deleting each transmission, most expensive
  first; keep deletions that preserve feasibility.
* :func:`lower_costs` — try rounding each transmission down to lower DCS
  levels (static-channel semantics: coverage shrinks level by level).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..tveg.costsets import discrete_cost_set
from ..tveg.graph import TVEG
from .feasibility import check_feasibility
from .schedule import Schedule

__all__ = ["remove_redundant", "lower_costs", "upgrade_and_prune"]

Node = Hashable


def remove_redundant(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: float,
    eps: Optional[float] = None,
    targets=None,
    compute: Optional[str] = None,
) -> Schedule:
    """Greedily delete transmissions whose removal keeps the schedule
    feasible, trying the most expensive ones first.

    If the input schedule is itself infeasible it is returned unchanged —
    reduction is defined relative to a feasible baseline.
    """
    if not check_feasibility(tveg, schedule, source, deadline, eps=eps, targets=targets, compute=compute).feasible:
        return schedule
    current = list(schedule.transmissions)
    # Most expensive first: dropping a big transmission saves the most and
    # is most often enabled by the level-merge artifact.
    order = sorted(range(len(current)), key=lambda i: -current[i].cost)
    removed = set()
    for i in order:
        trial = Schedule(
            s for j, s in enumerate(current) if j != i and j not in removed
        )
        if check_feasibility(tveg, trial, source, deadline, eps=eps, targets=targets, compute=compute).feasible:
            removed.add(i)
    if not removed:
        return schedule
    return Schedule(s for j, s in enumerate(current) if j not in removed)


def upgrade_and_prune(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: float,
    eps: Optional[float] = None,
    max_rounds: int = 3,
    targets=None,
    compute: Optional[str] = None,
) -> Schedule:
    """Local search: raise one transmission's DCS level, drop what becomes
    redundant, keep the move iff total cost falls.

    This repairs the characteristic weakness of path-based Steiner
    heuristics on broadcast instances: paying two medium transmissions where
    one higher level (the wireless multicast advantage) covers both.  Each
    accepted move strictly decreases cost, so the search terminates; rounds
    are bounded for predictable runtime.
    """
    if not check_feasibility(tveg, schedule, source, deadline, eps=eps, targets=targets, compute=compute).feasible:
        return schedule
    current = schedule
    for _ in range(max_rounds):
        improved = False
        for i, s in enumerate(current.transmissions):
            dcs = discrete_cost_set(tveg, s.relay, s.time)
            if dcs.is_empty:
                continue
            for level in (c for c in dcs.costs if c > s.cost):
                rows = list(current.transmissions)
                rows[i] = s.with_cost(level)
                trial = remove_redundant(
                    tveg, Schedule(rows), source, deadline, eps=eps,
                    targets=targets, compute=compute,
                )
                if trial.total_cost < current.total_cost * (1 - 1e-12):
                    current = trial
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return current


def lower_costs(
    tveg: TVEG,
    schedule: Schedule,
    source: Node,
    deadline: float,
    eps: Optional[float] = None,
    targets=None,
    compute: Optional[str] = None,
) -> Schedule:
    """Round each transmission down to the lowest DCS level that keeps the
    schedule feasible (Property 6.1(ii) in reverse, re-verified per step)."""
    if not check_feasibility(tveg, schedule, source, deadline, eps=eps, targets=targets, compute=compute).feasible:
        return schedule
    rows = list(schedule.transmissions)
    for i, s in enumerate(rows):
        dcs = discrete_cost_set(tveg, s.relay, s.time)
        if dcs.is_empty:
            continue
        # Candidate levels strictly below the current cost, cheapest first.
        for level in [c for c in dcs.costs if c < s.cost]:
            trial_rows = list(rows)
            trial_rows[i] = s.with_cost(level)
            trial = Schedule(trial_rows)
            if check_feasibility(tveg, trial, source, deadline, eps=eps, targets=targets, compute=compute).feasible:
                rows = trial_rows
                break
    return Schedule(rows)

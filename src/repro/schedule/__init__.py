"""Broadcast relay schedules, Eq. (6) probabilities, feasibility (Sec. IV)."""

from .feasibility import FeasibilityReport, check_feasibility
from .io import (
    PLAN_SCHEMA,
    PLANSET_SCHEMA,
    doc_to_plan,
    doc_to_planset,
    plan_to_doc,
    planset_to_doc,
    read_plan_json,
    read_planset_json,
    read_schedule_csv,
    write_plan_json,
    write_planset_json,
    write_schedule_csv,
)
from .probability import (
    informed_time,
    is_informed,
    uninformed_probabilities,
    uninformed_probability,
)
from .reduce import lower_costs, remove_redundant, upgrade_and_prune
from .schedule import Schedule, Transmission
from .viz import ascii_timeline

__all__ = [
    "Transmission",
    "Schedule",
    "uninformed_probability",
    "uninformed_probabilities",
    "is_informed",
    "informed_time",
    "FeasibilityReport",
    "check_feasibility",
    "remove_redundant",
    "lower_costs",
    "upgrade_and_prune",
    "write_schedule_csv",
    "read_schedule_csv",
    "PLAN_SCHEMA",
    "plan_to_doc",
    "doc_to_plan",
    "write_plan_json",
    "read_plan_json",
    "PLANSET_SCHEMA",
    "planset_to_doc",
    "doc_to_planset",
    "write_planset_json",
    "read_planset_json",
    "ascii_timeline",
]

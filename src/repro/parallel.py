"""Deterministic process-level parallelism for Monte-Carlo workloads.

Trials are embarrassingly parallel, but naive parallelisation breaks the
repo's reproducibility contract (same seed → bit-identical summaries).
This module keeps the contract by separating *seed derivation* from
*execution*:

* :func:`derive_seeds` draws every child seed from the parent generator
  up front, with the exact integer stream :func:`repro.core.rng.spawn`
  consumes — so the i-th trial sees the same child generator no matter
  how many workers run, or in which order chunks finish;
* :func:`parallel_map` evaluates a picklable function over the items on a
  ``ProcessPoolExecutor``, chunked so each worker unpickles the shared
  payload once, and reassembles results in item order.

``workers <= 1`` short-circuits to a plain serial loop (no executor, no
pickling), which is also the fallback when the obs ledger is recording —
events emitted inside worker processes would be silently lost, and a
silently incomplete ledger is worse than a slower run.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from . import obs
from .core.rng import SeedLike, as_generator

__all__ = [
    "derive_seeds",
    "mp_context",
    "parallel_map",
    "thread_map",
    "resolve_workers",
    "chunk_indices",
]

T = TypeVar("T")
R = TypeVar("R")


def derive_seeds(seed: SeedLike, n: int) -> List[int]:
    """``n`` child seeds drawn exactly as :func:`repro.core.rng.spawn` does.

    ``numpy.random.default_rng(derive_seeds(seed, n)[i])`` is bit-identical
    to ``spawn(as_generator(seed), n)[i]`` — the property that makes
    parallel trial execution reproduce serial execution exactly.
    """
    rng = as_generator(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request to a concrete positive int.

    ``None`` / ``0`` / ``1`` mean serial; ``-1`` means one worker per CPU.
    """
    if workers is None or workers == 0:
        return 1
    if workers == -1:
        return os.cpu_count() or 1
    if workers < -1:
        raise ValueError(f"invalid worker count {workers!r}")
    return workers


def chunk_indices(n: int, chunks: int) -> List[range]:
    """Split ``range(n)`` into ≤ ``chunks`` contiguous, near-even ranges."""
    chunks = max(1, min(chunks, n)) if n else 0
    out: List[range] = []
    base, extra = divmod(n, chunks) if chunks else (0, 0)
    start = 0
    for c in range(chunks):
        size = base + (1 if c < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def mp_context(
    method: Optional[str] = None,
) -> multiprocessing.context.BaseContext:
    """The multiprocessing start-method context long-lived workers use.

    Preference order: an explicit ``method`` argument, the
    ``REPRO_MP_START`` environment variable, then ``fork`` where available
    (shard workers inherit the parent's loaded traces and imported modules
    for free — spawn would re-import the package and re-pickle every trace
    per worker), finally the platform default.  Raises :class:`ValueError`
    for a method the platform doesn't offer, so a typo in the env var
    fails loudly at boot instead of silently picking a different one.
    """
    chosen = method or os.environ.get("REPRO_MP_START") or None
    available = multiprocessing.get_all_start_methods()
    if chosen is not None:
        if chosen not in available:
            raise ValueError(
                f"multiprocessing start method {chosen!r} unavailable here; "
                f"choices: {', '.join(available)}"
            )
        return multiprocessing.get_context(chosen)
    if "fork" in available:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results always come back in item order regardless of completion order.
    ``fn`` and every item must be picklable when ``workers > 1``; with one
    worker (or fewer items than that) the loop runs in-process.  Emits the
    ``parallel.tasks`` counter either way so instrumented runs record how
    much work was farmed out.
    """
    n = len(items)
    w = min(resolve_workers(workers), n) if n else 1
    obs.counter("parallel.tasks", n)
    if w <= 1:
        return [fn(x) for x in items]
    with obs.span("parallel.map", tasks=n, workers=w):
        with ProcessPoolExecutor(max_workers=w) as pool:
            chunksize = max(1, n // (w * 4))
            return list(pool.map(fn, items, chunksize=chunksize))


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]`` on a bounded *thread* pool.

    The shared-memory sibling of :func:`parallel_map`, for work that must
    see the caller's live state — the planning service's batch executor
    runs jobs here so every job shares one TVEG object (and its DCS / cost
    caches), one plan cache, and the process-global obs tracer and ledger,
    none of which survive a hop across a process boundary.  Results come
    back in item order; nothing needs to be picklable.
    """
    n = len(items)
    w = min(resolve_workers(workers), n) if n else 1
    obs.counter("parallel.thread_tasks", n)
    if w <= 1:
        return [fn(x) for x in items]
    with obs.span("parallel.thread_map", tasks=n, workers=w):
        with ThreadPoolExecutor(max_workers=w) as pool:
            return list(pool.map(fn, items))

"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the full pipeline so the library is usable without
writing Python:

* ``generate``   — synthesize a Haggle-like contact trace to a file;
* ``stats``      — summarize a trace (CRAWDAD, CSV, or ``.ctrace``);
* ``trace``      — convert a text trace to the columnar ``.ctrace`` format
  (streaming, bounded memory) and print its header stats;
* ``schedule``   — run a scheduler on a trace window and print the schedule;
* ``simulate``   — Monte-Carlo a schedule produced by a scheduler
  (``--protocol`` switches the analytic sampler for the protocol-level
  message-passing simulator);
* ``protosim``   — execute a plan as per-node protocol behavior (HELLO/
  DATA/ACK frames, bounded queues, retransmissions, clock offsets) with
  full knob control and an analytic-parity cross-check;
* ``experiment`` — regenerate one of the paper's figures (4–7);
* ``bench``      — micro-benchmarks with a committed-baseline regression gate;
* ``report``     — render a recorded run ledger as a self-contained HTML page;
* ``serve``      — run the HTTP planning service (plan cache + batch queue);
* ``cache``      — inspect or clear a persistent plan-cache directory.

Observability flags shared by the pipeline subcommands: ``--trace-out`` /
``--metrics-out`` (tracer exports), ``--ledger-out`` (typed domain events
as NDJSON, manifest embedded), ``--manifest-out`` (standalone
reproducibility manifest), and ``-v`` / ``--log-level`` (stream ledger
events through stdlib logging as they happen; default silent).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from typing import List, Optional

from . import obs
from .algorithms import SCHEDULERS, canonical_scheduler_name, make_scheduler
from .compute import COMPUTE_BACKENDS, resolve_compute
from .errors import InfeasibleError, ReproError, SolverError
from .experiments import (
    ExperimentConfig,
    print_sweep,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
)
from .params import PAPER_PARAMS
from .schedule import check_feasibility
from .sim import run_trials
from .temporal.reachability import broadcast_feasible_sources
from .traces import (
    HaggleLikeConfig,
    haggle_like_trace,
    load_trace,
    summarize,
    write_crawdad,
    write_csv,
)
from .tveg import tveg_from_trace

__all__ = ["main", "build_parser"]


def _algorithm_arg(value: str) -> str:
    """argparse type: resolve scheduler aliases to canonical names."""
    try:
        return canonical_scheduler_name(value)
    except SolverError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON of the run (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write aggregated timer/counter metrics as CSV",
    )
    parser.add_argument(
        "--ledger-out", default=None, metavar="FILE",
        help="record typed domain events to this NDJSON file "
        "(render with `repro report`)",
    )
    parser.add_argument(
        "--manifest-out", default=None, metavar="FILE",
        help="write a reproducibility manifest (config hash, seed, git SHA, "
        "platform) as JSON",
    )


def _logging_parent() -> argparse.ArgumentParser:
    """Shared ``-v`` / ``--log-level`` flags, usable after any subcommand."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="stream ledger events to stderr as they happen",
    )
    p.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=("debug", "info", "warning", "error"),
        help="stdlib logging level for streamed events (implies -v)",
    )
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-efficient delay-constrained broadcast on "
        "time-varying energy-demand graphs (ICPP 2015 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _logging_parent()

    g = sub.add_parser("generate", parents=[common],
                       help="synthesize a Haggle-like contact trace")
    g.add_argument("output", help="output path (.csv → CSV, else CRAWDAD)")
    g.add_argument("--nodes", type=int, default=20)
    g.add_argument("--horizon", type=float, default=17000.0)
    g.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("stats", parents=[common],
                       help="summarize a contact trace")
    s.add_argument("trace", help="trace file (CRAWDAD, CSV, or .ctrace)")

    tr = sub.add_parser(
        "trace", parents=[common],
        help="convert a trace to the columnar .ctrace format and/or "
        "print its header stats",
    )
    tr.add_argument("input",
                    help="input trace (CRAWDAD, CSV, or .ctrace)")
    tr.add_argument("-o", "--output", default=None, metavar="FILE",
                    help="write the columnar .ctrace file here (text "
                    "inputs stream straight into the columns; omit to "
                    "only print stats)")
    tr.add_argument("--horizon", type=float, default=None,
                    help="override the trace horizon (default: last "
                    "contact end)")
    tr.add_argument("--node-type", choices=("int", "str"), default="int",
                    help="node-label type for text inputs (default int)")

    c = sub.add_parser("schedule", parents=[common],
                       help="schedule one broadcast on a trace window")
    c.add_argument("trace", help="trace file (CRAWDAD, CSV, or .ctrace)")
    c.add_argument("--algorithm", type=_algorithm_arg, default="eedcb",
                   metavar="ALGO",
                   help="one of %s (aliases like FR_EEDCB accepted)"
                   % "/".join(sorted(SCHEDULERS)))
    c.add_argument("--channel", choices=("static", "rayleigh"), default=None,
                   help="default: static for plain, rayleigh for fr-* algorithms")
    c.add_argument("--window-start", type=float, default=0.0)
    c.add_argument("--delay", type=float, default=2000.0)
    c.add_argument("--source", type=int, default=None,
                   help="default: first broadcast-feasible node")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--backend", choices=("compact", "nx"), default=None,
                   help="auxiliary-graph backend for eedcb/fr-eedcb "
                   "(deprecated; use --compute, keeping nx for cross-checks)")
    c.add_argument("--compute", choices=COMPUTE_BACKENDS, default=None,
                   help="kernel implementation for the scheduler hot path "
                   "(default: auto — numpy when importable; the schedule is "
                   "byte-identical either way)")
    c.add_argument("--save", default=None,
                   help="also write the schedule to this CSV file")
    _add_obs_flags(c)

    m = sub.add_parser("simulate", parents=[common],
                       help="schedule + Monte-Carlo delivery estimate")
    for src_parser in (m,):
        src_parser.add_argument("trace")
        src_parser.add_argument("--algorithm", type=_algorithm_arg,
                                default="fr-eedcb", metavar="ALGO")
        src_parser.add_argument("--channel", choices=("static", "rayleigh"), default=None)
        src_parser.add_argument("--window-start", type=float, default=0.0)
        src_parser.add_argument("--delay", type=float, default=2000.0)
        src_parser.add_argument("--source", type=int, default=None)
        src_parser.add_argument("--seed", type=int, default=0)
    m.add_argument("--trials", type=int, default=300)
    m.add_argument("--workers", type=int, default=1,
                   help="Monte-Carlo worker processes (1 = serial, -1 = one "
                   "per CPU); results are bit-identical for any value")
    m.add_argument("--backend", choices=("compact", "nx"), default=None,
                   help="auxiliary-graph backend for eedcb/fr-eedcb "
                   "(deprecated; use --compute, keeping nx for cross-checks)")
    m.add_argument("--compute", choices=COMPUTE_BACKENDS, default=None,
                   help="kernel implementation for the scheduler hot path "
                   "(default: auto — numpy when importable; the schedule is "
                   "byte-identical either way)")
    m.add_argument("--schedule-file", default=None,
                   help="simulate this saved schedule instead of rescheduling")
    m.add_argument("--protocol", action="store_true",
                   help="run the protocol-level simulator (per-node message "
                   "passing with ACK-driven retransmissions) instead of the "
                   "analytic round sampler")
    _add_obs_flags(m)

    p = sub.add_parser(
        "protosim", parents=[common],
        help="execute a plan as per-node protocol behavior "
        "(HELLO/DATA/ACK, queues, retransmissions, clock offsets)",
    )
    p.add_argument("trace")
    p.add_argument("--algorithm", type=_algorithm_arg, default="eedcb",
                   metavar="ALGO")
    p.add_argument("--channel", choices=("static", "rayleigh"), default=None)
    p.add_argument("--window-start", type=float, default=0.0)
    p.add_argument("--delay", type=float, default=2000.0)
    p.add_argument("--source", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--workers", type=int, default=1,
                   help="trial worker processes (1 = serial, -1 = one per "
                   "CPU); results are bit-identical for any value")
    p.add_argument("--backend", choices=("compact", "nx"), default=None,
                   help=argparse.SUPPRESS)
    p.add_argument("--compute", choices=COMPUTE_BACKENDS, default=None,
                   help="kernel implementation for the scheduler hot path")
    p.add_argument("--schedule-file", default=None,
                   help="execute this saved schedule instead of rescheduling")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retransmission attempts per plan row (default 2)")
    p.add_argument("--backoff", type=float, default=5.0,
                   help="base retransmission delay; attempt a waits "
                   "backoff*2^a (default 5)")
    p.add_argument("--no-ack", action="store_true",
                   help="disable ACKs (retries become blind repeats)")
    p.add_argument("--hello-cost", type=float, default=0.0,
                   help="transmit cost of one HELLO beacon (default 0)")
    p.add_argument("--queue-capacity", type=int, default=16,
                   help="per-node transmit queue bound (default 16)")
    p.add_argument("--service-time", type=float, default=0.0,
                   help="radio occupancy per DATA frame (default 0)")
    p.add_argument("--clock-jitter", type=float, default=0.0,
                   help="per-node clock offsets drawn from [-J, +J] "
                   "(default 0 = synchronized)")
    p.add_argument("--parity", action="store_true",
                   help="use the degenerate analytic-parity configuration "
                   "(no retries, no ACKs, zero offsets)")
    p.add_argument("--check-parity", action="store_true",
                   help="also cross-validate one parity-mode run against "
                   "the analytic simulator (non-fading channels only); "
                   "a mismatch fails the command")
    _add_obs_flags(p)

    e = sub.add_parser("experiment", parents=[common],
                       help="regenerate a paper figure")
    e.add_argument("figure", choices=("fig4", "fig5", "fig6", "fig7"))
    e.add_argument("--repetitions", type=int, default=3)
    e.add_argument("--trials", type=int, default=100)
    e.add_argument("--nodes", type=int, default=20)
    e.add_argument("--seed", type=int, default=2015)
    e.add_argument("--workers", type=int, default=1,
                   help="Monte-Carlo worker processes (1 = serial, -1 = one "
                   "per CPU); results are bit-identical for any value")
    e.add_argument("--csv-dir", default=None,
                   help="also write each panel as CSV into this directory "
                   "(plus a manifest.json)")
    _add_obs_flags(e)

    b = sub.add_parser(
        "bench", parents=[common],
        help="run the micro-benchmark suite and gate against a baseline",
    )
    b.add_argument("--quick", action="store_true",
                   help="smaller instance and fewer repeats (CI smoke mode)")
    b.add_argument("--repeats", type=int, default=None,
                   help="override the per-op repeat count")
    b.add_argument("--nodes", type=int, default=None,
                   help="override the benchmark instance size")
    b.add_argument("--out", default=None, metavar="FILE",
                   help="output path (default: ./BENCH_<date>.json)")
    b.add_argument("--baseline", default="benchmarks/baseline.json",
                   metavar="FILE",
                   help="baseline to gate against (skipped when missing)")
    b.add_argument("--tolerance", type=float, default=0.25,
                   help="fractional p50/counter regression tolerance "
                   "(default 0.25)")
    b.add_argument("--backend", choices=("compact", "nx"), default="compact",
                   help="auxiliary-graph backend for the scheduler ops "
                   "(default: compact)")
    b.add_argument("--compute", choices=COMPUTE_BACKENDS, default=None,
                   help="kernel implementation for the scheduler ops; when "
                   "set it supersedes --backend (default: the stdlib python "
                   "path, matching committed baselines)")
    b.add_argument("--strict-ops", action="store_true",
                   help="fail the gate when a tier-1 op present in the "
                   "baseline is missing from this run")
    b.add_argument("--write-baseline", action="store_true",
                   help="write the result as the new baseline instead of "
                   "gating")

    r = sub.add_parser(
        "report", parents=[common],
        help="render a recorded NDJSON run ledger as self-contained HTML",
    )
    r.add_argument("ledger", help="NDJSON file from --ledger-out")
    r.add_argument("-o", "--output", default="report.html",
                   help="output HTML path (default: report.html)")

    v = sub.add_parser(
        "serve", parents=[common],
        help="run the HTTP planning service (POST /plan, POST /plan_many, "
        "GET /healthz, GET /metrics, GET /cache/stats)",
    )
    v.add_argument("traces", nargs="*", metavar="TRACE",
                   help="trace files to host (CRAWDAD, CSV, or .ctrace — "
                   "the columnar format loads with an O(1) cache-key "
                   "fingerprint), addressable by file stem in requests")
    v.add_argument("--synthetic", type=int, default=None, metavar="N",
                   help="also host an N-node synthetic Haggle-like trace "
                   "named 'synthetic' (default when no trace files given: "
                   "20 nodes)")
    v.add_argument("--host", default="127.0.0.1")
    v.add_argument("--port", type=int, default=8437)
    v.add_argument("--seed", type=int, default=0,
                   help="seed for the synthetic trace")
    v.add_argument("--workers", type=int, default=None,
                   help="batch-executor threads (default: auto)")
    v.add_argument("--max-queue", type=int, default=256,
                   help="admission bound; requests past it get HTTP 429")
    v.add_argument("--max-batch", type=int, default=32,
                   help="most requests drained per batch flush")
    v.add_argument("--max-wait", type=float, default=0.005,
                   help="seconds a flush lingers for request coalescing")
    v.add_argument("--timeout", type=float, default=30.0,
                   help="per-request seconds before HTTP 504")
    v.add_argument("--cache-capacity", type=int, default=128,
                   help="in-memory plan-cache entries")
    v.add_argument("--cache-ttl", type=float, default=None,
                   help="plan-cache expiry in seconds (default: none)")
    v.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="persist plans to this directory (survives restarts; "
                   "with --shards it is the tier every shard shares)")
    v.add_argument("--shards", type=int, default=0, metavar="N",
                   help="worker processes behind a consistent-hash ring "
                   "(default 0: one in-process service behind the async "
                   "front-end)")
    v.add_argument("--warm", default=None, metavar="FILE",
                   help="JSON array of /plan request bodies replayed into "
                   "the cache at boot (optional \"op\": \"plan_many\")")
    v.add_argument("--max-inflight", type=int, default=64,
                   help="per-shard in-flight request bound; past it that "
                   "shard answers 429 (default 64)")
    v.add_argument("--edge-cache", type=int, default=1024,
                   help="front-end response-cache entries for repeat /plan "
                   "configurations; 0 disables (default 1024)")
    v.add_argument("--legacy-http", action="store_true",
                   help="serve with the threaded blocking front-end instead "
                   "of the asyncio server (single-process only)")

    t = sub.add_parser(
        "top", parents=[common],
        help="live per-shard view of a running service: polls GET /metrics "
        "and renders qps, latency percentiles, and cache hit ratios",
    )
    t.add_argument("url", nargs="?", default="http://127.0.0.1:8437",
                   help="base URL of the service (default "
                   "http://127.0.0.1:8437)")
    t.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    t.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="render N frames then exit (default: until Ctrl-C)")
    t.add_argument("--once", action="store_true",
                   help="render a single frame and exit (same as "
                   "--iterations 1)")
    t.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen "
                   "(useful when piping to a file)")

    k = sub.add_parser(
        "cache", parents=[common],
        help="inspect or clear a persistent plan-cache directory",
    )
    k.add_argument("dir", help="plan-cache directory (from serve --cache-dir "
                   "or PlanCache(disk_dir=...))")
    k.add_argument("--clear", action="store_true",
                   help="delete every cached plan instead of listing them")
    return parser


def _prepare(args):
    """Shared trace-window → TVEG → source pipeline for schedule/simulate."""
    trace = load_trace(args.trace)
    window = trace.restrict_window(
        args.window_start, args.window_start + args.delay
    ).shift(-args.window_start)
    channel = args.channel or (
        "rayleigh" if args.algorithm.startswith("fr-") else "static"
    )
    tveg = tveg_from_trace(window, channel, seed=args.seed)
    if args.source is not None:
        source = args.source
    else:
        feasible = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, args.delay))
        if not feasible:
            raise InfeasibleError(
                "no broadcast-feasible source in this window; "
                "try --window-start elsewhere or a larger --delay"
            )
        source = feasible[0]
    kwargs = {"seed": args.seed} if "rand" in args.algorithm else {}
    backend = getattr(args, "backend", None)
    compute = getattr(args, "compute", None)
    if backend and args.algorithm in ("eedcb", "fr-eedcb"):
        kwargs["backend"] = backend
    if compute is not None or not backend:
        # Mirror the API default: auto-resolve the kernel unless a legacy
        # --backend alone pinned the classic semantics.
        kwargs["compute"] = resolve_compute(compute)
    scheduler = make_scheduler(args.algorithm, **kwargs)
    return tveg, source, scheduler


def _cmd_generate(args) -> int:
    trace = haggle_like_trace(
        HaggleLikeConfig(num_nodes=args.nodes, horizon=args.horizon),
        seed=args.seed,
    )
    if args.output.endswith(".csv"):
        write_csv(trace, args.output)
    else:
        write_crawdad(trace, args.output)
    print(f"wrote {trace} to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    print(summarize(load_trace(args.trace)))
    return 0


def _cmd_trace(args) -> int:
    from .traces import CTRACE_SUFFIX, ingest_path

    node_type = {"int": int, "str": str}[args.node_type]
    store = ingest_path(args.input, node_type=node_type,
                        horizon=args.horizon)
    if args.output:
        out = args.output
        if not out.endswith(CTRACE_SUFFIX):
            out += CTRACE_SUFFIX
        store.save(out)
        print(f"# wrote {out}")
    lo, hi = store.time_span()
    print(f"nodes:        {store.num_nodes}")
    print(f"contacts:     {store.num_contacts}")
    print(f"horizon:      {store.horizon:g}")
    print(f"time span:    [{lo:g}, {hi:g}]")
    print(f"fingerprint:  {store.fingerprint()}")
    return 0


def _cmd_schedule(args) -> int:
    from .schedule.io import write_schedule_csv

    tveg, source, scheduler = _prepare(args)
    t0 = time.perf_counter()
    result = scheduler.run(tveg, source, args.delay)
    schedule = result.schedule
    if args.save:
        write_schedule_csv(schedule, args.save)
    print(f"# algorithm={args.algorithm} source={source} delay={args.delay:g}")
    print(f"# total normalized energy: "
          f"{PAPER_PARAMS.normalize_energy(schedule.total_cost):.3f}")
    report = check_feasibility(
        tveg, schedule, source, args.delay, record="final"
    )
    obs.emit(
        obs.EV_RUN_SUMMARY,
        algorithm=args.algorithm,
        num_nodes=tveg.num_nodes,
        transmissions=len(schedule),
        total_cost=schedule.total_cost,
        feasible=report.feasible,
        stage_seconds=result.info.get("stage_seconds", {}),
        wall_seconds=time.perf_counter() - t0,
    )
    print(f"# feasible: {report.feasible}")
    print("# relay time cost")
    for s in schedule:
        print(f"{s.relay} {s.time:.3f} {s.cost:.6e}")
    return 0 if report.feasible else 2


def _cmd_simulate(args) -> int:
    from .schedule.io import read_schedule_csv

    tveg, source, scheduler = _prepare(args)
    if args.schedule_file:
        schedule = read_schedule_csv(args.schedule_file)
    else:
        schedule = scheduler.schedule(tveg, source, args.delay)
    if getattr(args, "protocol", False):
        return _simulate_protocol(args, tveg, schedule, source)
    summary = run_trials(
        tveg, schedule, source, num_trials=args.trials, seed=args.seed,
        count_scheduled_energy=True, workers=args.workers,
    )
    lo, hi = summary.delivery_ci95()
    label = f"file:{args.schedule_file}" if args.schedule_file else args.algorithm
    obs.emit(
        obs.EV_RUN_SUMMARY,
        algorithm=label,
        num_nodes=tveg.num_nodes,
        transmissions=len(schedule),
        total_cost=schedule.total_cost,
        mean_delivery=summary.mean_delivery,
        mean_energy=summary.mean_energy,
        trials=summary.num_trials,
    )
    print(f"algorithm:  {label}")
    print(f"energy:     {PAPER_PARAMS.normalize_energy(schedule.total_cost):.3f} (normalized)")
    print(f"delivery:   {summary.mean_delivery:.4f}  (95% CI [{lo:.4f}, {hi:.4f}])")
    print(f"trials:     {summary.num_trials}")
    return 0


def _protocol_config(args):
    """Build a ProtocolConfig from protosim CLI flags (or the default)."""
    from .protosim import ProtocolConfig

    if getattr(args, "parity", False):
        return ProtocolConfig.parity()
    if not hasattr(args, "max_retries"):
        return ProtocolConfig()  # `simulate --protocol`: library defaults
    return ProtocolConfig(
        max_retries=args.max_retries,
        backoff=args.backoff,
        ack=not args.no_ack,
        hello_cost=args.hello_cost,
        queue_capacity=args.queue_capacity,
        service_time=args.service_time,
        clock_jitter=args.clock_jitter,
    )


def _simulate_protocol(args, tveg, schedule, source) -> int:
    """Shared protocol-run body of ``simulate --protocol`` / ``protosim``."""
    from .protosim import check_analytic_parity, run_protocol_trials

    label = (
        f"file:{args.schedule_file}" if args.schedule_file else args.algorithm
    )
    if getattr(args, "check_parity", False):
        report = check_analytic_parity(tveg, schedule, source, args.delay)
        verdict = "ok" if report.ok else "MISMATCH"
        print(f"parity:     {verdict} (informed={len(report.analytic_informed)}"
              f"/{tveg.num_nodes} nodes, lossless static channel)")
        for line in report.mismatches:
            print(f"#   {line}")
        if not report.ok:
            return 2
    config = _protocol_config(args)
    summary = run_protocol_trials(
        tveg, schedule, source, args.delay, num_trials=args.trials,
        seed=args.seed, config=config, workers=args.workers,
    )
    lo, hi = summary.delivery_ci95()
    obs.emit(
        obs.EV_RUN_SUMMARY,
        algorithm=label,
        num_nodes=tveg.num_nodes,
        transmissions=len(schedule),
        total_cost=schedule.total_cost,
        mean_delivery=summary.mean_delivery,
        mean_energy=summary.mean_energy,
        mean_retransmits=summary.mean_retransmits,
        trials=summary.num_trials,
        engine="protocol",
    )
    print(f"algorithm:  {label} (protocol engine)")
    print(f"energy:     {PAPER_PARAMS.normalize_energy(summary.mean_energy):.3f} "
          "(normalized, radiated incl. retransmissions + overhead)")
    print(f"delivery:   {summary.mean_delivery:.4f}  (95% CI [{lo:.4f}, {hi:.4f}])")
    print(f"data sent:  {summary.mean_data_sent:.2f} frames/trial "
          f"({summary.mean_retransmits:.2f} retransmissions)")
    print(f"trials:     {summary.num_trials}")
    return 0


def _cmd_protosim(args) -> int:
    from .schedule.io import read_schedule_csv

    tveg, source, scheduler = _prepare(args)
    if args.schedule_file:
        schedule = read_schedule_csv(args.schedule_file)
    else:
        schedule = scheduler.schedule(tveg, source, args.delay)
    return _simulate_protocol(args, tveg, schedule, source)


def _cmd_experiment(args) -> int:
    from pathlib import Path

    from .experiments.export import write_sweep_csv

    config = ExperimentConfig(
        repetitions=args.repetitions,
        trials=args.trials,
        num_nodes=args.nodes,
        seed=args.seed,
        workers=args.workers,
    )
    if args.figure == "fig4":
        panels = [run_fig4(ch, config) for ch in ("static", "rayleigh")]
    elif args.figure == "fig5":
        panels = [run_fig5(ch, config) for ch in ("static", "rayleigh")]
    elif args.figure == "fig6":
        panels = list(run_fig6(config))
    else:
        panels = [run_fig7(ch, config) for ch in ("static", "rayleigh")]

    for i, panel in enumerate(panels):
        print_sweep(panel)
        if args.csv_dir:
            out = Path(args.csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{args.figure}_panel{chr(ord('a') + i)}.csv"
            write_sweep_csv(panel, path)
            print(f"# wrote {path}")
    if args.csv_dir:
        manifest_path = Path(args.csv_dir) / "manifest.json"
        obs.write_manifest(_args_manifest(args), manifest_path)
        print(f"# wrote {manifest_path}")
    return 0


def _cmd_bench(args) -> int:
    import os

    from .obs import bench

    # The suite times the shipped default (instrumentation off); suspend
    # any ledger the -v flag switched on for the duration of the run.
    old_ledger = obs.set_ledger(None)
    try:
        doc = bench.run_bench(quick=args.quick, repeats=args.repeats,
                              num_nodes=args.nodes, backend=args.backend,
                              compute=args.compute)
    finally:
        obs.set_ledger(old_ledger)
    frac = doc["overhead"]["estimated_fraction_of_eedcb"]
    print(f"# disabled-instrumentation overhead: {frac:.2e} of an EEDCB run "
          f"({doc['overhead']['noop_call_ns']:.0f} ns/site)")
    for op, r in doc["results"].items():
        tier = "tier1" if r["tier1"] else "     "
        print(f"{op:20s} {tier}  p50={r['p50_ms']:10.2f} ms  "
              f"p95={r['p95_ms']:10.2f} ms")

    if args.write_baseline:
        bench.write_bench(doc, args.baseline)
        print(f"# wrote baseline to {args.baseline}")
        return 0

    out = args.out or bench.bench_filename()
    bench.write_bench(doc, out)
    print(f"# wrote {out}")

    if not os.path.exists(args.baseline):
        print(f"# no baseline at {args.baseline}; gate skipped "
              "(create one with --write-baseline)", file=sys.stderr)
        return 0
    baseline = bench.read_bench(args.baseline)
    age = bench.baseline_staleness(baseline)
    if age is not None and age > bench.STALE_BASELINE_COMMITS:
        print(f"# warning: baseline {args.baseline} is {age} commits behind "
              f"HEAD (> {bench.STALE_BASELINE_COMMITS}); consider "
              "--write-baseline", file=sys.stderr)
    problems = bench.compare(doc, baseline, tolerance=args.tolerance,
                             strict_missing=args.strict_ops)
    if problems:
        for p in problems:
            print(f"REGRESSION: {p}", file=sys.stderr)
        return 3
    print("# regression gate passed")
    return 0


def _cmd_report(args) -> int:
    from .obs.report import write_report

    try:
        n = write_report(args.ledger, args.output)
    except ValueError as exc:
        raise ReproError(f"{args.ledger} is not a ledger NDJSON file ({exc})")
    print(f"# rendered {n} events from {args.ledger} to {args.output}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal
    from pathlib import Path

    from .service import (
        AsyncPlanningServer,
        LocalBackend,
        PlanCache,
        PlanningService,
        ShardPool,
        make_server,
        read_warm_file,
    )

    traces = {}
    for path in args.traces:
        traces[Path(path).stem] = load_trace(path)
    synthetic = args.synthetic if args.synthetic is not None else (
        20 if not traces else None
    )
    if synthetic is not None:
        traces["synthetic"] = haggle_like_trace(
            HaggleLikeConfig(num_nodes=synthetic), seed=args.seed
        )

    warm_configs = read_warm_file(args.warm) if args.warm else None
    cache_kwargs = dict(
        capacity=args.cache_capacity, ttl=args.cache_ttl,
        disk_dir=args.cache_dir,
    )
    service_kwargs = dict(
        workers=args.workers, max_batch=args.max_batch,
        max_wait=args.max_wait, max_queue=args.max_queue,
        timeout=args.timeout,
    )
    logger = (logging.getLogger("repro.serve")
              if (args.verbose or args.log_level) else None)
    endpoints = ("# POST /plan | POST /plan_many | GET /healthz | "
                 "GET /metrics | GET /cache/stats — Ctrl-C to stop")

    if args.legacy_http:
        if args.shards:
            raise ReproError("--legacy-http serves one process; it cannot "
                             "be combined with --shards")
        service = PlanningService(
            traces, cache=PlanCache(**cache_kwargs), **service_kwargs
        )
        if warm_configs:
            stats = service.warm(warm_configs)
            print(f"# warmed {stats['warmed']} configs "
                  f"({stats['failed']} failed)")
        srv = make_server(service, args.host, args.port)
        if logger is not None:
            srv.logger = logger
        host, port = srv.server_address[:2]
        print(f"# serving on http://{host}:{port}  "
              f"(traces: {', '.join(service.trace_names())})")
        print(endpoints, flush=True)
        try:
            srv.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            srv.server_close()
            service.close()
            m = service.metrics()
            print(f"\n# served {m['requests']} requests "
                  f"({m['errors']} errors, cache hit rate "
                  f"{m['cache']['hit_rate']:.0%})", file=sys.stderr)
        return 0

    # asyncio front-end: one in-process backend, or a shard pool
    if args.shards > 0:
        backend = ShardPool(
            traces, args.shards, cache_kwargs=cache_kwargs,
            service_kwargs=service_kwargs, max_inflight=args.max_inflight,
        )
    else:
        service = PlanningService(
            traces, cache=PlanCache(**cache_kwargs), **service_kwargs
        )
        backend = LocalBackend(
            service, traces, max_inflight=args.max_inflight,
        )
    if warm_configs:
        stats = backend.warm(warm_configs)
        print(f"# warmed {stats['warmed']} configs "
              f"({stats['failed']} failed)")
    server = AsyncPlanningServer(
        backend, args.host, args.port, timeout=args.timeout,
        edge_cache=args.edge_cache, logger=logger,
    )

    async def run() -> None:
        await server.start()
        host, port = server.server_address
        shape = (f"{args.shards} shards" if args.shards > 0
                 else "1 process")
        print(f"# serving on http://{host}:{port}  "
              f"(traces: {', '.join(sorted(traces))})")
        print(f"# async front-end over {shape}; SIGTERM drains gracefully")
        print(endpoints, flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-Unix event loop
                pass
        await server.serve_until(stop)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    edge = server.edge_stats()
    print(f"\n# served {server.served} requests ({server.errors} errors, "
          f"edge cache hits {edge['hits']})", file=sys.stderr)
    return 0


def _cmd_top(args) -> int:
    from .service import top_loop

    iterations = 1 if args.once else args.iterations
    return top_loop(
        args.url, interval=args.interval, iterations=iterations,
        clear=not args.no_clear,
    )


def _cmd_cache(args) -> int:
    import os

    from .schedule.io import read_plan_json
    from .service import PlanCache

    if not os.path.isdir(args.dir):
        raise ReproError(f"not a cache directory: {args.dir}")
    cache = PlanCache(disk_dir=args.dir)
    keys = cache.disk_keys()
    if args.clear:
        n = cache.clear(disk=True)
        print(f"# removed {n} cached plans from {args.dir}")
        return 0
    print(f"# {len(keys)} cached plans in {args.dir}")
    if keys:
        print(f"# {'key':16s}  {'algorithm':10s}  {'deadline':>9s}  "
              f"{'relays':>6s}  {'energy':>10s}")
    for key in keys:
        try:
            doc = read_plan_json(os.path.join(args.dir, key + ".json"))
        except ReproError:
            print(f"{key}  (unreadable)")
            continue
        cost = sum(row[2] for row in doc.get("schedule", []))
        print(f"{key}  {doc.get('algorithm', '?'):10s}  "
              f"{doc.get('deadline', float('nan')):9g}  "
              f"{len(doc.get('schedule', [])):6d}  "
              f"{PAPER_PARAMS.normalize_energy(cost):10.3f}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "schedule": _cmd_schedule,
    "simulate": _cmd_simulate,
    "protosim": _cmd_protosim,
    "experiment": _cmd_experiment,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "cache": _cmd_cache,
}

#: args entries that are outputs/plumbing, not part of the run's identity
_NON_CONFIG_ARGS = frozenset(
    ("trace_out", "metrics_out", "ledger_out", "manifest_out", "save",
     "csv_dir", "verbose", "log_level", "out", "output", "baseline",
     "write_baseline")
)


def _args_manifest(args):
    """A reproducibility manifest for one CLI invocation."""
    config = {
        k: v for k, v in vars(args).items()
        if k not in _NON_CONFIG_ARGS and v is not None
    }
    return obs.run_manifest(config=config, seed=getattr(args, "seed", None))


def _export_obs(args) -> None:
    """Write the requested trace/metrics files from the global tracer."""
    from .obs.export import write_chrome_trace, write_metrics_csv

    snap = obs.snapshot()
    if args.trace_out:
        write_chrome_trace(snap, args.trace_out)
        print(f"# wrote trace to {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        write_metrics_csv(snap, args.metrics_out)
        print(f"# wrote metrics to {args.metrics_out}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    tracing = bool(
        getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)
    )
    ledger_out = getattr(args, "ledger_out", None)
    log_level = getattr(args, "log_level", None)
    streaming = bool(getattr(args, "verbose", False) or log_level)
    recording = bool(ledger_out or streaming)
    if tracing:
        obs.enable()
    if recording:
        logger = None
        if streaming:
            level = getattr(logging, (log_level or "info").upper())
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter("%(message)s"))
            logger = logging.getLogger("repro.ledger")
            logger.setLevel(level)
            logger.addHandler(handler)
            logger.propagate = False
        obs.enable_ledger(logger=logger)
        # First record: the run's manifest, so the NDJSON file (and the -v
        # stream) is self-describing.
        obs.emit(obs.EV_MANIFEST, **_args_manifest(args))
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    finally:
        if tracing:
            try:
                _export_obs(args)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
            finally:
                obs.disable()
        if recording:
            try:
                if ledger_out:
                    n = obs.write_ledger_ndjson(ledger_out)
                    print(f"# wrote {n} events to {ledger_out}",
                          file=sys.stderr)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
            finally:
                obs.disable_ledger()
        # Written even when the run failed: the manifest records what was
        # *attempted*, which is exactly what a failure post-mortem needs.
        if getattr(args, "manifest_out", None):
            try:
                obs.write_manifest(_args_manifest(args), args.manifest_out)
                print(f"# wrote manifest to {args.manifest_out}",
                      file=sys.stderr)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

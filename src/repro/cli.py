"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the full pipeline so the library is usable without
writing Python:

* ``generate``   — synthesize a Haggle-like contact trace to a file;
* ``stats``      — summarize a trace (CRAWDAD or CSV);
* ``schedule``   — run a scheduler on a trace window and print the schedule;
* ``simulate``   — Monte-Carlo a schedule produced by a scheduler;
* ``experiment`` — regenerate one of the paper's figures (4–7).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import obs
from .algorithms import SCHEDULERS, canonical_scheduler_name, make_scheduler
from .errors import InfeasibleError, ReproError, SolverError
from .experiments import (
    ExperimentConfig,
    print_sweep,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
)
from .params import PAPER_PARAMS
from .schedule import check_feasibility
from .sim import run_trials
from .temporal.reachability import broadcast_feasible_sources
from .traces import (
    HaggleLikeConfig,
    haggle_like_trace,
    load_trace,
    summarize,
    write_crawdad,
    write_csv,
)
from .tveg import tveg_from_trace

__all__ = ["main", "build_parser"]


def _algorithm_arg(value: str) -> str:
    """argparse type: resolve scheduler aliases to canonical names."""
    try:
        return canonical_scheduler_name(value)
    except SolverError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace_event JSON of the run (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write aggregated timer/counter metrics as CSV",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-efficient delay-constrained broadcast on "
        "time-varying energy-demand graphs (ICPP 2015 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="synthesize a Haggle-like contact trace")
    g.add_argument("output", help="output path (.csv → CSV, else CRAWDAD)")
    g.add_argument("--nodes", type=int, default=20)
    g.add_argument("--horizon", type=float, default=17000.0)
    g.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("stats", help="summarize a contact trace")
    s.add_argument("trace", help="trace file (CRAWDAD or CSV)")

    c = sub.add_parser("schedule", help="schedule one broadcast on a trace window")
    c.add_argument("trace", help="trace file (CRAWDAD or CSV)")
    c.add_argument("--algorithm", type=_algorithm_arg, default="eedcb",
                   metavar="ALGO",
                   help="one of %s (aliases like FR_EEDCB accepted)"
                   % "/".join(sorted(SCHEDULERS)))
    c.add_argument("--channel", choices=("static", "rayleigh"), default=None,
                   help="default: static for plain, rayleigh for fr-* algorithms")
    c.add_argument("--window-start", type=float, default=0.0)
    c.add_argument("--delay", type=float, default=2000.0)
    c.add_argument("--source", type=int, default=None,
                   help="default: first broadcast-feasible node")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--save", default=None,
                   help="also write the schedule to this CSV file")
    _add_obs_flags(c)

    m = sub.add_parser("simulate", help="schedule + Monte-Carlo delivery estimate")
    for src_parser in (m,):
        src_parser.add_argument("trace")
        src_parser.add_argument("--algorithm", type=_algorithm_arg,
                                default="fr-eedcb", metavar="ALGO")
        src_parser.add_argument("--channel", choices=("static", "rayleigh"), default=None)
        src_parser.add_argument("--window-start", type=float, default=0.0)
        src_parser.add_argument("--delay", type=float, default=2000.0)
        src_parser.add_argument("--source", type=int, default=None)
        src_parser.add_argument("--seed", type=int, default=0)
    m.add_argument("--trials", type=int, default=300)
    m.add_argument("--schedule-file", default=None,
                   help="simulate this saved schedule instead of rescheduling")
    _add_obs_flags(m)

    e = sub.add_parser("experiment", help="regenerate a paper figure")
    e.add_argument("figure", choices=("fig4", "fig5", "fig6", "fig7"))
    e.add_argument("--repetitions", type=int, default=3)
    e.add_argument("--trials", type=int, default=100)
    e.add_argument("--nodes", type=int, default=20)
    e.add_argument("--seed", type=int, default=2015)
    e.add_argument("--csv-dir", default=None,
                   help="also write each panel as CSV into this directory")
    _add_obs_flags(e)
    return parser


def _prepare(args):
    """Shared trace-window → TVEG → source pipeline for schedule/simulate."""
    trace = load_trace(args.trace)
    window = trace.restrict_window(
        args.window_start, args.window_start + args.delay
    ).shift(-args.window_start)
    channel = args.channel or (
        "rayleigh" if args.algorithm.startswith("fr-") else "static"
    )
    tveg = tveg_from_trace(window, channel, seed=args.seed)
    if args.source is not None:
        source = args.source
    else:
        feasible = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, args.delay))
        if not feasible:
            raise InfeasibleError(
                "no broadcast-feasible source in this window; "
                "try --window-start elsewhere or a larger --delay"
            )
        source = feasible[0]
    kwargs = {"seed": args.seed} if "rand" in args.algorithm else {}
    scheduler = make_scheduler(args.algorithm, **kwargs)
    return tveg, source, scheduler


def _cmd_generate(args) -> int:
    trace = haggle_like_trace(
        HaggleLikeConfig(num_nodes=args.nodes, horizon=args.horizon),
        seed=args.seed,
    )
    if args.output.endswith(".csv"):
        write_csv(trace, args.output)
    else:
        write_crawdad(trace, args.output)
    print(f"wrote {trace} to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    print(summarize(load_trace(args.trace)))
    return 0


def _cmd_schedule(args) -> int:
    from .schedule.io import write_schedule_csv

    tveg, source, scheduler = _prepare(args)
    result = scheduler.run(tveg, source, args.delay)
    schedule = result.schedule
    if args.save:
        write_schedule_csv(schedule, args.save)
    print(f"# algorithm={args.algorithm} source={source} delay={args.delay:g}")
    print(f"# total normalized energy: "
          f"{PAPER_PARAMS.normalize_energy(schedule.total_cost):.3f}")
    report = check_feasibility(tveg, schedule, source, args.delay)
    print(f"# feasible: {report.feasible}")
    print("# relay time cost")
    for s in schedule:
        print(f"{s.relay} {s.time:.3f} {s.cost:.6e}")
    return 0 if report.feasible else 2


def _cmd_simulate(args) -> int:
    from .schedule.io import read_schedule_csv

    tveg, source, scheduler = _prepare(args)
    if args.schedule_file:
        schedule = read_schedule_csv(args.schedule_file)
    else:
        schedule = scheduler.schedule(tveg, source, args.delay)
    summary = run_trials(
        tveg, schedule, source, num_trials=args.trials, seed=args.seed,
        count_scheduled_energy=True,
    )
    lo, hi = summary.delivery_ci95()
    label = f"file:{args.schedule_file}" if args.schedule_file else args.algorithm
    print(f"algorithm:  {label}")
    print(f"energy:     {PAPER_PARAMS.normalize_energy(schedule.total_cost):.3f} (normalized)")
    print(f"delivery:   {summary.mean_delivery:.4f}  (95% CI [{lo:.4f}, {hi:.4f}])")
    print(f"trials:     {summary.num_trials}")
    return 0


def _cmd_experiment(args) -> int:
    from pathlib import Path

    from .experiments.export import write_sweep_csv

    config = ExperimentConfig(
        repetitions=args.repetitions,
        trials=args.trials,
        num_nodes=args.nodes,
        seed=args.seed,
    )
    if args.figure == "fig4":
        panels = [run_fig4(ch, config) for ch in ("static", "rayleigh")]
    elif args.figure == "fig5":
        panels = [run_fig5(ch, config) for ch in ("static", "rayleigh")]
    elif args.figure == "fig6":
        panels = list(run_fig6(config))
    else:
        panels = [run_fig7(ch, config) for ch in ("static", "rayleigh")]

    for i, panel in enumerate(panels):
        print_sweep(panel)
        if args.csv_dir:
            out = Path(args.csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            path = out / f"{args.figure}_panel{chr(ord('a') + i)}.csv"
            write_sweep_csv(panel, path)
            print(f"# wrote {path}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "schedule": _cmd_schedule,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
}


def _export_obs(args) -> None:
    """Write the requested trace/metrics files from the global tracer."""
    from .obs.export import write_chrome_trace, write_metrics_csv

    snap = obs.snapshot()
    if args.trace_out:
        write_chrome_trace(snap, args.trace_out)
        print(f"# wrote trace to {args.trace_out}", file=sys.stderr)
    if args.metrics_out:
        write_metrics_csv(snap, args.metrics_out)
        print(f"# wrote metrics to {args.metrics_out}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    tracing = bool(
        getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)
    )
    if tracing:
        obs.enable()
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    finally:
        if tracing:
            try:
                _export_obs(args)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
            finally:
                obs.disable()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

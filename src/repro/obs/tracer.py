"""Nested timing spans, monotonic counters, and gauges.

The process-global tracer is swappable: by default it is a
:class:`NoopTracer`, whose ``span()`` returns a shared do-nothing context
manager and whose ``counter``/``gauge`` are empty method calls — the
instrumented hot paths pay a few attribute lookups and nothing else.
Calling :func:`enable` (or :func:`set_tracer` with a recording
:class:`Tracer`) switches every instrumented call site in the process to
recording mode; :func:`snapshot` then returns an immutable
:class:`TraceSnapshot` that :mod:`repro.obs.metrics` aggregates and
:mod:`repro.obs.export` serializes.

Usage::

    from repro import obs

    obs.enable()
    with obs.span("my.stage", size=42):
        ...
    obs.counter("my.events", 3)
    snap = obs.snapshot()

``span`` also works as a decorator (resolved at call time, so functions
decorated before ``enable()`` still record afterwards)::

    @obs.span("steiner.solve")
    def solve(...): ...

Zero dependencies beyond the standard library.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, MutableMapping, Optional, Tuple

__all__ = [
    "Span",
    "TraceSnapshot",
    "Tracer",
    "NoopTracer",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "is_enabled",
    "snapshot",
    "reset",
    "span",
    "counter",
    "gauge",
    "stage",
]


@dataclass
class Span:
    """One timed region: ``[start, start + duration)`` seconds from the
    tracer's epoch, with its nesting depth and parent span id."""

    id: int
    name: str
    start: float
    duration: Optional[float] = None  # None while the span is still open
    depth: int = 0
    parent: Optional[int] = None
    thread: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + (self.duration or 0.0)


@dataclass(frozen=True)
class TraceSnapshot:
    """An immutable copy of everything a tracer has recorded so far."""

    spans: Tuple[Span, ...]
    counters: Dict[str, float]
    gauges: Dict[str, float]

    def spans_named(self, name: str) -> Tuple[Span, ...]:
        """All finished spans with the given name, in start order."""
        return tuple(s for s in self.spans if s.name == name)

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span with the given name."""
        return sum(s.duration or 0.0 for s in self.spans_named(name))

    @property
    def span_names(self) -> Tuple[str, ...]:
        """Distinct span names, in first-seen order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name, None)
        return tuple(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceSnapshot(spans={len(self.spans)}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)})"
        )


class _SpanContext:
    """Context manager recording one span on a specific tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._end(self._span)
        return False


class _NoopContext:
    """The shared do-nothing span context (disabled-tracer fast path)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_CONTEXT = _NoopContext()


class Tracer:
    """A recording tracer: thread-safe span stack, counters, gauges."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self.reset()

    # -- recording ------------------------------------------------------
    def reset(self) -> None:
        """Drop everything recorded so far and restart the clock."""
        with self._lock:
            self._spans: List[Span] = []
            self._counters: Dict[str, float] = {}
            self._gauges: Dict[str, float] = {}
            self._next_id = 0
            self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """A context manager timing one named region."""
        return _SpanContext(self, name, attrs)

    def counter(self, name: str, inc: float = 1.0) -> None:
        """Add ``inc`` to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + inc

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = float(value)

    def snapshot(self) -> TraceSnapshot:
        """Copy of all *finished* spans, counters, and gauges."""
        with self._lock:
            spans = tuple(
                replace(s, attrs=dict(s.attrs))
                for s in self._spans
                if s.duration is not None
            )
            return TraceSnapshot(
                spans=spans,
                counters=dict(self._counters),
                gauges=dict(self._gauges),
            )

    # -- internals ------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _begin(self, name: str, attrs: Dict[str, Any]) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            s = Span(
                id=sid,
                name=name,
                start=time.perf_counter() - self._epoch,
                depth=len(stack),
                parent=parent.id if parent is not None else None,
                thread=threading.get_ident(),
                attrs=dict(attrs),
            )
            self._spans.append(s)
        stack.append(s)
        return s

    def _end(self, s: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is s:
            stack.pop()
        else:  # mis-nested exit; drop it from the stack wherever it sits
            try:
                stack.remove(s)
            except ValueError:  # pragma: no cover - defensive
                pass
        s.duration = (time.perf_counter() - self._epoch) - s.start


class NoopTracer:
    """The default tracer: records nothing, costs ~nothing."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NoopContext:
        return _NOOP_CONTEXT

    def counter(self, name: str, inc: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> TraceSnapshot:
        return TraceSnapshot(spans=(), counters={}, gauges={})

    def reset(self) -> None:
        pass


_NOOP_TRACER = NoopTracer()
_tracer = _NOOP_TRACER


def get_tracer():
    """The process-global tracer currently receiving instrumentation."""
    return _tracer


def set_tracer(tracer) -> object:
    """Install ``tracer`` (None → the no-op tracer); returns the old one."""
    global _tracer
    old = _tracer
    _tracer = tracer if tracer is not None else _NOOP_TRACER
    return old


def enable() -> Tracer:
    """Switch tracing on; returns the (new or existing) recording tracer."""
    global _tracer
    if not _tracer.enabled:
        _tracer = Tracer()
    return _tracer


def disable() -> None:
    """Switch tracing off (back to the no-op tracer)."""
    set_tracer(None)


def is_enabled() -> bool:
    return _tracer.enabled


def snapshot() -> TraceSnapshot:
    """Snapshot of the global tracer (empty when tracing is disabled)."""
    return _tracer.snapshot()


def reset() -> None:
    """Clear the global tracer's recorded data (no-op when disabled)."""
    _tracer.reset()


class _GlobalSpan:
    """Late-binding span: resolves the global tracer at enter/call time, so
    one object serves as both a context manager and a decorator."""

    __slots__ = ("_name", "_attrs", "_cm")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._cm = _tracer.span(self._name, **self._attrs)
        return self._cm.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        return self._cm.__exit__(exc_type, exc, tb)

    def __call__(self, fn: Callable) -> Callable:
        name, attrs = self._name, self._attrs

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            with _tracer.span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper


def span(name: str, **attrs: Any) -> _GlobalSpan:
    """Time a region on the global tracer (context manager or decorator)."""
    return _GlobalSpan(name, attrs)


def counter(name: str, inc: float = 1.0) -> None:
    """Increment a counter on the global tracer."""
    _tracer.counter(name, inc)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the global tracer."""
    _tracer.gauge(name, value)


@contextmanager
def stage(sink: MutableMapping[str, float], key: str,
          span_name: Optional[str] = None, **attrs: Any):
    """Time a pipeline stage into ``sink[key]`` *and* emit a span.

    The wall time lands in ``sink`` regardless of whether tracing is
    enabled — the schedulers use this to populate the standardized
    ``stage_seconds`` entry of :class:`~repro.algorithms.base.SchedulerResult`
    ``info`` — while the span itself is recorded only by an enabled tracer.
    """
    t0 = time.perf_counter()
    try:
        with _tracer.span(span_name or key, **attrs):
            yield
    finally:
        sink[key] = sink.get(key, 0.0) + (time.perf_counter() - t0)

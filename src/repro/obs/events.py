"""Typed domain events of a TMEDB run.

Where :mod:`repro.obs.tracer` answers "where did the wall time go", the
event ledger answers "what did the *broadcast* do": which relay was picked
and why, which transmission was scheduled at which DTS point and power,
when each node's uninformed probability ``p_{i,t}`` crossed ε, where energy
was debited, and — when a schedule is infeasible — exactly which Section IV
condition failed.

An :class:`Event` is a frozen record ``(seq, type, t, fields)``:

``seq``
    Monotonic per-ledger sequence number (total emission order).
``type``
    One of the ``EV_*`` constants below (free-form types are allowed for
    extensions; the constants are what the built-in call sites emit).
``t``
    *Domain* time in seconds on the broadcast clock (a transmission time, a
    reception time, ...) — ``None`` for events with no natural instant
    (e.g. a manifest or a run summary).
``fields``
    Flat JSON-safe mapping of event-specific payload.

Events serialize to one JSON object per line (NDJSON) via
:func:`event_to_json` / :func:`event_from_json`; see
:mod:`repro.obs.ledger` for recording and file I/O.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "Event",
    "event_to_json",
    "event_from_json",
    "EV_MANIFEST",
    "EV_RELAY_SELECTED",
    "EV_TRANSMISSION_SCHEDULED",
    "EV_NODE_INFORMED",
    "EV_ENERGY_DEBITED",
    "EV_CONSTRAINT_VIOLATED",
    "EV_FEASIBILITY_CHECKED",
    "EV_SIM_RECEPTION",
    "EV_ONLINE_ATTEMPT",
    "EV_MSG_SENT",
    "EV_MSG_RECEIVED",
    "EV_MSG_DROPPED",
    "EV_MSG_RETRANSMIT",
    "EV_RUN_SUMMARY",
    "EV_PLAN_CACHE_HIT",
    "EV_PLAN_CACHE_MISS",
    "EV_BATCH_FLUSHED",
    "EV_REQUEST_REJECTED",
    "EV_SHARD_STARTED",
    "EV_SHARD_EXITED",
    "EVENT_TYPES",
]

#: run manifest embedded as the ledger's first record (fields = manifest)
EV_MANIFEST = "manifest"
#: a scheduler committed to a relay (relay, time, cost, algorithm, newly)
EV_RELAY_SELECTED = "relay_selected"
#: one schedule row: (relay, DTS point ``t``, power/cost) — final schedule
EV_TRANSMISSION_SCHEDULED = "transmission_scheduled"
#: a node's ``p_{i,t}`` crossed ε (node, time, p, source of the crossing)
EV_NODE_INFORMED = "node_informed"
#: energy actually spent (relay, cost, context: "sim" | "online" | ...)
EV_ENERGY_DEBITED = "energy_debited"
#: one violated Section IV condition (constraint, detail)
EV_CONSTRAINT_VIOLATED = "constraint_violated"
#: summary of one feasibility evaluation (feasible, num_violations)
EV_FEASIBILITY_CHECKED = "feasibility_checked"
#: a Monte-Carlo trial delivered the packet to a node (node, time, relay)
EV_SIM_RECEPTION = "sim_reception"
#: one online forwarding attempt (carrier, target, cost, success) — also
#: carries the protosim-compatible msg/src/dst/outcome fields, so one
#: filter (see :func:`repro.obs.report.message_rows`) reads both engines
EV_ONLINE_ATTEMPT = "online_attempt"
#: a protocol frame hit the air (msg: hello|data|ack, src, dst, cost)
EV_MSG_SENT = "msg_sent"
#: a protocol frame was decoded by its receiver (msg, src, dst, cost)
EV_MSG_RECEIVED = "msg_received"
#: a protocol frame was lost (reason: loss | queue_full)
EV_MSG_DROPPED = "msg_dropped"
#: a DATA frame was repeated (src, attempt) — the matching msg_sent follows
EV_MSG_RETRANSMIT = "msg_retransmit"
#: end-of-run rollup (algorithm, stage_seconds, totals) — what the HTML
#: report's timing panel reads
EV_RUN_SUMMARY = "run_summary"
#: a plan was served from the content-addressed cache (key, tier)
EV_PLAN_CACHE_HIT = "plan_cache_hit"
#: a plan request missed the cache and was computed (key)
EV_PLAN_CACHE_MISS = "plan_cache_miss"
#: the batcher executed one group of queued requests (size, unique, deduped,
#: groups: per-key request-id lists — first id is the leader that computed)
EV_BATCH_FLUSHED = "batch_flushed"
#: admission control turned a request away (reason: queue_full | timeout)
EV_REQUEST_REJECTED = "request_rejected"
#: a planning-service shard worker process came up (shard_id, pid)
EV_SHARD_STARTED = "shard_started"
#: a shard worker left the pool (shard_id, pid, requests, clean)
EV_SHARD_EXITED = "shard_exited"

EVENT_TYPES = (
    EV_MANIFEST,
    EV_RELAY_SELECTED,
    EV_TRANSMISSION_SCHEDULED,
    EV_NODE_INFORMED,
    EV_ENERGY_DEBITED,
    EV_CONSTRAINT_VIOLATED,
    EV_FEASIBILITY_CHECKED,
    EV_SIM_RECEPTION,
    EV_ONLINE_ATTEMPT,
    EV_MSG_SENT,
    EV_MSG_RECEIVED,
    EV_MSG_DROPPED,
    EV_MSG_RETRANSMIT,
    EV_RUN_SUMMARY,
    EV_PLAN_CACHE_HIT,
    EV_PLAN_CACHE_MISS,
    EV_BATCH_FLUSHED,
    EV_REQUEST_REJECTED,
    EV_SHARD_STARTED,
    EV_SHARD_EXITED,
)


def _json_safe(value: Any) -> Any:
    """Coerce one payload value to a JSON-serializable equivalent."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class Event:
    """One typed domain event (see module docstring for the field contract)."""

    seq: int
    type: str
    t: Optional[float] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        at = f" t={self.t:g}" if self.t is not None else ""
        return f"Event(#{self.seq} {self.type}{at} {self.fields})"


def event_to_json(event: Event) -> str:
    """One compact NDJSON line (no trailing newline) for ``event``."""
    doc: Dict[str, Any] = {"seq": event.seq, "type": event.type}
    if event.t is not None:
        doc["t"] = event.t
    if event.fields:
        doc["fields"] = {str(k): _json_safe(v) for k, v in event.fields.items()}
    return json.dumps(doc, separators=(",", ":"), sort_keys=True)


def event_from_json(line: str) -> Event:
    """Parse one NDJSON line back into an :class:`Event`.

    Raises :class:`ValueError` on malformed lines (the caller decides
    whether to skip or abort — the ledger reader aborts with the line
    number).
    """
    doc = json.loads(line)
    if not isinstance(doc, dict) or "type" not in doc:
        raise ValueError(f"not an event object: {line!r}")
    t = doc.get("t")
    return Event(
        seq=int(doc.get("seq", 0)),
        type=str(doc["type"]),
        t=float(t) if t is not None else None,
        fields=dict(doc.get("fields", {})),
    )

"""Serialization of trace snapshots: Chrome trace JSON and metrics CSV.

* :func:`write_chrome_trace` emits the Chrome ``trace_event`` format
  (`chrome://tracing` / Perfetto's legacy loader): one complete (``"X"``)
  event per span with microsecond timestamps, plus counters and gauges in
  the top-level ``otherData`` object.
* :func:`write_metrics_csv` writes the flat :class:`~repro.obs.metrics.MetricStat`
  rows — one line per span name (duration percentiles), counter, and gauge.

Both accept a path or an open text file.  Standard library only.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, List, TextIO, Union

from .metrics import aggregate
from .tracer import TraceSnapshot

__all__ = [
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_metrics_csv",
]

PathLike = Union[str, "os.PathLike[str]"]
Target = Union[PathLike, TextIO]


def _json_safe(value: Any) -> Any:
    """Coerce a span attribute to something JSON-serializable."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def chrome_trace_events(snapshot: TraceSnapshot) -> List[Dict[str, Any]]:
    """The snapshot's spans as Chrome ``trace_event`` complete events."""
    events: List[Dict[str, Any]] = []
    for s in snapshot.spans:
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": s.start * 1e6,            # microseconds
                "dur": (s.duration or 0.0) * 1e6,
                "pid": 0,
                "tid": s.thread,
                "args": {str(k): _json_safe(v) for k, v in s.attrs.items()},
            }
        )
    return events


def chrome_trace_document(snapshot: TraceSnapshot) -> Dict[str, Any]:
    """The full JSON object ``chrome://tracing`` loads."""
    return {
        "traceEvents": chrome_trace_events(snapshot),
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(snapshot.counters),
            "gauges": dict(snapshot.gauges),
        },
    }


def _open_target(target: Target):
    """(file, should_close) for a path or an already-open text file."""
    if hasattr(target, "write"):
        return target, False
    return open(os.fspath(target), "w", encoding="utf-8", newline=""), True


def write_chrome_trace(snapshot: TraceSnapshot, target: Target) -> None:
    """Write the snapshot as a Chrome-loadable ``trace_event`` JSON file."""
    f, close = _open_target(target)
    try:
        json.dump(chrome_trace_document(snapshot), f, indent=1)
        f.write("\n")
    finally:
        if close:
            f.close()


_CSV_COLUMNS = (
    "kind", "name", "count", "total", "mean",
    "min", "p50", "p90", "p99", "max",
)


def write_metrics_csv(snapshot: TraceSnapshot, target: Target) -> None:
    """Write aggregated metrics as flat CSV (one row per timer/counter/gauge).

    Timer rows are in seconds; counter/gauge rows repeat their single value
    across the statistic columns so the schema stays rectangular.
    """
    report = aggregate(snapshot)
    f, close = _open_target(target)
    try:
        writer = csv.writer(f)
        writer.writerow(_CSV_COLUMNS)
        for r in report.rows():
            writer.writerow(
                [
                    r.kind,
                    r.name,
                    r.count,
                    f"{r.total:.9g}",
                    f"{r.mean:.9g}",
                    f"{r.minimum:.9g}",
                    f"{r.p50:.9g}",
                    f"{r.p90:.9g}",
                    f"{r.p99:.9g}",
                    f"{r.maximum:.9g}",
                ]
            )
    finally:
        if close:
            f.close()

"""Aggregation of trace snapshots: timers, counters, gauges, percentiles.

:func:`aggregate` folds a :class:`~repro.obs.tracer.TraceSnapshot` into a
:class:`MetricsReport`: one :class:`Histogram` of durations per span name
(the *timers*), plus the counters and gauges verbatim.  ``report.rows()``
flattens everything into :class:`MetricStat` records — the schema the CSV
exporter writes.

Standard library only; percentiles use linear interpolation between order
statistics (the same convention as ``numpy.percentile``'s default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .tracer import TraceSnapshot

__all__ = ["Histogram", "MetricStat", "MetricsReport", "aggregate", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``values``, linear interpolation.

    ``values`` need not be sorted; NaN for an empty sequence.
    """
    if not values:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Histogram:
    """An exact (all-values-retained) histogram with percentile queries.

    At observability scale — thousands of spans per run — keeping the raw
    values is cheaper and more accurate than bucketing.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Iterable[float]] = None):
        self._values: List[float] = list(values) if values is not None else []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' values."""
        return Histogram(self._values + other._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else math.nan

    @property
    def minimum(self) -> float:
        return float(min(self._values)) if self._values else math.nan

    @property
    def maximum(self) -> float:
        return float(max(self._values)) if self._values else math.nan

    def percentile(self, q: float) -> float:
        return percentile(self._values, q)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram(count={self.count}, total={self.total:.6g})"


#: the CSV/row schema shared by every aggregated metric
@dataclass(frozen=True)
class MetricStat:
    """One flat row of the aggregated report (timer, counter, or gauge).

    For timers the value fields are in **seconds**; for counters ``total``
    is the accumulated count; for gauges ``total`` is the last value.
    """

    kind: str  # "timer" | "counter" | "gauge"
    name: str
    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float


@dataclass(frozen=True)
class MetricsReport:
    """Aggregated view of one snapshot: per-name timers + raw scalars."""

    timers: Dict[str, Histogram]
    counters: Dict[str, float]
    gauges: Dict[str, float]

    def rows(self) -> List[MetricStat]:
        """Flat, deterministically ordered rows (timers, counters, gauges)."""
        out: List[MetricStat] = []
        for name in sorted(self.timers):
            h = self.timers[name]
            out.append(
                MetricStat(
                    kind="timer",
                    name=name,
                    count=h.count,
                    total=h.total,
                    mean=h.mean,
                    minimum=h.minimum,
                    maximum=h.maximum,
                    p50=h.percentile(50),
                    p90=h.percentile(90),
                    p99=h.percentile(99),
                )
            )
        for name in sorted(self.counters):
            v = self.counters[name]
            out.append(
                MetricStat("counter", name, 1, v, v, v, v, v, v, v)
            )
        for name in sorted(self.gauges):
            v = self.gauges[name]
            out.append(
                MetricStat("gauge", name, 1, v, v, v, v, v, v, v)
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsReport(timers={len(self.timers)}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)})"
        )


def aggregate(snapshot: TraceSnapshot) -> MetricsReport:
    """Fold a snapshot into per-span-name duration histograms + scalars."""
    timers: Dict[str, Histogram] = {}
    for s in snapshot.spans:
        if s.duration is None:  # pragma: no cover - snapshots drop open spans
            continue
        timers.setdefault(s.name, Histogram()).record(s.duration)
    return MetricsReport(
        timers=timers,
        counters=dict(snapshot.counters),
        gauges=dict(snapshot.gauges),
    )

"""Self-contained HTML diagnostics reports from recorded run ledgers.

``repro schedule --ledger-out run.ndjson`` records a run's typed domain
events (with the manifest embedded as the first record); ``repro report
run.ndjson -o report.html`` renders that single file into a single HTML
page with no external assets:

* the run manifest (config hash, seed, git SHA, platform, wall time);
* an informed-fraction-over-time sparkline (inline SVG) built from the
  per-node ε-crossing events;
* a per-node energy table aggregated from the scheduled transmissions;
* a per-message timeline (sent/received/dropped/retransmit counts per
  node with first-reception markers) whenever ``msg_*`` or
  ``online_attempt`` events are present — :func:`message_rows` is the
  shared normalizer over both engines' per-message events;
* a stage wall-time breakdown from the run summary;
* every feasibility violation, naming the violated Section IV condition.

The renderer is forgiving: sections whose events are absent are simply
omitted, so partial ledgers (e.g. simulation-only runs) still render.
"""

from __future__ import annotations

import html
import json
from collections import Counter, defaultdict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from . import events as ev
from .events import Event
from .ledger import read_ledger_ndjson

__all__ = ["load_run", "message_rows", "render_html", "write_report"]


def load_run(path: str) -> Tuple[Dict[str, Any], List[Event]]:
    """Read an NDJSON ledger; returns (manifest, events).

    The manifest is the first ``manifest`` event's fields (empty when the
    ledger was recorded without one).
    """
    records = read_ledger_ndjson(path)
    manifest: Dict[str, Any] = {}
    for e in records:
        if e.type == ev.EV_MANIFEST:
            manifest = dict(e.fields)
            break
    return manifest, records


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _informed_curve(
    records: Sequence[Event], num_nodes: Optional[int]
) -> List[Tuple[float, float]]:
    """(time, informed fraction) steps from the ε-crossing events."""
    times = sorted(
        e.t for e in records if e.type == ev.EV_NODE_INFORMED and e.t is not None
    )
    if not times:
        return []
    total = num_nodes if num_nodes else len(times)
    return [(t, min((i + 1) / total, 1.0)) for i, t in enumerate(times)]


def _sparkline_svg(curve: Sequence[Tuple[float, float]]) -> str:
    """An inline step-plot SVG of the informed fraction over time."""
    w, h, pad = 640, 120, 8
    t0, t1 = curve[0][0], curve[-1][0]
    span = (t1 - t0) or 1.0

    def x(t: float) -> float:
        return pad + (t - t0) / span * (w - 2 * pad)

    def y(f: float) -> float:
        return h - pad - f * (h - 2 * pad)

    pts = [f"{x(curve[0][0]):.1f},{y(0.0):.1f}"]
    prev_f = 0.0
    for t, f in curve:
        pts.append(f"{x(t):.1f},{y(prev_f):.1f}")  # step: horizontal then up
        pts.append(f"{x(t):.1f},{y(f):.1f}")
        prev_f = f
    pts.append(f"{x(t1):.1f},{y(prev_f):.1f}")
    return (
        f'<svg viewBox="0 0 {w} {h}" width="{w}" height="{h}" '
        'role="img" aria-label="informed fraction over time">'
        f'<rect width="{w}" height="{h}" fill="#f8f9fa"/>'
        f'<polyline points="{" ".join(pts)}" fill="none" '
        'stroke="#1a6faf" stroke-width="2"/>'
        f'<text x="{pad}" y="{h - 2}" font-size="10" fill="#666">'
        f"t={t0:g}</text>"
        f'<text x="{w - pad}" y="{h - 2}" font-size="10" fill="#666" '
        f'text-anchor="end">t={t1:g}</text></svg>'
    )


def _energy_rows(records: Sequence[Event]) -> List[Tuple[str, str, int, float]]:
    """(relay, algorithm, transmissions, total cost) per scheduled relay."""
    agg: Dict[Tuple[str, str], List[float]] = defaultdict(list)
    for e in records:
        if e.type == ev.EV_TRANSMISSION_SCHEDULED:
            key = (str(e.fields.get("relay")), str(e.fields.get("algorithm")))
            agg[key].append(float(e.fields.get("cost", 0.0)))
    return sorted(
        (relay, algo, len(costs), sum(costs))
        for (relay, algo), costs in agg.items()
    )


#: ledger event types that describe one per-message protocol action
_MSG_EVENT_TYPES = (
    ev.EV_MSG_SENT,
    ev.EV_MSG_RECEIVED,
    ev.EV_MSG_DROPPED,
    ev.EV_MSG_RETRANSMIT,
    ev.EV_ONLINE_ATTEMPT,
)


def message_rows(records: Sequence[Event]) -> List[Dict[str, Any]]:
    """Normalize per-message activity from either execution engine.

    The protocol simulator emits typed ``msg_*`` events; the online
    engine emits ``online_attempt`` events carrying the same
    ``msg``/``src``/``dst``/``outcome`` fields (older ledgers only the
    ``carrier``/``peer``/``success`` names, which are translated here).
    Each returned row is a flat dict with keys ``t``, ``msg``, ``src``,
    ``dst``, ``outcome``, ``cost``, ``reason``, ``attempt`` — the one
    filter the issue's ledger-unification calls for.
    """
    rows: List[Dict[str, Any]] = []
    for e in records:
        if e.type not in _MSG_EVENT_TYPES:
            continue
        f = e.fields
        if e.type == ev.EV_ONLINE_ATTEMPT:
            outcome = f.get("outcome")
            if outcome is None:
                outcome = "received" if f.get("success") else "dropped"
            rows.append({
                "t": e.t,
                "msg": f.get("msg", "data"),
                "src": f.get("src", f.get("carrier")),
                "dst": f.get("dst", f.get("peer")),
                "outcome": outcome,
                "cost": f.get("cost"),
                "reason": f.get("reason"),
                "attempt": f.get("attempt"),
            })
        else:
            outcome = f.get("outcome", e.type[len("msg_"):])
            rows.append({
                "t": e.t,
                "msg": f.get("msg"),
                "src": f.get("src"),
                "dst": f.get("dst"),
                "outcome": outcome,
                "cost": f.get("cost"),
                "reason": f.get("reason"),
                "attempt": f.get("attempt"),
            })
    return rows


def _message_section(records: Sequence[Event]) -> List[str]:
    """The per-message timeline section (empty when no msg activity)."""
    rows = message_rows(records)
    if not rows:
        return []
    per_node: Dict[str, Counter] = defaultdict(Counter)
    first_rx: Dict[str, float] = {}
    kinds = Counter()
    for r in rows:
        kinds[str(r["msg"])] += 1
        outcome = r["outcome"]
        if outcome == "sent":
            per_node[str(r["src"])]["sent"] += 1
        elif outcome == "received":
            per_node[str(r["dst"])]["received"] += 1
            if r["msg"] == "data" and r["t"] is not None:
                node = str(r["dst"])
                if node not in first_rx or r["t"] < first_rx[node]:
                    first_rx[node] = r["t"]
        elif outcome == "dropped":
            where = r["dst"] if r["dst"] is not None else r["src"]
            per_node[str(where)]["dropped"] += 1
        elif outcome == "retransmit":
            per_node[str(r["src"])]["retransmit"] += 1
    parts = [
        "<h2>Message timeline</h2>",
        "<p>%d message events (%s)</p>" % (
            len(rows),
            ", ".join(f"{k}: {n}" for k, n in kinds.most_common()),
        ),
        "<table class='t'><tr><th>node</th><th>sent</th><th>received</th>"
        "<th>dropped</th><th>retransmit</th><th>first DATA reception</th>"
        "</tr>",
    ]
    for node in sorted(set(per_node) | set(first_rx)):
        c = per_node[node]
        marker = f"t={first_rx[node]:g}" if node in first_rx else "—"
        parts.append(
            "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td>"
            "<td>%s</td></tr>"
            % (
                _esc(node), c["sent"], c["received"], c["dropped"],
                c["retransmit"], _esc(marker),
            )
        )
    parts.append("</table>")
    return parts


def _stage_bars(stage_seconds: Mapping[str, float]) -> str:
    total = sum(stage_seconds.values()) or 1.0
    rows = []
    for stage, secs in sorted(
        stage_seconds.items(), key=lambda kv: -kv[1]
    ):
        pct = secs / total * 100.0
        rows.append(
            "<tr><td>%s</td><td>%.4f s</td><td>"
            '<div style="background:#1a6faf;height:10px;width:%.1f%%">'
            "</div></td></tr>" % (_esc(stage), secs, max(pct, 0.5))
        )
    return (
        '<table class="t"><tr><th>stage</th><th>wall time</th>'
        '<th style="width:50%">share</th></tr>' + "".join(rows) + "</table>"
    )


def render_html(
    records: Sequence[Event],
    manifest: Optional[Mapping[str, Any]] = None,
    title: str = "repro run report",
) -> str:
    """Render a recorded run into one self-contained HTML document."""
    manifest = dict(manifest or {})
    summary = next(
        (e for e in records if e.type == ev.EV_RUN_SUMMARY), None
    )
    num_nodes = None
    if summary is not None and summary.fields.get("num_nodes"):
        num_nodes = int(summary.fields["num_nodes"])

    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        "<style>body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;"
        "max-width:720px;color:#222}h1{font-size:1.4em}h2{font-size:1.1em;"
        "margin-top:1.6em}.t{border-collapse:collapse;width:100%}"
        ".t td,.t th{border:1px solid #ddd;padding:3px 8px;text-align:left;"
        "font-size:13px}.t th{background:#f0f2f4}code{background:#f4f4f4;"
        "padding:1px 4px}.viol{color:#a01a1a}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]

    if summary is not None:
        f = summary.fields
        feas = f.get("feasible")
        badge = (
            '<span style="color:#1a7a2e">feasible</span>' if feas
            else '<span class="viol">infeasible</span>' if feas is not None
            else ""
        )
        parts.append(
            "<p>algorithm <code>%s</code> &middot; %s transmissions "
            "&middot; total cost %s &middot; %s</p>"
            % (
                _esc(f.get("algorithm", "?")),
                _esc(f.get("transmissions", "?")),
                _esc(f.get("total_cost", "?")),
                badge,
            )
        )

    if manifest:
        parts.append("<h2>Manifest</h2><table class='t'>")
        for key in sorted(manifest):
            if key == "config":
                val = json.dumps(manifest[key], sort_keys=True)
            else:
                val = manifest[key]
            parts.append(
                f"<tr><th>{_esc(key)}</th><td><code>{_esc(val)}</code>"
                "</td></tr>"
            )
        parts.append("</table>")

    curve = _informed_curve(records, num_nodes)
    if curve:
        parts.append("<h2>Informed fraction over time</h2>")
        parts.append(_sparkline_svg(curve))
        parts.append(
            "<p>%d ε-crossings recorded; final fraction %.2f</p>"
            % (len(curve), curve[-1][1])
        )

    energy = _energy_rows(records)
    if energy:
        parts.append(
            "<h2>Per-node energy</h2><table class='t'><tr><th>relay</th>"
            "<th>algorithm</th><th>transmissions</th><th>total cost</th></tr>"
        )
        for relay, algo, n, cost in energy:
            parts.append(
                f"<tr><td>{_esc(relay)}</td><td>{_esc(algo)}</td>"
                f"<td>{n}</td><td>{cost:.6g}</td></tr>"
            )
        parts.append("</table>")

    parts.extend(_message_section(records))

    if summary is not None and summary.fields.get("stage_seconds"):
        parts.append("<h2>Stage timing</h2>")
        parts.append(_stage_bars(summary.fields["stage_seconds"]))

    violations = [e for e in records if e.type == ev.EV_CONSTRAINT_VIOLATED]
    parts.append("<h2>Feasibility violations</h2>")
    if violations:
        parts.append("<ul>")
        for e in violations:
            detail = e.fields.get("detail", "")
            parts.append(
                '<li class="viol"><code>%s</code> %s</li>'
                % (_esc(e.fields.get("constraint", "?")), _esc(detail))
            )
        parts.append("</ul>")
    else:
        parts.append("<p>none — all four Section IV conditions hold.</p>")

    counts = Counter(e.type for e in records)
    parts.append(
        "<h2>Event summary</h2><table class='t'>"
        "<tr><th>event type</th><th>count</th></tr>"
    )
    for etype, n in counts.most_common():
        parts.append(f"<tr><td><code>{_esc(etype)}</code></td><td>{n}</td></tr>")
    parts.append("</table></body></html>")
    return "".join(parts)


def write_report(
    ledger_path: str, out_path: str, title: Optional[str] = None
) -> int:
    """Render ``ledger_path`` (NDJSON) to ``out_path`` (HTML); event count."""
    manifest, records = load_run(ledger_path)
    doc = render_html(
        records, manifest, title=title or f"repro run report — {ledger_path}"
    )
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(doc)
    return len(records)

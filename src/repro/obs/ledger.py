"""The run ledger: structured domain-event recording with NDJSON I/O.

Architecture mirrors :mod:`repro.obs.tracer`: a swappable process-global
ledger that defaults to a :class:`NoopLedger` whose ``emit`` is an empty
method — instrumented call sites cost a couple of attribute lookups when
recording is off.  Hot loops should hoist the check once::

    led = obs.get_ledger()
    if led.enabled:
        led.emit(obs.EV_ENERGY_DEBITED, t=..., relay=..., cost=...)

Casual call sites just use the module-level :func:`emit`.

Recording and export::

    from repro import obs

    obs.enable_ledger()
    ...                                   # run any pipeline
    obs.write_ledger_ndjson("run.ndjson") # one JSON object per line
    obs.disable_ledger()

``repro schedule --ledger-out run.ndjson`` does the same from the CLI, and
``repro report run.ndjson`` renders the result as an HTML diagnostics page.

A :class:`Ledger` can also stream events through a stdlib
:mod:`logging` logger as they happen (the CLI's ``-v`` flag) — recording
and streaming are independent: pass ``logger=`` for streaming, keep the
default for silent in-memory recording.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Any, Iterable, List, Optional, TextIO, Tuple, Union

from .context import current_request_id, current_shard_id
from .events import Event, event_from_json, event_to_json

__all__ = [
    "Ledger",
    "NoopLedger",
    "get_ledger",
    "set_ledger",
    "enable_ledger",
    "disable_ledger",
    "ledger_enabled",
    "emit",
    "ledger_events",
    "write_ledger_ndjson",
    "read_ledger_ndjson",
    "format_event",
]

PathLike = Union[str, "os.PathLike[str]"]
Target = Union[PathLike, TextIO]


def format_event(event: Event) -> str:
    """A one-line human-readable rendering (what ``-v`` streams)."""
    at = f" t={event.t:g}" if event.t is not None else ""
    body = " ".join(f"{k}={v}" for k, v in sorted(event.fields.items()))
    return f"{event.type}{at}" + (f" {body}" if body else "")


class Ledger:
    """A recording ledger: thread-safe append-only event list.

    Parameters
    ----------
    logger:
        Optional stdlib logger; every event is additionally emitted there
        at ``level`` as a human-readable line.
    level:
        Logging level for streamed events (default ``logging.INFO``).
    """

    enabled = True

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.INFO,
    ) -> None:
        self._lock = threading.Lock()
        self._events: List[Event] = []
        self._seq = 0
        self._logger = logger
        self._level = level

    def emit(self, type: str, t: Optional[float] = None, **fields: Any) -> Event:
        """Record one event; returns the stored :class:`Event`.

        Events emitted inside a :func:`repro.obs.context.request_context`
        scope are tagged with the ambient ``request_id``; processes that
        declared a shard identity tag every event with ``shard_id``.
        Explicit fields at the call site win over the ambient values.
        Only the recording ledger pays for these lookups — the no-op
        path is untouched.
        """
        if "request_id" not in fields:
            rid = current_request_id()
            if rid is not None:
                fields["request_id"] = rid
        if "shard_id" not in fields:
            sid = current_shard_id()
            if sid is not None:
                fields["shard_id"] = sid
        with self._lock:
            ev = Event(seq=self._seq, type=type, t=t, fields=fields)
            self._seq += 1
            self._events.append(ev)
        if self._logger is not None:
            self._logger.log(self._level, "%s", format_event(ev))
        return ev

    def events(self) -> Tuple[Event, ...]:
        """Everything recorded so far, in emission order."""
        with self._lock:
            return tuple(self._events)

    def clear(self) -> None:
        """Drop all recorded events and restart the sequence numbers."""
        with self._lock:
            self._events = []
            self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ledger(events={len(self)})"


class NoopLedger:
    """The default ledger: records nothing, costs ~nothing."""

    enabled = False

    def emit(self, type: str, t: Optional[float] = None, **fields: Any) -> None:
        pass

    def events(self) -> Tuple[Event, ...]:
        return ()

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


_NOOP_LEDGER = NoopLedger()
_ledger = _NOOP_LEDGER


def get_ledger():
    """The process-global ledger currently receiving events."""
    return _ledger


def set_ledger(ledger) -> object:
    """Install ``ledger`` (None → the no-op ledger); returns the old one."""
    global _ledger
    old = _ledger
    _ledger = ledger if ledger is not None else _NOOP_LEDGER
    return old


def enable_ledger(
    logger: Optional[logging.Logger] = None, level: int = logging.INFO
) -> Ledger:
    """Switch event recording on; returns the recording :class:`Ledger`.

    Reuses the current recording ledger when one is installed and no
    ``logger`` is requested; otherwise installs a fresh one.
    """
    global _ledger
    if not _ledger.enabled or logger is not None:
        _ledger = Ledger(logger=logger, level=level)
    return _ledger


def disable_ledger() -> None:
    """Switch event recording off (back to the no-op ledger)."""
    set_ledger(None)


def ledger_enabled() -> bool:
    return _ledger.enabled


def emit(type: str, t: Optional[float] = None, **fields: Any) -> None:
    """Emit one event on the global ledger (no-op when disabled)."""
    _ledger.emit(type, t=t, **fields)


def ledger_events() -> Tuple[Event, ...]:
    """All events on the global ledger (empty when disabled)."""
    return _ledger.events()


def _open_target(target: Target, mode: str):
    if hasattr(target, "write") or hasattr(target, "read"):
        return target, False
    return open(os.fspath(target), mode, encoding="utf-8", newline=""), True


def write_ledger_ndjson(
    target: Target, events: Optional[Iterable[Event]] = None
) -> int:
    """Write events as NDJSON (one JSON object per line); returns the count.

    ``events`` defaults to the global ledger's recorded events.
    """
    evs = ledger_events() if events is None else tuple(events)
    f, close = _open_target(target, "w")
    try:
        for ev in evs:
            f.write(event_to_json(ev))
            f.write("\n")
    finally:
        if close:
            f.close()
    return len(evs)


def read_ledger_ndjson(source: Target) -> List[Event]:
    """Read an NDJSON ledger file back into :class:`Event` records.

    Blank lines are skipped; a malformed line raises :class:`ValueError`
    naming its 1-based line number.
    """
    f, close = _open_target(source, "r")
    try:
        out: List[Event] = []
        for i, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(event_from_json(line))
            except ValueError as exc:
                raise ValueError(f"line {i}: {exc}") from exc
        return out
    finally:
        if close:
            f.close()

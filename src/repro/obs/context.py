"""Request-scoped trace context: request ids and shard identity.

A request entering the planning service — through the asyncio front-end,
the legacy threading server, or an embedded :class:`~repro.service.server.
PlanningService` call — is stamped with a **request id**: 16 hex chars,
minted at the edge (or accepted from an ``X-Request-Id`` header so an
upstream proxy's id survives).  The id travels *with the work*, not with
the thread: across the batcher's flush pool, across the shard pipe into a
worker process, and into every ledger event and log record emitted while
serving it — so one grep over a ledger reconstructs a request's full
journey, including which shard served it and whether it was deduped into
another request's compute.

Two pieces of state:

* a :mod:`contextvars` variable holding the current request id.  Context
  variables are task-local under asyncio and thread-local otherwise —
  exactly the propagation HTTP handlers need.  Thread pools do **not**
  inherit it automatically; code that moves work across threads (the
  batcher, the shard dispatch loop) captures :func:`current_request_id`
  at submit time and re-enters it with :func:`request_context` on the
  worker thread.
* a process-global **shard id**, set once by a shard worker at boot
  (:func:`set_shard_id`).  Every ledger event the process emits carries
  it, making multi-shard ledgers attributable per shard.

:class:`~repro.obs.ledger.Ledger` reads both on every ``emit`` and tags
the event's fields (``request_id`` / ``shard_id``) unless the call site
already supplied them; the no-op ledger skips the lookups entirely.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

__all__ = [
    "new_request_id",
    "current_request_id",
    "request_context",
    "set_shard_id",
    "current_shard_id",
]

#: the current request id, or None outside any request scope
_request_id: "ContextVar[Optional[str]]" = ContextVar(
    "repro_request_id", default=None
)

#: this process's shard id (None in the front-end / single-process case)
_shard_id: Optional[int] = None


def new_request_id() -> str:
    """A fresh 16-hex request id (64 random bits)."""
    return os.urandom(8).hex()


def current_request_id() -> Optional[str]:
    """The request id of the current context, or ``None``."""
    return _request_id.get()


@contextmanager
def request_context(request_id: Optional[str] = None) -> Iterator[str]:
    """Enter a request scope; yields the effective request id.

    ``request_id=None`` keeps the current scope's id when one is already
    set (nested spans of the same request) and mints a fresh one
    otherwise — so call sites can wrap themselves unconditionally without
    breaking an id minted further up the stack.
    """
    rid = request_id or _request_id.get() or new_request_id()
    token = _request_id.set(rid)
    try:
        yield rid
    finally:
        _request_id.reset(token)


def set_shard_id(shard_id: Optional[int]) -> None:
    """Declare this process's shard identity (``None`` clears it)."""
    global _shard_id
    _shard_id = int(shard_id) if shard_id is not None else None


def current_shard_id() -> Optional[int]:
    """The shard id this process declared, or ``None``."""
    return _shard_id

"""Run manifests: reproducibility metadata for every planning run.

A manifest answers "what exactly produced this output": the configuration
(hashed canonically, so two runs with the same config share a hash
regardless of dict ordering), the seed, the source git commit (best
effort), the Python/platform fingerprint, the package version, and wall
time.  :func:`run_manifest` builds one; :func:`plan_broadcast
<repro.api.plan_broadcast>` attaches one to every
:class:`~repro.api.BroadcastPlan`, the CLI writes one next to experiment
CSVs, and the ledger embeds one as its first NDJSON record so a single
``run.ndjson`` file is a self-describing artifact.

Volatile fields (``created_unix``, ``wall_seconds``, ``git_sha``,
``python``, ``platform``) are *excluded* from the config hash — the hash
identifies the experiment, not the machine or the moment.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from typing import Any, Dict, Mapping, Optional, TextIO, Union

__all__ = [
    "MANIFEST_SCHEMA",
    "config_hash",
    "git_sha",
    "run_manifest",
    "write_manifest",
    "read_manifest",
]

MANIFEST_SCHEMA = "repro.manifest/1"

PathLike = Union[str, "os.PathLike[str]"]
Target = Union[PathLike, TextIO]


def _canonical(obj: Any) -> Any:
    """Recursively coerce ``obj`` to a canonical JSON-safe structure."""
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    if isinstance(obj, Mapping):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_canonical(v) for v in obj), key=repr)
    return repr(obj)


def config_hash(config: Any) -> str:
    """Deterministic short SHA-256 of a configuration structure.

    Key order, tuple-vs-list, and set ordering do not affect the hash;
    non-JSON values hash by their ``repr``.
    """
    doc = json.dumps(_canonical(config), separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_manifest(
    config: Optional[Mapping[str, Any]] = None,
    seed: Any = None,
    wall_seconds: Optional[float] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Assemble a manifest dict for one run.

    ``config`` is the run's logical configuration (algorithm, deadline,
    window, ...); ``seed`` is recorded both inside the config hash (when
    part of ``config``) and as a top-level convenience field.  ``extra``
    keys land at the top level (e.g. ``figure="fig5"``).
    """
    cfg = _canonical(dict(config) if config is not None else {})
    doc: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "config": cfg,
        "config_hash": config_hash(cfg),
        "seed": _canonical(seed),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "package_version": _package_version(),
        "created_unix": time.time(),
    }
    if wall_seconds is not None:
        doc["wall_seconds"] = float(wall_seconds)
    for k, v in extra.items():
        doc[k] = _canonical(v)
    return doc


def _package_version() -> str:
    from .. import __version__

    return __version__


def _open_target(target: Target, mode: str):
    if hasattr(target, "write") or hasattr(target, "read"):
        return target, False
    return open(os.fspath(target), mode, encoding="utf-8") , True


def write_manifest(manifest: Mapping[str, Any], target: Target) -> None:
    """Write a manifest as pretty-printed JSON."""
    f, close = _open_target(target, "w")
    try:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    finally:
        if close:
            f.close()


def read_manifest(source: Target) -> Dict[str, Any]:
    """Load a manifest written by :func:`write_manifest`."""
    f, close = _open_target(source, "r")
    try:
        return json.load(f)
    finally:
        if close:
            f.close()

"""Prometheus text exposition for the service ``/metrics`` documents.

``GET /metrics`` keeps serving the JSON document it always has; when a
client asks for ``text/plain`` (or OpenMetrics) via the ``Accept``
header, the same document is rendered in Prometheus exposition format
0.0.4 instead.  :func:`render_prometheus` understands both document
shapes the service produces — the single-process/local doc from
:meth:`~repro.service.server.PlanningService.metrics` (wrapped by the
front-end) and the ``mode: "sharded"`` pool doc, where per-shard rows
get a ``shard="N"`` label and the pool-merged telemetry is emitted
unlabelled.

Naming: every family is prefixed ``repro_``.  Registry histograms use
the dotted-name convention from :class:`~repro.obs.histogram.
MetricsRegistry` — ``stage.compute`` becomes
``repro_stage_seconds{stage="compute"}`` and ``request.plan`` becomes
``repro_request_seconds{endpoint="plan"}`` — so the per-stage
latencies the tentpole cares about land in two well-known families
instead of a family per stage.

:func:`parse_prometheus_text` is the matching (deliberately strict)
parser used by ``tools/loadtest.py`` and the tests to validate that an
exposition round-trips: it returns ``{(family, labels): value}`` plus
the declared types, and raises on malformed lines.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "render_prometheus",
    "parse_prometheus_text",
    "PROMETHEUS_CONTENT_TYPE",
    "wants_prometheus",
]

#: Content-Type for the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def wants_prometheus(accept: Optional[str]) -> bool:
    """Content negotiation: does this ``Accept`` value ask for text format?

    ``text/plain`` and ``application/openmetrics-text`` select the
    exposition format; anything else (including no header) keeps the
    JSON document existing clients depend on.
    """
    if not accept:
        return False
    a = accept.lower()
    return "text/plain" in a or "openmetrics" in a


def _fmt(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Writer:
    """Accumulates samples grouped by family, emitting HELP/TYPE once."""

    def __init__(self) -> None:
        self._families: List[Tuple[str, str, str]] = []  # (name, type, help)
        self._samples: Dict[str, List[str]] = {}

    def family(self, name: str, mtype: str, help_text: str) -> None:
        if not _NAME_OK.match(name):
            raise ValueError(f"invalid metric family name: {name!r}")
        if name not in self._samples:
            self._families.append((name, mtype, help_text))
            self._samples[name] = []

    def sample(
        self,
        family: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        suffix: str = "",
    ) -> None:
        self._samples[family].append(
            f"{family}{suffix}{_labels_str(labels or {})} {_fmt(float(value))}"
        )

    def render(self) -> str:
        out: List[str] = []
        for name, mtype, help_text in self._families:
            samples = self._samples[name]
            if not samples:
                continue
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {mtype}")
            out.extend(samples)
        return "\n".join(out) + "\n"


# Dotted histogram names from MetricsRegistry map onto two shared
# families keyed by a label, so dashboards can aggregate across stages.
_HISTOGRAM_FAMILIES = {
    "stage": ("repro_stage_seconds", "stage", "Per-stage service latency."),
    "request": (
        "repro_request_seconds",
        "endpoint",
        "End-to-end request latency per endpoint.",
    ),
}


def _sanitize(name: str) -> str:
    s = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(s):
        s = "_" + s
    return s


def _emit_histogram(
    w: _Writer, name: str, hdoc: Mapping[str, object], labels: Dict[str, str]
) -> None:
    prefix, _, rest = name.partition(".")
    fam = _HISTOGRAM_FAMILIES.get(prefix)
    if fam and rest:
        family, label_key, help_text = fam
        labels = dict(labels)
        labels[label_key] = rest
    else:
        family = f"repro_{_sanitize(name)}_seconds"
        help_text = f"Histogram for {name}."
    w.family(family, "histogram", help_text)
    bounds = [float(b) for b in hdoc.get("bounds", [])]
    counts = [int(c) for c in hdoc.get("counts", [])]
    running = 0
    for bound, c in zip(bounds, counts):
        running += c
        w.sample(
            family, running, {**labels, "le": _fmt(bound)}, suffix="_bucket"
        )
    total = int(hdoc.get("count", running))
    w.sample(family, total, {**labels, "le": "+Inf"}, suffix="_bucket")
    w.sample(family, float(hdoc.get("sum", 0.0)), labels, suffix="_sum")
    w.sample(family, total, labels, suffix="_count")


def _emit_registry_doc(
    w: _Writer, doc: Mapping[str, object], labels: Dict[str, str]
) -> None:
    """One MetricsRegistry.as_doc() worth of counters/gauges/histograms."""
    for name, v in (doc.get("counters") or {}).items():  # type: ignore[union-attr]
        family = f"repro_{_sanitize(name)}_total"
        w.family(family, "counter", f"Monotonic counter {name}.")
        w.sample(family, float(v), labels)
    for name, v in (doc.get("gauges") or {}).items():  # type: ignore[union-attr]
        family = f"repro_{_sanitize(name)}"
        w.family(family, "gauge", f"Gauge {name}.")
        w.sample(family, float(v), labels)
    for name, hdoc in (doc.get("histograms") or {}).items():  # type: ignore[union-attr]
        _emit_histogram(w, name, hdoc, labels)


def _emit_cache(w: _Writer, cache: Mapping[str, object], labels: Dict[str, str]) -> None:
    w.family("repro_cache_events_total", "counter", "Plan cache outcomes.")
    for key in ("hits", "misses", "memory_hits", "disk_hits", "puts", "evictions"):
        if key in cache:
            w.sample(
                "repro_cache_events_total",
                float(cache[key]),  # type: ignore[arg-type]
                {**labels, "event": key},
            )
    if "hit_rate" in cache:
        w.family("repro_cache_hit_ratio", "gauge", "Plan cache hit ratio.")
        w.sample("repro_cache_hit_ratio", float(cache["hit_rate"]), labels)  # type: ignore[arg-type]
    if "entries" in cache:
        w.family("repro_cache_entries", "gauge", "Resident plan cache entries.")
        w.sample("repro_cache_entries", float(cache["entries"]), labels)  # type: ignore[arg-type]


def _emit_service_doc(
    w: _Writer,
    doc: Mapping[str, object],
    labels: Dict[str, str],
    include_telemetry: bool = True,
) -> None:
    """One PlanningService.metrics() document (local or per-shard).

    In sharded mode the per-shard rows skip their telemetry registries
    (``include_telemetry=False``): the pool document already carries the
    exact merge across live *and drained* shards, and emitting both
    would double-count any dashboard that sums over labels.
    """
    w.family("repro_requests_total", "counter", "Requests served by the planning service.")
    w.sample("repro_requests_total", float(doc.get("requests", 0)), labels)  # type: ignore[arg-type]
    w.family("repro_errors_total", "counter", "Requests that raised an error.")
    w.sample("repro_errors_total", float(doc.get("errors", 0)), labels)  # type: ignore[arg-type]
    if "shared_tvegs" in doc:
        w.family("repro_shared_tvegs", "gauge", "Resident shared TVEG registry entries.")
        w.sample("repro_shared_tvegs", float(doc["shared_tvegs"]), labels)  # type: ignore[arg-type]
    cache = doc.get("cache")
    if isinstance(cache, Mapping):
        _emit_cache(w, cache, labels)
    batcher = doc.get("batcher")
    if isinstance(batcher, Mapping):
        w.family("repro_batcher_events_total", "counter", "Batcher queue outcomes.")
        for key in ("submitted", "deduped", "flushed", "rejected", "batches"):
            if key in batcher:
                w.sample(
                    "repro_batcher_events_total",
                    float(batcher[key]),  # type: ignore[arg-type]
                    {**labels, "event": key},
                )
        if "queue_depth" in batcher:
            w.family("repro_queue_depth", "gauge", "Batcher queue depth.")
            w.sample("repro_queue_depth", float(batcher["queue_depth"]), labels)  # type: ignore[arg-type]
    if include_telemetry:
        telemetry = doc.get("telemetry")
        if isinstance(telemetry, Mapping):
            _emit_registry_doc(w, telemetry, labels)


def render_prometheus(doc: Mapping[str, object]) -> str:
    """Render a service ``/metrics`` JSON document as exposition text.

    Accepts the local/single-process shape, the ``mode: "sharded"``
    pool shape, and bare :class:`~repro.obs.histogram.MetricsRegistry`
    docs (``{"counters": ..., "histograms": ...}``).
    """
    w = _Writer()
    if "uptime_seconds" in doc:
        w.family("repro_uptime_seconds", "gauge", "Seconds since the service started.")
        w.sample("repro_uptime_seconds", float(doc["uptime_seconds"]))  # type: ignore[arg-type]

    shards = doc.get("shards")
    if doc.get("mode") == "sharded" and isinstance(shards, list):
        w.family("repro_shard_alive", "gauge", "1 if the shard process is alive.")
        w.family("repro_shard_inflight", "gauge", "Requests in flight on the shard pipe.")
        w.family(
            "repro_shard_routed_total", "counter", "Requests routed to the shard."
        )
        for entry in shards:
            labels = {"shard": str(entry.get("shard", "?"))}
            w.sample("repro_shard_alive", 1.0 if entry.get("alive") else 0.0, labels)
            w.sample("repro_shard_inflight", float(entry.get("inflight", 0)), labels)
            w.sample(
                "repro_shard_routed_total", float(entry.get("requests", 0)), labels
            )
            svc = entry.get("service")
            if isinstance(svc, Mapping):
                _emit_service_doc(w, svc, labels, include_telemetry=False)
        totals = doc.get("totals")
        if isinstance(totals, Mapping):
            w.family(
                "repro_pool_requests_total",
                "counter",
                "Cumulative requests across live and drained shards.",
            )
            w.sample("repro_pool_requests_total", float(totals.get("requests", 0)))  # type: ignore[arg-type]
            w.family(
                "repro_pool_errors_total",
                "counter",
                "Cumulative errors across live and drained shards.",
            )
            w.sample("repro_pool_errors_total", float(totals.get("errors", 0)))  # type: ignore[arg-type]
        telemetry = doc.get("telemetry")
        if isinstance(telemetry, Mapping):
            _emit_registry_doc(w, telemetry, {})
    elif "counters" in doc or "histograms" in doc:
        _emit_registry_doc(w, doc, {})
    else:
        _emit_service_doc(w, doc, {})

    frontend = doc.get("frontend")
    if isinstance(frontend, Mapping):
        w.family("repro_frontend_active_requests", "gauge", "Front-end requests in flight.")
        w.sample(
            "repro_frontend_active_requests",
            float(frontend.get("active_requests", 0)),
        )
        w.family("repro_frontend_served_total", "counter", "Responses written by the front-end.")
        w.sample("repro_frontend_served_total", float(frontend.get("served", 0)))
        w.family("repro_frontend_errors_total", "counter", "Front-end error responses.")
        w.sample("repro_frontend_errors_total", float(frontend.get("errors", 0)))
        edge = frontend.get("edge_cache")
        if isinstance(edge, Mapping):
            w.family("repro_edge_cache_events_total", "counter", "Edge response-cache outcomes.")
            for key in ("hits", "misses"):
                if key in edge:
                    w.sample(
                        "repro_edge_cache_events_total",
                        float(edge[key]),  # type: ignore[arg-type]
                        {"event": key},
                    )
            if "entries" in edge:
                w.family("repro_edge_cache_entries", "gauge", "Edge cache resident entries.")
                w.sample("repro_edge_cache_entries", float(edge["entries"]))  # type: ignore[arg-type]
            if "hit_ratio" in edge:
                w.family("repro_edge_cache_hit_ratio", "gauge", "Edge cache hit ratio.")
                w.sample("repro_edge_cache_hit_ratio", float(edge["hit_ratio"]))  # type: ignore[arg-type]
        telemetry = frontend.get("telemetry")
        if isinstance(telemetry, Mapping):
            _emit_registry_doc(w, telemetry, {"component": "frontend"})
    return w.render()


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def parse_prometheus_text(
    text: str,
) -> Tuple[Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float], Dict[str, str]]:
    """Parse exposition text into samples and declared family types.

    Returns ``(samples, types)`` where ``samples`` maps
    ``(metric_name, sorted_label_pairs)`` to the value and ``types``
    maps family name to its ``# TYPE``.  Raises ``ValueError`` on any
    line that is neither a comment, blank, nor a well-formed sample —
    the strictness is the point: CI uses this to prove the exposition
    parses.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    types: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        raw_labels = m.group("labels")
        labels: List[Tuple[str, str]] = []
        if raw_labels:
            consumed = 0
            for lm in _LABEL.finditer(raw_labels):
                value = lm.group(2)
                value = (
                    value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
                labels.append((lm.group(1), value))
                consumed = lm.end()
            leftover = raw_labels[consumed:].strip().strip(",").strip()
            if leftover:
                raise ValueError(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
        key = (m.group("name"), tuple(sorted(labels)))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = _parse_value(m.group("value"))
    return samples, types

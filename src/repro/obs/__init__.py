"""Observability: spans, counters, gauges, aggregation, and exporters.

A zero-dependency instrumentation subsystem for the broadcast pipeline.
The schedulers, Steiner solvers, allocation NLP, Monte-Carlo runner, and
experiment harness are wired with :func:`span` / :func:`counter` /
:func:`gauge` call sites; by default these hit a no-op tracer and cost
~nothing.  Switch recording on, run any pipeline, and export::

    from repro import obs
    from repro.obs import write_chrome_trace, write_metrics_csv

    obs.enable()
    ...  # run schedulers / simulations / experiments
    snap = obs.snapshot()
    write_chrome_trace(snap, "trace.json")   # load in chrome://tracing
    write_metrics_csv(snap, "metrics.csv")   # flat percentile summaries
    obs.disable()

The same data is reachable from the CLI via ``--trace-out`` /
``--metrics-out`` on the ``schedule``, ``simulate``, and ``experiment``
subcommands.  See :mod:`repro.obs.tracer` for the span API,
:mod:`repro.obs.metrics` for aggregation, :mod:`repro.obs.export` for the
Chrome ``trace_event`` and CSV formats.
"""

from .context import (
    current_request_id,
    current_shard_id,
    new_request_id,
    request_context,
    set_shard_id,
)
from .events import (
    EV_BATCH_FLUSHED,
    EV_CONSTRAINT_VIOLATED,
    EV_ENERGY_DEBITED,
    EV_FEASIBILITY_CHECKED,
    EV_MANIFEST,
    EV_MSG_DROPPED,
    EV_MSG_RECEIVED,
    EV_MSG_RETRANSMIT,
    EV_MSG_SENT,
    EV_NODE_INFORMED,
    EV_ONLINE_ATTEMPT,
    EV_PLAN_CACHE_HIT,
    EV_PLAN_CACHE_MISS,
    EV_RELAY_SELECTED,
    EV_REQUEST_REJECTED,
    EV_RUN_SUMMARY,
    EV_SHARD_EXITED,
    EV_SHARD_STARTED,
    EV_SIM_RECEPTION,
    EV_TRANSMISSION_SCHEDULED,
    EVENT_TYPES,
    Event,
    event_from_json,
    event_to_json,
)
from .export import (
    chrome_trace_document,
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_csv,
)
from .ledger import (
    Ledger,
    NoopLedger,
    disable_ledger,
    emit,
    enable_ledger,
    format_event,
    get_ledger,
    ledger_enabled,
    ledger_events,
    read_ledger_ndjson,
    set_ledger,
    write_ledger_ndjson,
)
from .manifest import (
    MANIFEST_SCHEMA,
    config_hash,
    git_sha,
    read_manifest,
    run_manifest,
    write_manifest,
)
from .histogram import DEFAULT_LATENCY_BUCKETS, FixedHistogram, MetricsRegistry
from .metrics import Histogram, MetricsReport, MetricStat, aggregate, percentile
from .promtext import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_prometheus,
    wants_prometheus,
)
from .tracer import (
    NoopTracer,
    Span,
    Tracer,
    TraceSnapshot,
    counter,
    disable,
    enable,
    gauge,
    get_tracer,
    is_enabled,
    reset,
    set_tracer,
    snapshot,
    span,
    stage,
)

__all__ = [
    # tracer
    "Span",
    "TraceSnapshot",
    "Tracer",
    "NoopTracer",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "is_enabled",
    "snapshot",
    "reset",
    "span",
    "counter",
    "gauge",
    "stage",
    # metrics
    "Histogram",
    "MetricStat",
    "MetricsReport",
    "aggregate",
    "percentile",
    # streaming histograms + exposition
    "DEFAULT_LATENCY_BUCKETS",
    "FixedHistogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus_text",
    "wants_prometheus",
    # request context
    "new_request_id",
    "current_request_id",
    "request_context",
    "set_shard_id",
    "current_shard_id",
    # export
    "chrome_trace_events",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_metrics_csv",
    # events
    "Event",
    "event_to_json",
    "event_from_json",
    "EVENT_TYPES",
    "EV_MANIFEST",
    "EV_RELAY_SELECTED",
    "EV_TRANSMISSION_SCHEDULED",
    "EV_NODE_INFORMED",
    "EV_ENERGY_DEBITED",
    "EV_CONSTRAINT_VIOLATED",
    "EV_FEASIBILITY_CHECKED",
    "EV_SIM_RECEPTION",
    "EV_ONLINE_ATTEMPT",
    "EV_MSG_SENT",
    "EV_MSG_RECEIVED",
    "EV_MSG_DROPPED",
    "EV_MSG_RETRANSMIT",
    "EV_RUN_SUMMARY",
    "EV_PLAN_CACHE_HIT",
    "EV_PLAN_CACHE_MISS",
    "EV_BATCH_FLUSHED",
    "EV_REQUEST_REJECTED",
    "EV_SHARD_STARTED",
    "EV_SHARD_EXITED",
    # ledger
    "Ledger",
    "NoopLedger",
    "get_ledger",
    "set_ledger",
    "enable_ledger",
    "disable_ledger",
    "ledger_enabled",
    "emit",
    "ledger_events",
    "write_ledger_ndjson",
    "read_ledger_ndjson",
    "format_event",
    # manifests
    "MANIFEST_SCHEMA",
    "config_hash",
    "git_sha",
    "run_manifest",
    "write_manifest",
    "read_manifest",
]

"""Micro-benchmark suite with a committed-baseline regression gate.

``run_bench`` times the pipeline's core operations (DTS construction,
auxiliary-graph build, Steiner solve, full EEDCB / FR-EEDCB runs,
Monte-Carlo simulation, protocol-level plan execution, temporal Dijkstra,
feasibility checking, plan-cache
hits, batched service planning, and columnar trace ingest) on a
deterministic synthetic instance and reports p50/p95 wall times together
with the *work counters* each operation produced (Steiner expansions, NLP
iterations, Dijkstra settles).  Counters are machine-independent, so they
gate algorithmic regressions exactly; wall times gate performance with a
configurable tolerance.  The scale ops additionally record **peak
memory** as a ``peak_mb`` counter — tracemalloc heap peak for
``trace_ingest``, child-process peak RSS for the full-mode ``plan_n1000``
— gated with the same tolerance as times, so a memory blow-up fails the
gate exactly like a slowdown.

``compare`` checks a fresh result against a committed baseline
(:file:`benchmarks/baseline.json`) and reports every tier-1 operation whose
p50 time, work counter, or peak memory grew by more than the tolerance
(default 25 %).
``repro bench`` wires this to the command line and exits nonzero on any
regression; CI runs it with a wider time tolerance to absorb machine
variance (counters stay exact).

The suite also measures the *disabled-instrumentation overhead*: the cost
of the hoisted ``ledger.enabled`` checks and no-op counter bumps that
remain in the hot paths when observability is off, reported as an estimated
fraction of an EEDCB run (the acceptance bar is < 1 %).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .ledger import Ledger, get_ledger, set_ledger
from .manifest import run_manifest
from .metrics import percentile

__all__ = [
    "BENCH_SCHEMA",
    "TIER1_OPS",
    "STALE_BASELINE_COMMITS",
    "run_bench",
    "compare",
    "baseline_staleness",
    "write_bench",
    "read_bench",
    "bench_filename",
    "measure_disabled_overhead",
]

BENCH_SCHEMA = "repro.bench/1"

#: operations whose regression fails the gate (ROADMAP tier-1 pipeline)
TIER1_OPS = (
    "dts_build",
    "aux_graph_build",
    "aux_compact_build",
    "steiner_solve",
    "eedcb_run",
    "eedcb_run_n50",
    "fr_eedcb_run",
    "monte_carlo",
    "protosim_run",
    "plan_cache_hit",
    "batched_plan",
    "plan_many",
    "service_throughput",
    "service_p99_hit",
    "telemetry_overhead",
    "trace_ingest",
    "plan_n1000",
)

#: counters that are deterministic work measures (gated exactly like times)
_GATED_COUNTERS = ("steiner_expansions", "journeys_expanded")

#: counters that record peak memory in MB — gated like times, with an
#: absolute slack absorbing allocator noise (memory needs no calibration:
#: a megabyte is a megabyte on every machine)
_GATED_MEMORY = ("peak_mb",)
_MEMORY_SLACK_MB = 8.0


def _calibrate(repeats: int = 5) -> float:
    """Wall time (ms) of a fixed interpreter-bound workload, best of N.

    The pipeline ops are interpreter-bound too, so dividing their times by
    this calibration cancels machine speed and transient slowdown (CPU
    frequency scaling, noisy neighbours) — the gate then compares
    machine-independent ratios instead of raw milliseconds.
    """
    def work() -> float:
        # Mixed arithmetic + allocation, mirroring the graph-build ops
        # (which are dominated by object construction, not arithmetic).
        acc = 0.0
        store = {}
        for i in range(60_000):
            acc += (i % 7) * 1.000001
            store[i % 512] = (i, acc, [i, i + 1])
        return acc

    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        work()
        times.append(time.perf_counter() - t0)
    return min(times) * 1e3


def _build_instance(num_nodes: int, delay: float, seed: int):
    """The fixed benchmark instance: a Haggle-like window, both channels."""
    from ..temporal.reachability import broadcast_feasible_sources
    from ..traces import HaggleLikeConfig, haggle_like_trace
    from ..tveg import tveg_from_trace

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=num_nodes), seed=seed)
    window = trace.restrict_window(9000.0, 9000.0 + delay).shift(-9000.0)
    static = tveg_from_trace(window, "static", seed=5)
    fading = tveg_from_trace(window, "rayleigh", seed=5)
    sources = sorted(broadcast_feasible_sources(static.tvg, 0.0, delay))
    if not sources:
        raise RuntimeError(
            f"benchmark instance (N={num_nodes}, seed={seed}) has no "
            "broadcast-feasible source; adjust the window"
        )
    return static, fading, sources[0], trace


def _ops(
    static, fading, source, trace, delay: float, trials: int,
    backend: str = "compact", compute: Optional[str] = None,
) -> List[Tuple[str, Callable[[], Optional[Dict[str, float]]]]]:
    """(name, thunk) pairs; a thunk may return a counters dict.

    ``compute`` selects the kernel implementation the scheduler and batch
    ops run on (``None`` → the stdlib ``"python"`` path, matching the
    committed baselines); ``backend`` keeps selecting the ``nx``
    cross-check representation.  All selections report identical work
    counters, which CI cross-checks.  The aux-build and scheduler ops
    clear the TVEG's DCS/cost caches before each repeat so every timing is
    a cold build — otherwise the first op to run would warm the memo for
    the rest and the numbers would depend on suite order.
    """
    from ..algorithms import make_scheduler
    from ..api import plan_broadcast, plan_broadcast_many, plan_cache_key
    from ..auxgraph import build_aux_graph, build_compact_aux_graph
    from ..dts import build_dts
    from ..schedule import check_feasibility
    from ..service import Batcher, PlanCache
    from ..service.server import (
        PlanningService,
        execute_request,
        parse_plan_request,
    )
    from ..protosim import run_protocol_trials
    from ..sim import run_trials
    from ..steiner import solve_memt
    from ..temporal import earliest_arrivals
    from ..temporal.reachability import broadcast_feasible_sources

    kernel = compute or "python"
    if backend == "nx" and compute is None:
        sched_kwargs: Dict[str, Any] = {"backend": "nx"}
    else:
        sched_kwargs = {"compute": kernel}
    dts = build_dts(static.tvg, delay)
    aux = build_aux_graph(static, source, delay, dts)
    schedule = make_scheduler("eedcb").run(static, source, delay).schedule
    plan_cache = PlanCache()
    plan_broadcast(static, source, delay, cache=plan_cache)  # prewarm
    plan_key = plan_cache_key(static, source, delay)
    many_sources = sorted(
        broadcast_feasible_sources(static.tvg, 0.0, delay)
    )[:4]

    # Two dedicated services for the serving-path ops (daemon batcher
    # threads; no explicit teardown needed).  Each gets one prewarm
    # request so its TVEG registry is hot — the ops time *serving*, not
    # graph construction.  ``svc_throughput``'s plan cache is cleared per
    # repeat (mixed hit/miss workload); ``svc_hit``'s stays warm.
    service_body = {"deadline": delay, "window": 9000.0, "seed": 5,
                    "compute": kernel}
    service_req = parse_plan_request("/plan", dict(service_body))
    miss_reqs = [
        parse_plan_request("/plan", dict(service_body, source=s))
        for s in many_sources
    ]
    svc_throughput = PlanningService({"bench": trace}, max_wait=0.0,
                                     workers=2)
    execute_request(svc_throughput, service_req[0], dict(service_req[1]))
    svc_throughput.cache.clear()
    svc_hit = PlanningService({"bench": trace}, max_wait=0.0, workers=2)
    execute_request(svc_hit, service_req[0], dict(service_req[1]))

    def dts_build():
        d = build_dts(static.tvg, delay)
        return {"dts_points": float(d.total_points())}

    def aux_graph_build():
        static.clear_caches()
        a = build_aux_graph(static, source, delay, dts)
        return {"aux_nodes": float(a.num_nodes), "aux_edges": float(a.num_edges)}

    def aux_compact_build():
        static.clear_caches()
        a = build_compact_aux_graph(static, source, delay, dts)
        return {"aux_nodes": float(a.num_nodes), "aux_edges": float(a.num_edges)}

    def steiner_solve():
        stats: Dict[str, int] = {}
        solve_memt(aux.graph, aux.root, aux.terminals, method="greedy",
                   stats=stats)
        return {"steiner_expansions": float(stats.get("expansions", 0))}

    def eedcb_run():
        static.clear_caches()
        info = make_scheduler(
            "eedcb", **sched_kwargs
        ).run(static, source, delay).info
        return {"steiner_expansions": float(info["steiner_expansions"])}

    def fr_eedcb_run():
        fading.clear_caches()
        info = make_scheduler(
            "fr-eedcb", **sched_kwargs
        ).run(fading, source, delay).info
        return {"nlp_iterations": float(info["nlp_iterations"])}

    def monte_carlo():
        run_trials(static, schedule, source, num_trials=trials, seed=1)
        return {"trials": float(trials)}

    def monte_carlo_parallel():
        run_trials(static, schedule, source, num_trials=trials, seed=1,
                   workers=2)
        return {"trials": float(trials), "workers": 2.0}

    def protosim_run():
        # The EEDCB plan executed as protocol behavior on the fading twin
        # (the lossy case exercises ACKs and retransmissions).  Frame and
        # retransmit totals are summed from the per-trial results, so the
        # counters are exact integers — deterministic for the fixed seed
        # and independent of backend/compute (the schedule is
        # byte-identical across them).
        s = run_protocol_trials(
            fading, schedule, source, delay, num_trials=trials, seed=1,
            keep_outcomes=True,
        )
        return {
            "trials": float(trials),
            "data_frames": float(
                sum(r.counts.data_sent for r in s.outcomes)
            ),
            "retransmits": float(
                sum(r.counts.retransmits for r in s.outcomes)
            ),
        }

    def temporal_dijkstra():
        arr = earliest_arrivals(static.tvg, source)
        return {"journeys_expanded": float(sum(1 for a in arr.values()
                                               if a < float("inf")))}

    def feasibility_check():
        check_feasibility(static, schedule, source, delay)
        return None

    def plan_cache_hit():
        # One memory hit is ~µs — far below timer resolution — so each
        # repeat times a fixed block of 200 lookups (key derivation + LRU
        # hit; the acceptance bar is the *whole* hit path staying ≥50×
        # faster than eedcb_run).
        for _ in range(200):
            plan_broadcast(static, source, delay, cache=plan_cache)
        return {"lookups": 200.0}

    def batched_plan():
        # The service path: 8 duplicate concurrent requests through a
        # Batcher, deduped to exactly one cold plan computation.
        static.clear_caches()
        with Batcher(max_wait=0.05, workers=2) as b:
            futures = [
                b.submit(
                    plan_key,
                    lambda: plan_broadcast(static, source, delay),
                )
                for _ in range(8)
            ]
            for f in futures:
                f.result(timeout=120)
        # stats()["deduped"] is *almost* always 7 here, but a stalled
        # flush thread can legitimately split the batch — don't report a
        # counter CI would gate exactly (the dedupe property itself is
        # asserted in tests/test_service.py).
        return {"requests": 8.0}

    def plan_many():
        # The batch API: k sources over one shared instance, cold caches —
        # the acceptance bar is beating k independent plan_broadcast calls
        # by amortizing the TVEG/DCS/aux construction across the batch.
        static.clear_caches()
        planset = plan_broadcast_many(
            static, many_sources, delay, compute=kernel
        )
        return {"requests": float(len(planset))}

    def service_throughput():
        # A fixed mixed hit/miss block through the full serving path
        # (parse → cache → batcher → plan-document serialization): four
        # repeats of the base configuration around each distinct-source
        # miss, cold plan cache per repeat.  Requests run serially, so
        # the hit/miss split is deterministic and gateable.
        svc_throughput.cache.clear()
        requests: List[Tuple[str, Dict[str, Any]]] = []
        for miss in miss_reqs:
            requests += [service_req] * 4 + [miss]
        hits = 0
        for method, kwargs in requests:
            status, doc = execute_request(svc_throughput, method,
                                          dict(kwargs))
            if status != 200:
                raise RuntimeError(f"service bench request failed: {doc}")
            hits += bool(doc["cached"])
        return {"requests": float(len(requests)), "cache_hits": float(hits)}

    def telemetry_overhead():
        # The per-request cost the service telemetry adds to the hot
        # path: minting + entering a request context, one histogram
        # observation, and one counter bump — the exact instrumentation
        # sequence the serving layer runs per request.  A single pass is
        # sub-microsecond, so each repeat times a block of 1000.
        from .context import request_context
        from .histogram import MetricsRegistry

        reg = MetricsRegistry()
        for _ in range(1000):
            with request_context():
                reg.observe("stage.compute", 0.0042)
                reg.inc("service.requests")
        return {"operations": 1000.0}

    def service_p99_hit():
        # One served cache hit is far below timer resolution, so each
        # repeat times a block of 200 — the tail-latency claim itself
        # (p99 under load) is measured end-to-end by tools/loadtest.py;
        # this op gates the in-process hit path those tails are made of.
        for _ in range(200):
            status, doc = execute_request(svc_hit, service_req[0],
                                          dict(service_req[1]))
            if status != 200 or not doc["cached"]:
                raise RuntimeError("service hit bench fell through cache")
        return {"lookups": 200.0}

    return [
        ("dts_build", dts_build),
        ("aux_graph_build", aux_graph_build),
        ("aux_compact_build", aux_compact_build),
        ("steiner_solve", steiner_solve),
        ("eedcb_run", eedcb_run),
        ("fr_eedcb_run", fr_eedcb_run),
        ("monte_carlo", monte_carlo),
        ("monte_carlo_parallel", monte_carlo_parallel),
        ("protosim_run", protosim_run),
        ("temporal_dijkstra", temporal_dijkstra),
        ("feasibility_check", feasibility_check),
        ("plan_cache_hit", plan_cache_hit),
        ("batched_plan", batched_plan),
        ("plan_many", plan_many),
        ("service_throughput", service_throughput),
        ("service_p99_hit", service_p99_hit),
        ("telemetry_overhead", telemetry_overhead),
    ]


#: the N=1000 scale instance every scale op and the CI smoke agree on
SCALE_NODES = 1000
SCALE_CONTACTS = 1_000_000
SCALE_HORIZON = 200_000.0
SCALE_SEED = 42
SCALE_WINDOW = (0.0, 2000.0)
SCALE_DEADLINE = 1500.0

#: the subprocess body of the ``plan_n1000`` op: generate the scale
#: instance, plan one source end-to-end, report peak RSS (the OS
#: high-water mark — measured in a child so other ops cannot inflate it)
_PLAN_N1000_CODE = """\
import json, resource, sys
from repro.api import plan_broadcast
from repro.traces.synthetic import scale_trace_store

store = scale_trace_store({nodes}, {contacts}, {horizon}, seed={seed})
plan = plan_broadcast(
    store, 0, {deadline}, window={window}, algorithm="greed", seed=5
)
rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
peak_mb = rss / 1e6 if sys.platform == "darwin" else rss / 1024.0
print(json.dumps({{
    "feasible": plan.feasible,
    "total_cost": repr(plan.total_cost),
    "fingerprint": store.fingerprint(),
    "peak_mb": peak_mb,
}}))
"""


def _scale_ops(
    quick: bool, repeats: int, compute: Optional[str]
) -> Tuple[List[Tuple[str, Callable[[], Dict[str, float]], int]],
           Callable[[], None]]:
    """The columnar-store scale ops: ``trace_ingest`` and ``plan_n1000``.

    ``trace_ingest`` streams a synthetic one-contact-per-line text trace
    into a :class:`~repro.traces.store.ContactStore` (parse + incremental
    fingerprint — the service's cache-key path) and reports the file size
    so MB/s falls out of the timing; its ``peak_mb`` counter is the
    tracemalloc heap peak of one untimed ingest pass, so the
    bounded-memory claim is gated without tracemalloc slowing the timed
    repeats.  ``plan_n1000`` (full mode only) runs the whole scale story —
    generate the N=1000 / 10^6-contact instance, window it, plan one
    source — in a child interpreter and reports the child's peak RSS.

    Returns ``(ops, cleanup)``: ops as ``(name, thunk, repeats)`` and a
    cleanup thunk removing the temp trace file.
    """
    import subprocess
    import sys
    import tempfile
    import tracemalloc

    from ..traces.store import ingest_path
    from ..traces.synthetic import scale_trace_store
    from ..traces.writer import write_crawdad

    if quick:
        gen_nodes, gen_contacts, gen_horizon = 200, 50_000, 20_000.0
    else:
        gen_nodes, gen_contacts, gen_horizon = (
            SCALE_NODES, SCALE_CONTACTS, SCALE_HORIZON
        )
    scale = scale_trace_store(
        gen_nodes, gen_contacts, gen_horizon, seed=SCALE_SEED
    )
    fd, text_path = tempfile.mkstemp(suffix=".txt", prefix="bench-trace-")
    os.close(fd)
    write_crawdad(scale, text_path)
    size_mb = os.path.getsize(text_path) / 1e6

    tracemalloc.start()
    probe = ingest_path(text_path)
    expected_fp = probe.fingerprint()
    ingest_peak_mb = tracemalloc.get_traced_memory()[1] / 1e6
    tracemalloc.stop()
    del probe

    def cleanup() -> None:
        try:
            os.unlink(text_path)
        except OSError:
            pass

    def trace_ingest() -> Dict[str, float]:
        store = ingest_path(text_path)
        if store.fingerprint() != expected_fp:
            raise RuntimeError("ingest fingerprint drifted across repeats")
        return {
            "contacts": float(store.num_contacts),
            "mb": size_mb,
            "peak_mb": ingest_peak_mb,
        }

    ops = [("trace_ingest", trace_ingest, min(repeats, 3))]
    if not quick:
        code = _PLAN_N1000_CODE.format(
            nodes=SCALE_NODES, contacts=SCALE_CONTACTS,
            horizon=SCALE_HORIZON, seed=SCALE_SEED,
            deadline=SCALE_DEADLINE, window=SCALE_WINDOW,
        )
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        # Pin the child's auto kernel resolution to the suite's kernel so
        # a python-mode baseline stays numpy-free end to end.
        env["REPRO_COMPUTE"] = compute or "python"

        def plan_n1000() -> Dict[str, float]:
            out = subprocess.run(
                [sys.executable, "-c", code], capture_output=True,
                text=True, env=env, timeout=3600,
            )
            if out.returncode != 0:
                raise RuntimeError(
                    f"plan_n1000 child failed: {out.stderr.strip()[-500:]}"
                )
            doc = json.loads(out.stdout.strip().splitlines()[-1])
            if not doc["feasible"]:
                raise RuntimeError("plan_n1000 schedule verified infeasible")
            return {
                "nodes": float(SCALE_NODES),
                "contacts": float(SCALE_CONTACTS),
                "peak_mb": float(doc["peak_mb"]),
            }

        ops.append(("plan_n1000", plan_n1000, 1))
    return ops, cleanup


def measure_disabled_overhead(
    eedcb_thunk: Callable[[], Any], p50_seconds: float, calls: int = 200_000
) -> Dict[str, float]:
    """Estimate the cost of instrumentation left in hot paths when off.

    Times the exact disabled-path pattern (an ``enabled`` attribute check,
    plus a no-op ``counter`` bump) per call, counts how many instrumentation
    events one EEDCB run actually produces (by running it once with a
    recording ledger), and reports the product as a fraction of the run's
    disabled-mode p50.
    """
    from .tracer import counter

    led = get_ledger()
    t0 = time.perf_counter()
    for _ in range(calls):
        if led.enabled:
            led.emit("x")
        counter("bench.noop")
    gated = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(calls):
        pass
    bare = time.perf_counter() - t0
    per_call = max((gated - bare) / calls, 0.0)

    old = set_ledger(Ledger())
    try:
        eedcb_thunk()
        events_per_run = len(get_ledger())
    finally:
        set_ledger(old)

    estimated = (
        events_per_run * per_call / p50_seconds if p50_seconds > 0 else 0.0
    )
    return {
        "noop_call_ns": per_call * 1e9,
        "events_per_eedcb_run": float(events_per_run),
        "estimated_fraction_of_eedcb": estimated,
    }


def run_bench(
    quick: bool = False,
    repeats: Optional[int] = None,
    num_nodes: Optional[int] = None,
    seed: int = 99,
    backend: str = "compact",
    compute: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the suite; returns the bench document (see :data:`BENCH_SCHEMA`).

    ``quick`` shrinks the instance and repeat count for CI smoke runs (and
    skips the large ``eedcb_run_n50`` instance, which only full runs
    time).  ``compute`` selects the kernel implementation for the
    scheduler and batch ops (``None`` → the stdlib path the committed
    baselines record; pass ``"numpy"`` to benchmark the array kernels
    against :file:`benchmarks/baseline_numpy.json`).  ``backend`` keeps
    selecting the ``nx`` cross-check representation.  Instrumentation is
    forced off during timing so the numbers reflect the shipped default
    configuration.
    """
    from ..compute import resolve_compute
    from .tracer import is_enabled

    if is_enabled() or get_ledger().enabled:
        raise RuntimeError(
            "disable tracing and the ledger before benchmarking; the suite "
            "times the default (disabled) configuration"
        )
    if compute is not None:
        compute = resolve_compute(compute)
    r = repeats if repeats is not None else (3 if quick else 7)
    n = num_nodes if num_nodes is not None else (12 if quick else 20)
    delay = 2000.0
    trials = 30 if quick else 100
    static, fading, source, trace = _build_instance(n, delay, seed)

    def time_op(name: str, thunk, rep: int) -> None:
        times: List[float] = []
        counters: Optional[Dict[str, float]] = None
        for _ in range(rep):
            t0 = time.perf_counter()
            counters = thunk()
            times.append(time.perf_counter() - t0)
        results[name] = {
            "tier1": name in TIER1_OPS,
            "repeats": rep,
            "min_ms": min(times) * 1e3,
            "p50_ms": percentile(times, 50.0) * 1e3,
            "p95_ms": percentile(times, 95.0) * 1e3,
            "mean_ms": sum(times) / len(times) * 1e3,
            "counters": counters or {},
        }

    results: Dict[str, Any] = {}
    eedcb_thunk = None
    for name, thunk in _ops(static, fading, source, trace, delay, trials,
                            backend, compute):
        if name == "eedcb_run":
            eedcb_thunk = thunk
        time_op(name, thunk, r)

    scale_ops, scale_cleanup = _scale_ops(quick, r, compute)
    try:
        for name, thunk, rep in scale_ops:
            time_op(name, thunk, rep)
    finally:
        scale_cleanup()

    if not quick:
        # The scaling instance: N=50 is where the array kernels earn their
        # keep (the stdlib path spends tens of seconds here), so cap the
        # repeats rather than multiply them.
        from ..algorithms import make_scheduler

        static50, _fading50, source50, _trace50 = _build_instance(
            50, delay, seed
        )
        kernel50 = compute or "python"

        def eedcb_run_n50():
            static50.clear_caches()
            info = make_scheduler(
                "eedcb", compute=kernel50
            ).run(static50, source50, delay).info
            return {"steiner_expansions": float(info["steiner_expansions"])}

        time_op("eedcb_run_n50", eedcb_run_n50, min(r, 2))

    overhead = measure_disabled_overhead(
        eedcb_thunk, results["eedcb_run"]["p50_ms"] / 1e3
    )
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "calibration_ms": _calibrate(),
        "backend": backend,
        "compute": compute,
        "manifest": run_manifest(
            config={"num_nodes": n, "delay": delay, "trials": trials,
                    "repeats": r, "seed": seed, "quick": quick,
                    "backend": backend, "compute": compute},
        ),
        "results": results,
        "overhead": overhead,
    }


def compare(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = 0.25,
    strict_missing: bool = False,
) -> List[str]:
    """Regression messages for tier-1 ops; empty means the gate passes.

    A tier-1 op regresses when its wall time, any gated work counter, or
    its recorded peak memory (the ``peak_mb`` counter of the scale ops)
    exceeds the baseline by more than ``tolerance`` (fractional).  Times
    are compared by their per-suite *minimum* (the robust estimator under
    background load), normalized by each suite's interpreter calibration
    (see :func:`_calibrate`) so machine speed and transient slowdown cancel
    out.  By default ops missing from either side are skipped (the suites
    may differ across versions); ``strict_missing`` instead reports every
    baseline tier-1 op absent from the current run — a silently dropped op
    is a gate hole, not a pass — which is how :mod:`benchmarks.regress`
    runs it.  A shrunken-instance (quick) run is only compared against a
    quick baseline.
    """
    problems: List[str] = []
    if current.get("quick") != baseline.get("quick"):
        return [
            "bench modes differ (quick vs full); regenerate the baseline "
            "with the same mode"
        ]
    if current.get("compute") != baseline.get("compute"):
        return [
            f"bench kernels differ (compute={current.get('compute')!r} vs "
            f"baseline {baseline.get('compute')!r}); gate numpy runs "
            "against benchmarks/baseline_numpy.json"
        ]
    cur_cal = current.get("calibration_ms") or 0.0
    base_cal = baseline.get("calibration_ms") or 0.0
    # Scale baseline times to this run's machine speed; 1.0 when either
    # suite predates calibration.
    scale = cur_cal / base_cal if cur_cal > 0 and base_cal > 0 else 1.0
    base_results = baseline.get("results", {})
    if strict_missing:
        cur_results = current.get("results", {})
        for op, base in base_results.items():
            if base.get("tier1") and op not in cur_results:
                problems.append(
                    f"{op}: tier-1 op in the baseline but missing from this "
                    "run (suite shrank; regenerate the baseline if "
                    "intentional)"
                )
    for op, cur in current.get("results", {}).items():
        if not cur.get("tier1"):
            continue
        base = base_results.get(op)
        if base is None:
            continue
        bt = base.get("min_ms", base.get("p50_ms", 0.0)) * scale
        ct = cur.get("min_ms", cur.get("p50_ms", 0.0))
        # Small absolute slack: sub-millisecond ops jitter far more than 25 %.
        if bt > 0 and ct > bt * (1.0 + tolerance) and ct - bt > 1.0:
            problems.append(
                f"{op}: min {ct:.2f} ms vs calibrated baseline {bt:.2f} ms "
                f"(+{(ct / bt - 1.0) * 100:.0f}%, tolerance "
                f"{tolerance * 100:.0f}%)"
            )
        base_counters = base.get("counters", {})
        for key in _GATED_COUNTERS:
            if key in base_counters and key in cur.get("counters", {}):
                bc, cc = base_counters[key], cur["counters"][key]
                if bc > 0 and cc > bc * (1.0 + tolerance):
                    problems.append(
                        f"{op}: counter {key} {cc:g} vs baseline {bc:g} "
                        f"(+{(cc / bc - 1.0) * 100:.0f}%)"
                    )
        for key in _GATED_MEMORY:
            if key in base_counters and key in cur.get("counters", {}):
                bm, cm = base_counters[key], cur["counters"][key]
                # No calibration scaling — a megabyte is machine-independent;
                # the absolute slack absorbs allocator and layout noise.
                if (bm > 0 and cm > bm * (1.0 + tolerance)
                        and cm - bm > _MEMORY_SLACK_MB):
                    problems.append(
                        f"{op}: peak memory {cm:.1f} MB vs baseline "
                        f"{bm:.1f} MB (+{(cm / bm - 1.0) * 100:.0f}%, "
                        f"tolerance {tolerance * 100:.0f}%)"
                    )
    return problems


#: baseline age (commits behind HEAD) past which ``repro bench`` warns
STALE_BASELINE_COMMITS = 20


def baseline_staleness(baseline: Mapping[str, Any]) -> Optional[int]:
    """How many commits HEAD is ahead of the baseline's recorded git SHA.

    ``None`` when the age cannot be determined — no recorded SHA, not a git
    checkout, or the SHA is unknown to this clone (e.g. a shallow CI
    checkout); staleness is a hint, never a gate failure.
    """
    import subprocess

    sha = (baseline.get("manifest") or {}).get("git_sha")
    if not sha:
        return None
    try:
        out = subprocess.run(
            ["git", "rev-list", "--count", f"{sha}..HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    try:
        return int(out.stdout.strip())
    except ValueError:
        return None


def bench_filename(directory: str = ".") -> str:
    """The dated output path, ``BENCH_<YYYYMMDD>.json``."""
    return os.path.join(directory, time.strftime("BENCH_%Y%m%d.json"))


def write_bench(doc: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def read_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)

"""Fixed-bucket latency histograms and a mergeable metrics registry.

The exact :class:`~repro.obs.metrics.Histogram` retains every value —
perfect for batch reports, unusable for a service that must answer
``GET /metrics`` after millions of requests.  :class:`FixedHistogram`
is the streaming counterpart: a fixed, shared bucket layout (so shards
can merge), integer counts, and an *exact* running sum kept as Shewchuk
partials, which makes :meth:`merge` genuinely associative and
commutative — merging shard A into B yields bit-identical state to
merging B into A, and a shard-merged histogram equals the histogram a
single process would have recorded.  That exactness is what the
hypothesis merge-algebra tests pin down.

:class:`MetricsRegistry` bundles monotonic counters, gauges, and named
histograms behind one lock-cheap facade; its :meth:`~MetricsRegistry.
as_doc`/:meth:`~MetricsRegistry.merge_doc` pair is the wire format the
shard workers ship to the front-end (both on-demand for ``/metrics``
and in the final drain handshake), and what
:func:`repro.obs.promtext.render_prometheus` renders.

Cost model: ``observe`` is a bisect, two integer adds, and a short
compensated-sum cascade under a per-histogram lock — tens of
nanoseconds hot, no allocation growth, safe from the batcher's thread
pool.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "FixedHistogram",
    "MetricsRegistry",
]

#: Default latency bucket upper bounds, in seconds.  Spans 100 µs (a
#: warm edge-cache hit) to 30 s (a cold CRAWDAD-scale plan); the final
#: +Inf bucket is implicit.  Roughly geometric with ~2.2× steps so p99
#: interpolation stays within a factor of ~2 of truth everywhere.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _accumulate(partials: List[float], x: float) -> None:
    """Add ``x`` into a Shewchuk partials list, in place.

    The partials represent the *exact* real-number sum of everything
    accumulated so far (each element non-overlapping in magnitude), so
    order of accumulation cannot change the represented value — the
    property the merge-algebra guarantees rest on.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class FixedHistogram:
    """A streaming histogram over a fixed set of bucket upper bounds.

    ``bounds`` are inclusive upper bounds (Prometheus ``le`` semantics);
    an implicit final bucket catches everything above the last bound.
    State is bounded: ``len(bounds)+1`` integer counts, an exact sum,
    observation count, and min/max.
    """

    __slots__ = ("bounds", "_counts", "_partials", "_count", "_min", "_max", "_lock")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        b = tuple(float(x) for x in bounds)
        if not b:
            raise ValueError("FixedHistogram needs at least one bucket bound")
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"bucket bounds must be strictly increasing: {b!r}")
        self.bounds = b
        self._counts = [0] * (len(b) + 1)
        self._partials: List[float] = []
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (typically seconds of latency)."""
        v = float(value)
        i = bisect_left(self.bounds, v)
        with self._lock:
            self._counts[i] += 1
            self._count += 1
            _accumulate(self._partials, v)
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        """Correctly-rounded exact sum of all observations."""
        return math.fsum(self._partials)

    @property
    def min(self) -> Optional[float]:
        return self._min if self._count else None

    @property
    def max(self) -> Optional[float]:
        return self._max if self._count else None

    def counts(self) -> Tuple[int, ...]:
        """Per-bucket counts, final element being the overflow bucket."""
        with self._lock:
            return tuple(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, c in zip(self.bounds, self._counts):
                running += c
                out.append((bound, running))
            out.append((math.inf, running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile by linear interpolation in-bucket.

        Bounded by the observed min/max so a single observation reports
        itself rather than a bucket edge.  Returns ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if not total:
                return None
            rank = q * total
            running = 0
            for i, c in enumerate(self._counts):
                if not c:
                    continue
                lo_run = running
                running += c
                if running >= rank:
                    lo = self.bounds[i - 1] if i > 0 else 0.0
                    hi = self.bounds[i] if i < len(self.bounds) else self._max
                    if hi < lo:  # overflow bucket with max below last bound
                        hi = lo
                    frac = (rank - lo_run) / c if c else 0.0
                    est = lo + (hi - lo) * min(max(frac, 0.0), 1.0)
                    return min(max(est, self._min), self._max)
            return self._max

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        """A new histogram holding both operands' observations.

        Exact and order-independent: counts are integers, the sum is
        carried as partials, min/max commute.  Raises ``ValueError`` on
        mismatched bucket layouts — merging those would silently corrupt
        quantiles.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds!r} != {other.bounds!r}"
            )
        out = FixedHistogram(self.bounds)
        with self._lock:
            a_counts = list(self._counts)
            a_partials = list(self._partials)
            a_count, a_min, a_max = self._count, self._min, self._max
        with other._lock:
            b_counts = list(other._counts)
            b_partials = list(other._partials)
            b_count, b_min, b_max = other._count, other._min, other._max
        out._counts = [x + y for x, y in zip(a_counts, b_counts)]
        out._count = a_count + b_count
        for p in a_partials:
            _accumulate(out._partials, p)
        for p in b_partials:
            _accumulate(out._partials, p)
        out._min = min(a_min, b_min)
        out._max = max(a_max, b_max)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedHistogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts() == other.counts()
            and self._count == other._count
            and self.sum == other.sum
            and (self._min == other._min or (self._count == 0 == other._count))
            and (self._max == other._max or (self._count == 0 == other._count))
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FixedHistogram(count={self._count}, sum={self.sum:.6g}, "
            f"buckets={len(self.bounds)})"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot; the shard→front-end wire format."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": math.fsum(self._partials),
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "FixedHistogram":
        h = cls(doc["bounds"])  # type: ignore[arg-type]
        counts = [int(c) for c in doc["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(h._counts):
            raise ValueError("histogram doc counts do not match bounds")
        h._counts = counts
        h._count = int(doc.get("count", sum(counts)))
        s = float(doc.get("sum", 0.0))
        if s:
            h._partials = [s]
        if doc.get("min") is not None:
            h._min = float(doc["min"])  # type: ignore[arg-type]
        if doc.get("max") is not None:
            h._max = float(doc["max"])  # type: ignore[arg-type]
        return h


class MetricsRegistry:
    """Counters, gauges, and fixed-bucket histograms behind one facade.

    Names are dotted strings (``"stage.compute"``, ``"request.plan"``,
    ``"edge.cache_hits"``).  Counters are monotonic floats, gauges are
    last-write-wins locally and *summed* across shards on merge (the
    merged view of ``inflight`` over shards is their sum), histograms
    merge exactly.  Everything serializes through :meth:`as_doc` and
    folds back with :meth:`merge_doc` — that pair is associative, so
    front-end aggregation over any subset order of shard docs agrees.
    """

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms", "_bounds")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, FixedHistogram] = {}
        self._bounds = tuple(float(b) for b in bounds)

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the monotonic counter."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount={amount})")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the named histogram (created on first use)."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    h = FixedHistogram(self._bounds)
                    self._histograms[name] = h
        h.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[FixedHistogram]:
        with self._lock:
            return self._histograms.get(name)

    def as_doc(self) -> Dict[str, object]:
        """JSON-safe snapshot of every metric, sorted for stable output."""
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            hists = sorted(self._histograms.items())
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": {name: h.as_dict() for name, h in hists},
        }

    def merge_doc(self, doc: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`as_doc` snapshot into this one."""
        for name, v in (doc.get("counters") or {}).items():  # type: ignore[union-attr]
            self.inc(name, float(v))
        for name, v in (doc.get("gauges") or {}).items():  # type: ignore[union-attr]
            with self._lock:
                self._gauges[name] = self._gauges.get(name, 0.0) + float(v)
        for name, hdoc in (doc.get("histograms") or {}).items():  # type: ignore[union-attr]
            incoming = FixedHistogram.from_dict(hdoc)
            with self._lock:
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = incoming
                else:
                    self._histograms[name] = mine.merge(incoming)

    @classmethod
    def merge_docs(
        cls, docs: Iterable[Mapping[str, object]]
    ) -> Dict[str, object]:
        """Merge any number of :meth:`as_doc` snapshots into one doc."""
        reg = cls()
        for doc in docs:
            if doc:
                reg.merge_doc(doc)
        return reg.as_doc()

"""Descriptive statistics of contact traces.

Used by the synthetic-generator tests (the generated trace must exhibit the
targeted mean gap/duration and the warm-up degree ramp) and by the examples
to print a trace summary the way the Haggle papers characterize theirs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..temporal import metrics as tvg_metrics
from .model import ContactTrace

__all__ = ["TraceStats", "summarize"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a contact trace."""

    num_nodes: int
    num_contacts: int
    horizon: float
    mean_contact_duration: float
    median_contact_duration: float
    mean_inter_contact: float
    median_inter_contact: float
    p95_inter_contact: float
    social_pairs: int
    possible_pairs: int
    temporal_density: float
    mean_degree_early: float
    mean_degree_late: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_nodes": self.num_nodes,
            "num_contacts": self.num_contacts,
            "horizon": self.horizon,
            "mean_contact_duration": self.mean_contact_duration,
            "median_contact_duration": self.median_contact_duration,
            "mean_inter_contact": self.mean_inter_contact,
            "median_inter_contact": self.median_inter_contact,
            "p95_inter_contact": self.p95_inter_contact,
            "social_pairs": self.social_pairs,
            "possible_pairs": self.possible_pairs,
            "temporal_density": self.temporal_density,
            "mean_degree_early": self.mean_degree_early,
            "mean_degree_late": self.mean_degree_late,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{k:>24}: {v:g}" for k, v in self.as_dict().items()]
        return "\n".join(lines)


def summarize(trace: ContactTrace, early_frac: float = 0.25) -> TraceStats:
    """Compute :class:`TraceStats` for a trace.

    ``mean_degree_early`` / ``mean_degree_late`` average the instantaneous
    degree over the first ``early_frac`` and last ``early_frac`` of the
    horizon; a ramping trace has early ≪ late.
    """
    tvg = trace.to_tvg()
    durations = tvg_metrics.contact_durations(tvg)
    gaps = tvg_metrics.inter_contact_times(tvg)
    n = trace.num_nodes

    def _window_degree(lo: float, hi: float) -> float:
        ts = np.linspace(lo, hi, 16)
        return float(np.mean([tvg_metrics.average_degree(tvg, t) for t in ts]))

    h = trace.horizon
    early = _window_degree(0.0, early_frac * h)
    late = _window_degree((1.0 - early_frac) * h, h * 0.999)
    return TraceStats(
        num_nodes=n,
        num_contacts=trace.num_contacts,
        horizon=h,
        mean_contact_duration=float(np.mean(durations)) if durations.size else 0.0,
        median_contact_duration=float(np.median(durations)) if durations.size else 0.0,
        mean_inter_contact=float(np.mean(gaps)) if gaps.size else 0.0,
        median_inter_contact=float(np.median(gaps)) if gaps.size else 0.0,
        p95_inter_contact=float(np.percentile(gaps, 95)) if gaps.size else 0.0,
        social_pairs=len(trace.pair_presence()),
        possible_pairs=n * (n - 1) // 2,
        temporal_density=tvg_metrics.temporal_density(tvg),
        mean_degree_early=early,
        mean_degree_late=late,
    )

"""Synthetic contact-trace generators.

The paper evaluates on a real Haggle-project contact trace [12]; offline we
synthesize traces that reproduce the properties its algorithms actually
exercise (DESIGN.md documents the substitution):

* **Pairwise intermittent connectivity** — each social pair alternates
  heavy-tailed inter-contact gaps (truncated Pareto, the signature of human
  mobility found by Chaintreau et al.) with exponential contact durations.
* **Warm-up degree ramp** — the iMote experiments power on gradually, so the
  average degree climbs early and flattens (visible in the paper's Fig. 7).
  :func:`haggle_like_trace` reproduces this by modulating the contact-start
  intensity ``a(t)`` from ``ramp_start_level`` up to 1 over
  ``[0, ramp_end]`` and warping event times through ``Λ^{-1}``.
* **Social heterogeneity** — only a fraction of pairs ever meet, and meeting
  rates vary per pair (gamma-distributed multipliers).

Two simpler generators support unit tests: :func:`uniform_trace` (stationary
Poisson pair processes) and :func:`deterministic_trace` (a fixed small
pattern with hand-checkable schedules).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..errors import TraceFormatError
from .model import Contact, ContactTrace

__all__ = [
    "HaggleLikeConfig",
    "haggle_like_trace",
    "uniform_trace",
    "deterministic_trace",
    "scale_trace_store",
]


@dataclass(frozen=True)
class HaggleLikeConfig:
    """Parameters of the Haggle-like generator.

    Defaults are tuned so the default 20-node trace matches the paper's
    setup: a ~17000 s experiment, average saturated degree of a few
    neighbors, degree ramping until ~8000 s.
    """

    num_nodes: int = 20
    horizon: float = 17000.0
    #: fraction of node pairs that ever meet
    social_fraction: float = 0.8
    #: mean inter-contact gap of an average pair at full activity (s)
    mean_gap: float = 600.0
    #: Pareto tail exponent of inter-contact gaps (1 < shape ⇒ heavy tail)
    gap_shape: float = 1.6
    #: mean contact duration (s)
    mean_duration: float = 150.0
    #: activity level at t = 0 (1.0 disables the warm-up ramp)
    ramp_start_level: float = 0.2
    #: activity stays at the start level until here (s)
    ramp_start: float = 4000.0
    #: time by which activity reaches its stationary level (s)
    ramp_end: float = 8000.0
    #: dispersion of per-pair meeting-rate multipliers (gamma shape)
    rate_dispersion: float = 2.0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise TraceFormatError("need at least 2 nodes")
        if self.horizon <= 0:
            raise TraceFormatError("horizon must be positive")
        if not (0 < self.social_fraction <= 1):
            raise TraceFormatError("social_fraction must be in (0, 1]")
        if self.mean_gap <= 0 or self.mean_duration <= 0:
            raise TraceFormatError("mean gap/duration must be positive")
        if self.gap_shape <= 1:
            raise TraceFormatError("gap_shape must exceed 1 (finite mean)")
        if not (0 < self.ramp_start_level <= 1):
            raise TraceFormatError("ramp_start_level must be in (0, 1]")
        if self.ramp_start < 0 or self.ramp_end < self.ramp_start:
            raise TraceFormatError("require 0 <= ramp_start <= ramp_end")
        if self.rate_dispersion <= 0:
            raise TraceFormatError("rate_dispersion must be positive")


class _ActivityWarp:
    """Time warp implementing the delayed warm-up intensity ramp.

    Activity ``a(t)`` is ``a0`` on ``[0, rs]``, rises linearly to 1 on
    ``[rs, re]``, and is 1 afterwards.  Events generated at unit intensity
    in warped time ``y`` are mapped to real time via the inverse cumulative
    activity ``Λ^{-1}``.
    """

    def __init__(self, a0: float, ramp_start: float, ramp_end: float) -> None:
        self._a0 = a0
        self._rs = ramp_start
        self._re = ramp_end
        self._flat = a0 == 1.0 or ramp_end == ramp_start == 0.0
        span = ramp_end - ramp_start
        self._lam_rs = a0 * ramp_start
        self._lam_re = self._lam_rs + a0 * span + (1.0 - a0) * span / 2.0

    def cumulative(self, t: float) -> float:
        if self._flat:
            return t
        a0, rs, re = self._a0, self._rs, self._re
        if t <= rs:
            return a0 * t
        if t >= re:
            return self._lam_re + (t - re)
        s = t - rs
        return self._lam_rs + a0 * s + (1.0 - a0) * s * s / (2.0 * (re - rs))

    def inverse(self, y: float) -> float:
        if self._flat:
            return y
        a0, rs, re = self._a0, self._rs, self._re
        if y <= self._lam_rs:
            return y / a0
        if y >= self._lam_re:
            return re + (y - self._lam_re)
        if re == rs:
            return rs
        # Solve c·s² + a0·s − (y − Λ(rs)) = 0 for s = t − rs ∈ [0, re − rs].
        c = (1.0 - a0) / (2.0 * (re - rs))
        rem = y - self._lam_rs
        disc = a0 * a0 + 4.0 * c * rem
        return rs + (-a0 + math.sqrt(disc)) / (2.0 * c)


def _pareto_gaps(rng: np.random.Generator, mean: float, shape: float, n: int) -> np.ndarray:
    """Truncated-Pareto gaps with the requested mean.

    Pareto(x_m, k) has mean ``k·x_m/(k−1)``; we pick ``x_m`` accordingly and
    cap draws at 50× the mean to bound the tail without disturbing it.
    """
    x_m = mean * (shape - 1.0) / shape
    draws = x_m * (1.0 + rng.pareto(shape, size=n))
    return np.minimum(draws, 50.0 * mean)


def haggle_like_trace(
    config: HaggleLikeConfig = HaggleLikeConfig(),
    seed: SeedLike = None,
) -> ContactTrace:
    """Generate a Haggle-like contact trace (see module docstring)."""
    rng = as_generator(seed)
    n = config.num_nodes
    warp = _ActivityWarp(
        config.ramp_start_level, config.ramp_start, config.ramp_end
    )
    contacts: List[Contact] = []
    pairs = list(itertools.combinations(range(n), 2))
    social_mask = rng.random(len(pairs)) < config.social_fraction
    # Per-pair meeting-rate multipliers: gamma with unit mean.
    multipliers = rng.gamma(
        config.rate_dispersion, 1.0 / config.rate_dispersion, size=len(pairs)
    )
    total_warped = warp.cumulative(config.horizon)

    for (u, v), social, mult in zip(pairs, social_mask, multipliers):
        if not social:
            continue
        pair_gap = config.mean_gap / max(mult, 1e-3)
        # Draw enough gaps to cover the warped horizon with high margin.
        est = max(4, int(2.5 * total_warped / pair_gap) + 4)
        gaps = _pareto_gaps(rng, pair_gap, config.gap_shape, est)
        warped_starts = np.cumsum(gaps)
        while warped_starts[-1] < total_warped:
            more = _pareto_gaps(rng, pair_gap, config.gap_shape, est)
            warped_starts = np.concatenate(
                [warped_starts, warped_starts[-1] + np.cumsum(more)]
            )
        warped_starts = warped_starts[warped_starts < total_warped]
        durations = rng.exponential(config.mean_duration, size=len(warped_starts))
        for ws, dur in zip(warped_starts, durations):
            start = warp.inverse(float(ws))
            end = min(start + float(dur), config.horizon)
            if end > start:
                contacts.append(Contact(start, end, u, v))

    return ContactTrace(contacts, nodes=tuple(range(n)), horizon=config.horizon)


def uniform_trace(
    num_nodes: int,
    horizon: float,
    mean_gap: float,
    mean_duration: float,
    seed: SeedLike = None,
) -> ContactTrace:
    """Stationary trace: every pair alternates Exp(gap) / Exp(duration)."""
    if num_nodes < 2:
        raise TraceFormatError("need at least 2 nodes")
    rng = as_generator(seed)
    contacts: List[Contact] = []
    for u, v in itertools.combinations(range(num_nodes), 2):
        t = float(rng.exponential(mean_gap))
        while t < horizon:
            dur = float(rng.exponential(mean_duration))
            end = min(t + dur, horizon)
            if end > t:
                contacts.append(Contact(t, end, u, v))
            t = end + float(rng.exponential(mean_gap))
    return ContactTrace(contacts, nodes=tuple(range(num_nodes)), horizon=horizon)


def scale_trace_store(
    num_nodes: int,
    num_contacts: int,
    horizon: float,
    mean_duration: float = 150.0,
    seed: SeedLike = None,
):
    """A large uniform-random trace, generated straight into a
    :class:`~repro.traces.store.ContactStore` with no per-contact loop.

    The scale-regime generator: node pairs, start times, and exponential
    durations are drawn as whole numpy columns and handed to
    :meth:`ContactStore.from_arrays`, so an N=1000 / 10^6-contact instance
    builds in seconds where :func:`uniform_trace` would grind through a
    million ``Contact`` constructions.  Statistically it is the stationary
    :func:`uniform_trace` regime without the per-pair renewal structure:
    contact count is exact rather than rate-derived, which is what the
    scale bench and smoke jobs want to pin down.
    """
    from .store import ContactStore

    if num_nodes < 2:
        raise TraceFormatError("need at least 2 nodes")
    if num_contacts < 0:
        raise TraceFormatError("need a non-negative contact count")
    if horizon <= 0:
        raise TraceFormatError("horizon must be positive")
    if mean_duration <= 0:
        raise TraceFormatError("mean duration must be positive")
    rng = as_generator(seed)
    u = rng.integers(0, num_nodes, size=num_contacts)
    # v uniform over the other nodes: never equal to u by construction.
    v = (u + 1 + rng.integers(0, num_nodes - 1, size=num_contacts)) % num_nodes
    starts = rng.uniform(0.0, horizon, size=num_contacts)
    ends = np.minimum(
        starts + rng.exponential(mean_duration, size=num_contacts), horizon
    )
    return ContactStore.from_arrays(
        u, v, starts, ends, nodes=tuple(range(num_nodes)), horizon=horizon
    )


def deterministic_trace() -> ContactTrace:
    """A fixed 4-node trace with hand-checkable broadcast schedules.

    Topology over ``[0, 100]``:

    * edge (0,1) present on [0, 30) and [60, 100)
    * edge (1,2) present on [20, 50)
    * edge (2,3) present on [40, 80)
    * edge (0,3) present on [10, 25)

    From source 0 the unique foremost broadcast informs 1 by 20, 2 by 20–50,
    3 by 40–80 (or directly by 10–25).  Used throughout the unit tests.
    """
    contacts = [
        Contact(0.0, 30.0, 0, 1),
        Contact(60.0, 100.0, 0, 1),
        Contact(20.0, 50.0, 1, 2),
        Contact(40.0, 80.0, 2, 3),
        Contact(10.0, 25.0, 0, 3),
    ]
    return ContactTrace(contacts, nodes=(0, 1, 2, 3), horizon=100.0)

"""Contact-trace serialization (round-trips with :mod:`repro.traces.parser`)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TextIO, Union

from .model import ContactTrace

__all__ = ["write_crawdad", "write_csv"]

PathLike = Union[str, Path]


def write_crawdad(trace: ContactTrace, target: Union[PathLike, TextIO]) -> None:
    """Write a trace in CRAWDAD one-contact-per-line format."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8") if owns else target
    try:
        fh.write("# u v start end\n")
        for c in trace:
            fh.write(f"{c.u} {c.v} {c.start:.6f} {c.end:.6f}\n")
    finally:
        if owns:
            fh.close()


def write_csv(trace: ContactTrace, target: Union[PathLike, TextIO]) -> None:
    """Write a trace as headered CSV (``u,v,start,end``)."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8", newline="") if owns else target
    try:
        writer = csv.writer(fh)
        writer.writerow(["u", "v", "start", "end"])
        for c in trace:
            writer.writerow([c.u, c.v, f"{c.start:.6f}", f"{c.end:.6f}"])
    finally:
        if owns:
            fh.close()

"""Contact-trace serialization (round-trips with :mod:`repro.traces.parser`).

Both text writers accept either trace backend: a dict-backed
:class:`~repro.traces.model.ContactTrace` or a columnar
:class:`~repro.traces.store.ContactStore` (whose ``iter_rows`` streams
python values straight off the columns without building ``Contact``
objects).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, TextIO, Tuple, Union

__all__ = ["write_crawdad", "write_csv"]

PathLike = Union[str, Path]


def _rows(trace) -> Iterator[Tuple[object, object, float, float]]:
    """``(u, v, start, end)`` rows in canonical order from either backend."""
    iter_rows = getattr(trace, "iter_rows", None)
    if iter_rows is not None:
        return iter_rows()
    return ((c.u, c.v, c.start, c.end) for c in trace)


def write_crawdad(trace, target: Union[PathLike, TextIO]) -> None:
    """Write a trace in CRAWDAD one-contact-per-line format."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8") if owns else target
    try:
        fh.write("# u v start end\n")
        for u, v, start, end in _rows(trace):
            fh.write(f"{u} {v} {start:.6f} {end:.6f}\n")
    finally:
        if owns:
            fh.close()


def write_csv(trace, target: Union[PathLike, TextIO]) -> None:
    """Write a trace as headered CSV (``u,v,start,end``)."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8", newline="") if owns else target
    try:
        writer = csv.writer(fh)
        writer.writerow(["u", "v", "start", "end"])
        for u, v, start, end in _rows(trace):
            writer.writerow([u, v, f"{start:.6f}", f"{end:.6f}"])
    finally:
        if owns:
            fh.close()

"""Contact-trace file parsing.

Two on-disk formats are supported:

* **CRAWDAD one-contact-per-line** — the format the Haggle project's iMote
  contact traces are distributed in: whitespace-separated
  ``<id1> <id2> <start> <end> [extra columns ignored]``, ``#`` comments.
* **CSV** — headered ``u,v,start,end`` with optional extra columns.

Both return a :class:`~repro.traces.model.ContactTrace`, so a real Haggle
trace file drops into every experiment in place of the synthetic generator.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Sequence, TextIO, Union

from ..errors import TraceFormatError
from .model import Contact, ContactTrace

__all__ = ["parse_crawdad", "parse_csv", "load_trace"]

PathLike = Union[str, Path]


def _open_text(source: Union[PathLike, TextIO]) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8")
    return source


def parse_crawdad(
    source: Union[PathLike, TextIO],
    node_type: type = int,
    horizon: Optional[float] = None,
) -> ContactTrace:
    """Parse a CRAWDAD-style one-contact-per-line trace.

    Lines are ``id1 id2 start end`` (extra trailing columns — sequence
    numbers etc. — are ignored); blank lines and ``#`` comments are skipped.
    """
    fh = _open_text(source)
    owns = isinstance(source, (str, Path))
    contacts: List[Contact] = []
    try:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 4:
                raise TraceFormatError(
                    f"line {lineno}: expected at least 4 columns, got {len(parts)}"
                )
            try:
                u = node_type(parts[0])
                v = node_type(parts[1])
                start = float(parts[2])
                end = float(parts[3])
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
            if u == v:
                continue  # some traces log spurious self-sightings
            if end < start:
                raise TraceFormatError(
                    f"line {lineno}: contact end {end} precedes start {start}"
                )
            contacts.append(Contact(start, end, u, v))
    finally:
        if owns:
            fh.close()
    return ContactTrace(contacts, horizon=horizon)


def parse_csv(
    source: Union[PathLike, TextIO],
    node_type: type = int,
    horizon: Optional[float] = None,
) -> ContactTrace:
    """Parse a headered CSV trace with columns ``u, v, start, end``."""
    fh = _open_text(source)
    owns = isinstance(source, (str, Path))
    contacts: List[Contact] = []
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise TraceFormatError("CSV trace is empty")
        required = {"u", "v", "start", "end"}
        missing = required - {f.strip().lower() for f in reader.fieldnames}
        if missing:
            raise TraceFormatError(f"CSV trace lacks columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            norm = {k.strip().lower(): v for k, v in row.items() if k}
            try:
                contacts.append(
                    Contact(
                        float(norm["start"]),
                        float(norm["end"]),
                        node_type(norm["u"]),
                        node_type(norm["v"]),
                    )
                )
            except (ValueError, KeyError, TraceFormatError) as exc:
                raise TraceFormatError(f"row {lineno}: {exc}") from exc
    finally:
        if owns:
            fh.close()
    return ContactTrace(contacts, horizon=horizon)


def load_trace(
    path: PathLike,
    node_type: type = int,
    horizon: Optional[float] = None,
):
    """Load a trace, dispatching on file extension.

    ``.csv`` parses as headered CSV and anything else as CRAWDAD, both into
    a dict-backed :class:`ContactTrace`; ``.ctrace`` loads the columnar
    :class:`~repro.traces.store.ContactStore` (same downstream API, byte-
    identical planning results, O(1) fingerprint from the file header).
    """
    from .store import CTRACE_SUFFIX, ContactStore

    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == CTRACE_SUFFIX:
        return ContactStore.load(p)
    if suffix == ".csv":
        return parse_csv(p, node_type=node_type, horizon=horizon)
    return parse_crawdad(p, node_type=node_type, horizon=horizon)

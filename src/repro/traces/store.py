"""Columnar contact storage: million-contact traces with bounded memory.

A :class:`~repro.traces.model.ContactTrace` keeps one frozen ``Contact``
dataclass per record — convenient at N=50, but a Haggle-like N=1000 trace
has ~10^6 contacts, and a million Python objects (plus the per-object dict
entries the TVG build layers on top) dwarf the 32 bytes of payload each
record actually carries.  :class:`ContactStore` keeps the same records as
four parallel columns instead:

* ``start``, ``end`` — ``float64`` columns (stdlib ``array('d')``, or
  zero-copy numpy views when the store is mmap-loaded);
* ``u``, ``v`` — interned node ids (``int`` columns indexing the store's
  node table).

Rows are kept in the **same canonical order** as ``ContactTrace``: stably
sorted by ``(start, end)``, with the node table in first-appearance order
over that sorted sequence.  Because every derived structure — fingerprint,
``pair_presence``, TVG presence sets, adjacency events, DCS floats,
schedules — is a pure function of that ordered record sequence, the store
is a drop-in trace backend with **byte-identical** results; the dict-backed
``ContactTrace`` remains the parity oracle, exactly as ``backend="nx"``
and ``compute="python"`` are for their layers.

On-disk format (``repro.ctrace/1``)
-----------------------------------
A ``.ctrace`` file is mmap-friendly: a fixed 16-byte magic, a little-endian
``uint64`` header length, a JSON header (node table, horizon, row count,
fingerprint, absolute block offsets), then 8-byte-aligned struct-packed
column blocks::

    magic   b"repro.ctrace/1\\n\\0"
    u64     header length in bytes
    bytes   header JSON (utf-8)
    ...     padding to 8-byte alignment
    block   u        uint32 × count        interned node ids
    block   v        uint32 × count
    block   start    float64 × count
    block   end      float64 × count
    block   indptr   uint64 × (nodes + 1)  CSR per-node row index
    block   indices  uint32 × (2 × count)  row ids, time-sorted per node

The fingerprint is computed **during finalize** and persisted in the
header, so loading a ``.ctrace`` answers :meth:`ContactStore.fingerprint`
— the planning service's cache key — in O(1) without re-reading a single
row.  The CSR index gives every consumer (``NodeSweep`` event lists,
adjacency queries, windowed slicing) contiguous per-node row slices
instead of dict scans.

Streaming ingestion (:func:`ingest_crawdad` / :func:`ingest_csv`) parses
one line at a time straight into the columns — the trace is never
materialized as Python objects — with exactly the validation semantics of
:mod:`repro.traces.parser` (same skips, same error messages).
"""

from __future__ import annotations

import csv
import io
import json
import mmap
import struct
from array import array
from hashlib import sha256
from pathlib import Path
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from ..core.intervals import IntervalSet
from ..errors import TraceFormatError
from ..temporal.tvg import TVG, edge_key
from .model import Contact, ContactTrace

__all__ = [
    "ContactStore",
    "ingest_crawdad",
    "ingest_csv",
    "ingest_path",
    "CTRACE_SUFFIX",
]

Node = Hashable
PathLike = Union[str, Path]

#: file extension :func:`repro.traces.parser.load_trace` dispatches on
CTRACE_SUFFIX = ".ctrace"

_MAGIC = b"repro.ctrace/1\n\0"
_FP_CHUNK = 65536  # rows hashed per fingerprint batch


def _np():
    """numpy when importable, else None (the store is stdlib-complete)."""
    try:
        import numpy

        return numpy
    except ImportError:  # pragma: no cover - exercised on numpy-free legs
        return None


def _tolist(column, lo: int = 0, hi: Optional[int] = None) -> list:
    """A python-value list slice of a column (array or ndarray)."""
    part = column[lo:hi] if hi is not None else column[lo:]
    return part.tolist()


class ContactStore:
    """A contact trace as four parallel columns plus an interned node table.

    Construct via :meth:`from_rows`, :meth:`from_trace`, :meth:`from_arrays`,
    :meth:`load`, or the streaming :func:`ingest_crawdad` / :func:`ingest_csv`
    parsers — never directly.  Instances are immutable; every transform
    (:meth:`restrict_window`, :meth:`shift`, :meth:`restrict_nodes`) returns
    a new store.
    """

    __slots__ = (
        "_u",
        "_v",
        "_start",
        "_end",
        "_nodes",
        "_horizon",
        "_fingerprint",
        "_csr",
        "_mmap",
        "_nindex",
    )

    def __init__(self, u, v, start, end, nodes, horizon, fingerprint=None,
                 csr=None, mm=None):
        self._u = u
        self._v = v
        self._start = start
        self._end = end
        self._nodes: Tuple[Node, ...] = nodes
        self._horizon = float(horizon)
        self._fingerprint: Optional[str] = fingerprint
        #: (indptr, indices) CSR row index, built lazily or mmap-loaded
        self._csr = csr
        self._mmap = mm  # keeps a zero-copy load's buffer alive
        self._nindex: Optional[Dict[Node, int]] = None

    # ------------------------------------------------------------------
    # pickling (the sharded planning service ships traces to workers)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Columns, nodes, horizon, fingerprint — no mmap, no lazy caches.

        numpy pickles array *data* (a mmap-backed view serializes as a
        plain copy), so a loaded ``.ctrace`` store crosses process
        boundaries intact; the CSR index and node-position dict rebuild
        lazily on the other side.
        """
        return (self._u, self._v, self._start, self._end,
                self._nodes, self._horizon, self._fingerprint)

    def __setstate__(self, state) -> None:
        u, v, start, end, nodes, horizon, fingerprint = state
        self.__init__(u, v, start, end, nodes, horizon,
                      fingerprint=fingerprint)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Tuple[Node, Node, float, float]],
        nodes: Optional[Sequence[Node]] = None,
        horizon: Optional[float] = None,
    ) -> "ContactStore":
        """Build a store from ``(u, v, start, end)`` rows.

        Validation matches :class:`~repro.traces.model.Contact`: a row with
        ``start > end`` or ``u == v`` raises
        :class:`~repro.errors.TraceFormatError` with the same message.
        """
        b = _Builder()
        for u, v, s, e in rows:
            b.append(u, v, s, e)
        return b.finalize(nodes=nodes, horizon=horizon)

    @classmethod
    def from_trace(cls, trace: ContactTrace) -> "ContactStore":
        """The columnar twin of a dict-backed trace (same nodes, horizon,
        fingerprint, and derived structures — the parity tests assert it)."""
        b = _Builder()
        for c in trace:
            b.append(c.u, c.v, c.start, c.end)
        return b.finalize(nodes=trace.nodes, horizon=trace.horizon)

    @classmethod
    def from_arrays(
        cls,
        u,
        v,
        start,
        end,
        nodes: Optional[Sequence[Node]] = None,
        horizon: Optional[float] = None,
    ) -> "ContactStore":
        """Bulk construction from whole columns of **int node labels**.

        The vectorized entry point for synthetic generators: no per-row
        Python loop when numpy is available.  Rows violating the
        :class:`Contact` invariants raise like :meth:`from_rows`.
        """
        np = _np()
        if np is None:
            return cls.from_rows(
                zip(list(u), list(v), list(start), list(end)),
                nodes=nodes,
                horizon=horizon,
            )
        ua = np.asarray(u, dtype=np.int64)
        va = np.asarray(v, dtype=np.int64)
        sa = np.asarray(start, dtype=np.float64)
        ea = np.asarray(end, dtype=np.float64)
        bad = np.flatnonzero(sa > ea)
        if len(bad):
            i = int(bad[0])
            raise TraceFormatError(
                f"contact start {float(sa[i])} exceeds end {float(ea[i])}"
            )
        selfc = np.flatnonzero(ua == va)
        if len(selfc):
            raise TraceFormatError(
                f"self-contact on node {int(ua[int(selfc[0])])!r}"
            )
        order = np.lexsort((ea, sa))  # stable: ties keep input order
        ua, va, sa, ea = ua[order], va[order], sa[order], ea[order]
        # First-appearance node order over the sorted (u, v) sequence.
        inter = np.empty(2 * len(ua), dtype=np.int64)
        inter[0::2] = ua
        inter[1::2] = va
        uniq, first = np.unique(inter, return_index=True)
        appearance = inter[np.sort(first)]
        inferred = [int(x) for x in appearance.tolist()]
        if nodes is not None:
            final_nodes = tuple(dict.fromkeys(list(nodes) + inferred))
        else:
            final_nodes = tuple(inferred)
        index = {n: i for i, n in enumerate(final_nodes)}
        remap = np.empty(len(uniq), dtype=np.int64)
        for pos, label in enumerate(uniq.tolist()):
            remap[pos] = index[int(label)]
        ui = remap[np.searchsorted(uniq, ua)]
        vi = remap[np.searchsorted(uniq, va)]
        if horizon is None:
            horizon = float(ea.max()) if len(ea) else 0.0
        return cls(ui, vi, sa, ea, final_nodes, horizon)

    # ------------------------------------------------------------------
    # basic accessors (the ContactTrace surface)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_contacts(self) -> int:
        return len(self._start)

    @property
    def horizon(self) -> float:
        return self._horizon

    def __len__(self) -> int:
        return len(self._start)

    def iter_rows(self) -> Iterator[Tuple[Node, Node, float, float]]:
        """All rows as ``(u, v, start, end)`` python values, sorted order."""
        nodes = self._nodes
        n = len(self._start)
        for lo in range(0, n, _FP_CHUNK):
            hi = min(lo + _FP_CHUNK, n)
            for ui, vi, s, e in zip(
                _tolist(self._u, lo, hi),
                _tolist(self._v, lo, hi),
                _tolist(self._start, lo, hi),
                _tolist(self._end, lo, hi),
            ):
                yield nodes[ui], nodes[vi], s, e

    def __iter__(self) -> Iterator[Contact]:
        for u, v, s, e in self.iter_rows():
            yield Contact(s, e, u, v)

    @property
    def contacts(self) -> Tuple[Contact, ...]:
        """All rows as ``Contact`` objects.  **Materializes** — prefer
        :meth:`iter_rows` on large stores."""
        return tuple(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContactStore(|V|={self.num_nodes}, "
            f"contacts={self.num_contacts}, horizon={self._horizon:g})"
        )

    def time_span(self) -> Tuple[float, float]:
        """``(earliest start, latest end)`` over all rows (``(0, 0)`` empty)."""
        if not len(self._start):
            return (0.0, 0.0)
        first = float(self._start[0])
        np = _np()
        if np is not None and isinstance(self._end, np.ndarray):
            last = float(self._end.max())
        else:
            last = max(self._end)
        return (first, last)

    # ------------------------------------------------------------------
    # fingerprint (byte-identical to ContactTrace.fingerprint)
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """The trace content hash, exactly as the dict-backed path computes
        it — same sha256 byte stream, same 16-hex-digit prefix — so service
        plan-cache keys and manifests are backend-independent.  Persisted in
        the ``.ctrace`` header, so mmap-loaded stores answer in O(1)."""
        if self._fingerprint is None:
            h = sha256()
            h.update(repr((self._nodes, self._horizon)).encode("utf-8"))
            nodes = self._nodes
            n = len(self._start)
            for lo in range(0, n, _FP_CHUNK):
                hi = min(lo + _FP_CHUNK, n)
                # "".join of per-row reprs == the per-contact update stream:
                # repr((s, e, u, v)) is "(" + ", ".join(reprs) + ")".
                h.update(
                    "".join(
                        f"({s!r}, {e!r}, {nodes[ui]!r}, {nodes[vi]!r})"
                        for ui, vi, s, e in zip(
                            _tolist(self._u, lo, hi),
                            _tolist(self._v, lo, hi),
                            _tolist(self._start, lo, hi),
                            _tolist(self._end, lo, hi),
                        )
                    ).encode("utf-8")
                )
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    # ------------------------------------------------------------------
    # CSR per-node row index
    # ------------------------------------------------------------------
    def _build_csr(self):
        n = len(self._start)
        np = _np()
        if np is not None:
            ua = np.asarray(self._u, dtype=np.int64)
            va = np.asarray(self._v, dtype=np.int64)
            inter = np.empty(2 * n, dtype=np.int64)
            inter[0::2] = ua
            inter[1::2] = va
            rows = np.repeat(np.arange(n, dtype=np.int64), 2)
            order = np.argsort(inter, kind="stable")
            indices = rows[order]
            counts = np.bincount(inter, minlength=self.num_nodes)
            indptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            )
            return indptr, indices
        per: List[List[int]] = [[] for _ in range(self.num_nodes)]
        for row, (ui, vi) in enumerate(zip(self._u, self._v)):
            per[ui].append(row)
            per[vi].append(row)
        indptr = array("q", [0])
        indices = array("q")
        total = 0
        for lst in per:
            total += len(lst)
            indptr.append(total)
            indices.extend(lst)
        return indptr, indices

    def _csr_index(self):
        if self._csr is None:
            self._csr = self._build_csr()
        return self._csr

    def _node_pos(self, node: Node) -> int:
        if self._nindex is None:
            self._nindex = {n: i for i, n in enumerate(self._nodes)}
        try:
            return self._nindex[node]
        except KeyError:
            raise TraceFormatError(f"unknown node {node!r}") from None

    def node_contacts(self, node: Node) -> list:
        """Row ids of every contact incident to ``node``, in the global
        time-sorted row order — one contiguous CSR slice, no dict scan."""
        ni = self._node_pos(node)
        indptr, indices = self._csr_index()
        lo, hi = int(indptr[ni]), int(indptr[ni + 1])
        return _tolist(indices, lo, hi)

    def adjacency_events(
        self,
        node: Node,
        tau: float = 0.0,
        horizon: Optional[float] = None,
    ) -> Tuple:
        """The node's sorted adjacency-change events straight from the CSR
        slice — tuple-for-tuple what
        :func:`repro.temporal.sweep.adjacency_events` derives on the
        equivalent TVG (same neighbor order, same clamped/eroded floats,
        same stable time sort)."""
        from ..temporal.sweep import events_from_components

        h = self._horizon if horizon is None else horizon
        ni = self._node_pos(node)
        indptr, indices = self._csr_index()
        lo, hi = int(indptr[ni]), int(indptr[ni + 1])
        rows = _tolist(indices, lo, hi)
        by_neighbor: Dict[int, List[Tuple[float, float]]] = {}
        ucol, vcol, scol, ecol = self._u, self._v, self._start, self._end
        for r in rows:
            ui = int(ucol[r])
            oi = int(vcol[r]) if ui == ni else ui
            by_neighbor.setdefault(oi, []).append(
                (float(scol[r]), float(ecol[r]))
            )
        nodes = self._nodes
        return events_from_components(
            (
                nodes[oi],
                IntervalSet(pairs).clamp(0.0, h).erode(tau).pairs,
            )
            for oi, pairs in by_neighbor.items()
        )

    # ------------------------------------------------------------------
    # bulk queries (parity surface of ContactTrace)
    # ------------------------------------------------------------------
    def pair_presence(self) -> Dict[Tuple[Node, Node], IntervalSet]:
        """Presence interval set per node pair — pairs in first-occurrence
        order over the sorted rows, exactly like the dict-backed path (the
        :class:`~repro.traces.enrich.DistanceModel` rng draw order, hence
        every DCS float, depends on it)."""
        nodes = self._nodes
        out: Dict[Tuple[Node, Node], List[Tuple[float, float]]] = {}
        for u, v, s, e in self.iter_rows():
            out.setdefault(edge_key(u, v), []).append((s, e))
        return {k: IntervalSet(v) for k, v in out.items()}

    def restrict_nodes(self, nodes: Sequence[Node]) -> "ContactStore":
        """The sub-store induced on a node subset (keeps the given order)."""
        keep = {n for n in nodes}
        keep_idx = {i for i, n in enumerate(self._nodes) if n in keep}
        b = _Builder()
        node_tab = self._nodes
        for ui, vi, s, e in zip(
            _tolist(self._u), _tolist(self._v),
            _tolist(self._start), _tolist(self._end),
        ):
            if ui in keep_idx and vi in keep_idx:
                b.append(node_tab[ui], node_tab[vi], s, e)
        return b.finalize(nodes=tuple(nodes), horizon=self._horizon)

    def restrict_window(self, start: float, end: float) -> "ContactStore":
        """The sub-store clipped to ``[start, end)`` — same clipped floats
        and row order as :meth:`ContactTrace.restrict_window`."""
        if start >= end:
            raise TraceFormatError("window start must precede end")
        np = _np()
        if np is not None:
            sa = np.asarray(self._start, dtype=np.float64)
            ea = np.asarray(self._end, dtype=np.float64)
            s_c = np.maximum(sa, start)
            e_c = np.minimum(ea, end)
            keep = s_c < e_c
            return self._transformed(
                np.asarray(self._u, dtype=np.int64)[keep],
                np.asarray(self._v, dtype=np.int64)[keep],
                s_c[keep],
                e_c[keep],
                self._horizon,
                np,
            )
        b = _Builder()
        node_tab = self._nodes
        for ui, vi, s, e in zip(self._u, self._v, self._start, self._end):
            s_c, e_c = max(s, start), min(e, end)
            if s_c < e_c:
                b.append(node_tab[ui], node_tab[vi], s_c, e_c)
        return b.finalize(nodes=self._nodes, horizon=self._horizon)

    def shift(self, delta: float) -> "ContactStore":
        """All times translated by ``delta`` (clamped at 0), horizon
        included — the float expressions of :meth:`ContactTrace.shift`."""
        np = _np()
        if np is not None:
            sa = np.asarray(self._start, dtype=np.float64)
            ea = np.asarray(self._end, dtype=np.float64)
            keep = (ea + delta) > 0
            s_c = np.maximum(0.0, sa[keep] + delta)
            e_c = np.maximum(0.0, ea[keep] + delta)
            return self._transformed(
                np.asarray(self._u, dtype=np.int64)[keep],
                np.asarray(self._v, dtype=np.int64)[keep],
                s_c,
                e_c,
                self._horizon + delta,
                np,
            )
        b = _Builder()
        node_tab = self._nodes
        for ui, vi, s, e in zip(self._u, self._v, self._start, self._end):
            if e + delta > 0:
                b.append(
                    node_tab[ui],
                    node_tab[vi],
                    max(0.0, s + delta),
                    max(0.0, e + delta),
                )
        return b.finalize(nodes=self._nodes, horizon=self._horizon + delta)

    def _transformed(self, ui, vi, sa, ea, horizon, np) -> "ContactStore":
        """Re-sort transformed columns; node table kept verbatim (matching
        ``ContactTrace(..., nodes=self._nodes, ...)``: inferred ⊆ nodes)."""
        order = np.lexsort((ea, sa))
        return ContactStore(
            ui[order], vi[order], sa[order], ea[order],
            self._nodes, horizon,
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_trace(self) -> ContactTrace:
        """Materialize as a dict-backed :class:`ContactTrace` (the oracle)."""
        return ContactTrace(self, nodes=self._nodes, horizon=self._horizon)

    def to_tvg(self, tau: float = 0.0, horizon: Optional[float] = None) -> TVG:
        """Materialize the trace as a TVG — one bulk presence set per edge
        (grouped CSR pass) instead of a per-contact union chain, with
        adjacency-event lists served from the store's CSR index.

        Presence sets, node order, incident order, and event tuples are
        element-identical to ``ContactTrace.to_tvg`` (clamping distributes
        over union; interval normalization is one-shot associative).
        """
        h = self._horizon if horizon is None else horizon
        tvg = _StoreBackedTVG(self._nodes, h, tau)
        # Group rows per edge in first-occurrence order over sorted rows —
        # the dict-backed path's edge-first-add (hence incident) order.
        per_edge: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
        for ui, vi, s, e in zip(
            _tolist(self._u), _tolist(self._v),
            _tolist(self._start), _tolist(self._end),
        ):
            key = (ui, vi) if ui < vi else (vi, ui)
            per_edge.setdefault(key, []).append((s, e))
        nodes = self._nodes
        for (ai, bi), pairs in per_edge.items():
            tvg.set_presence(nodes[ai], nodes[bi], IntervalSet(pairs))
        tvg._attach_store(self)
        return tvg

    # ------------------------------------------------------------------
    # .ctrace on-disk format
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the store as a ``repro.ctrace/1`` file (see module doc).

        Node labels must be ints or strings (JSON-representable); the
        fingerprint and the CSR index are computed now and persisted.
        """
        nodes = self._nodes
        if all(isinstance(n, int) and not isinstance(n, bool) for n in nodes):
            node_kind = "int"
        elif all(isinstance(n, str) for n in nodes):
            node_kind = "str"
        else:
            raise TraceFormatError(
                "only int or str node labels can be saved to .ctrace "
                f"(got {sorted({type(n).__name__ for n in nodes})})"
            )
        n = len(self._start)
        fp = self.fingerprint()
        indptr, indices = self._csr_index()
        blocks = [
            ("u", "<%dI" % n, _tolist(self._u)),
            ("v", "<%dI" % n, _tolist(self._v)),
            ("start", "<%dd" % n, _tolist(self._start)),
            ("end", "<%dd" % n, _tolist(self._end)),
            ("indptr", "<%dQ" % (self.num_nodes + 1), _tolist(indptr)),
            ("indices", "<%dI" % (2 * n), _tolist(indices)),
        ]
        # Two-pass offset computation: header size depends on the offsets,
        # so fix the header with placeholder offsets of equal width first.
        def layout(offsets: Dict[str, int]) -> bytes:
            header = {
                "format": "repro.ctrace",
                "version": 1,
                "count": n,
                "node_kind": node_kind,
                "nodes": list(nodes),
                "horizon": self._horizon,
                "fingerprint": fp,
                "blocks": {
                    name: [offsets.get(name, 0), struct.calcsize(fmt)]
                    for name, fmt, _ in blocks
                },
            }
            return json.dumps(header, separators=(",", ":")).encode("utf-8")

        offsets = {name: 0 for name, _, _ in blocks}
        for _ in range(8):  # fixpoint: offset digits can widen the header
            hdr = layout(offsets)
            pos = _align(len(_MAGIC) + 8 + len(hdr))
            new_offsets = {}
            for name, fmt, _ in blocks:
                new_offsets[name] = pos
                pos = _align(pos + struct.calcsize(fmt))
            if new_offsets == offsets:
                break
            offsets = new_offsets
        hdr = layout(offsets)
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(struct.pack("<Q", len(hdr)))
            fh.write(hdr)
            pos = len(_MAGIC) + 8 + len(hdr)
            for name, fmt, values in blocks:
                fh.write(b"\0" * (offsets[name] - pos))
                payload = struct.pack(fmt, *values)
                fh.write(payload)
                pos = offsets[name] + len(payload)

    @classmethod
    def load(cls, path: PathLike) -> "ContactStore":
        """Load a ``.ctrace`` file.

        With numpy the columns are zero-copy views over an ``mmap`` of the
        file; without it they are copied into stdlib arrays.  Either way the
        fingerprint comes from the header — no row pass.
        """
        fh = open(path, "rb")
        try:
            head = fh.read(len(_MAGIC))
            if head != _MAGIC:
                raise TraceFormatError(
                    f"{path}: not a repro.ctrace/1 file (bad magic)"
                )
            (hlen,) = struct.unpack("<Q", fh.read(8))
            header = json.loads(fh.read(hlen).decode("utf-8"))
            if header.get("version") != 1:
                raise TraceFormatError(
                    f"{path}: unsupported ctrace version "
                    f"{header.get('version')!r}"
                )
            n = header["count"]
            nodes = tuple(header["nodes"])
            blocks = header["blocks"]
            np = _np()
            if np is not None:
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)

                def col(name, dtype, count):
                    off, _size = blocks[name]
                    return np.frombuffer(mm, dtype=dtype, count=count,
                                         offset=off)

                store = cls(
                    col("u", "<u4", n).astype(np.int64),
                    col("v", "<u4", n).astype(np.int64),
                    col("start", "<f8", n),
                    col("end", "<f8", n),
                    nodes,
                    header["horizon"],
                    fingerprint=header["fingerprint"],
                    csr=(
                        col("indptr", "<u8", len(nodes) + 1).astype(np.int64),
                        col("indices", "<u4", 2 * n).astype(np.int64),
                    ),
                    mm=mm,
                )
                return store

            def acol(name, code, fmt_char, count):
                off, size = blocks[name]
                fh.seek(off)
                out = array(code)
                out.frombytes(fh.read(struct.calcsize("<%d%s" % (count,
                                                                 fmt_char))))
                return out

            return cls(
                acol("u", "I", "I", n),
                acol("v", "I", "I", n),
                acol("start", "d", "d", n),
                acol("end", "d", "d", n),
                nodes,
                header["horizon"],
                fingerprint=header["fingerprint"],
                csr=(
                    acol("indptr", "Q", "Q", len(nodes) + 1),
                    acol("indices", "I", "I", 2 * n),
                ),
            )
        except (KeyError, ValueError, struct.error) as exc:
            raise TraceFormatError(f"{path}: corrupt ctrace file: {exc}") \
                from exc
        finally:
            fh.close()


def _align(pos: int, to: int = 8) -> int:
    return (pos + to - 1) // to * to


class _StoreBackedTVG(TVG):
    """A TVG whose adjacency-event lists come from the store's CSR index.

    Behaviorally identical to a plain TVG (the store events are
    tuple-for-tuple the sweep derivation); mutating the TVG after
    construction falls back to the generic event builder, so the usual
    version discipline holds.
    """

    def _attach_store(self, store: ContactStore) -> None:
        self._store = store
        self._store_version = self._version

    def adjacency_events(self, node):
        store = getattr(self, "_store", None)
        if store is None or self._version != self._store_version:
            return super().adjacency_events(node)
        self._check_node(node)
        cached = self._events.get(node)
        if cached is None:
            cached = store.adjacency_events(
                node, tau=self._tau, horizon=self._horizon
            )
            self._events[node] = cached
        return cached


# ----------------------------------------------------------------------
# streaming construction
# ----------------------------------------------------------------------

class _Builder:
    """Append-only column builder; :meth:`finalize` sorts, interns, hashes."""

    __slots__ = ("_u", "_v", "_start", "_end", "_intern", "_labels")

    def __init__(self) -> None:
        self._u = array("q")
        self._v = array("q")
        self._start = array("d")
        self._end = array("d")
        self._intern: Dict[Node, int] = {}
        self._labels: List[Node] = []

    def append(self, u: Node, v: Node, start: float, end: float) -> None:
        if start > end:
            raise TraceFormatError(
                f"contact start {start} exceeds end {end}"
            )
        if u == v:
            raise TraceFormatError(f"self-contact on node {u!r}")
        intern = self._intern
        ui = intern.get(u)
        if ui is None:
            ui = intern[u] = len(self._labels)
            self._labels.append(u)
        vi = intern.get(v)
        if vi is None:
            vi = intern[v] = len(self._labels)
            self._labels.append(v)
        self._u.append(ui)
        self._v.append(vi)
        self._start.append(start)
        self._end.append(end)

    def finalize(
        self,
        nodes: Optional[Sequence[Node]] = None,
        horizon: Optional[float] = None,
    ) -> ContactStore:
        n = len(self._start)
        np = _np()
        if np is not None:
            sa = np.frombuffer(self._start, dtype=np.float64).copy()
            ea = np.frombuffer(self._end, dtype=np.float64).copy()
            ua = np.frombuffer(self._u, dtype=np.int64).copy()
            va = np.frombuffer(self._v, dtype=np.int64).copy()
            order = np.lexsort((ea, sa))
            sa, ea, ua, va = sa[order], ea[order], ua[order], va[order]
            u_list, v_list = ua.tolist(), va.tolist()
        else:
            perm = sorted(
                range(n), key=lambda i: (self._start[i], self._end[i])
            )
            sa = array("d", (self._start[i] for i in perm))
            ea = array("d", (self._end[i] for i in perm))
            u_list = [self._u[i] for i in perm]
            v_list = [self._v[i] for i in perm]
        # Node order: first appearance over the *sorted* (u, v) sequence.
        labels = self._labels
        old_to_new: Dict[int, int] = {}
        inferred: List[Node] = []
        if nodes is not None:
            final_nodes = list(dict.fromkeys(nodes))
            index = {lab: i for i, lab in enumerate(final_nodes)}
            for old in _first_appearance(u_list, v_list):
                lab = labels[old]
                pos = index.get(lab)
                if pos is None:
                    pos = index[lab] = len(final_nodes)
                    final_nodes.append(lab)
                old_to_new[old] = pos
        else:
            for old in _first_appearance(u_list, v_list):
                old_to_new[old] = len(inferred)
                inferred.append(labels[old])
            final_nodes = inferred
        if np is not None:
            remap = np.zeros(max(len(labels), 1), dtype=np.int64)
            for old, new in old_to_new.items():
                remap[old] = new
            ua = remap[ua]
            va = remap[va]
        else:
            ua = array("q", (old_to_new[i] for i in u_list))
            va = array("q", (old_to_new[i] for i in v_list))
        if horizon is None:
            if n:
                horizon = float(ea.max()) if np is not None else max(ea)
            else:
                horizon = 0.0
        return ContactStore(ua, va, sa, ea, tuple(final_nodes), horizon)


def _first_appearance(u_list: List[int], v_list: List[int]) -> List[int]:
    """Provisional intern ids in first-appearance order over sorted rows."""
    seen = set()
    out: List[int] = []
    for ui, vi in zip(u_list, v_list):
        if ui not in seen:
            seen.add(ui)
            out.append(ui)
        if vi not in seen:
            seen.add(vi)
            out.append(vi)
    return out


def _open_text(source: Union[PathLike, TextIO]) -> Tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def ingest_crawdad(
    source: Union[PathLike, TextIO],
    node_type: type = int,
    horizon: Optional[float] = None,
) -> ContactStore:
    """Stream a CRAWDAD one-contact-per-line trace into a store.

    Line semantics — column count, ``#`` comments, self-sighting skips,
    error messages — are exactly
    :func:`repro.traces.parser.parse_crawdad`'s; the difference is that no
    ``Contact`` object is ever created: each line lands directly in the
    column builder.
    """
    fh, owns = _open_text(source)
    b = _Builder()
    try:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 4:
                raise TraceFormatError(
                    f"line {lineno}: expected at least 4 columns, "
                    f"got {len(parts)}"
                )
            try:
                u = node_type(parts[0])
                v = node_type(parts[1])
                start = float(parts[2])
                end = float(parts[3])
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
            if u == v:
                continue  # some traces log spurious self-sightings
            if end < start:
                raise TraceFormatError(
                    f"line {lineno}: contact end {end} precedes start {start}"
                )
            b.append(u, v, start, end)
    finally:
        if owns:
            fh.close()
    return b.finalize(horizon=horizon)


def ingest_csv(
    source: Union[PathLike, TextIO],
    node_type: type = int,
    horizon: Optional[float] = None,
) -> ContactStore:
    """Stream a headered ``u,v,start,end`` CSV trace into a store
    (validation semantics of :func:`repro.traces.parser.parse_csv`)."""
    fh, owns = _open_text(source)
    b = _Builder()
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise TraceFormatError("CSV trace is empty")
        required = {"u", "v", "start", "end"}
        missing = required - {f.strip().lower() for f in reader.fieldnames}
        if missing:
            raise TraceFormatError(f"CSV trace lacks columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            norm = {k.strip().lower(): val for k, val in row.items() if k}
            try:
                b.append(
                    node_type(norm["u"]),
                    node_type(norm["v"]),
                    float(norm["start"]),
                    float(norm["end"]),
                )
            except (ValueError, KeyError, TraceFormatError) as exc:
                raise TraceFormatError(f"row {lineno}: {exc}") from exc
    finally:
        if owns:
            fh.close()
    return b.finalize(horizon=horizon)


def ingest_path(
    path: PathLike,
    node_type: type = int,
    horizon: Optional[float] = None,
) -> ContactStore:
    """Load any trace file as a store, dispatching on extension
    (``.ctrace`` → :meth:`ContactStore.load`, ``.csv`` → CSV, else
    CRAWDAD)."""
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == CTRACE_SUFFIX:
        return ContactStore.load(p)
    if suffix == ".csv":
        return ingest_csv(p, node_type=node_type, horizon=horizon)
    return ingest_crawdad(p, node_type=node_type, horizon=horizon)

"""Contact traces: model, parsing, synthesis, distance enrichment, stats."""

from .enrich import ContactDistanceProvider, DistanceModel
from .model import Contact, ContactTrace
from .parser import load_trace, parse_crawdad, parse_csv
from .stats import TraceStats, summarize
from .synthetic import (
    HaggleLikeConfig,
    deterministic_trace,
    haggle_like_trace,
    uniform_trace,
)
from .writer import write_crawdad, write_csv

__all__ = [
    "Contact",
    "ContactTrace",
    "parse_crawdad",
    "parse_csv",
    "load_trace",
    "write_crawdad",
    "write_csv",
    "HaggleLikeConfig",
    "haggle_like_trace",
    "uniform_trace",
    "deterministic_trace",
    "DistanceModel",
    "ContactDistanceProvider",
    "TraceStats",
    "summarize",
]

"""Contact traces: model, parsing, synthesis, distance enrichment, stats.

Two interchangeable trace backends share one API surface: the dict-backed
:class:`ContactTrace` (the parity oracle) and the columnar
:class:`~repro.traces.store.ContactStore` (bounded-memory ingestion of
million-contact traces, ``.ctrace`` on-disk format).
"""

from .enrich import ContactDistanceProvider, DistanceModel
from .model import Contact, ContactTrace
from .parser import load_trace, parse_crawdad, parse_csv
from .stats import TraceStats, summarize
from .store import (
    CTRACE_SUFFIX,
    ContactStore,
    ingest_crawdad,
    ingest_csv,
    ingest_path,
)
from .synthetic import (
    HaggleLikeConfig,
    deterministic_trace,
    haggle_like_trace,
    scale_trace_store,
    uniform_trace,
)
from .writer import write_crawdad, write_csv

__all__ = [
    "Contact",
    "ContactTrace",
    "ContactStore",
    "CTRACE_SUFFIX",
    "ingest_crawdad",
    "ingest_csv",
    "ingest_path",
    "parse_crawdad",
    "parse_csv",
    "load_trace",
    "write_crawdad",
    "write_csv",
    "HaggleLikeConfig",
    "haggle_like_trace",
    "uniform_trace",
    "deterministic_trace",
    "scale_trace_store",
    "DistanceModel",
    "ContactDistanceProvider",
    "TraceStats",
    "summarize",
]

"""Distance enrichment for contact traces.

A contact trace records *who* was in range *when*, but both channel models
need the link distance ``d_{i,j,t}`` (Eq. 3).  Reproducing the paper from a
contact trace therefore requires synthesizing distances — this module
attaches a distance profile to every contact:

* ``"constant"`` (default) — one distance per contact, drawn uniformly from
  ``[d_min, d_max]``.  With constant per-contact distances the link cost is
  constant over each adjacency interval, so the DTS equivalence theorem
  (Thm. 5.2) holds *exactly*; this is the profile all paper experiments use.
* ``"approach"`` — a V-shaped profile: nodes close from ``d_max`` to a
  random minimum and retreat, linear in time.  Models walking encounters.
* ``"wander"`` — a mean-reverting random walk sampled at knots and linearly
  interpolated.

For the non-constant profiles the schedulers evaluate cost at each DTS
interval start (the paper's own "``φ`` unchanged during ``[t, t+τ]``"
assumption extended to the interval), a documented approximation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Hashable, List, Tuple

import numpy as np

from ..core.rng import SeedLike, as_generator
from ..errors import GraphModelError, TraceFormatError
from ..temporal.tvg import edge_key
from .model import Contact, ContactTrace

__all__ = ["DistanceModel", "ContactDistanceProvider"]

Node = Hashable


class _Profile:
    """Distance profile of one contact: piecewise-linear knots over time."""

    __slots__ = ("start", "end", "times", "values")

    def __init__(self, start: float, end: float, times: np.ndarray, values: np.ndarray):
        self.start = start
        self.end = end
        self.times = times
        self.values = values

    def at(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))


class ContactDistanceProvider:
    """Answers ``distance(u, v, t)`` from per-contact profiles.

    Query times must fall within a recorded contact of the pair; the contact
    end itself is tolerated so τ-window endpoint queries resolve.

    ``constant_within_contacts`` advertises whether the distance (hence any
    derived link cost) is invariant across each contact — consumers such as
    the auxiliary-graph builder use it to cache per-contact costs safely.
    """

    def __init__(
        self,
        profiles: Dict[Tuple[Node, Node], List[_Profile]],
        constant_within_contacts: bool = False,
    ):
        self._profiles = profiles
        self._starts = {
            pair: [p.start for p in plist] for pair, plist in profiles.items()
        }
        self.constant_within_contacts = constant_within_contacts

    def distance(self, u: Node, v: Node, t: float) -> float:
        pair = edge_key(u, v)
        plist = self._profiles.get(pair)
        if plist:
            idx = bisect_right(self._starts[pair], t) - 1
            if idx >= 0:
                p = plist[idx]
                if p.start <= t <= p.end:
                    return p.at(t)
        raise GraphModelError(
            f"no contact of pair {pair!r} covers time {t!r}; "
            "distance is undefined outside contacts"
        )

    def __call__(self, u: Node, v: Node, t: float) -> float:
        return self.distance(u, v, t)


class DistanceModel:
    """Factory of :class:`ContactDistanceProvider` objects from traces."""

    PROFILES = ("constant", "approach", "wander")

    def __init__(
        self,
        d_min: float = 2.0,
        d_max: float = 10.0,
        profile: str = "constant",
        wander_step: float = 0.15,
        knot_spacing: float = 60.0,
    ) -> None:
        if not (0 < d_min < d_max):
            raise TraceFormatError("require 0 < d_min < d_max")
        if profile not in self.PROFILES:
            raise TraceFormatError(
                f"unknown profile {profile!r}; choose from {self.PROFILES}"
            )
        if wander_step <= 0 or knot_spacing <= 0:
            raise TraceFormatError("wander_step and knot_spacing must be positive")
        self.d_min = d_min
        self.d_max = d_max
        self.profile = profile
        self.wander_step = wander_step
        self.knot_spacing = knot_spacing

    # ------------------------------------------------------------------
    def _constant_profile(self, c: Contact, rng: np.random.Generator) -> _Profile:
        d = float(rng.uniform(self.d_min, self.d_max))
        return _Profile(
            c.start, c.end, np.array([c.start, c.end]), np.array([d, d])
        )

    def _approach_profile(self, c: Contact, rng: np.random.Generator) -> _Profile:
        d_close = float(rng.uniform(self.d_min, 0.5 * (self.d_min + self.d_max)))
        mid = c.start + c.duration * float(rng.uniform(0.3, 0.7))
        times = np.array([c.start, mid, c.end])
        values = np.array([self.d_max, d_close, self.d_max])
        return _Profile(c.start, c.end, times, values)

    def _wander_profile(self, c: Contact, rng: np.random.Generator) -> _Profile:
        n_knots = max(2, int(c.duration / self.knot_spacing) + 1)
        times = np.linspace(c.start, c.end, n_knots)
        mid = 0.5 * (self.d_min + self.d_max)
        span = self.d_max - self.d_min
        vals = [float(rng.uniform(self.d_min, self.d_max))]
        for _ in range(n_knots - 1):
            # Mean-reverting step toward the middle of the range.
            drift = 0.3 * (mid - vals[-1])
            step = float(rng.normal(drift, self.wander_step * span))
            vals.append(min(self.d_max, max(self.d_min, vals[-1] + step)))
        return _Profile(c.start, c.end, times, np.array(vals))

    # ------------------------------------------------------------------
    def attach(self, trace: ContactTrace, seed: SeedLike = None) -> ContactDistanceProvider:
        """Build a distance provider covering every contact of ``trace``."""
        rng = as_generator(seed)
        make = {
            "constant": self._constant_profile,
            "approach": self._approach_profile,
            "wander": self._wander_profile,
        }[self.profile]
        profiles: Dict[Tuple[Node, Node], List[_Profile]] = {}
        # Merge overlapping contacts per pair first so each profile owns a
        # maximal interval (mirrors TVG presence normalization).
        for pair, pres in trace.pair_presence().items():
            plist: List[_Profile] = []
            for iv in pres:
                merged = Contact(iv.start, iv.end, *pair)
                plist.append(make(merged, rng))
            profiles[pair] = plist
        return ContactDistanceProvider(
            profiles, constant_within_contacts=(self.profile == "constant")
        )

"""Contact-trace data model.

A *contact trace* is the empirical object behind the paper's evaluation: a
set of records ``(u, v, start, end)`` meaning nodes ``u`` and ``v`` were in
radio range throughout ``[start, end)``.  The Haggle project's iMote traces
(citation [12]) have exactly this shape; :class:`ContactTrace` is the
in-memory representation shared by the parser, the synthetic generators, and
the TVEG builders.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.intervals import IntervalSet
from ..errors import TraceFormatError
from ..temporal.builders import from_contacts
from ..temporal.tvg import TVG, edge_key

__all__ = ["Contact", "ContactTrace"]

Node = Hashable


@dataclass(frozen=True, order=True)
class Contact:
    """One contact: nodes ``u`` and ``v`` in range over ``[start, end)``."""

    start: float
    end: float
    u: Node = field(compare=False)
    v: Node = field(compare=False)

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise TraceFormatError(
                f"contact start {self.start} exceeds end {self.end}"
            )
        if self.u == self.v:
            raise TraceFormatError(f"self-contact on node {self.u!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def pair(self) -> Tuple[Node, Node]:
        return edge_key(self.u, self.v)


class ContactTrace:
    """An ordered collection of contacts with bulk queries and TVG export."""

    def __init__(
        self,
        contacts: Iterable[Contact] = (),
        nodes: Optional[Sequence[Node]] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self._contacts: List[Contact] = sorted(contacts)
        inferred: List[Node] = []
        seen = set()
        for c in self._contacts:
            for n in (c.u, c.v):
                if n not in seen:
                    inferred.append(n)
                    seen.add(n)
        if nodes is not None:
            self._nodes = tuple(dict.fromkeys(list(nodes) + inferred))
        else:
            self._nodes = tuple(inferred)
        if horizon is None:
            horizon = max((c.end for c in self._contacts), default=0.0)
        self._horizon = float(horizon)

    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store) -> "ContactTrace":
        """Materialize a :class:`~repro.traces.store.ContactStore` as a
        dict-backed trace (same nodes, horizon, and fingerprint — the
        columnar rows are already in this class's canonical sort order)."""
        return cls(store, nodes=store.nodes, horizon=store.horizon)

    # ------------------------------------------------------------------
    @property
    def contacts(self) -> Tuple[Contact, ...]:
        return tuple(self._contacts)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_contacts(self) -> int:
        return len(self._contacts)

    @property
    def horizon(self) -> float:
        return self._horizon

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContactTrace(|V|={self.num_nodes}, contacts={self.num_contacts}, "
            f"horizon={self._horizon:g})"
        )

    def fingerprint(self) -> str:
        """Short content hash over nodes, horizon, and every contact.

        Two traces with the same records hash identically no matter how
        they were constructed; any contact, node, or horizon change yields
        a different hash.  Memoized (the trace is immutable).  The planning
        service keys its content-addressed plan cache on it (via
        :func:`repro.api.plan_broadcast`'s manifest ``config_hash``).
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            h = hashlib.sha256()
            h.update(repr((self._nodes, self._horizon)).encode("utf-8"))
            for c in self._contacts:
                h.update(repr((c.start, c.end, c.u, c.v)).encode("utf-8"))
            fp = self._fingerprint = h.hexdigest()[:16]
        return fp

    # ------------------------------------------------------------------
    def pair_presence(self) -> Dict[Tuple[Node, Node], IntervalSet]:
        """Presence interval set per node pair (merging overlapping contacts)."""
        out: Dict[Tuple[Node, Node], List[Tuple[float, float]]] = {}
        for c in self._contacts:
            out.setdefault(c.pair, []).append((c.start, c.end))
        return {k: IntervalSet(v) for k, v in out.items()}

    def restrict_nodes(self, nodes: Sequence[Node]) -> "ContactTrace":
        """The sub-trace induced on a node subset (paper's varying-N sweeps).

        Keeps the given node ordering, drops contacts touching other nodes.
        """
        keep = set(nodes)
        kept = [c for c in self._contacts if c.u in keep and c.v in keep]
        return ContactTrace(kept, nodes=tuple(nodes), horizon=self._horizon)

    def restrict_window(self, start: float, end: float) -> "ContactTrace":
        """The sub-trace clipped to ``[start, end)`` (Fig. 7's sliding windows)."""
        if start >= end:
            raise TraceFormatError("window start must precede end")
        kept = []
        for c in self._contacts:
            s, e = max(c.start, start), min(c.end, end)
            if s < e:
                kept.append(Contact(s, e, c.u, c.v))
        return ContactTrace(kept, nodes=self._nodes, horizon=self._horizon)

    def shift(self, delta: float) -> "ContactTrace":
        """The trace with all times translated by ``delta`` (clamped at 0)."""
        shifted = [
            Contact(max(0.0, c.start + delta), max(0.0, c.end + delta), c.u, c.v)
            for c in self._contacts
            if c.end + delta > 0
        ]
        return ContactTrace(shifted, nodes=self._nodes, horizon=self._horizon + delta)

    # ------------------------------------------------------------------
    def to_tvg(self, tau: float = 0.0, horizon: Optional[float] = None) -> TVG:
        """Materialize the trace as a :class:`~repro.temporal.tvg.TVG`."""
        h = self._horizon if horizon is None else horizon
        return from_contacts(
            ((c.u, c.v, c.start, c.end) for c in self._contacts),
            horizon=h,
            nodes=self._nodes,
            tau=tau,
        )

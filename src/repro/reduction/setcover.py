"""The Theorem 4.1 reduction, made executable: Set Cover → TMEDB.

The paper proves TMEDB NP-hard and o(log N)-inapproximable by reducing Set
Covering to it (Theorem 4.1 / Corollary 4.1).  This module constructs the
reduction concretely so the hardness argument can be *run*:

Given a Set Cover instance (universe ``U``, family ``S_1..S_n``), build a
TVEG with a source, one *set node* per ``S_i``, and one *element node* per
``e ∈ U``, on a two-phase timeline:

* phase 1, ``t ∈ [0, 1)`` — the source is adjacent to every set node at a
  negligible cost ``δ``; one broadcast informs them all;
* phase 2, ``t ∈ [1, 2)`` — set node ``S_i`` is adjacent exactly to its
  elements, all at unit cost; transmitting once (broadcast nature) covers
  every element of ``S_i``.

An optimal TMEDB schedule then costs ``δ + OPT_cover`` (one unit per chosen
set), so minimum-cover size and minimum broadcast energy coincide up to δ —
the approximation-preserving map behind Corollary 4.1.  The test suite
verifies the correspondence against exact solvers on both sides.

Also provided: :func:`greedy_set_cover` (the classic ln-n approximation)
and :func:`exact_set_cover` (exponential, small instances) as ground truth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..channels.models import StaticChannel
from ..errors import GraphModelError
from ..params import PAPER_PARAMS, PhyParams
from ..schedule.schedule import Schedule
from ..temporal.tvg import TVG, edge_key
from ..tveg.graph import TVEG

__all__ = [
    "SetCoverInstance",
    "greedy_set_cover",
    "exact_set_cover",
    "tmedb_from_set_cover",
    "schedule_to_cover",
    "UNIT_COST",
    "SOURCE",
]

Element = Hashable

#: the reduction's node labels
SOURCE = "source"


def set_node(i: int) -> Tuple[str, int]:
    return ("set", i)


def elem_node(e: Element) -> Tuple[str, Element]:
    return ("elem", e)


#: cost of one phase-2 transmission (one chosen set), in joules.
UNIT_COST = 1e-10
#: cost of the phase-1 source broadcast (δ ≪ UNIT_COST).
DELTA_COST = 1e-14


@dataclass(frozen=True)
class SetCoverInstance:
    """A Set Cover instance: cover ``universe`` using few of ``sets``."""

    universe: FrozenSet[Element]
    sets: Tuple[FrozenSet[Element], ...]

    def __post_init__(self) -> None:
        if not self.universe:
            raise GraphModelError("empty universe")
        stray = frozenset().union(*self.sets) - self.universe if self.sets else frozenset()
        if stray:
            raise GraphModelError(f"sets contain non-universe elements {stray!r}")

    @classmethod
    def of(cls, universe, sets) -> "SetCoverInstance":
        return cls(
            frozenset(universe), tuple(frozenset(s) for s in sets)
        )

    @property
    def coverable(self) -> bool:
        return frozenset().union(*self.sets) == self.universe if self.sets else False

    def is_cover(self, indices: Sequence[int]) -> bool:
        covered: Set[Element] = set()
        for i in indices:
            covered |= self.sets[i]
        return covered >= self.universe


def greedy_set_cover(instance: SetCoverInstance) -> Optional[List[int]]:
    """The classic greedy (ln n)-approximation; None when uncoverable."""
    uncovered = set(instance.universe)
    chosen: List[int] = []
    while uncovered:
        best, gain = None, 0
        for i, s in enumerate(instance.sets):
            g = len(s & uncovered)
            if g > gain:
                best, gain = i, g
        if best is None:
            return None
        chosen.append(best)
        uncovered -= instance.sets[best]
    return chosen


def exact_set_cover(instance: SetCoverInstance) -> Optional[List[int]]:
    """Minimum cover by exhaustive search (use on small instances only)."""
    n = len(instance.sets)
    for k in range(0, n + 1):
        for combo in itertools.combinations(range(n), k):
            if instance.is_cover(combo):
                return list(combo)
    return None


def _distance_for_cost(cost: float, params: PhyParams) -> float:
    """Distance at which Eq. (2)'s minimum cost equals ``cost``."""
    # cost = N0·B·γ_th · d^α  ⟹  d = (cost / decode_energy)^(1/α)
    return (cost / params.decode_energy) ** (1.0 / params.path_loss_exponent)


class _FixedDistances:
    """Distance provider backed by a per-pair constant distance table."""

    constant_within_contacts = True

    def __init__(self, table: Dict[Tuple, float]):
        self._table = table

    def __call__(self, u, v, t) -> float:
        return self._table[edge_key(u, v)]


def tmedb_from_set_cover(
    instance: SetCoverInstance,
    params: PhyParams = PAPER_PARAMS,
) -> Tuple[TVEG, str, float]:
    """Build the Theorem 4.1 TMEDB instance; returns (tveg, source, T).

    The instance is feasible iff the Set Cover instance is coverable, and
    its optimal cost is ``DELTA_COST + UNIT_COST · OPT_cover``.
    """
    nodes: List = [SOURCE]
    nodes += [set_node(i) for i in range(len(instance.sets))]
    nodes += [elem_node(e) for e in sorted(instance.universe, key=repr)]
    tvg = TVG(nodes, horizon=2.0, tau=0.0)
    distances: Dict[Tuple, float] = {}

    d_delta = _distance_for_cost(DELTA_COST, params)
    d_unit = _distance_for_cost(UNIT_COST, params)

    # Phase 1: source ↔ every set node on [0, 1).
    for i in range(len(instance.sets)):
        tvg.add_contact(SOURCE, set_node(i), 0.0, 1.0)
        distances[edge_key(SOURCE, set_node(i))] = d_delta

    # Phase 2: set node ↔ its elements on [1, 2).
    for i, s in enumerate(instance.sets):
        for e in s:
            tvg.add_contact(set_node(i), elem_node(e), 1.0, 2.0)
            distances[edge_key(set_node(i), elem_node(e))] = d_unit

    tveg = TVEG(tvg, StaticChannel(params), _FixedDistances(distances))
    return tveg, SOURCE, 2.0


def schedule_to_cover(
    instance: SetCoverInstance, schedule: Schedule
) -> List[int]:
    """The set indices whose nodes transmit in phase 2 of ``schedule``.

    For any feasible schedule of the reduction instance this is a valid
    cover (every element node must hear some set node), which is the
    forward direction of Theorem 4.1's equivalence.
    """
    chosen: Set[int] = set()
    for s in schedule:
        if isinstance(s.relay, tuple) and s.relay[0] == "set" and s.time >= 1.0:
            chosen.add(s.relay[1])
    return sorted(chosen)

"""Executable hardness reductions (Theorem 4.1 / Corollary 4.1)."""

from .setcover import (
    SetCoverInstance,
    exact_set_cover,
    greedy_set_cover,
    schedule_to_cover,
    tmedb_from_set_cover,
)

__all__ = [
    "SetCoverInstance",
    "greedy_set_cover",
    "exact_set_cover",
    "tmedb_from_set_cover",
    "schedule_to_cover",
]

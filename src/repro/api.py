"""High-level one-call broadcast planning.

:func:`plan_broadcast` collapses the standard five-step pipeline —
``restrict_window → shift → tveg_from_trace → make_scheduler → schedule``
— into a single call, and :class:`BroadcastPlan` bundles everything a
caller usually wants afterwards: the schedule, the Section IV feasibility
report, the solver's standardized ``info`` metadata, the TVEG the plan was
computed on, and (when tracing is enabled) an observability snapshot.

Example::

    from repro import HaggleLikeConfig, haggle_like_trace, plan_broadcast

    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=20), seed=7)
    plan = plan_broadcast(trace, None, 2000.0,
                          algorithm="eedcb", window=(9000.0, 11000.0), seed=7)
    print(plan.feasible, plan.total_cost, plan.info["aux_nodes"])

Every plan carries a reproducibility manifest whose ``config_hash``
content-addresses the *problem instance*: the canonical hash covers the
algorithm, channel, deadline, window, scheduler kwargs, seed, physical
parameters, and the content fingerprint of the trace or TVEG.  Pass a
:class:`repro.service.PlanCache` as ``cache=`` and identical calls are
answered from that cache instead of recomputed::

    from repro.service import PlanCache

    cache = PlanCache(capacity=256, disk_dir="~/.cache/repro-plans")
    plan = plan_broadcast(trace, None, 2000.0, window=9000.0, seed=7,
                          cache=cache)          # computed
    again = plan_broadcast(trace, None, 2000.0, window=9000.0, seed=7,
                           cache=cache)         # served from cache
    assert again.schedule == plan.schedule
"""

from __future__ import annotations

import time
from collections.abc import Sequence as SequenceABC
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

from . import obs
from .algorithms.base import canonical_scheduler_name, make_scheduler
from .channels.models import ChannelModel
from .compute import resolve_compute
from .errors import GraphModelError, InfeasibleError
from .obs.tracer import TraceSnapshot
from .params import PAPER_PARAMS, PhyParams
from .schedule.feasibility import FeasibilityReport, check_feasibility
from .schedule.schedule import Schedule
from .temporal.reachability import broadcast_feasible_sources
from .traces.model import ContactTrace
from .traces.store import ContactStore
from .tveg.builders import tveg_from_trace
from .tveg.graph import TVEG

__all__ = [
    "BroadcastPlan",
    "BroadcastPlanSet",
    "plan_broadcast",
    "plan_broadcast_many",
    "plan_config",
    "plan_cache_key",
]

Node = Hashable
Window = Union[float, Tuple[float, float]]


@dataclass(frozen=True)
class BroadcastPlan:
    """Everything one broadcast planning call produced.

    Bundles the relay schedule, the four-condition feasibility report, the
    scheduler's standardized ``info`` metadata (see
    :class:`~repro.algorithms.base.Scheduler`), the TVEG the plan was
    computed on (so callers can simulate or visualize without rebuilding
    it), and — when tracing was enabled during planning — the observability
    snapshot of the run.
    """

    schedule: Schedule
    feasibility: FeasibilityReport
    tveg: TVEG
    source: Node
    deadline: float
    algorithm: str
    channel: str
    info: Dict[str, object] = field(default_factory=dict)
    obs: Optional[TraceSnapshot] = None
    #: reproducibility manifest (config hash, seed, git SHA, platform, ...)
    manifest: Dict[str, object] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        """True iff the schedule passes all four Section IV conditions."""
        return self.feasibility.feasible

    @property
    def total_cost(self) -> float:
        """Total scheduled transmission cost ``Σ w_k`` (joule-scale)."""
        return self.schedule.total_cost

    def normalized_energy(self, params: Optional[PhyParams] = None) -> float:
        """The paper's normalized energy metric for this plan."""
        p = params if params is not None else self.tveg.params
        return p.normalize_energy(self.schedule.total_cost)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastPlan(algorithm={self.algorithm!r}, "
            f"source={self.source!r}, deadline={self.deadline:g}, "
            f"transmissions={len(self.schedule)}, "
            f"feasible={self.feasible})"
        )


@dataclass(frozen=True)
class BroadcastPlanSet(SequenceABC):
    """The plans of one :func:`plan_broadcast_many` call, request order.

    A proper sequence — ``len(ps)``, ``ps[i]``, iteration, ``in`` — of
    :class:`BroadcastPlan` objects.  Each element is exactly what the
    equivalent single :func:`plan_broadcast` call would have returned
    (same schedule, info, and manifest ``config_hash``); the set exists
    because the batch computed them against one shared TVEG/auxiliary
    graph build.  Round-trips through :mod:`repro.schedule.io` as a
    ``repro.planset/1`` document.
    """

    plans: Tuple[BroadcastPlan, ...]

    def __len__(self) -> int:
        return len(self.plans)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return BroadcastPlanSet(plans=self.plans[i])
        return self.plans[i]

    def __iter__(self) -> Iterator[BroadcastPlan]:
        return iter(self.plans)

    @property
    def feasible(self) -> bool:
        """True iff every plan in the set is feasible."""
        return all(p.feasible for p in self.plans)

    @property
    def total_cost(self) -> float:
        """Summed transmission cost over all plans."""
        return sum(p.total_cost for p in self.plans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastPlanSet(plans={len(self.plans)}, "
            f"feasible={self.feasible})"
        )


def _window_bounds(window: Window, deadline: float) -> Tuple[float, float]:
    """Normalize a window spec: a scalar start means ``deadline`` seconds."""
    if isinstance(window, (int, float)):
        start = float(window)
        return start, start + float(deadline)
    start, end = window
    return float(start), float(end)


def plan_config(
    trace_or_tveg: Union[ContactTrace, ContactStore, TVEG],
    source: Optional[Node],
    deadline: float,
    *,
    algorithm: str = "eedcb",
    channel: Union[str, ChannelModel] = "static",
    window: Optional[Window] = None,
    seed=None,
    params: PhyParams = PAPER_PARAMS,
    compute: Optional[str] = None,
    **scheduler_kwargs,
) -> Dict[str, Any]:
    """The canonical configuration of one :func:`plan_broadcast` call.

    This dict *is* the problem's identity: hashed by
    :func:`repro.obs.config_hash` it yields the plan's
    ``manifest["config_hash"]``, the content address the plan cache and
    the planning service key on.  Two calls produce the same hash exactly
    when they would produce the same plan — the fingerprint field covers
    the trace's (or TVEG's) full content, so a different trace can never
    alias a cached plan.

    ``source=None`` (auto-pick) is part of the identity as-is; the pick is
    deterministic, so the key remains sound without resolving it here (and
    the hit path never has to build a graph to find out).

    ``compute=`` is accepted and deliberately **ignored**: kernel
    selection is a performance knob with byte-identical output (see
    :mod:`repro.compute`), so it must never change a plan's identity —
    a numpy-planned result legitimately answers a stdlib request and
    vice versa.  (A legacy ``backend=`` in ``scheduler_kwargs`` keeps
    flowing into the config unchanged, as it always did.)
    """
    algo = canonical_scheduler_name(algorithm)
    if isinstance(trace_or_tveg, TVEG):
        if window is not None:
            raise GraphModelError(
                "window applies to contact traces; restrict/shift the trace "
                "before building a TVEG"
            )
        fingerprint = trace_or_tveg.fingerprint()
        channel_label = type(trace_or_tveg.channel).__name__
        eff_params = trace_or_tveg.params
    elif isinstance(trace_or_tveg, (ContactTrace, ContactStore)):
        fingerprint = trace_or_tveg.fingerprint()
        channel_label = (
            channel if isinstance(channel, str) else type(channel).__name__
        )
        eff_params = params
    else:
        raise TypeError(
            f"expected a ContactTrace, ContactStore, or TVEG, "
            f"got {type(trace_or_tveg).__name__}"
        )
    kwargs = dict(scheduler_kwargs)
    if "rand" in algo and "seed" not in kwargs:
        kwargs["seed"] = seed
    return {
        "algorithm": algo,
        "channel": channel_label,
        "source": source,
        "deadline": float(deadline),
        "window": window,
        "scheduler_kwargs": kwargs,
        "seed": seed,
        "params": asdict(eff_params),
        "instance": fingerprint,
    }


def plan_cache_key(
    trace_or_tveg: Union[ContactTrace, ContactStore, TVEG],
    source: Optional[Node],
    deadline: float,
    **kwargs,
) -> str:
    """The content-address a :func:`plan_broadcast` call caches under.

    Equals ``plan.manifest["config_hash"]`` of the plan the same arguments
    produce.  The planning service's batcher keys request dedup on it.
    """
    return obs.config_hash(plan_config(trace_or_tveg, source, deadline, **kwargs))


def _scheduler_kwargs_with_compute(
    scheduler_kwargs: Dict[str, Any], compute: Optional[str]
) -> Dict[str, Any]:
    """The kwargs a plan's scheduler is constructed with.

    Resolves ``compute`` (``None`` → ``"auto"`` → numpy when importable)
    and injects it — except when a legacy ``backend=`` was passed and no
    explicit ``compute=`` accompanies it, where injecting the auto choice
    would override the semantics that legacy spelling pinned.
    """
    kwargs = dict(scheduler_kwargs)
    if "backend" in kwargs and compute is None:
        return kwargs
    kwargs["compute"] = resolve_compute(compute)
    return kwargs


def _plan_on_tveg(
    tveg: TVEG,
    source: Optional[Node],
    deadline: float,
    *,
    config: Dict[str, Any],
    seed,
    compute: Optional[str],
    cache,
    key: str,
    feasible_memo: Optional[Dict[float, List[Node]]] = None,
) -> BroadcastPlan:
    """Run one planning request against an already-built TVEG.

    The shared tail of :func:`plan_broadcast` and
    :func:`plan_broadcast_many` — source auto-pick, scheduler run,
    feasibility check, manifest, cache store — kept in one place so the
    batch path is the single path per request, not a reimplementation.
    ``feasible_memo`` (batch only) caches the auto-pick source list per
    deadline across requests on the same TVEG.
    """
    algo = config["algorithm"]
    if source is None:
        feasible = feasible_memo.get(deadline) if feasible_memo is not None else None
        if feasible is None:
            feasible = sorted(
                broadcast_feasible_sources(tveg.tvg, 0.0, deadline)
            )
            if feasible_memo is not None:
                feasible_memo[deadline] = feasible
        if not feasible:
            raise InfeasibleError(
                "no broadcast-feasible source in this window; try another "
                "window or a larger deadline"
            )
        source = feasible[0]

    scheduler = make_scheduler(
        algo, **_scheduler_kwargs_with_compute(config["scheduler_kwargs"], compute)
    )

    t0 = time.perf_counter()
    with obs.span("api.plan_broadcast", algorithm=algo):
        result = scheduler.run(tveg, source, deadline)
        report = check_feasibility(
            tveg, result.schedule, source, deadline, record="final"
        )

    manifest = obs.run_manifest(
        config=config,
        seed=seed,
        wall_seconds=time.perf_counter() - t0,
        resolved_source=source,
    )
    plan = BroadcastPlan(
        schedule=result.schedule,
        feasibility=report,
        tveg=tveg,
        source=source,
        deadline=deadline,
        algorithm=algo,
        channel=config["channel"],
        info=dict(result.info),
        obs=obs.snapshot() if obs.is_enabled() else None,
        manifest=manifest,
    )
    if cache is not None:
        cache.put(key, plan)
    return plan


def plan_broadcast(
    trace_or_tveg: Union[ContactTrace, ContactStore, TVEG],
    source: Optional[Node],
    deadline: float,
    *,
    algorithm: str = "eedcb",
    channel: Union[str, ChannelModel] = "static",
    window: Optional[Window] = None,
    seed=None,
    params: PhyParams = PAPER_PARAMS,
    cache=None,
    compute: Optional[str] = None,
    **scheduler_kwargs,
) -> BroadcastPlan:
    """Plan one energy-efficient delay-constrained broadcast in a single call.

    Parameters
    ----------
    trace_or_tveg:
        A :class:`~repro.traces.model.ContactTrace` or columnar
        :class:`~repro.traces.store.ContactStore` (the usual cases — the
        TVEG is built internally; both backends yield byte-identical
        plans) or an already-constructed
        :class:`~repro.tveg.graph.TVEG` (then ``channel``, ``window``,
        ``seed``, and ``params`` do not apply; passing ``window`` raises).
    source:
        The broadcasting node, or ``None`` to pick the smallest
        broadcast-feasible source automatically (raises
        :class:`~repro.errors.InfeasibleError` when none exists).
    deadline:
        The delay constraint ``T`` in seconds, measured from the (shifted)
        window start: the broadcast runs over ``[0, deadline]``.
    algorithm:
        Scheduler name or alias — ``"eedcb"``, ``"FR-EEDCB"``,
        ``"fr_eedcb"``, ``"freedcb"``, ... (see
        :func:`~repro.algorithms.base.canonical_scheduler_name`).
    channel:
        Channel spec for TVEG construction: ``"static"``, ``"rayleigh"``,
        ``"rician"``, ``"nakagami"``, or a
        :class:`~repro.channels.models.ChannelModel` instance.
    window:
        Optional trace window.  ``(start, end)`` restricts the trace to
        that interval and shifts it so the broadcast starts at ``t = 0``;
        a scalar ``start`` means ``(start, start + deadline)``.  ``None``
        uses the trace as-is.
    seed:
        Seed for the synthesized link distances (and for the RAND
        schedulers' relay choices, unless ``scheduler_kwargs`` overrides).
    params:
        Physical-layer parameters (defaults to the paper's).
    cache:
        Optional :class:`repro.service.PlanCache`.  The call is keyed by
        its :func:`plan_cache_key`; a hit replays the stored plan —
        byte-identical schedule, cost, and info — without touching a
        scheduler (a memory hit builds no graph at all), a miss computes
        normally and stores the result.
    compute:
        Kernel selection: ``"auto"`` (the default for ``None``) runs the
        numpy array kernels when numpy is importable and the stdlib
        kernels otherwise; ``"python"`` / ``"numpy"`` pin the choice (an
        unavailable explicit ``"numpy"`` raises).  Every choice returns
        byte-identical plans — ``compute`` never enters the config hash.
        See :mod:`repro.compute`; the ``REPRO_COMPUTE`` environment
        variable overrides the ``"auto"`` resolution.
    scheduler_kwargs:
        Extra constructor arguments forwarded to the scheduler (e.g.
        ``memt_method="charikar"``).

    Returns a :class:`BroadcastPlan`; the plan's ``obs`` field holds a
    trace snapshot when ``repro.obs`` tracing is enabled, else ``None``.
    """
    config = plan_config(
        trace_or_tveg, source, deadline,
        algorithm=algorithm, channel=channel, window=window, seed=seed,
        params=params, **scheduler_kwargs,
    )
    deadline = float(deadline)

    def build_tveg() -> TVEG:
        if isinstance(trace_or_tveg, TVEG):
            return trace_or_tveg
        trace = trace_or_tveg
        if window is not None:
            start, end = _window_bounds(window, deadline)
            trace = trace.restrict_window(start, end).shift(-start)
        return tveg_from_trace(trace, channel, params=params, seed=seed)

    key = obs.config_hash(config)
    if cache is not None:
        hit = cache.lookup(key, build_tveg)
        if hit is not None:
            return hit

    return _plan_on_tveg(
        build_tveg(), source, deadline,
        config=config, seed=seed, compute=compute, cache=cache, key=key,
    )


def plan_broadcast_many(
    trace_or_tveg: Union[ContactTrace, ContactStore, TVEG],
    sources: Sequence[Optional[Node]],
    deadlines: Union[float, Sequence[float]],
    *,
    algorithm: str = "eedcb",
    channel: Union[str, ChannelModel] = "static",
    window: Optional[Window] = None,
    seed=None,
    params: PhyParams = PAPER_PARAMS,
    cache=None,
    compute: Optional[str] = None,
    **scheduler_kwargs,
) -> BroadcastPlanSet:
    """Plan many broadcasts on one instance, amortizing the shared builds.

    Semantically exactly ``[plan_broadcast(trace_or_tveg, s, d, ...) for
    (s, d) in zip(sources, deadlines)]`` — each returned plan carries the
    same schedule, info, and manifest ``config_hash`` the single call
    would have produced (the parity suite pins this) — but the expensive
    shared state is built once, not k times:

    * one TVEG per distinct effective trace window (requests sharing
      ``_window_bounds(window, deadline)`` share the graph);
    * one auxiliary-graph build per (deadline, targets) on that TVEG,
      re-rooted per source via the TVEG's aux cache (the Section VI-A
      construction is source-independent);
    * one auto-pick feasible-source computation per deadline.

    This is the natural shape for the time-vs-energy tradeoff sweeps and
    repeated same-graph broadcasts of the related work: k plans for
    roughly the cost of one build plus k Steiner runs.

    Parameters mirror :func:`plan_broadcast`; ``sources`` is a sequence
    (``None`` entries auto-pick), and ``deadlines`` is either one float
    applied to every source or a sequence matching ``sources``.  Returns
    a :class:`BroadcastPlanSet` in request order.
    """
    src_list = list(sources)
    if isinstance(deadlines, (int, float)):
        dl_list = [float(deadlines)] * len(src_list)
    else:
        dl_list = [float(d) for d in deadlines]
    if len(dl_list) != len(src_list):
        raise ValueError(
            f"sources and deadlines disagree in length "
            f"({len(src_list)} vs {len(dl_list)})"
        )

    configs = [
        plan_config(
            trace_or_tveg, s, d,
            algorithm=algorithm, channel=channel, window=window, seed=seed,
            params=params, **scheduler_kwargs,
        )
        for s, d in zip(src_list, dl_list)
    ]
    keys = [obs.config_hash(c) for c in configs]

    # One TVEG per distinct effective trace window.  ``None`` bounds mean
    # "the input as-is" (a TVEG input, or no window), i.e. a single group.
    groups: Dict[Optional[Tuple[float, float]], Dict[str, Any]] = {}

    def group_for(deadline: float) -> Dict[str, Any]:
        bounds = (
            None
            if isinstance(trace_or_tveg, TVEG) or window is None
            else _window_bounds(window, deadline)
        )
        g = groups.get(bounds)
        if g is None:
            g = {"bounds": bounds, "tveg": None, "feas": {}}
            groups[bounds] = g
        return g

    def group_tveg(g: Dict[str, Any]) -> TVEG:
        if g["tveg"] is None:
            if isinstance(trace_or_tveg, TVEG):
                g["tveg"] = trace_or_tveg
            else:
                trace = trace_or_tveg
                if g["bounds"] is not None:
                    start, end = g["bounds"]
                    trace = trace.restrict_window(start, end).shift(-start)
                g["tveg"] = tveg_from_trace(
                    trace, channel, params=params, seed=seed
                )
        return g["tveg"]

    plans: List[BroadcastPlan] = []
    with obs.span("api.plan_broadcast_many", requests=len(src_list)):
        for s, d, config, key in zip(src_list, dl_list, configs, keys):
            g = group_for(d)
            if cache is not None:
                hit = cache.lookup(key, lambda: group_tveg(g))
                if hit is not None:
                    plans.append(hit)
                    continue
            plans.append(
                _plan_on_tveg(
                    group_tveg(g), s, d,
                    config=config, seed=seed, compute=compute,
                    cache=cache, key=key, feasible_memo=g["feas"],
                )
            )
    return BroadcastPlanSet(plans=tuple(plans))

"""Shared experiment machinery: instance sampling and algorithm evaluation.

Every figure reproduction follows the same trace-driven protocol the paper
describes: generate (or load) a contact trace, pick a broadcast window and a
random source from which the broadcast is temporally feasible, build static
and fading TVEGs *sharing the same link geometry*, run each algorithm, and
measure normalized energy (scheduled cost) plus Monte-Carlo delivery ratio
in the execution environment.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..algorithms.base import make_scheduler
from ..parallel import parallel_map, resolve_workers
from ..channels.models import RayleighChannel, StaticChannel
from ..core.rng import SeedLike, as_generator
from ..errors import InfeasibleError
from ..sim.runner import run_trials
from ..temporal.reachability import broadcast_feasible_sources
from ..traces.enrich import DistanceModel
from ..traces.model import ContactTrace
from ..traces.synthetic import HaggleLikeConfig, haggle_like_trace
from ..tveg.graph import TVEG
from .config import ExperimentConfig

__all__ = [
    "Instance",
    "AlgorithmOutcome",
    "EvalJob",
    "default_trace",
    "sample_instance",
    "evaluate_algorithm",
    "evaluate_many",
    "mean_or_nan",
]

Node = Hashable


@dataclass(frozen=True)
class Instance:
    """One sampled broadcast problem: paired TVEGs + source + deadline."""

    static: TVEG
    fading: TVEG
    source: Node
    deadline: float
    window_start: float

    def design_graph(self, channel: str) -> TVEG:
        return self.static if channel == "static" else self.fading


@dataclass(frozen=True)
class AlgorithmOutcome:
    """One algorithm's result on one instance."""

    name: str
    normalized_energy: float
    delivery: float
    num_transmissions: int
    wall_time: float


def default_trace(
    num_nodes: int, config: ExperimentConfig, trace_seed: SeedLike
) -> ContactTrace:
    """The standard Haggle-like trace for a given network size."""
    return haggle_like_trace(
        HaggleLikeConfig(num_nodes=num_nodes, horizon=config.horizon),
        seed=trace_seed,
    )


def sample_instance(
    trace: ContactTrace,
    config: ExperimentConfig,
    rng: np.random.Generator,
    delay: Optional[float] = None,
    window_start: Optional[float] = None,
) -> Optional[Instance]:
    """Sample a feasible (window, source) pair and build paired TVEGs.

    Returns ``None`` when ``max_sample_attempts`` windows yield no source
    that can temporally reach every node within the delay constraint.
    """
    d = config.delay if delay is None else delay
    for _ in range(config.max_sample_attempts):
        if window_start is not None:
            t0 = window_start
        else:
            t0 = float(rng.uniform(0.0, max(trace.horizon - d, 0.0)))
        sub = trace.restrict_window(t0, t0 + d).shift(-t0)
        tvg = sub.to_tvg(horizon=d)
        feasible = broadcast_feasible_sources(tvg, 0.0, d)
        if not feasible:
            if window_start is not None:
                return None  # fixed window cannot be resampled
            continue
        source = sorted(feasible)[int(rng.integers(len(feasible)))]
        dist_seed = int(rng.integers(2**31 - 1))
        provider = DistanceModel().attach(sub, seed=dist_seed)
        static = TVEG(tvg, StaticChannel(config.params), provider)
        fading = TVEG(tvg, RayleighChannel(config.params), provider)
        return Instance(
            static=static,
            fading=fading,
            source=source,
            deadline=d,
            window_start=t0,
        )
    return None


def evaluate_algorithm(
    name: str,
    instance: Instance,
    config: ExperimentConfig,
    sim_seed: SeedLike,
    execution_channel: str = "match",
    **scheduler_kwargs,
) -> Optional[AlgorithmOutcome]:
    """Run one algorithm on one instance and measure both metrics.

    ``execution_channel`` selects the environment the schedule is executed
    in: ``"match"`` uses the channel the algorithm designs for (static for
    EEDCB/GREED/RAND, fading for FR-*), ``"fading"`` forces the Rayleigh
    environment — the paper's Fig. 6 setting where static-channel schedules
    lose packets.  Returns ``None`` when the scheduler proves the instance
    infeasible.
    """
    is_fr = name.startswith("fr-")
    design = instance.fading if is_fr else instance.static
    if execution_channel == "match":
        exec_graph = design
    elif execution_channel == "fading":
        exec_graph = instance.fading
    elif execution_channel == "static":
        exec_graph = instance.static
    else:
        raise ValueError(f"unknown execution channel {execution_channel!r}")

    scheduler = make_scheduler(
        name, **{"compute": config.compute, **scheduler_kwargs}
    )
    t0 = time.perf_counter()
    try:
        with obs.span("experiment.schedule", algorithm=name):
            result = scheduler.run(design, instance.source, instance.deadline)
    except InfeasibleError:
        obs.counter("experiment.infeasible")
        return None
    wall = time.perf_counter() - t0

    with obs.span("experiment.simulate", algorithm=name):
        summary = run_trials(
            exec_graph,
            result.schedule,
            instance.source,
            num_trials=config.trials,
            seed=sim_seed,
            count_scheduled_energy=True,
            workers=config.workers,
        )
    obs.counter("experiment.evaluations")
    return AlgorithmOutcome(
        name=name,
        normalized_energy=config.params.normalize_energy(
            result.schedule.total_cost
        ),
        delivery=summary.mean_delivery,
        num_transmissions=len(result.schedule),
        wall_time=wall,
    )


@dataclass(frozen=True)
class EvalJob:
    """One deferred :func:`evaluate_algorithm` call.

    The figure drivers build their job lists *serially* — instance sampling
    and seed derivation consume the experiment's random stream, and the
    stream's draw order is the reproducibility contract — then hand the
    whole list to :func:`evaluate_many` for (optional) parallel execution.
    """

    name: str
    instance: Instance
    sim_seed: int
    execution_channel: str = "match"
    scheduler_kwargs: Tuple[Tuple[str, object], ...] = ()

    @staticmethod
    def make(
        name: str,
        instance: Instance,
        sim_seed: int,
        execution_channel: str = "match",
        **scheduler_kwargs,
    ) -> "EvalJob":
        return EvalJob(
            name=name,
            instance=instance,
            sim_seed=sim_seed,
            execution_channel=execution_channel,
            scheduler_kwargs=tuple(sorted(scheduler_kwargs.items())),
        )


def _run_eval_job(
    payload: Tuple[EvalJob, ExperimentConfig]
) -> Optional[AlgorithmOutcome]:
    """Module-level so ProcessPoolExecutor can pickle it."""
    job, config = payload
    return evaluate_algorithm(
        job.name, job.instance, config, job.sim_seed,
        job.execution_channel, **dict(job.scheduler_kwargs),
    )


def evaluate_many(
    jobs: Sequence[EvalJob], config: ExperimentConfig
) -> List[Optional[AlgorithmOutcome]]:
    """Evaluate a batch of jobs, across ``config.workers`` processes.

    Results come back in job order, so aggregation is independent of
    completion order, and each job is self-contained (its own sim seed,
    drawn serially by the caller) — together that makes the output
    bit-identical to a serial loop for any worker count.

    ``workers > 1`` moves the parallelism *up* from the Monte-Carlo trials
    inside one evaluation to whole evaluations (scheduling **and**
    simulation overlap across figure points); the inner trial loops then
    run serially so worker processes don't nest pools.  Like
    :func:`repro.sim.runner.run_trials`, a recording ledger forces the
    serial path — events emitted in worker processes would be lost.
    """
    w = resolve_workers(config.workers)
    if w > 1 and obs.ledger_enabled():
        obs.counter("parallel.ledger_fallback")
        w = 1
    inner = config.with_(workers=1) if w > 1 else config
    payloads = [(job, inner) for job in jobs]
    with obs.span("experiment.evaluate_many", jobs=len(jobs), workers=w):
        return parallel_map(_run_eval_job, payloads, workers=w)


def sample_paired_starts(
    trace: ContactTrace,
    config: ExperimentConfig,
    rng: np.random.Generator,
    min_delay: float,
    max_delay: float,
    count: int,
) -> List[float]:
    """Window starts usable across a whole delay sweep.

    Each start is drawn so the *largest* delay's window still fits inside
    the trace horizon, and is kept only if a broadcast-feasible source
    exists at the *smallest* delay — then every delay in the sweep shares
    the same starts, isolating the delay effect from window placement.
    """
    starts: List[float] = []
    hi = max(trace.horizon - max_delay, 0.0)
    for _ in range(count):
        for _ in range(config.max_sample_attempts):
            t0 = float(rng.uniform(0.0, hi))
            inst = sample_instance(
                trace, config, rng, delay=min_delay, window_start=t0
            )
            if inst is not None:
                starts.append(t0)
                break
    return starts


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of a possibly empty sequence (NaN when empty)."""
    return float(np.mean(values)) if values else math.nan

"""Figure 6 — energy and delivery ratio vs network size in a fading world.

All six algorithms run with their own design channel, but every schedule is
*executed* in the Rayleigh fading environment.  Panel (a) reports normalized
energy, panel (b) the Monte-Carlo packet delivery ratio, for
N ∈ {10, 15, 20, 25, 30}.

Expected shape (the paper's key qualitative result): the fading-aware trio
delivers ≈ 1.0 at every size while spending more energy; the static trio
spends less but loses ≈ a third of the nodes at N = 20, worsening as the
network grows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.rng import as_generator
from .config import ExperimentConfig, FAST_CONFIG
from .fig5 import FADING_ALGOS, STATIC_ALGOS
from .harness import EvalJob, default_trace, evaluate_many, mean_or_nan, sample_instance
from .reporting import SweepResult, print_sweep

__all__ = ["run_fig6", "ALL_ALGOS", "FIG6_NODE_COUNTS"]

ALL_ALGOS = STATIC_ALGOS + FADING_ALGOS
FIG6_NODE_COUNTS = (10, 15, 20, 25, 30)


def run_fig6(
    config: ExperimentConfig = FAST_CONFIG,
    node_counts: Sequence[int] = FIG6_NODE_COUNTS,
) -> Tuple[SweepResult, SweepResult]:
    """Reproduce Fig. 6: returns (energy panel, delivery panel)."""
    energy_panel = SweepResult(
        title="Fig. 6(a) — normalized energy vs N (fading execution)",
        x_label="N",
    )
    delivery_panel = SweepResult(
        title="Fig. 6(b) — packet delivery ratio vs N (fading execution)",
        x_label="N",
    )
    rng = as_generator(config.seed + 6)
    # Serial sampling (the rng stream is the reproducibility contract),
    # deferred evaluation via evaluate_many (see fig4).
    jobs, points = [], []
    for n in node_counts:
        trace = default_trace(n, config, int(rng.integers(2**31 - 1)))
        for _ in range(config.repetitions):
            inst = sample_instance(trace, config, rng)
            if inst is None:
                continue
            sim_seed = int(rng.integers(2**31 - 1))
            rand_seed = int(rng.integers(2**31 - 1))
            for algo in ALL_ALGOS:
                kwargs = {"seed": rand_seed} if "rand" in algo else {}
                jobs.append(
                    EvalJob.make(
                        algo, inst, sim_seed,
                        execution_channel="fading", **kwargs,
                    )
                )
                points.append((n, algo))
    outcomes = evaluate_many(jobs, config)

    energies: Dict[Tuple[int, str], List[float]] = {
        (n, a): [] for n in node_counts for a in ALL_ALGOS
    }
    deliveries: Dict[Tuple[int, str], List[float]] = {
        (n, a): [] for n in node_counts for a in ALL_ALGOS
    }
    for point, out in zip(points, outcomes):
        if out is not None:
            energies[point].append(out.normalized_energy)
            deliveries[point].append(out.delivery)
    for n in node_counts:
        energy_panel.add_point(
            n, {a.upper(): mean_or_nan(energies[n, a]) for a in ALL_ALGOS}
        )
        delivery_panel.add_point(
            n, {a.upper(): mean_or_nan(deliveries[n, a]) for a in ALL_ALGOS}
        )
    return energy_panel, delivery_panel


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    e, d = run_fig6()
    print_sweep(e)
    print_sweep(d)

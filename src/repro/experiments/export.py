"""Sweep-result persistence and lightweight terminal charts.

Figure reproductions are long-running; this module lets a sweep be saved to
CSV (one x column + one column per series), reloaded for later analysis,
and eyeballed as a Unicode sparkline chart without any plotting dependency.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, TextIO, Union

from ..errors import TraceFormatError
from .reporting import SweepResult

__all__ = ["write_sweep_csv", "read_sweep_csv", "sparkline", "ascii_chart"]

PathLike = Union[str, Path]
_BARS = "▁▂▃▄▅▆▇█"


def write_sweep_csv(result: SweepResult, target: Union[PathLike, TextIO]) -> None:
    """Write a sweep as CSV: header row, then one row per x value."""
    owns = isinstance(target, (str, Path))
    fh = open(target, "w", encoding="utf-8", newline="") if owns else target
    try:
        writer = csv.writer(fh)
        names = result.series_names()
        writer.writerow(["# " + result.title])
        writer.writerow([result.x_label] + names)
        for i, x in enumerate(result.x_values):
            writer.writerow(
                [repr(float(x))] + [repr(float(result.series[n][i])) for n in names]
            )
    finally:
        if owns:
            fh.close()


def read_sweep_csv(source: Union[PathLike, TextIO]) -> SweepResult:
    """Reload a sweep written by :func:`write_sweep_csv`."""
    owns = isinstance(source, (str, Path))
    fh = open(source, "r", encoding="utf-8") if owns else source
    try:
        reader = csv.reader(fh)
        rows = [r for r in reader if r]
    finally:
        if owns:
            fh.close()
    if len(rows) < 2:
        raise TraceFormatError("sweep CSV needs a title row and a header row")
    title = rows[0][0].lstrip("# ").strip()
    header = rows[1]
    x_label, names = header[0], header[1:]
    result = SweepResult(title=title, x_label=x_label)
    for row in rows[2:]:
        if len(row) != len(header):
            raise TraceFormatError(f"malformed sweep CSV row: {row!r}")
        result.add_point(
            float(row[0]),
            {n: float(v) for n, v in zip(names, row[1:])},
        )
    return result


def sparkline(values: List[float]) -> str:
    """A one-line Unicode sparkline of a series (NaN → space)."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if math.isnan(v):
            out.append(" ")
        elif span == 0:
            out.append(_BARS[0])
        else:
            idx = int((v - lo) / span * (len(_BARS) - 1))
            out.append(_BARS[idx])
    return "".join(out)


def ascii_chart(result: SweepResult) -> str:
    """All series of a sweep as labelled sparklines (quick shape check)."""
    names = result.series_names()
    width = max((len(n) for n in names), default=0)
    lines = [result.title]
    for n in names:
        values = result.series[n]
        finite = [v for v in values if not math.isnan(v)]
        lo = min(finite) if finite else float("nan")
        hi = max(finite) if finite else float("nan")
        lines.append(
            f"{n:>{width}} |{sparkline(values)}| [{lo:.3g}, {hi:.3g}]"
        )
    return "\n".join(lines)

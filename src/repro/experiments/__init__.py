"""Reproductions of the paper's evaluation (Figures 4–7, Section VII)."""

from .ablation import (
    allocation_ablation,
    policy_ablation,
    pruning_ablation,
    steiner_ablation,
)
from .config import FAST_CONFIG, FULL_CONFIG, ExperimentConfig
from .export import ascii_chart, read_sweep_csv, sparkline, write_sweep_csv
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .harness import (
    AlgorithmOutcome,
    Instance,
    default_trace,
    evaluate_algorithm,
    sample_instance,
)
from .reporting import SweepResult, format_table, print_sweep

__all__ = [
    "ExperimentConfig",
    "FAST_CONFIG",
    "FULL_CONFIG",
    "Instance",
    "AlgorithmOutcome",
    "default_trace",
    "sample_instance",
    "evaluate_algorithm",
    "SweepResult",
    "format_table",
    "print_sweep",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "steiner_ablation",
    "allocation_ablation",
    "pruning_ablation",
    "policy_ablation",
    "write_sweep_csv",
    "read_sweep_csv",
    "sparkline",
    "ascii_chart",
]

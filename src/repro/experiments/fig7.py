"""Figure 7 — energy consumption and average node degree over time.

Every 500 s from 5000 s to 15000 s, run each algorithm on the broadcast
window opening at that instant and record its normalized energy next to the
trace's average node degree.  Panel (a) uses static channels, panel (b)
Rayleigh fading.

Expected shape: the synthetic trace's warm-up ramp makes the average degree
climb until ≈ 8000 s and flatten; energy consumption mirrors it inversely —
denser windows mean each relay covers more nodes per transmission, so the
backbone (and its cost) shrinks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.rng import as_generator
from ..temporal.metrics import average_degree
from .config import ExperimentConfig, FAST_CONFIG
from .fig5 import FADING_ALGOS, STATIC_ALGOS
from .harness import EvalJob, default_trace, evaluate_many, mean_or_nan, sample_instance
from .reporting import SweepResult, print_sweep

__all__ = ["run_fig7", "FIG7_WINDOW_STARTS"]

FIG7_WINDOW_STARTS = tuple(float(t) for t in range(5000, 15001, 500))


def run_fig7(
    channel: str = "static",
    config: ExperimentConfig = FAST_CONFIG,
    window_starts: Sequence[float] = FIG7_WINDOW_STARTS,
) -> SweepResult:
    """Reproduce Fig. 7(a) (``channel="static"``) or 7(b) (``"rayleigh"``).

    The returned sweep carries one ``avg degree`` series plus one energy
    series per algorithm.
    """
    algos = STATIC_ALGOS if channel == "static" else FADING_ALGOS
    panel = "a" if channel == "static" else "b"
    result = SweepResult(
        title=f"Fig. 7({panel}) — energy and average degree over time",
        x_label="time (s)",
    )
    rng = as_generator(config.seed + 7)
    trace = default_trace(config.num_nodes, config, int(rng.integers(2**31 - 1)))
    tvg_full = trace.to_tvg()

    # Serial sampling (the rng stream is the reproducibility contract),
    # deferred evaluation via evaluate_many (see fig4).
    jobs, points = [], []
    degrees: Dict[float, float] = {}
    for t0 in window_starts:
        # De-noise the degree series by averaging a few samples across the
        # reporting window (a single snapshot of a 15–20 node trace is far
        # too jumpy to show the ramp).
        probe = np.linspace(t0, min(t0 + 500.0, trace.horizon * 0.999), 8)
        degrees[t0] = float(np.mean([average_degree(tvg_full, t) for t in probe]))
        for _ in range(config.repetitions):
            inst = sample_instance(trace, config, rng, window_start=t0)
            if inst is None:
                break  # fixed window — resampling cannot help
            sim_seed = int(rng.integers(2**31 - 1))
            rand_seed = int(rng.integers(2**31 - 1))
            for algo in algos:
                kwargs = {"seed": rand_seed} if "rand" in algo else {}
                jobs.append(EvalJob.make(algo, inst, sim_seed, **kwargs))
                points.append((t0, algo))
    outcomes = evaluate_many(jobs, config)

    energies: Dict[Tuple[float, str], List[float]] = {
        (t0, a): [] for t0 in window_starts for a in algos
    }
    for point, out in zip(points, outcomes):
        if out is not None:
            energies[point].append(out.normalized_energy)
    for t0 in window_starts:
        row: Dict[str, float] = {"avg degree": degrees[t0]}
        for a in algos:
            row[a.upper()] = mean_or_nan(energies[t0, a])
        result.add_point(t0, row)
    return result


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    for ch in ("static", "rayleigh"):
        print_sweep(run_fig7(channel=ch))

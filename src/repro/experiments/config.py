"""Experiment configuration shared by the Fig. 4–7 reproductions.

Defaults mirror Section VII: 20 nodes, 2000 s delay constraint, ~17000 s
experiments, ε = 0.01, α = 2, γ_th = 25.9 dB, N0 = 4.32e−21 W/Hz.  ``fast``
presets shrink repetition counts so the benchmark suite stays responsive;
``full()`` restores paper-scale sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..params import PAPER_PARAMS, PhyParams

__all__ = ["ExperimentConfig", "FAST_CONFIG", "FULL_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs common to every figure reproduction."""

    params: PhyParams = PAPER_PARAMS
    #: trace horizon in seconds (the paper's ≈17000 s experiment)
    horizon: float = 17000.0
    #: default delay constraint ``T`` (s)
    delay: float = 2000.0
    #: default network size
    num_nodes: int = 20
    #: repetitions (window + source resamples) per data point
    repetitions: int = 3
    #: Monte-Carlo trials per delivery-ratio estimate
    trials: int = 100
    #: attempts to find a broadcast-feasible (window, source) sample
    max_sample_attempts: int = 25
    #: master seed; every derived stream is spawned from it
    seed: int = 2015  # the paper's year — an arbitrary but memorable default
    #: Monte-Carlo worker processes (1 = serial; -1 = one per CPU); results
    #: are bit-identical for any value (see repro.parallel)
    workers: int = 1
    #: compute kernel for the schedulers ("auto" | "python" | "numpy");
    #: results are bit-identical for any value (see repro.compute)
    compute: str = "auto"

    def with_(self, **changes) -> "ExperimentConfig":
        return replace(self, **changes)


#: quick preset used by the benchmark suite and CI
FAST_CONFIG = ExperimentConfig(repetitions=2, trials=40)
#: paper-scale preset
FULL_CONFIG = ExperimentConfig(repetitions=10, trials=300)

"""Ablations of the design choices DESIGN.md calls out.

Four studies, each isolating one component swap while everything else stays
fixed (run standalone: ``python -m repro.experiments.ablation``):

* ``steiner_ablation``    — Steiner solver (greedy / sptree / charikar)
                            vs the exact oracle on small instances;
* ``allocation_ablation`` — closed form vs coordinate descent vs full NLP
                            on one fading backbone;
* ``pruning_ablation``    — auxiliary-graph size and schedule cost with and
                            without DTS point pruning;
* ``policy_ablation``     — GREED's "cover" vs paper-literal "min" power
                            policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import make_scheduler
from ..allocation import (
    build_allocation_problem,
    closed_form_allocation,
    solve_allocation,
)
from ..auxgraph import build_aux_graph, extract_schedule
from ..core.rng import SeedLike
from ..dts import build_dts
from ..errors import InfeasibleError
from ..schedule import check_feasibility
from ..steiner import solve_memt
from ..temporal.reachability import broadcast_feasible_sources
from ..traces import HaggleLikeConfig, haggle_like_trace, uniform_trace
from ..tveg import tveg_from_trace

__all__ = [
    "steiner_ablation",
    "allocation_ablation",
    "pruning_ablation",
    "policy_ablation",
]


def _window_instance(num_nodes: int, channel: str, trace_seed: int, dist_seed: int):
    """A 2000 s broadcast instance on a fresh Haggle-like trace."""
    trace = haggle_like_trace(HaggleLikeConfig(num_nodes=num_nodes), seed=trace_seed)
    window = trace.restrict_window(9000.0, 11000.0).shift(-9000.0)
    tveg = tveg_from_trace(window, channel, seed=dist_seed)
    sources = sorted(broadcast_feasible_sources(tveg.tvg, 0.0, 2000.0))
    if not sources:
        raise InfeasibleError("ablation window infeasible; change the seed")
    return tveg, sources[0]


def steiner_ablation(
    num_instances: int = 6, num_nodes: int = 6, horizon: float = 250.0
) -> Dict[str, float]:
    """Mean cost/optimal ratio per Steiner method on oracle-solvable
    instances (small N — the oracle is exponential)."""
    gaps: Dict[str, List[float]] = {m: [] for m in ("greedy", "sptree", "charikar")}
    for seed in range(num_instances):
        trace = uniform_trace(num_nodes, horizon, 70.0, 40.0, seed=seed)
        tveg = tveg_from_trace(trace, "static", seed=seed)
        try:
            opt = make_scheduler("oracle").run(tveg, 0, horizon)
        except InfeasibleError:
            continue
        for method in gaps:
            sched = make_scheduler("eedcb", memt_method=method).schedule(
                tveg, 0, horizon
            )
            gaps[method].append(sched.total_cost / opt.schedule.total_cost)
    return {m: float(np.mean(v)) for m, v in gaps.items() if v}


def allocation_ablation(
    num_nodes: int = 15, trace_seed: int = 31, dist_seed: int = 4
) -> Dict[str, float]:
    """Total allocated energy per solver tier on one fading backbone."""
    fading, source = _window_instance(num_nodes, "rayleigh", trace_seed, dist_seed)
    backbone = make_scheduler("eedcb").schedule(fading, source, 2000.0)
    problem = build_allocation_problem(fading, backbone, source)
    return {
        "closed_form": float(closed_form_allocation(problem).sum()),
        "coordinate": solve_allocation(problem, use_slsqp=False).total,
        "nlp": solve_allocation(problem, use_slsqp=True).total,
    }


def pruning_ablation(
    num_nodes: int = 15, trace_seed: int = 77, dist_seed: int = 9
) -> Dict[str, float]:
    """Auxiliary-graph size and schedule cost with/without DTS pruning."""
    tveg, source = _window_instance(num_nodes, "static", trace_seed, dist_seed)
    out: Dict[str, float] = {}
    for label, prune in (("pruned", True), ("unpruned", False)):
        dts = build_dts(tveg.tvg, 2000.0, prune=prune)
        aux = build_aux_graph(tveg, source, 2000.0, dts)
        sched = extract_schedule(
            aux, solve_memt(aux.graph, aux.root, aux.terminals)
        )
        assert check_feasibility(tveg, sched, source, 2000.0).feasible
        out[f"{label}_aux_nodes"] = aux.num_nodes
        out[f"{label}_cost"] = sched.total_cost
    return out


def policy_ablation(
    num_nodes: int = 15, trace_seed: int = 55, dist_seed: int = 2
) -> Dict[str, float]:
    """GREED with "cover" vs the paper-literal "min" power policy."""
    tveg, source = _window_instance(num_nodes, "static", trace_seed, dist_seed)
    out: Dict[str, float] = {}
    for policy in ("cover", "min"):
        res = make_scheduler("greed", power_policy=policy).run(tveg, source, 2000.0)
        out[f"{policy}_cost"] = res.schedule.total_cost
        out[f"{policy}_transmissions"] = len(res.schedule)
        out[f"{policy}_informed"] = res.info["informed"]
    return out


if __name__ == "__main__":  # pragma: no cover - CLI convenience
    print("Steiner solver (mean cost / optimal):", steiner_ablation())
    print("Allocation tiers (total energy):", allocation_ablation())
    print("DTS pruning:", pruning_ablation())
    print("GREED power policy:", policy_ablation())

"""Sweep results and ASCII reporting.

Each figure module returns a :class:`SweepResult` — the x axis the paper
plots plus one named series per curve — and the reporters print exactly the
rows the paper's figures show, so EXPERIMENTS.md can be filled by running
the modules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["SweepResult", "format_table", "print_sweep"]


@dataclass
class SweepResult:
    """One figure panel: an x axis and named y series."""

    title: str
    x_label: str
    x_values: List[float] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add_point(self, x: float, values: Dict[str, float]) -> None:
        """Append one x position with a y value for every series."""
        self.x_values.append(x)
        for name, v in values.items():
            self.series.setdefault(name, []).append(v)

    def series_names(self) -> List[str]:
        return list(self.series)

    def column(self, name: str) -> List[float]:
        return self.series[name]


def _fmt(v: float) -> str:
    if v is None or (isinstance(v, float) and math.isnan(v)):
        return "      n/a"
    if v == 0:
        return "    0.000"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:9.3g}"
    return f"{v:9.3f}"


def format_table(result: SweepResult) -> str:
    """Render a sweep as a fixed-width ASCII table."""
    names = result.series_names()
    header = f"{result.x_label:>12} | " + " | ".join(f"{n:>9}" for n in names)
    rule = "-" * len(header)
    lines = [result.title, rule, header, rule]
    for i, x in enumerate(result.x_values):
        row = f"{x:12g} | " + " | ".join(
            _fmt(result.series[n][i]) for n in names
        )
        lines.append(row)
    lines.append(rule)
    return "\n".join(lines)


def print_sweep(result: SweepResult) -> None:
    print(format_table(result))
    print()
